// Hierarchical k-truss decomposition (the paper's Section VI "other
// cohesive subgraph models" extension): builds the truss hierarchy with the
// same union-find-with-pivot paradigm as PHCD, over edges instead of
// vertices, and reports the densest k-truss.
//
// Run: ./build/examples/truss_communities [scale] [edges] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "graph/generators.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

int main(int argc, char** argv) {
  const uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const uint64_t edges = argc > 2 ? std::atoll(argv[2]) : 200000;
  const uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 23;

  hcd::Graph graph = hcd::RMatGraph500(scale, edges, seed);
  std::printf("RMAT graph: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  hcd::Timer timer;
  hcd::EdgeIndexer index = hcd::BuildEdgeIndexer(graph);
  hcd::TrussDecomposition td = hcd::PeelTrussDecomposition(graph, index);
  std::printf("truss decomposition: k_max=%u (%.3fs)\n", td.k_max,
              timer.Seconds());

  timer.Reset();
  hcd::TrussForest forest = hcd::BuildTrussHierarchy(graph, index, td);
  std::printf("truss hierarchy: %u nodes (%.3fs)\n", forest.NumNodes(),
              timer.Seconds());

  // Trussness histogram (a few rows).
  std::vector<uint64_t> per_level(td.k_max + 1, 0);
  for (uint32_t t : td.trussness) ++per_level[t];
  for (uint32_t k = 2; k <= td.k_max; k += std::max(1u, td.k_max / 10)) {
    std::printf("  trussness %-4u: %llu edges\n", k,
                static_cast<unsigned long long>(per_level[k]));
  }

  hcd::DensestTrussResult best = hcd::DensestTruss(graph, index, forest);
  std::printf("densest k-truss: k=%u, |V|=%zu, |E|=%llu, avg_deg=%.2f\n",
              best.level, best.community.vertices.size(),
              static_cast<unsigned long long>(best.community.num_edges),
              best.community.AverageDegree());
  return 0;
}
