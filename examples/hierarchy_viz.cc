// Graph-visualization application (Section I): exports the HCD of a graph
// as Graphviz DOT and JSON, the hierarchy rendering used for exploring
// networks (internet topology, brains, ...). Runs the pipeline through the
// engine so the two exports share one decomposition and one forest.
//
// Run: ./build/examples/hierarchy_viz [out.dot [out.json]]

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/engine.h"
#include "graph/generators.h"
#include "hcd/export.h"

int main(int argc, char** argv) {
  const std::string dot_path = argc > 1 ? argv[1] : "hcd.dot";
  const std::string json_path = argc > 2 ? argv[2] : "hcd.json";

  // A branching planted hierarchy renders a rich, readable tree.
  hcd::HcdEngine engine(
      hcd::PlantedHierarchy(hcd::BranchingSpec(3, 12, 3, 2, 8), 12));
  const hcd::HcdForest& forest = engine.Forest();

  std::printf("graph: n=%u m=%llu; HCD has %u nodes\n",
              engine.graph().NumVertices(),
              static_cast<unsigned long long>(engine.graph().NumEdges()),
              forest.NumNodes());

  {
    std::ofstream out(dot_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dot_path.c_str());
      return 1;
    }
    out << hcd::ForestToDot(forest);
  }
  {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << hcd::ForestToJson(forest);
  }
  std::printf("wrote %s and %s (render with: dot -Tsvg %s -o hcd.svg)\n",
              dot_path.c_str(), json_path.c_str(), dot_path.c_str());
  return 0;
}
