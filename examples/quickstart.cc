// Quickstart: build a graph, decompose it, construct the HCD in parallel,
// and search for the best community under a few metrics.
//
// Run: ./build/examples/quickstart [edge-list-file]
// With no argument it uses the paper's Figure 1 running example.

#include <cstdio>
#include <string>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "hcd/phcd.h"
#include "search/searcher.h"

int main(int argc, char** argv) {
  hcd::Graph graph;
  if (argc > 1) {
    hcd::Status s = hcd::LoadEdgeListText(argv[1], &graph);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   s.ToString().c_str());
      return 1;
    }
  } else {
    graph = hcd::PaperFigure1Graph();
  }
  std::printf("graph: n=%u m=%llu avg_deg=%.2f\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              graph.AverageDegree());

  // 1. Core decomposition (parallel PKC).
  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(graph);
  std::printf("core decomposition: k_max=%u\n", cd.k_max);

  // 2. Hierarchical core decomposition (parallel PHCD).
  hcd::HcdForest forest = hcd::PhcdBuild(graph, cd);
  std::printf("HCD: %u tree nodes, %zu roots\n", forest.NumNodes(),
              forest.Roots().size());

  // 3. Subgraph search (PBKS) across several community metrics.
  hcd::SubgraphSearcher searcher(graph, cd, forest);
  for (hcd::Metric metric :
       {hcd::Metric::kAverageDegree, hcd::Metric::kConductance,
        hcd::Metric::kClusteringCoefficient}) {
    hcd::SearchResult r = searcher.Search(metric);
    if (r.best_node == hcd::kInvalidNode) continue;
    std::printf("best k-core under %-22s: k=%u, |S|=%llu, score=%.4f\n",
                hcd::MetricName(metric), forest.Level(r.best_node),
                static_cast<unsigned long long>(forest.CoreSize(r.best_node)),
                r.best_score);
  }
  return 0;
}
