// Quickstart: build a graph, run the HCD pipeline through the engine, and
// search for the best community under a few metrics. The engine computes
// each stage (decomposition, construction, search preprocessing) exactly
// once and reports where the time went.
//
// Run: ./build/examples/quickstart [edge-list-file] [metric]
// With no arguments it uses the paper's Figure 1 running example and a
// default metric mix; a metric name (as printed by MetricName, e.g.
// "conductance") narrows the search to that one metric.

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "search/metrics.h"

int main(int argc, char** argv) {
  hcd::Graph graph;
  if (argc > 1) {
    hcd::Status s = hcd::LoadEdgeListText(argv[1], &graph);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   s.ToString().c_str());
      return 1;
    }
  } else {
    graph = hcd::PaperFigure1Graph();
  }
  std::vector<hcd::Metric> metrics{hcd::Metric::kAverageDegree,
                                   hcd::Metric::kConductance,
                                   hcd::Metric::kClusteringCoefficient};
  if (argc > 2) {
    hcd::Metric chosen;
    if (!hcd::ParseMetric(argv[2], &chosen)) {
      std::fprintf(stderr, "unknown metric '%s'; choose from:", argv[2]);
      for (hcd::Metric m : hcd::kAllMetrics) {
        std::fprintf(stderr, " %s", hcd::MetricName(m));
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    metrics = {chosen};
  }
  std::printf("graph: n=%u m=%llu avg_deg=%.2f\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              graph.AverageDegree());

  // One engine = one loaded graph serving many queries. Stages are lazy and
  // memoized: Coreness() runs PKC, Forest() runs PHCD, the first Search()
  // builds the eager SearchIndex, and nothing is ever recomputed. (For
  // concurrent serving, take engine.Snapshot() and give each worker thread
  // its own SearchWorkspace — see engine/snapshot.h.)
  hcd::HcdEngine engine(std::move(graph));

  std::printf("core decomposition: k_max=%u\n", engine.Coreness().k_max);
  const hcd::FlatHcdIndex& flat = engine.Flat();
  std::printf("HCD: %u tree nodes, %zu roots\n", flat.NumNodes(),
              flat.Roots().size());

  for (hcd::Metric metric : metrics) {
    hcd::SearchResult r = engine.Search(metric);
    if (r.best_node == hcd::kInvalidNode) continue;
    std::printf("best k-core under %-22s: k=%u, |S|=%llu, score=%.4f\n",
                hcd::MetricName(metric), flat.Level(r.best_node),
                static_cast<unsigned long long>(flat.CoreSize(r.best_node)),
                r.best_score);
  }

  std::printf("\nper-stage telemetry:\n");
  for (const hcd::StageRecord& r : engine.telemetry().records()) {
    std::printf("  %-18s %8.3f ms\n", r.stage.c_str(), r.seconds * 1e3);
  }
  std::printf("peak stage: %s\n", engine.telemetry().PeakStage().c_str());
  return 0;
}
