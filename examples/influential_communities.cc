// Influential community search (the paper's Section VI index application,
// after Li et al.): find the top-r communities with minimum degree k ranked
// by their influence (minimum member weight).
//
// Run: ./build/examples/influential_communities [n] [k] [r] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"
#include "search/influential.h"

int main(int argc, char** argv) {
  const hcd::VertexId n = argc > 1 ? std::atoi(argv[1]) : 30000;
  const uint32_t k = argc > 2 ? std::atoi(argv[2]) : 6;
  const uint32_t r = argc > 3 ? std::atoi(argv[3]) : 5;
  const uint64_t seed = argc > 4 ? std::atoll(argv[4]) : 17;

  hcd::Graph graph = hcd::BarabasiAlbertVarying(n, 1, 12, seed);
  // Synthetic influence scores (e.g. PageRank or follower counts in a real
  // deployment).
  hcd::Rng rng(seed + 1);
  std::vector<double> weights(graph.NumVertices());
  for (double& w : weights) w = rng.UniformDouble() * 100.0;

  std::printf("graph: n=%u m=%llu; searching top-%u %u-influential "
              "communities\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()), r, k);

  auto top = hcd::TopInfluentialCommunities(graph, weights, k, r);
  std::printf("%-6s %12s %10s\n", "rank", "influence", "|community|");
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("%-6zu %12.4f %10zu\n", i + 1, top[i].influence,
                top[i].vertices.size());
  }
  if (top.empty()) std::printf("(the %u-core is empty)\n", k);
  return 0;
}
