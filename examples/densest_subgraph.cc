// Densest-subgraph search (the paper's Table IV scenario): compares the
// HCD-based PBKS-D against the k_max-core baseline (CoreApp-style) and
// Charikar's greedy peeling, and checks whether the maximum clique lies
// inside PBKS-D's output.
//
// Run: ./build/examples/densest_subgraph [n] [edges-per-vertex] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/phcd.h"
#include "search/densest.h"
#include "search/max_clique.h"

int main(int argc, char** argv) {
  const hcd::VertexId n = argc > 1 ? std::atoi(argv[1]) : 20000;
  const hcd::VertexId epv = argc > 2 ? std::atoi(argv[2]) : 6;
  const uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 42;

  hcd::Graph graph = hcd::BarabasiAlbert(n, epv, seed);
  std::printf("Barabasi-Albert graph: n=%u m=%llu\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(graph);
  hcd::FlatHcdIndex flat = hcd::Freeze(hcd::PhcdBuild(graph, cd));

  hcd::Timer timer;
  hcd::DenseSubgraph pbksd = hcd::PbksDensest(graph, cd, flat);
  const double pbks_time = timer.Seconds();

  timer.Reset();
  hcd::DenseSubgraph coreapp = hcd::CoreAppDensest(graph, cd);
  const double coreapp_time = timer.Seconds();

  timer.Reset();
  hcd::DenseSubgraph peel = hcd::CharikarPeelingDensest(graph);
  const double peel_time = timer.Seconds();

  std::printf("%-22s %12s %10s %10s\n", "method", "avg-degree", "|S|",
              "time(s)");
  std::printf("%-22s %12.3f %10zu %10.4f\n", "PBKS-D", pbksd.average_degree,
              pbksd.vertices.size(), pbks_time);
  std::printf("%-22s %12.3f %10zu %10.4f\n", "CoreApp (kmax-core)",
              coreapp.average_degree, coreapp.vertices.size(), coreapp_time);
  std::printf("%-22s %12.3f %10zu %10.4f\n", "Charikar peeling",
              peel.average_degree, peel.vertices.size(), peel_time);

  // Maximum clique containment (Table IV's "MC ⊆ S*" column).
  std::vector<hcd::VertexId> mc = hcd::MaxClique(graph, cd);
  std::vector<hcd::VertexId> sorted = pbksd.vertices;
  std::sort(sorted.begin(), sorted.end());
  bool contained = true;
  for (hcd::VertexId v : mc) {
    contained &= std::binary_search(sorted.begin(), sorted.end(), v);
  }
  std::printf("max clique: size=%zu, contained in PBKS-D output: %s\n",
              mc.size(), contained ? "yes" : "no");
  std::printf("|S*|/n = %.4f%%\n",
              100.0 * static_cast<double>(pbksd.vertices.size()) /
                  graph.NumVertices());
  return 0;
}
