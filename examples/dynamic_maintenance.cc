// Dynamic core maintenance: applies a stream of edge insertions/deletions
// with the incremental subcore algorithm and compares the cost against
// full recomputation (the substrate of hierarchical core maintenance on
// dynamic graphs, which the paper cites as companion work).
//
// Run: ./build/examples/dynamic_maintenance [n] [m] [updates] [seed]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/timer.h"
#include "core/core_decomposition.h"
#include "core/dynamic.h"
#include "graph/generators.h"
#include "hcd/phcd.h"

int main(int argc, char** argv) {
  const hcd::VertexId n = argc > 1 ? std::atoi(argv[1]) : 50000;
  const uint64_t m = argc > 2 ? std::atoll(argv[2]) : 300000;
  const int updates = argc > 3 ? std::atoi(argv[3]) : 2000;
  const uint64_t seed = argc > 4 ? std::atoll(argv[4]) : 9;

  // A skewed web-style graph keeps same-coreness regions fragmented, so
  // update subcores stay local. (On uniform random graphs almost every
  // vertex shares one coreness and forms one giant subcore -- the
  // traversal algorithm's known worst case, where recomputation wins.)
  uint32_t scale = 1;
  while ((1u << scale) < n) ++scale;
  hcd::Graph graph = hcd::RMatGraph500(scale, m, seed);
  hcd::DynamicCoreIndex index(graph);
  std::printf("graph: n=%u m=%llu k_max=%u\n", n,
              static_cast<unsigned long long>(index.NumEdges()), index.KMax());

  hcd::Rng rng(seed + 1);
  hcd::Timer timer;
  int inserts = 0;
  int removals = 0;
  for (int i = 0; i < updates; ++i) {
    hcd::VertexId u = static_cast<hcd::VertexId>(rng.Uniform(n));
    hcd::VertexId v = static_cast<hcd::VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (index.HasEdge(u, v)) {
      (void)index.RemoveEdge(u, v);
      ++removals;
    } else {
      (void)index.InsertEdge(u, v);
      ++inserts;
    }
  }
  const double incr_time = timer.Seconds();
  std::printf("%d updates (%d inserts, %d removals): %.4fs incremental "
              "(%.1f us/update)\n",
              inserts + removals, inserts, removals, incr_time,
              1e6 * incr_time / (inserts + removals));

  timer.Reset();
  hcd::Graph updated = index.ToGraph();
  hcd::CoreDecomposition fresh = hcd::BzCoreDecomposition(updated);
  const double recompute_time = timer.Seconds();
  std::printf("one full recomputation: %.4fs -> incremental is %.1fx "
              "cheaper per update\n",
              recompute_time,
              recompute_time / (incr_time / (inserts + removals)));

  bool consistent = true;
  for (hcd::VertexId v = 0; v < n; ++v) {
    consistent &= index.Coreness(v) == fresh.coreness[v];
  }
  std::printf("incremental == recomputed: %s\n", consistent ? "yes" : "NO");

  timer.Reset();
  hcd::HcdForest forest = hcd::PhcdBuild(updated, fresh);
  std::printf("HCD rebuilt after the batch: %u nodes (%.4fs)\n",
              forest.NumNodes(), timer.Seconds());
  return 0;
}
