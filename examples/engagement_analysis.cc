// User-engagement analysis (a headline HCD application, Section I): treats
// coreness as an engagement estimate and shows how the HCD refines it —
// users with the same coreness can sit in different k-cores, whose sizes
// and densities differ, which [15] found improves engagement prediction.
//
// Run: ./build/examples/engagement_analysis [n] [edges-per-vertex] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/phcd.h"
#include "search/pbks.h"
#include "search/preprocess.h"

int main(int argc, char** argv) {
  const hcd::VertexId n = argc > 1 ? std::atoi(argv[1]) : 50000;
  const hcd::VertexId epv = argc > 2 ? std::atoi(argv[2]) : 5;
  const uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 3;

  hcd::Graph graph = hcd::BarabasiAlbert(n, epv, seed);
  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(graph);
  hcd::FlatHcdIndex flat = hcd::Freeze(hcd::PhcdBuild(graph, cd));

  // Engagement proxy per coreness level: average degree of users at that
  // coreness (degree plays the role of check-in counts in [14]).
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> by_coreness;  // sum, cnt
  for (hcd::VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto& [sum, cnt] = by_coreness[cd.coreness[v]];
    sum += graph.Degree(v);
    ++cnt;
  }
  std::printf("== engagement (avg degree) by coreness ==\n");
  uint32_t printed = 0;
  for (const auto& [k, agg] : by_coreness) {
    if (++printed % std::max<size_t>(1, by_coreness.size() / 12) != 0) {
      continue;
    }
    std::printf("  coreness %-4u users=%-7llu avg_engagement=%.2f\n", k,
                static_cast<unsigned long long>(agg.second),
                static_cast<double>(agg.first) / agg.second);
  }

  // HCD refinement: users of the same coreness split across tree nodes;
  // report the per-node core densities at the most populated level.
  uint32_t busiest_level = 0;
  uint64_t busiest_count = 0;
  for (const auto& [k, agg] : by_coreness) {
    if (k > 0 && agg.second > busiest_count) {
      busiest_level = k;
      busiest_count = agg.second;
    }
  }
  const auto pre = hcd::PreprocessCorenessCounts(graph, cd);
  const auto primary = hcd::PbksTypeAPrimary(graph, cd, flat, pre);
  std::printf(
      "\n== HCD refinement at coreness %u: distinct %u-cores and their "
      "density ==\n",
      busiest_level, busiest_level);
  uint32_t shown = 0;
  for (hcd::TreeNodeId t = 0; t < flat.NumNodes() && shown < 10; ++t) {
    if (flat.Level(t) != busiest_level) continue;
    const auto& pv = primary[t];
    std::printf("  node %-5u shell=%-6zu core_n=%-7llu core_avg_deg=%.2f\n", t,
                flat.Vertices(t).size(),
                static_cast<unsigned long long>(pv.n_s),
                pv.n_s ? static_cast<double>(pv.edges2) / pv.n_s : 0.0);
    ++shown;
  }
  std::printf("(users with equal coreness but different nodes belong to\n"
              " different communities; [15] uses exactly this distinction)\n");
  return 0;
}
