// Community scoring across every metric and every k (the paper's Section VI
// "finding the best k" extension): prints, for a skewed random graph, the
// best k-core per metric and the per-k score profile of the k-core sets.
// All nine metric searches share one engine, so the decomposition, the
// forest and each primary-value pass are computed once.
//
// Run: ./build/examples/community_metrics [scale] [edges] [seed]

#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "graph/generators.h"
#include "search/best_k.h"

int main(int argc, char** argv) {
  const uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 13;
  const uint64_t edges = argc > 2 ? std::atoll(argv[2]) : 80000;
  const uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 7;

  hcd::HcdEngine engine(hcd::RMatGraph500(scale, edges, seed));
  const hcd::CoreDecomposition& cd = engine.Coreness();
  const hcd::FlatHcdIndex& flat = engine.Flat();
  std::printf("RMAT graph: n=%u m=%llu k_max=%u |T|=%u\n",
              engine.graph().NumVertices(),
              static_cast<unsigned long long>(engine.graph().NumEdges()),
              cd.k_max, flat.NumNodes());

  std::printf("\n== best k-core per metric (PBKS) ==\n");
  for (hcd::Metric metric : hcd::kAllMetrics) {
    hcd::SearchResult r = engine.Search(metric);
    std::printf("%-24s best: k=%-4u |S|=%-8llu score=%.5f\n",
                hcd::MetricName(metric), flat.Level(r.best_node),
                static_cast<unsigned long long>(flat.CoreSize(r.best_node)),
                r.best_score);
  }

  std::printf("\n== best k for the k-core set (Section VI) ==\n");
  for (hcd::Metric metric : hcd::kAllMetrics) {
    hcd::BestKResult r = hcd::FindBestK(engine.graph(), cd, metric);
    std::printf("%-24s best k=%-4u score=%.5f (K_k has %llu vertices)\n",
                hcd::MetricName(metric), r.best_k, r.best_score,
                static_cast<unsigned long long>(r.per_k[r.best_k].n_s));
  }

  std::printf("\n== average-degree profile over k ==\n");
  hcd::BestKResult prof =
      hcd::FindBestK(engine.graph(), cd, hcd::Metric::kAverageDegree);
  for (uint32_t k = 0; k <= cd.k_max; k += std::max(1u, cd.k_max / 16)) {
    std::printf("  k=%-4u n(K_k)=%-8llu avg_deg=%.3f\n", k,
                static_cast<unsigned long long>(prof.per_k[k].n_s),
                prof.scores[k]);
  }

  std::printf("\n== pipeline stages ==\n");
  for (const hcd::StageRecord& r : engine.telemetry().records()) {
    std::printf("  %-18s %8.3f ms\n", r.stage.c_str(), r.seconds * 1e3);
  }
  return 0;
}
