// Hierarchical (3,4)-nucleus decomposition: the strongest of the three
// hierarchy models in this library (k-core < k-truss < nucleus). Prints
// the theta distribution and the deepest nucleus of a clique-rich graph.
//
// Run: ./build/examples/nucleus_explorer [n] [epv_max] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/timer.h"
#include "graph/generators.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/nucleus_hierarchy.h"

int main(int argc, char** argv) {
  const hcd::VertexId n = argc > 1 ? std::atoi(argv[1]) : 5000;
  const hcd::VertexId epv = argc > 2 ? std::atoi(argv[2]) : 12;
  const uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 5;

  hcd::Graph graph = hcd::BarabasiAlbertVarying(n, 1, epv, seed);
  hcd::Timer timer;
  hcd::EdgeIndexer eidx = hcd::BuildEdgeIndexer(graph);
  hcd::TriangleIndexer tidx = hcd::BuildTriangleIndexer(graph, eidx);
  std::printf("graph: n=%u m=%llu, %u triangles (indexed in %.3fs)\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              tidx.NumTriangles(), timer.Seconds());

  timer.Reset();
  hcd::NucleusDecomposition nd =
      hcd::PeelNucleusDecomposition(graph, eidx, tidx);
  hcd::NucleusForest forest =
      hcd::BuildNucleusHierarchy(graph, eidx, tidx, nd);
  std::printf("nucleus decomposition + hierarchy: theta_max=%u, %u tree "
              "nodes (%.3fs)\n",
              nd.k_max, forest.NumNodes(), timer.Seconds());

  std::vector<uint64_t> per_theta(nd.k_max + 1, 0);
  for (uint32_t t : nd.theta) ++per_theta[t];
  for (uint32_t k = 0; k <= nd.k_max; k += std::max(1u, nd.k_max / 8)) {
    std::printf("  theta %-3u: %llu triangles\n", k,
                static_cast<unsigned long long>(per_theta[k]));
  }

  // Deepest nucleus: its triangles span a near-clique.
  auto order = forest.NodesByDescendingLevel();
  if (!order.empty() && nd.k_max > 0) {
    hcd::TreeNodeId deepest = order.front();
    std::set<hcd::VertexId> span;
    for (hcd::VertexId tri : forest.CoreVertices(deepest)) {
      for (hcd::VertexId v : tidx.triangles[tri]) span.insert(v);
    }
    std::printf("deepest nucleus: theta=%u, %llu triangles over %zu "
                "vertices (theta+4 = %u-clique territory)\n",
                forest.Level(deepest),
                static_cast<unsigned long long>(forest.CoreSize(deepest)),
                span.size(), forest.Level(deepest) + 4);
  }
  return 0;
}
