# ctest driver for the --trace-out / --metrics-out flags: runs hcd_cli on
# the cli_data fixture graph, then validates the emitted file with the same
# python checkers CI uses (scripts/check_trace.py / check_metrics.py).
#
# Inputs: HCD_CLI, PYTHON3, SOURCE_DIR, WORK_DIR, MODE (trace|metrics).

set(graph ${WORK_DIR}/cli_test.bin)

if(MODE STREQUAL "trace")
  set(trace_file ${WORK_DIR}/cli_obs_trace.json)
  execute_process(
    COMMAND ${HCD_CLI} build ${graph} ${WORK_DIR}/cli_obs.forest
            --threads=4 --trace-out=${trace_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hcd_cli build --trace-out failed (${rc})")
  endif()
  execute_process(
    COMMAND ${PYTHON3} ${SOURCE_DIR}/scripts/check_trace.py ${trace_file}
            --min-subsystems=4 --min-tids=2 --require=cli.build
            --require=construction.freeze
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace validation failed (${rc})")
  endif()
elseif(MODE STREQUAL "metrics")
  set(prom_file ${WORK_DIR}/cli_obs_metrics.prom)
  execute_process(
    COMMAND ${HCD_CLI} query-bench ${graph} --query-threads=4 --queries=120
            --metrics-out=${prom_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hcd_cli query-bench --metrics-out failed (${rc})")
  endif()
  execute_process(
    COMMAND ${PYTHON3} ${SOURCE_DIR}/scripts/check_metrics.py ${prom_file}
            --expect-histogram-count=hcd_query_latency_seconds=120
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "metrics validation failed (${rc})")
  endif()
  # The JSON rendering (extension-selected) must also parse.
  set(json_file ${WORK_DIR}/cli_obs_metrics.json)
  execute_process(
    COMMAND ${HCD_CLI} stats ${graph} --metrics-out=${json_file}
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hcd_cli stats --metrics-out failed (${rc})")
  endif()
  execute_process(
    COMMAND ${PYTHON3} ${SOURCE_DIR}/scripts/check_metrics.py ${json_file}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "metrics JSON validation failed (${rc})")
  endif()
else()
  message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()
