// Command-line front end for the library: generate graphs, inspect
// statistics, build hierarchies, and run subgraph search.
//
// Usage:
//   hcd_cli gen <ba|rmat|gnm|onion> <out.{bin,txt}> [args...]
//   hcd_cli convert <in.txt> <out.bin>
//   hcd_cli stats <graph>
//   hcd_cli build <graph> <out.forest> [--algo=phcd|lcps] [--threads=N]
//   hcd_cli search <graph> <metric> [--threads=N]
//   hcd_cli export <graph> <out.dot>
//   hcd_cli truss <graph>
//   hcd_cli influential <graph> <k> <r> [seed]
//   hcd_cli bestk <graph> <metric>
//
// <graph> is loaded as binary when the file starts with the library magic,
// else as an edge-list text file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "hcd/export.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"
#include "hcd/serialize.h"
#include "hcd/stats.h"
#include "common/random.h"
#include "parallel/omp_utils.h"
#include "search/best_k.h"
#include "search/influential.h"
#include "search/searcher.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

namespace {

using hcd::Graph;
using hcd::Status;

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Status LoadGraphAuto(const std::string& path, Graph* graph) {
  if (HasSuffix(path, ".bin")) return hcd::LoadBinary(path, graph);
  return hcd::LoadEdgeListText(path, graph);
}

Status SaveGraphAuto(const Graph& graph, const std::string& path) {
  if (HasSuffix(path, ".bin")) return hcd::SaveBinary(graph, path);
  return hcd::SaveEdgeListText(graph, path);
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hcd_cli gen ba <out> <n> <edges-per-vertex> [seed]\n"
               "  hcd_cli gen rmat <out> <scale> <edges> [seed]\n"
               "  hcd_cli gen gnm <out> <n> <m> [seed]\n"
               "  hcd_cli gen onion <out> <k_max> <shell_size>\n"
               "  hcd_cli convert <in.txt> <out.bin>\n"
               "  hcd_cli stats <graph>\n"
               "  hcd_cli build <graph> <out.forest> [--algo=phcd|lcps]"
               " [--threads=N]\n"
               "  hcd_cli search <graph> <metric> [--threads=N]\n"
               "  hcd_cli export <graph> <out.dot>\n"
               "  hcd_cli truss <graph>\n"
               "  hcd_cli influential <graph> <k> <r> [seed]\n"
               "  hcd_cli bestk <graph> <metric>\n");
  return 2;
}

/// Parses --algo= / --threads= style flags out of argv tail.
struct Flags {
  std::string algo = "phcd";
  int threads = 0;  // 0 = leave the OpenMP default
};

Flags ParseFlags(int argc, char** argv, int from) {
  Flags f;
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      f.algo = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      f.threads = std::atoi(argv[i] + 10);
    }
  }
  return f;
}

int CmdGen(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string model = argv[2];
  const std::string out = argv[3];
  Graph g;
  if (model == "ba" && argc >= 6) {
    uint64_t seed = argc > 6 ? std::atoll(argv[6]) : 1;
    g = hcd::BarabasiAlbert(std::atoi(argv[4]), std::atoi(argv[5]), seed);
  } else if (model == "rmat" && argc >= 6) {
    uint64_t seed = argc > 6 ? std::atoll(argv[6]) : 1;
    g = hcd::RMatGraph500(std::atoi(argv[4]), std::atoll(argv[5]), seed);
  } else if (model == "gnm" && argc >= 6) {
    uint64_t seed = argc > 6 ? std::atoll(argv[6]) : 1;
    g = hcd::ErdosRenyiGnm(std::atoi(argv[4]), std::atoll(argv[5]), seed);
  } else if (model == "onion" && argc >= 6) {
    g = hcd::PlantedHierarchy(
        hcd::OnionSpec(std::atoi(argv[4]), std::atoi(argv[5])), 1);
  } else {
    return Usage();
  }
  Status s = SaveGraphAuto(g, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s: n=%u m=%llu\n", out.c_str(), g.NumVertices(),
              static_cast<unsigned long long>(g.NumEdges()));
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc < 4) return Usage();
  Graph g;
  Status s = hcd::LoadEdgeListText(argv[2], &g);
  if (!s.ok()) return Fail(s);
  s = hcd::SaveBinary(g, argv[3]);
  if (!s.ok()) return Fail(s);
  std::printf("converted %s -> %s (n=%u m=%llu)\n", argv[2], argv[3],
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()));
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);
  hcd::Timer timer;
  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
  hcd::HcdForest forest = hcd::PhcdBuild(g, cd);
  std::printf("n         %u\n", g.NumVertices());
  std::printf("m         %llu\n", static_cast<unsigned long long>(g.NumEdges()));
  std::printf("d_avg     %.2f\n", g.AverageDegree());
  std::printf("k_max     %u\n", cd.k_max);
  std::printf("|T|       %u\n", forest.NumNodes());
  std::printf("%s", hcd::ForestStatsToString(hcd::ComputeForestStats(forest)).c_str());
  std::printf("(computed in %.3fs)\n", timer.Seconds());
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) return Usage();
  Flags flags = ParseFlags(argc, argv, 4);
  if (flags.threads > 0) hcd::SetNumThreads(flags.threads);
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);

  hcd::Timer timer;
  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
  const double cd_time = timer.Seconds();
  timer.Reset();
  hcd::HcdForest forest = flags.algo == "lcps" ? hcd::LcpsBuild(g, cd)
                                               : hcd::PhcdBuild(g, cd);
  const double build_time = timer.Seconds();
  s = hcd::SaveForest(forest, argv[3]);
  if (!s.ok()) return Fail(s);
  std::printf("%s: core decomposition %.3fs, construction %.3fs, %u nodes\n",
              flags.algo.c_str(), cd_time, build_time, forest.NumNodes());
  return 0;
}

int CmdSearch(int argc, char** argv) {
  if (argc < 4) return Usage();
  Flags flags = ParseFlags(argc, argv, 4);
  if (flags.threads > 0) hcd::SetNumThreads(flags.threads);
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);

  const std::string name = argv[3];
  hcd::Metric metric = hcd::Metric::kAverageDegree;
  bool found = false;
  for (hcd::Metric m : hcd::kAllMetrics) {
    if (name == hcd::MetricName(m)) {
      metric = m;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown metric '%s'; choose from:", name.c_str());
    for (hcd::Metric m : hcd::kAllMetrics) {
      std::fprintf(stderr, " %s", hcd::MetricName(m));
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
  hcd::HcdForest forest = hcd::PhcdBuild(g, cd);
  hcd::SubgraphSearcher searcher(g, cd, forest);
  hcd::Timer timer;
  hcd::SearchResult r = searcher.Search(metric);
  std::printf("best k-core under %s: k=%u |S|=%llu score=%.6f (%.3fs)\n",
              hcd::MetricName(metric), forest.Level(r.best_node),
              static_cast<unsigned long long>(forest.CoreSize(r.best_node)),
              r.best_score, timer.Seconds());
  return 0;
}

int CmdExport(int argc, char** argv) {
  if (argc < 4) return Usage();
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);
  hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
  hcd::HcdForest forest = hcd::PhcdBuild(g, cd);
  std::ofstream out(argv[3]);
  if (!out) return Fail(Status::IoError(std::string("cannot write ") + argv[3]));
  out << hcd::ForestToDot(forest);
  std::printf("wrote %s (%u nodes)\n", argv[3], forest.NumNodes());
  return 0;
}

int CmdBestK(int argc, char** argv) {
  if (argc < 4) return Usage();
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);
  const std::string name = argv[3];
  for (hcd::Metric m : hcd::kAllMetrics) {
    if (name == hcd::MetricName(m)) {
      hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
      hcd::Timer timer;
      hcd::BestKResult r = hcd::FindBestK(g, cd, m);
      std::printf("best k for the k-core set under %s: k=%u score=%.6f "
                  "(|K_k|=%llu vertices, %.3fs)\n",
                  name.c_str(), r.best_k, r.best_score,
                  static_cast<unsigned long long>(r.per_k[r.best_k].n_s),
                  timer.Seconds());
      return 0;
    }
  }
  std::fprintf(stderr, "unknown metric '%s'\n", name.c_str());
  return 2;
}

int CmdTruss(int argc, char** argv) {
  if (argc < 3) return Usage();
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);
  hcd::Timer timer;
  hcd::EdgeIndexer index = hcd::BuildEdgeIndexer(g);
  hcd::TrussDecomposition td = hcd::PeelTrussDecomposition(g, index);
  hcd::TrussForest forest = hcd::BuildTrussHierarchy(g, index, td);
  hcd::DensestTrussResult best = hcd::DensestTruss(g, index, forest);
  std::printf("truss k_max  %u\n", td.k_max);
  std::printf("tree nodes   %u\n", forest.NumNodes());
  std::printf("densest      k=%u |V|=%zu |E|=%llu avg_deg=%.2f\n", best.level,
              best.community.vertices.size(),
              static_cast<unsigned long long>(best.community.num_edges),
              best.community.AverageDegree());
  std::printf("(computed in %.3fs)\n", timer.Seconds());
  return 0;
}

int CmdInfluential(int argc, char** argv) {
  if (argc < 5) return Usage();
  Graph g;
  Status s = LoadGraphAuto(argv[2], &g);
  if (!s.ok()) return Fail(s);
  const uint32_t k = std::atoi(argv[3]);
  const uint32_t r = std::atoi(argv[4]);
  const uint64_t seed = argc > 5 ? std::atoll(argv[5]) : 1;
  // Synthetic weights; a real deployment would load per-vertex scores.
  hcd::Rng rng(seed);
  std::vector<double> weights(g.NumVertices());
  for (double& w : weights) w = rng.UniformDouble() * 100.0;
  auto top = hcd::TopInfluentialCommunities(g, weights, k, r);
  std::printf("top-%u %u-influential communities (synthetic weights, seed "
              "%llu):\n",
              r, k, static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  #%zu influence=%.4f size=%zu\n", i + 1, top[i].influence,
                top[i].vertices.size());
  }
  if (top.empty()) std::printf("  (empty %u-core)\n", k);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "convert") return CmdConvert(argc, argv);
  if (cmd == "stats") return CmdStats(argc, argv);
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "search") return CmdSearch(argc, argv);
  if (cmd == "export") return CmdExport(argc, argv);
  if (cmd == "truss") return CmdTruss(argc, argv);
  if (cmd == "influential") return CmdInfluential(argc, argv);
  if (cmd == "bestk") return CmdBestK(argc, argv);
  return Usage();
}
