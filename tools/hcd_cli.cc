// Command-line front end for the library: generate graphs, inspect
// statistics, build hierarchies, and run subgraph search.
//
// Usage:
//   hcd_cli gen <ba|rmat|gnm|onion> <out.{bin,txt}> [args...]
//   hcd_cli convert <in.txt> <out.bin>
//   hcd_cli stats <graph> [flags]
//   hcd_cli build <graph> <out.forest> [flags]    (writes a v2 flat snapshot)
//   hcd_cli search <graph> <metric> [flags]
//   hcd_cli export <graph> <out.dot> [flags]
//   hcd_cli truss <graph> [flags]
//   hcd_cli influential <graph> <k> <r> [seed] [flags]
//   hcd_cli bestk <graph> <metric> [flags]
//   hcd_cli query-bench <graph> [--query-threads=N] [--queries=N]
//                               [--metrics=a,b,...] [flags]
//   hcd_cli serve <graph> [--port=N] [--server-workers=N] [flags]
//   hcd_cli serve-bench <graph> | --connect=HOST:PORT [flags]
//
// Every command accepts --algo=phcd|lcps|naive, --threads=N,
// --io-threads=N and --json; unknown or malformed flags abort with usage
// (exit 2). All graph-consuming commands run on one shared HcdEngine, so
// each pipeline stage (load, decomposition, construction, search
// preprocessing) is computed at most once per invocation; --json dumps the
// per-stage telemetry report, including the ingest sub-stages
// (load.read/parse/remap/build for text, load.read/validate for binary).
//
// query-bench exercises the build/serve split end to end: it builds one
// immutable QuerySnapshot, then serves a mixed-metric workload from
// --query-threads concurrent workers (each with a private reusable
// SearchWorkspace) and reports QPS plus nearest-rank p50/p95/p99 latency.
//
// serve runs the socket front door (src/server) over the graph until
// SIGINT/SIGTERM; serve-bench drives it from --connections loopback
// clients — against an in-process server (positional graph) or an
// external one (--connect) — and reports sustained QPS, tail latency and
// the result-cache hit rate.
//
// <graph> is loaded as binary when the path ends in ".bin", else as an
// edge-list text file.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "engine/engine.h"
#include "engine/live.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/ingest.h"
#include "graph/io.h"
#include "hcd/export.h"
#include "hcd/hierarchy_kind.h"
#include "hcd/query.h"
#include "hcd/serialize.h"
#include "hcd/stats.h"
#include "parallel/omp_utils.h"
#include "search/best_k.h"
#include "search/influential.h"
#include "search/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

namespace {

using hcd::EngineOptions;
using hcd::Graph;
using hcd::HcdEngine;
using hcd::ScopedStage;
using hcd::Status;

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Status SaveGraphAuto(const Graph& graph, const std::string& path) {
  if (HasSuffix(path, ".bin")) return hcd::SaveBinary(graph, path);
  return hcd::SaveEdgeListText(graph, path);
}

int WriteTextFile(const std::string& path, const std::string& text);
struct CliArgs;
int CmdStatsConnect(const CliArgs& args);

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hcd_cli gen ba <out> <n> <edges-per-vertex> [seed]\n"
      "  hcd_cli gen rmat <out> <scale> <edges> [seed]\n"
      "  hcd_cli gen gnm <out> <n> <m> [seed]\n"
      "  hcd_cli gen onion <out> <k_max> <shell_size>\n"
      "  hcd_cli convert <in.txt> <out.bin>\n"
      "  hcd_cli stats <graph> | --connect=HOST:PORT [flags]\n"
      "  hcd_cli build <graph> <out.forest> [flags]\n"
      "  hcd_cli search <graph> <metric> [flags]\n"
      "  hcd_cli export <graph> <out.dot> [flags]\n"
      "  hcd_cli truss <graph> [flags]\n"
      "  hcd_cli influential <graph> <k> <r> [seed] [flags]\n"
      "  hcd_cli bestk <graph> <metric> [flags]\n"
      "  hcd_cli query-bench <graph> [flags]\n"
      "  hcd_cli live-bench <graph> [flags]\n"
      "  hcd_cli serve <graph> [flags]\n"
      "  hcd_cli serve-bench <graph> | --connect=HOST:PORT [flags]\n"
      "flags (serve, serve-bench):\n"
      "  --port=N                 TCP port on 127.0.0.1 (default: 0 =\n"
      "                           ephemeral; serve prints the bound port)\n"
      "  --server-workers=N       server worker threads (default:\n"
      "                           hardware threads)\n"
      "  --max-pending=N          pending connections beyond the idle\n"
      "                           workers before shedding (default 64)\n"
      "  --no-cache               disable the epoch-keyed result cache\n"
      "flags (serve):\n"
      "  --slow-log=FILE          append a JSONL slow-query log to FILE\n"
      "  --slow-query-ms=MS       log requests whose total latency exceeds\n"
      "                           MS milliseconds (0 logs every request;\n"
      "                           default: threshold disabled)\n"
      "  --slow-log-sample=N      also log every Nth request as a healthy\n"
      "                           baseline (default 1024; 0 disables)\n"
      "flags (stats):\n"
      "  --connect=HOST:PORT      fetch and render a running server's live\n"
      "                           stats (rolling QPS / latency windows)\n"
      "                           instead of analyzing a graph\n"
      "  --watch=N                with --connect: refresh every N seconds\n"
      "                           until interrupted\n"
      "flags (serve-bench):\n"
      "  --connect=HOST:PORT      drive an already-running server instead\n"
      "                           of an in-process one\n"
      "  --connections=N          concurrent client connections (default 4)\n"
      "  --server-phase-report    fetch the server's phase-attributed\n"
      "                           latency stats after the run and print\n"
      "                           queue/decode/cache/search/encode\n"
      "                           attribution next to the client tail\n"
      "  --distinct-k=N           distinct k values in the workload\n"
      "                           (default 4; smaller = more cache hits)\n"
      "  --pipeline=N             in-flight queries per connection\n"
      "                           (default 1 = latency-faithful; deeper\n"
      "                           windows measure sustained throughput)\n"
      "  --server-metrics-out=F   fetch the server's /metrics exposition\n"
      "                           after the run and write it to F\n"
      "flags (query-bench, live-bench, serve-bench):\n"
      "  --query-threads=N        concurrent query workers (default:\n"
      "                           hardware threads)\n"
      "  --queries=N              total queries to serve (default 1000;\n"
      "                           query-bench only)\n"
      "  --metrics=a,b,...        workload metric mix (default: all\n"
      "                           metrics, round-robin)\n"
      "flags (build, export, query-bench, serve):\n"
      "  --hierarchy=core|truss|nucleus\n"
      "                           decomposition family to build and serve\n"
      "                           (default core; serve keeps answering core\n"
      "                           queries and adds the element index)\n"
      "flags (export, query-bench, serve):\n"
      "  --snapshot=FILE          serve a prebuilt flat snapshot (written\n"
      "                           by `build`) instead of constructing the\n"
      "                           hierarchy; kind must match --hierarchy\n"
      "  --snapshot-mode=read|mmap\n"
      "                           how snapshot bytes reach memory: copy\n"
      "                           them in (read) or alias the mmap'd file\n"
      "                           zero-copy (mmap). Default: read, except\n"
      "                           serve, which defaults to mmap\n"
      "flags (live-bench):\n"
      "  --batch-size=N           edge updates per batch (default 100)\n"
      "  --batches=N              batches the writer applies (default 20)\n"
      "  --update-rate=R          batches per second; 0 = apply\n"
      "                           back-to-back (default 0)\n"
      "  --seed=N                 update-stream RNG seed (default 1)\n"
      "flags (any command):\n"
      "  --algo=phcd|lcps|naive   HCD construction algorithm (default phcd)\n"
      "  --threads=N              OpenMP threads for every stage (default:\n"
      "                           ambient setting)\n"
      "  --io-threads=N           OpenMP threads for graph ingest only\n"
      "                           (default: the --threads setting)\n"
      "  --json                   print a machine-readable per-stage\n"
      "                           telemetry report instead of prose\n"
      "  --trace-out=FILE         write a Chrome trace-event JSON file\n"
      "                           (open in Perfetto / chrome://tracing)\n"
      "  --metrics-out=FILE       write the metrics registry; Prometheus\n"
      "                           text exposition, or JSON when FILE ends\n"
      "                           in .json\n");
  return 2;
}

/// Arguments of one subcommand: positionals in order, plus the shared
/// engine flags. Unknown or malformed flags are a hard error (exit 2), so
/// a typo like `--thread=8` can never silently run with defaults.
struct CliArgs {
  std::vector<std::string> pos;
  EngineOptions options;
  bool json = false;
  std::string trace_out;    ///< empty: tracing disabled
  std::string metrics_out;  ///< empty: metrics disabled
  // Serve-phase flags (query-bench only; rejected by every other command
  // via `serve_flag`, which remembers the first one seen).
  int query_threads = 0;  ///< 0: use the hardware thread count
  int queries = 1000;
  std::vector<hcd::Metric> workload;  ///< empty: all metrics, round-robin
  std::string serve_flag;
  // Live-bench flags (rejected elsewhere via `live_flag`).
  int batch_size = 100;
  int batches = 20;
  double update_rate = 0.0;  ///< batches per second; 0 = unpaced
  uint64_t seed = 1;
  std::string live_flag;
  // Server flags (serve / serve-bench only; rejected elsewhere via
  // `server_flag`).
  int port = 0;             ///< 0: ephemeral
  std::string connect_host;
  int connect_port = -1;    ///< <0: serve-bench runs an in-process server
  int connections = 4;
  int server_workers = 0;   ///< 0: hardware threads
  int max_pending = 64;
  int distinct_k = 4;
  int pipeline = 1;  ///< in-flight queries per serve-bench connection
  bool no_cache = false;
  std::string server_metrics_out;
  std::string server_flag;
  // --connect targets an external server; valid for serve-bench (drive it)
  // and stats (render its live stats). Rejected elsewhere via
  // `connect_flag`.
  std::string connect_flag;
  // Slow-query log flags (serve only; rejected elsewhere via
  // `serve_only_flag`).
  double slow_query_ms = -1.0;  ///< <0: threshold disabled
  std::string slow_log_path;
  int slow_log_sample = 1024;   ///< 0: sampling disabled
  std::string serve_only_flag;
  // stats --connect flags (rejected elsewhere via `stats_flag`).
  int watch_seconds = 0;  ///< 0: print one snapshot and exit
  std::string stats_flag;
  // serve-bench-only flags (rejected elsewhere via `bench_only_flag`).
  bool server_phase_report = false;
  std::string bench_only_flag;
  // --hierarchy (build / export / query-bench / serve only; rejected
  // elsewhere via `hierarchy_flag`).
  std::string hierarchy_flag;
  // --snapshot / --snapshot-mode (export / query-bench / serve only;
  // rejected elsewhere via `snapshot_flag`).
  std::string snapshot_path;  ///< empty: build the hierarchy from the graph
  hcd::SnapshotMode snapshot_mode = hcd::SnapshotMode::kRead;
  bool snapshot_mode_set = false;  ///< --snapshot-mode given explicitly
  std::string snapshot_flag;
};

bool MetricByName(const std::string& name, hcd::Metric* metric) {
  if (hcd::ParseMetric(name, metric)) return true;
  std::fprintf(stderr, "unknown metric '%s'; choose from:", name.c_str());
  for (hcd::Metric m : hcd::kAllMetrics) {
    std::fprintf(stderr, " %s", hcd::MetricName(m));
  }
  std::fprintf(stderr, "\n");
  return false;
}

bool ParseCliArgs(int argc, char** argv, int from, CliArgs* out) {
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.empty() || arg[0] != '-') {
      out->pos.push_back(arg);
      continue;
    }
    if (arg == "--json") {
      out->json = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      out->trace_out = arg.substr(12);
      if (out->trace_out.empty()) {
        std::fprintf(stderr, "error: --trace-out needs a file path\n");
        return false;
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      out->metrics_out = arg.substr(14);
      if (out->metrics_out.empty()) {
        std::fprintf(stderr, "error: --metrics-out needs a file path\n");
        return false;
      }
    } else if (arg.rfind("--algo=", 0) == 0) {
      const std::string value = arg.substr(7);
      if (!hcd::ParseEngineAlgo(value, &out->options.algo)) {
        std::fprintf(stderr,
                     "error: bad --algo value '%s' (want phcd, lcps or "
                     "naive)\n",
                     value.c_str());
        return false;
      }
    } else if (arg.rfind("--hierarchy=", 0) == 0) {
      const std::string value = arg.substr(12);
      if (!hcd::ParseHierarchyKind(value, &out->options.hierarchy)) {
        std::fprintf(stderr,
                     "error: bad --hierarchy value '%s' (want core, truss "
                     "or nucleus)\n",
                     value.c_str());
        return false;
      }
      if (out->hierarchy_flag.empty()) out->hierarchy_flag = arg;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      char* end = nullptr;
      const long threads = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || threads <= 0) {
        std::fprintf(stderr,
                     "error: bad --threads value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->options.threads = static_cast<int>(threads);
    } else if (arg.rfind("--io-threads=", 0) == 0) {
      const std::string value = arg.substr(13);
      char* end = nullptr;
      const long threads = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || threads <= 0) {
        std::fprintf(stderr,
                     "error: bad --io-threads value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->options.io_threads = static_cast<int>(threads);
    } else if (arg.rfind("--query-threads=", 0) == 0) {
      const std::string value = arg.substr(16);
      char* end = nullptr;
      const long threads = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || threads <= 0) {
        std::fprintf(stderr,
                     "error: bad --query-threads value '%s' (want a "
                     "positive integer)\n",
                     value.c_str());
        return false;
      }
      out->query_threads = static_cast<int>(threads);
      if (out->serve_flag.empty()) out->serve_flag = arg;
    } else if (arg.rfind("--queries=", 0) == 0) {
      const std::string value = arg.substr(10);
      char* end = nullptr;
      const long queries = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || queries <= 0) {
        std::fprintf(stderr,
                     "error: bad --queries value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->queries = static_cast<int>(queries);
      if (out->serve_flag.empty()) out->serve_flag = arg;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      std::string list = arg.substr(10);
      out->workload.clear();
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end =
            comma == std::string::npos ? list.size() : comma;
        const std::string name = list.substr(start, end - start);
        hcd::Metric metric;
        if (!MetricByName(name, &metric)) {
          std::fprintf(stderr, "error: bad --metrics value '%s'\n",
                       list.c_str());
          return false;
        }
        out->workload.push_back(metric);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (out->serve_flag.empty()) out->serve_flag = arg;
    } else if (arg.rfind("--batch-size=", 0) == 0) {
      const std::string value = arg.substr(13);
      char* end = nullptr;
      const long size = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || size <= 0) {
        std::fprintf(stderr,
                     "error: bad --batch-size value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->batch_size = static_cast<int>(size);
      if (out->live_flag.empty()) out->live_flag = arg;
    } else if (arg.rfind("--batches=", 0) == 0) {
      const std::string value = arg.substr(10);
      char* end = nullptr;
      const long batches = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || batches <= 0) {
        std::fprintf(stderr,
                     "error: bad --batches value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->batches = static_cast<int>(batches);
      if (out->live_flag.empty()) out->live_flag = arg;
    } else if (arg.rfind("--update-rate=", 0) == 0) {
      const std::string value = arg.substr(14);
      char* end = nullptr;
      const double rate = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || rate < 0.0) {
        std::fprintf(stderr,
                     "error: bad --update-rate value '%s' (want a "
                     "non-negative number)\n",
                     value.c_str());
        return false;
      }
      out->update_rate = rate;
      if (out->live_flag.empty()) out->live_flag = arg;
    } else if (arg.rfind("--seed=", 0) == 0) {
      const std::string value = arg.substr(7);
      char* end = nullptr;
      const long long seed = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || seed < 0) {
        std::fprintf(stderr,
                     "error: bad --seed value '%s' (want a non-negative "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->seed = static_cast<uint64_t>(seed);
      if (out->live_flag.empty()) out->live_flag = arg;
    } else if (arg.rfind("--port=", 0) == 0) {
      const std::string value = arg.substr(7);
      char* end = nullptr;
      const long port = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr,
                     "error: bad --port value '%s' (want 0..65535)\n",
                     value.c_str());
        return false;
      }
      out->port = static_cast<int>(port);
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--connect=", 0) == 0) {
      const std::string value = arg.substr(10);
      const size_t colon = value.rfind(':');
      long port = -1;
      if (colon != std::string::npos && colon > 0) {
        const std::string port_str = value.substr(colon + 1);
        char* end = nullptr;
        port = std::strtol(port_str.c_str(), &end, 10);
        if (port_str.empty() || *end != '\0') port = -1;
      }
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr,
                     "error: bad --connect value '%s' (want HOST:PORT)\n",
                     value.c_str());
        return false;
      }
      out->connect_host = value.substr(0, colon);
      out->connect_port = static_cast<int>(port);
      if (out->connect_flag.empty()) out->connect_flag = arg;
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      const std::string value = arg.substr(16);
      char* end = nullptr;
      const double ms = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || ms < 0.0) {
        std::fprintf(stderr,
                     "error: bad --slow-query-ms value '%s' (want a "
                     "non-negative number of milliseconds)\n",
                     value.c_str());
        return false;
      }
      out->slow_query_ms = ms;
      if (out->serve_only_flag.empty()) out->serve_only_flag = arg;
    } else if (arg.rfind("--slow-log=", 0) == 0) {
      out->slow_log_path = arg.substr(11);
      if (out->slow_log_path.empty()) {
        std::fprintf(stderr, "error: --slow-log needs a file path\n");
        return false;
      }
      if (out->serve_only_flag.empty()) out->serve_only_flag = arg;
    } else if (arg.rfind("--slow-log-sample=", 0) == 0) {
      const std::string value = arg.substr(18);
      char* end = nullptr;
      const long every = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || every < 0) {
        std::fprintf(stderr,
                     "error: bad --slow-log-sample value '%s' (want a "
                     "non-negative integer)\n",
                     value.c_str());
        return false;
      }
      out->slow_log_sample = static_cast<int>(every);
      if (out->serve_only_flag.empty()) out->serve_only_flag = arg;
    } else if (arg.rfind("--watch=", 0) == 0) {
      const std::string value = arg.substr(8);
      char* end = nullptr;
      const long seconds = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || seconds <= 0) {
        std::fprintf(stderr,
                     "error: bad --watch value '%s' (want a positive number "
                     "of seconds)\n",
                     value.c_str());
        return false;
      }
      out->watch_seconds = static_cast<int>(seconds);
      if (out->stats_flag.empty()) out->stats_flag = arg;
    } else if (arg == "--server-phase-report") {
      out->server_phase_report = true;
      if (out->bench_only_flag.empty()) out->bench_only_flag = arg;
    } else if (arg.rfind("--connections=", 0) == 0) {
      const std::string value = arg.substr(14);
      char* end = nullptr;
      const long connections = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || connections <= 0) {
        std::fprintf(stderr,
                     "error: bad --connections value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->connections = static_cast<int>(connections);
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--server-workers=", 0) == 0) {
      const std::string value = arg.substr(17);
      char* end = nullptr;
      const long workers = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || workers <= 0) {
        std::fprintf(stderr,
                     "error: bad --server-workers value '%s' (want a "
                     "positive integer)\n",
                     value.c_str());
        return false;
      }
      out->server_workers = static_cast<int>(workers);
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--max-pending=", 0) == 0) {
      const std::string value = arg.substr(14);
      char* end = nullptr;
      const long pending = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || pending < 0) {
        std::fprintf(stderr,
                     "error: bad --max-pending value '%s' (want a "
                     "non-negative integer)\n",
                     value.c_str());
        return false;
      }
      out->max_pending = static_cast<int>(pending);
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--distinct-k=", 0) == 0) {
      const std::string value = arg.substr(13);
      char* end = nullptr;
      const long distinct = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || distinct <= 0) {
        std::fprintf(stderr,
                     "error: bad --distinct-k value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->distinct_k = static_cast<int>(distinct);
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      const std::string value = arg.substr(11);
      char* end = nullptr;
      const long window = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || window <= 0) {
        std::fprintf(stderr,
                     "error: bad --pipeline value '%s' (want a positive "
                     "integer)\n",
                     value.c_str());
        return false;
      }
      out->pipeline = static_cast<int>(window);
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--snapshot=", 0) == 0) {
      out->snapshot_path = arg.substr(11);
      if (out->snapshot_path.empty()) {
        std::fprintf(stderr, "error: --snapshot needs a file path\n");
        return false;
      }
      if (out->snapshot_flag.empty()) out->snapshot_flag = arg;
    } else if (arg.rfind("--snapshot-mode=", 0) == 0) {
      const std::string value = arg.substr(16);
      if (!hcd::ParseSnapshotMode(value, &out->snapshot_mode)) {
        std::fprintf(stderr,
                     "error: bad --snapshot-mode value '%s' (want read or "
                     "mmap)\n",
                     value.c_str());
        return false;
      }
      out->snapshot_mode_set = true;
      if (out->snapshot_flag.empty()) out->snapshot_flag = arg;
    } else if (arg == "--no-cache") {
      out->no_cache = true;
      if (out->server_flag.empty()) out->server_flag = arg;
    } else if (arg.rfind("--server-metrics-out=", 0) == 0) {
      out->server_metrics_out = arg.substr(21);
      if (out->server_metrics_out.empty()) {
        std::fprintf(stderr,
                     "error: --server-metrics-out needs a file path\n");
        return false;
      }
      if (out->server_flag.empty()) out->server_flag = arg;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Honors --snapshot for the build-phase commands: loads the flat snapshot
/// in the requested mode (default: copying read) and installs it as the
/// engine's Flat() stage, so hierarchy construction is skipped and queries
/// serve straight from the file's bytes (zero-copy under --snapshot-mode=
/// mmap). No-op without --snapshot.
Status AdoptSnapshotIfRequested(const CliArgs& args, HcdEngine* engine) {
  if (args.snapshot_path.empty()) return Status::Ok();
  const hcd::SnapshotMode mode =
      args.snapshot_mode_set ? args.snapshot_mode : hcd::SnapshotMode::kRead;
  hcd::FlatHcdIndex flat;
  {
    ScopedStage stage(engine->sink(), "load.snapshot");
    Status s = hcd::LoadFlatSnapshot(args.snapshot_path, mode, &flat);
    if (!s.ok()) return s;
    stage.AddCounter("nodes", flat.NumNodes());
  }
  return engine->AdoptFlat(
      std::make_shared<const hcd::FlatHcdIndex>(std::move(flat)));
}

/// Prints the shared JSON envelope: command, effective options, graph
/// shape, optional extra fields (`",\"result\":{...}"`), and the engine's
/// per-stage telemetry.
void PrintJsonReport(const char* command, const CliArgs& args,
                     HcdEngine& engine, const std::string& extra = "") {
  std::printf("{\"command\":\"%s\",\"algo\":\"%s\",\"threads\":%d,"
              "\"graph\":{\"n\":%u,\"m\":%llu}%s,\"telemetry\":%s}\n",
              command, hcd::EngineAlgoName(args.options.algo),
              args.options.threads, engine.graph().NumVertices(),
              static_cast<unsigned long long>(engine.graph().NumEdges()),
              extra.c_str(), engine.telemetry().ToJson().c_str());
}

int CmdGen(const CliArgs& args) {
  if (args.pos.size() < 4) return Usage();
  const std::string& model = args.pos[0];
  const std::string& out = args.pos[1];
  Graph g;
  if (model == "ba" && args.pos.size() >= 4) {
    uint64_t seed = args.pos.size() > 4 ? std::atoll(args.pos[4].c_str()) : 1;
    g = hcd::BarabasiAlbert(std::atoi(args.pos[2].c_str()),
                            std::atoi(args.pos[3].c_str()), seed);
  } else if (model == "rmat" && args.pos.size() >= 4) {
    uint64_t seed = args.pos.size() > 4 ? std::atoll(args.pos[4].c_str()) : 1;
    g = hcd::RMatGraph500(std::atoi(args.pos[2].c_str()),
                          std::atoll(args.pos[3].c_str()), seed);
  } else if (model == "gnm" && args.pos.size() >= 4) {
    uint64_t seed = args.pos.size() > 4 ? std::atoll(args.pos[4].c_str()) : 1;
    g = hcd::ErdosRenyiGnm(std::atoi(args.pos[2].c_str()),
                           std::atoll(args.pos[3].c_str()), seed);
  } else if (model == "onion" && args.pos.size() >= 4) {
    g = hcd::PlantedHierarchy(hcd::OnionSpec(std::atoi(args.pos[2].c_str()),
                                             std::atoi(args.pos[3].c_str())),
                              1);
  } else {
    return Usage();
  }
  Status s = SaveGraphAuto(g, out);
  if (!s.ok()) return Fail(s);
  if (args.json) {
    std::printf("{\"command\":\"gen\",\"out\":\"%s\",\"graph\":{\"n\":%u,"
                "\"m\":%llu}}\n",
                hcd::JsonEscape(out).c_str(), g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()));
  } else {
    std::printf("wrote %s: n=%u m=%llu\n", out.c_str(), g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()));
  }
  return 0;
}

int CmdConvert(const CliArgs& args) {
  if (args.pos.size() != 2) return Usage();
  Graph g;
  hcd::StageTelemetry telemetry;
  hcd::IngestOptions ingest_options;
  ingest_options.io_threads = args.options.io_threads > 0
                                  ? args.options.io_threads
                                  : args.options.threads;
  ingest_options.sink = args.options.telemetry ? &telemetry : nullptr;
  Status s = hcd::IngestEdgeListText(args.pos[0], ingest_options, &g);
  if (!s.ok()) return Fail(s);
  {
    ScopedStage stage(ingest_options.sink, "serialize");
    s = hcd::SaveBinary(g, args.pos[1]);
  }
  if (!s.ok()) return Fail(s);
  if (args.json) {
    std::printf("{\"command\":\"convert\",\"out\":\"%s\",\"graph\":{\"n\":%u,"
                "\"m\":%llu},\"telemetry\":%s}\n",
                hcd::JsonEscape(args.pos[1]).c_str(), g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()),
                telemetry.ToJson().c_str());
  } else {
    std::printf("converted %s -> %s (n=%u m=%llu)\n", args.pos[0].c_str(),
                args.pos[1].c_str(), g.NumVertices(),
                static_cast<unsigned long long>(g.NumEdges()));
  }
  return 0;
}

int CmdStats(const CliArgs& args) {
  if (args.connect_port >= 0) return CmdStatsConnect(args);
  if (args.watch_seconds > 0) {
    std::fprintf(stderr, "error: --watch needs --connect=HOST:PORT\n");
    return Usage();
  }
  if (args.pos.size() != 1) return Usage();
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  const hcd::CoreDecomposition& cd = engine->Coreness();
  const hcd::FlatHcdIndex& flat = engine->Flat();
  if (args.json) {
    std::string extra = ",\"result\":{\"k_max\":" + std::to_string(cd.k_max) +
                        ",\"tree_nodes\":" + std::to_string(flat.NumNodes()) +
                        "}";
    PrintJsonReport("stats", args, *engine, extra);
    return 0;
  }
  const Graph& g = engine->graph();
  std::printf("n         %u\n", g.NumVertices());
  std::printf("m         %llu\n", static_cast<unsigned long long>(g.NumEdges()));
  std::printf("d_avg     %.2f\n", g.AverageDegree());
  std::printf("k_max     %u\n", cd.k_max);
  std::printf("|T|       %u\n", flat.NumNodes());
  std::printf("%s", hcd::ForestStatsToString(hcd::ComputeForestStats(flat)).c_str());
  std::printf("(computed in %.3fs)\n", engine->telemetry().TotalSeconds());
  return 0;
}

int CmdBuild(const CliArgs& args) {
  if (args.pos.size() != 2) return Usage();
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  const hcd::FlatHcdIndex& flat = engine->Flat();
  {
    ScopedStage stage(engine->sink(), "serialize");
    s = hcd::SaveFlatIndex(flat, args.pos[1]);
    stage.AddCounter("nodes", flat.NumNodes());
  }
  if (!s.ok()) return Fail(s);
  if (args.json) {
    PrintJsonReport("build", args, *engine,
                    ",\"result\":{\"tree_nodes\":" +
                        std::to_string(flat.NumNodes()) + "}");
    return 0;
  }
  const hcd::StageTelemetry& t = engine->telemetry();
  // Non-core kinds record kind-prefixed stage names.
  const bool core = args.options.hierarchy == hcd::HierarchyKind::kCore;
  const std::string prefix =
      core ? ""
           : std::string(hcd::HierarchyKindName(args.options.hierarchy)) + ".";
  std::printf("%s: %s decomposition %.3fs, construction %.3fs (+freeze "
              "%.3fs), %u nodes\n",
              hcd::EngineAlgoName(args.options.algo),
              core ? "core" : hcd::HierarchyKindName(args.options.hierarchy),
              t.StageSeconds((prefix + "decomposition").c_str()),
              t.StageSeconds((prefix + "construction").c_str()),
              t.StageSeconds((prefix + "construction.freeze").c_str()),
              flat.NumNodes());
  return 0;
}

int CmdSearch(const CliArgs& args) {
  if (args.pos.size() != 2) return Usage();
  hcd::Metric metric;
  if (!MetricByName(args.pos[1], &metric)) return 2;
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  hcd::SearchResult r = engine->Search(metric);
  const hcd::FlatHcdIndex& flat = engine->Flat();
  if (args.json) {
    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  ",\"result\":{\"metric\":\"%s\",\"k\":%u,\"size\":%llu,"
                  "\"score\":%.9g}",
                  hcd::MetricName(metric), flat.Level(r.best_node),
                  static_cast<unsigned long long>(flat.CoreSize(r.best_node)),
                  r.best_score);
    PrintJsonReport("search", args, *engine, extra);
    return 0;
  }
  std::printf("best k-core under %s: k=%u |S|=%llu score=%.6f (%.3fs)\n",
              hcd::MetricName(metric), flat.Level(r.best_node),
              static_cast<unsigned long long>(flat.CoreSize(r.best_node)),
              r.best_score, engine->telemetry().TotalSeconds());
  return 0;
}

int CmdExport(const CliArgs& args) {
  if (args.pos.size() != 2) return Usage();
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  s = AdoptSnapshotIfRequested(args, engine.get());
  if (!s.ok()) return Fail(s);
  const hcd::FlatHcdIndex& flat = engine->Flat();
  {
    ScopedStage stage(engine->sink(), "serialize");
    std::ofstream out(args.pos[1]);
    if (!out) {
      return Fail(Status::IoError("cannot write " + args.pos[1]));
    }
    out << hcd::ForestToDot(flat);
  }
  if (args.json) {
    PrintJsonReport("export", args, *engine,
                    ",\"result\":{\"tree_nodes\":" +
                        std::to_string(flat.NumNodes()) + "}");
    return 0;
  }
  std::printf("wrote %s (%u nodes)\n", args.pos[1].c_str(), flat.NumNodes());
  return 0;
}

int CmdBestK(const CliArgs& args) {
  if (args.pos.size() != 2) return Usage();
  hcd::Metric metric;
  if (!MetricByName(args.pos[1], &metric)) return 2;
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  const hcd::CoreDecomposition& cd = engine->Coreness();
  hcd::BestKResult r;
  {
    std::optional<hcd::ThreadCountGuard> guard;
    if (args.options.threads > 0) guard.emplace(args.options.threads);
    ScopedStage stage(engine->sink(), "bestk");
    r = hcd::FindBestK(engine->graph(), cd, metric);
  }
  if (args.json) {
    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  ",\"result\":{\"metric\":\"%s\",\"best_k\":%u,"
                  "\"size\":%llu,\"score\":%.9g}",
                  hcd::MetricName(metric), r.best_k,
                  static_cast<unsigned long long>(r.per_k[r.best_k].n_s),
                  r.best_score);
    PrintJsonReport("bestk", args, *engine, extra);
    return 0;
  }
  std::printf("best k for the k-core set under %s: k=%u score=%.6f "
              "(|K_k|=%llu vertices, %.3fs)\n",
              args.pos[1].c_str(), r.best_k, r.best_score,
              static_cast<unsigned long long>(r.per_k[r.best_k].n_s),
              engine->telemetry().StageSeconds("bestk"));
  return 0;
}

int CmdTruss(const CliArgs& args) {
  if (args.pos.size() != 1) return Usage();
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  const Graph& g = engine->graph();
  std::optional<hcd::ThreadCountGuard> guard;
  if (args.options.threads > 0) guard.emplace(args.options.threads);
  hcd::EdgeIndexer index;
  hcd::TrussDecomposition td;
  hcd::TrussForest forest;
  hcd::DensestTrussResult best;
  {
    ScopedStage stage(engine->sink(), "truss.decomposition");
    index = hcd::BuildEdgeIndexer(g);
    td = hcd::PeelTrussDecomposition(g, index);
    stage.AddCounter("k_max", td.k_max);
  }
  {
    ScopedStage stage(engine->sink(), "truss.hierarchy");
    forest = hcd::BuildTrussHierarchy(g, index, td);
    stage.AddCounter("nodes", forest.NumNodes());
  }
  {
    ScopedStage stage(engine->sink(), "truss.densest");
    best = hcd::DensestTruss(g, index, forest);
  }
  if (args.json) {
    char extra[256];
    std::snprintf(extra, sizeof(extra),
                  ",\"result\":{\"k_max\":%u,\"tree_nodes\":%u,"
                  "\"densest_k\":%u,\"densest_size\":%zu}",
                  td.k_max, forest.NumNodes(), best.level,
                  best.community.vertices.size());
    PrintJsonReport("truss", args, *engine, extra);
    return 0;
  }
  std::printf("truss k_max  %u\n", td.k_max);
  std::printf("tree nodes   %u\n", forest.NumNodes());
  std::printf("densest      k=%u |V|=%zu |E|=%llu avg_deg=%.2f\n", best.level,
              best.community.vertices.size(),
              static_cast<unsigned long long>(best.community.num_edges),
              best.community.AverageDegree());
  std::printf("(computed in %.3fs)\n", engine->telemetry().TotalSeconds());
  return 0;
}

int CmdInfluential(const CliArgs& args) {
  if (args.pos.size() < 3) return Usage();
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  const Graph& g = engine->graph();
  const uint32_t k = std::atoi(args.pos[1].c_str());
  const uint32_t r = std::atoi(args.pos[2].c_str());
  const uint64_t seed =
      args.pos.size() > 3 ? std::atoll(args.pos[3].c_str()) : 1;
  // Synthetic weights; a real deployment would load per-vertex scores.
  hcd::Rng rng(seed);
  std::vector<double> weights(g.NumVertices());
  for (double& w : weights) w = rng.UniformDouble() * 100.0;
  std::vector<hcd::InfluentialCommunity> top;
  {
    std::optional<hcd::ThreadCountGuard> guard;
    if (args.options.threads > 0) guard.emplace(args.options.threads);
    ScopedStage stage(engine->sink(), "influential");
    top = hcd::TopInfluentialCommunities(g, weights, k, r);
  }
  if (args.json) {
    std::string extra = ",\"result\":{\"communities\":[";
    for (size_t i = 0; i < top.size(); ++i) {
      if (i > 0) extra += ',';
      char buf[96];
      std::snprintf(buf, sizeof(buf), "{\"influence\":%.9g,\"size\":%zu}",
                    top[i].influence, top[i].vertices.size());
      extra += buf;
    }
    extra += "]}";
    PrintJsonReport("influential", args, *engine, extra);
    return 0;
  }
  std::printf("top-%u %u-influential communities (synthetic weights, seed "
              "%llu):\n",
              r, k, static_cast<unsigned long long>(seed));
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("  #%zu influence=%.4f size=%zu\n", i + 1, top[i].influence,
                top[i].vertices.size());
  }
  if (top.empty()) std::printf("  (empty %u-core)\n", k);
  return 0;
}

/// query-bench for element hierarchies (truss / nucleus): builds one
/// immutable ElementSearchIndex, then serves a mixed workload from
/// --query-threads concurrent workers — alternating level-constrained
/// densest scans (k cycling) with community materializations of the
/// class containing a deterministically sampled element. Reports QPS and
/// nearest-rank tail latency, and emits a "<kind>_query_bench_cli"
/// baseline row.
int CmdElementQueryBench(const CliArgs& args) {
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  s = AdoptSnapshotIfRequested(args, engine.get());
  if (!s.ok()) return Fail(s);
  const hcd::ElementSearchIndex& index = engine->ElementSearcher();
  const hcd::FlatHcdIndex& flat = index.flat();
  const hcd::VertexId num_elements = flat.NumVertices();
  const char* kind_name = hcd::HierarchyKindName(args.options.hierarchy);
  const int workers = args.query_threads > 0 ? args.query_threads
                                             : hcd::HardwareThreads();
  const int queries = args.queries;

  std::vector<hcd::bench::LatencyRecorder> recorders(workers);
  double wall = 0.0;
  {
    ScopedStage stage(engine->sink(), "serve");
    hcd::Timer timer;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&, t] {
        hcd::ElementWorkspace ws;
        std::vector<hcd::VertexId> community;
        for (int q = t; q < queries; q += workers) {
          hcd::Timer query_timer;
          if (q % 2 == 0 || num_elements == 0) {
            index.DensestAtLeast(static_cast<uint32_t>(q / 2) % 8);
          } else {
            // Community of the class containing a deterministically
            // sampled element (Knuth-hash spread over the element ids).
            const hcd::VertexId element = static_cast<hcd::VertexId>(
                (static_cast<uint64_t>(q) * 2654435761ull) % num_elements);
            community.clear();
            index.CommunityOf(hcd::NodeOfKCoreContaining(flat, element, 0),
                              &ws, &community);
          }
          recorders[t].Record(query_timer.Seconds());
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    wall = timer.Seconds();
    stage.AddCounter("queries", queries);
    stage.AddCounter("workers", workers);
  }
  hcd::bench::LatencyRecorder latencies;
  for (const hcd::bench::LatencyRecorder& r : recorders) latencies.Merge(r);
  const double qps =
      hcd::FiniteOrZero(static_cast<double>(queries) / wall);
  hcd::bench::ReportBaseline(
      std::string(kind_name) + "_query_bench_cli",
      hcd::bench::DatasetNameFromPath(args.pos[0]), workers, wall,
      {{"qps", qps},
       {"queries", static_cast<double>(queries)},
       {"p99_us", latencies.P99() * 1e6}});

  if (args.json) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  ",\"result\":{\"hierarchy\":\"%s\",\"queries\":%d,"
                  "\"query_threads\":%d,\"tree_nodes\":%u,\"elements\":%u,"
                  "\"qps\":%.1f,\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,"
                  "\"p99\":%.1f}}",
                  kind_name, queries, workers, flat.NumNodes(), num_elements,
                  qps, latencies.P50() * 1e6, latencies.P95() * 1e6,
                  latencies.P99() * 1e6);
    PrintJsonReport("query-bench", args, *engine, buf);
    return 0;
  }
  std::printf("served %d %s queries with %d workers over one element "
              "index (%u classes, %u elements)\n",
              queries, kind_name, workers, flat.NumNodes(), num_elements);
  std::printf("QPS   %.0f\n", qps);
  std::printf("p50   %.1f us\n", latencies.P50() * 1e6);
  std::printf("p95   %.1f us\n", latencies.P95() * 1e6);
  std::printf("p99   %.1f us\n", latencies.P99() * 1e6);
  return 0;
}

int CmdQueryBench(const CliArgs& args) {
  if (args.pos.size() != 1) return Usage();
  if (args.options.hierarchy != hcd::HierarchyKind::kCore) {
    return CmdElementQueryBench(args);
  }
  std::unique_ptr<HcdEngine> engine;
  Status s = HcdEngine::Load(args.pos[0], args.options, &engine);
  if (!s.ok()) return Fail(s);
  s = AdoptSnapshotIfRequested(args, engine.get());
  if (!s.ok()) return Fail(s);

  std::vector<hcd::Metric> workload = args.workload;
  if (workload.empty()) {
    workload.assign(std::begin(hcd::kAllMetrics), std::end(hcd::kAllMetrics));
  }
  const int workers = args.query_threads > 0 ? args.query_threads
                                             : hcd::HardwareThreads();
  const int queries = args.queries;

  // Build phase: every expensive stage runs here, once, on this thread.
  const hcd::QuerySnapshot snapshot = engine->Snapshot();

  // When --metrics-out is active, every served query also lands in the
  // hcd_query_latency_seconds histogram: one unlabeled overall series
  // (bucket counts sum to --queries) plus one {metric=...} child per
  // workload metric. The registry lookups happen once, up front; the
  // per-query path is a pair of lock-free Observe calls.
  hcd::Histogram* overall_hist = nullptr;
  std::vector<hcd::Histogram*> metric_hist(workload.size(), nullptr);
  if (hcd::MetricsRegistry* registry = hcd::MetricsRegistry::Current()) {
    const std::string name = "hcd_query_latency_seconds";
    const std::string help = "End-to-end latency of one served query.";
    overall_hist = registry->GetHistogram(name, help);
    for (size_t i = 0; i < workload.size(); ++i) {
      metric_hist[i] = registry->GetHistogram(
          name, help, {{"metric", hcd::MetricName(workload[i])}});
    }
  }

  // Serve phase: `workers` threads score the mixed workload concurrently
  // against the shared snapshot. Worker t serves query ids t, t+workers,
  // ... so every worker sees every metric in the mix. Each worker owns a
  // reusable SearchWorkspace and private per-metric LatencyRecorders
  // (merged after the join); the engine telemetry gets one aggregate
  // "serve" stage rather than one record per query.
  std::vector<std::vector<hcd::bench::LatencyRecorder>> recorders(
      workers, std::vector<hcd::bench::LatencyRecorder>(workload.size()));
  double wall = 0.0;
  {
    ScopedStage stage(engine->sink(), "serve");
    hcd::Timer timer;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&, t] {
        hcd::SearchWorkspace ws;
        for (int q = t; q < queries; q += workers) {
          const size_t mi = static_cast<size_t>(q) % workload.size();
          hcd::Timer query_timer;
          snapshot.Search(workload[mi], &ws);
          const double seconds = query_timer.Seconds();
          recorders[t][mi].Record(seconds);
          if (overall_hist != nullptr) {
            overall_hist->Observe(seconds);
            metric_hist[mi]->Observe(seconds);
          }
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    wall = timer.Seconds();
    stage.AddCounter("queries", queries);
    stage.AddCounter("workers", workers);
  }
  hcd::bench::LatencyRecorder latencies;
  std::vector<hcd::bench::LatencyRecorder> per_metric(workload.size());
  for (const auto& worker_recorders : recorders) {
    for (size_t i = 0; i < workload.size(); ++i) {
      per_metric[i].Merge(worker_recorders[i]);
      latencies.Merge(worker_recorders[i]);
    }
  }
  // Guard the ratio: a degenerate wall time (clock granularity on a tiny
  // run) must not put `inf`/`nan` into the JSON report or the baseline.
  const double qps =
      hcd::FiniteOrZero(static_cast<double>(queries) / wall);
  hcd::bench::ReportBaseline(
      "query_bench_cli", hcd::bench::DatasetNameFromPath(args.pos[0]),
      workers, wall,
      {{"qps", qps},
       {"queries", static_cast<double>(queries)},
       {"p99_us", latencies.P99() * 1e6}});

  if (args.json) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\"result\":{\"queries\":%d,\"query_threads\":%d,"
                  "\"qps\":%.1f,\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,"
                  "\"p99\":%.1f},\"latency_us_by_metric\":{",
                  queries, workers, qps, latencies.P50() * 1e6,
                  latencies.P95() * 1e6, latencies.P99() * 1e6);
    std::string extra = buf;
    for (size_t i = 0; i < workload.size(); ++i) {
      if (i > 0) extra += ',';
      std::snprintf(buf, sizeof(buf),
                    "\"%s\":{\"count\":%zu,\"p50\":%.1f,\"p95\":%.1f,"
                    "\"p99\":%.1f}",
                    hcd::MetricName(workload[i]), per_metric[i].Count(),
                    per_metric[i].P50() * 1e6, per_metric[i].P95() * 1e6,
                    per_metric[i].P99() * 1e6);
      extra += buf;
    }
    extra += "}}";
    PrintJsonReport("query-bench", args, *engine, extra);
    return 0;
  }
  std::printf("served %d queries (%zu-metric mix) with %d workers over one "
              "snapshot\n",
              queries, workload.size(), workers);
  std::printf("QPS   %.0f\n", qps);
  std::printf("p50   %.1f us\n", latencies.P50() * 1e6);
  std::printf("p95   %.1f us\n", latencies.P95() * 1e6);
  std::printf("p99   %.1f us\n", latencies.P99() * 1e6);
  return 0;
}

/// Serves a mixed-metric read workload from --query-threads workers while a
/// writer thread applies --batches random edge batches of --batch-size
/// updates each (paced by --update-rate), measuring read throughput and
/// tail latency under live hot-swaps. A second, read-only phase of the same
/// wall duration then gives the interference-free baseline, so the report
/// can state what fraction of read throughput survives the update stream.
int CmdLiveBench(const CliArgs& args) {
  if (args.pos.size() != 1) return Usage();
  Graph graph;
  Status s = HasSuffix(args.pos[0], ".bin")
                 ? hcd::LoadBinary(args.pos[0], &graph)
                 : hcd::LoadEdgeListText(args.pos[0], &graph);
  if (!s.ok()) return Fail(s);
  const hcd::VertexId n = graph.NumVertices();
  if (n < 2) return Fail(Status::InvalidArgument("graph too small"));
  const hcd::EdgeIndex m = graph.NumEdges();

  std::vector<hcd::Metric> workload = args.workload;
  if (workload.empty()) {
    workload.assign(std::begin(hcd::kAllMetrics), std::end(hcd::kAllMetrics));
  }
  const int workers = args.query_threads > 0 ? args.query_threads
                                             : hcd::HardwareThreads();

  hcd::LiveEngineOptions live_options;
  live_options.engine = args.options;
  hcd::LiveEngine live(std::move(graph), live_options);

  // One phase of concurrent reading: `workers` threads acquire + search in
  // a loop until told to stop; returns {reads, wall, latencies}.
  struct PhaseResult {
    uint64_t reads = 0;
    double wall = 0.0;
    hcd::bench::LatencyRecorder latencies;
  };
  auto run_readers = [&](const std::function<void()>& writer_body) {
    PhaseResult result;
    std::atomic<bool> stop{false};
    std::vector<hcd::bench::LatencyRecorder> recorders(workers);
    std::vector<uint64_t> counts(workers, 0);
    hcd::Timer timer;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back([&, t] {
        hcd::SearchWorkspace ws;
        // Cached per-reader handle: lock-free while the epoch is stable,
        // refreshed from the manager when a new generation lands.
        hcd::SnapshotReader reader(live.manager());
        size_t mi = static_cast<size_t>(t) % workload.size();
        while (!stop.load(std::memory_order_relaxed)) {
          const hcd::QuerySnapshot snap = reader.Snapshot();
          hcd::Timer query_timer;
          snap.Search(workload[mi], &ws);
          recorders[t].Record(query_timer.Seconds());
          ++counts[t];
          mi = (mi + 1) % workload.size();
        }
      });
    }
    writer_body();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& worker : pool) worker.join();
    result.wall = timer.Seconds();
    for (int t = 0; t < workers; ++t) {
      result.reads += counts[t];
      result.latencies.Merge(recorders[t]);
    }
    return result;
  };

  // Live phase: the writer toggles `batch_size` distinct random edges per
  // batch against its own view of the graph, so every batch has full net
  // effect and publishes exactly one epoch.
  hcd::Rng rng(args.seed);
  std::vector<hcd::BatchApplyReport> reports;
  reports.reserve(args.batches);
  Status writer_status = Status::Ok();
  const auto writer = [&] {
    const auto start = std::chrono::steady_clock::now();
    for (int b = 0; b < args.batches; ++b) {
      if (args.update_rate > 0.0) {
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(b / args.update_rate));
        std::this_thread::sleep_until(due);
      }
      std::vector<hcd::EdgeUpdate> batch;
      std::unordered_set<uint64_t> used;
      uint64_t attempts = 0;
      while (batch.size() < static_cast<size_t>(args.batch_size) &&
             ++attempts < 100 * static_cast<uint64_t>(args.batch_size)) {
        const auto u = static_cast<hcd::VertexId>(rng.Uniform(n));
        const auto v = static_cast<hcd::VertexId>(rng.Uniform(n));
        if (u == v) continue;
        const uint64_t key =
            (uint64_t{std::min(u, v)} << 32) | std::max(u, v);
        if (!used.insert(key).second) continue;
        batch.push_back({u, v,
                         live.dynamic().HasEdge(u, v) ? hcd::EdgeOp::kRemove
                                                      : hcd::EdgeOp::kInsert});
      }
      hcd::BatchApplyReport report;
      writer_status = live.ApplyBatch(batch, &report);
      if (!writer_status.ok()) return;
      reports.push_back(report);
    }
  };
  const PhaseResult live_phase = run_readers(writer);
  if (!writer_status.ok()) return Fail(writer_status);

  // Read-only phase over the final generation, same wall duration.
  const double live_wall = live_phase.wall;
  const PhaseResult readonly_phase = run_readers([&] {
    std::this_thread::sleep_for(std::chrono::duration<double>(live_wall));
  });

  // Every ratio is guarded: a degenerate phase (zero wall, zero reads)
  // must report 0, never `inf`/`nan` — the JSON report would not parse.
  const double live_qps = hcd::FiniteOrZero(
      static_cast<double>(live_phase.reads) / live_phase.wall);
  const double readonly_qps = hcd::FiniteOrZero(
      static_cast<double>(readonly_phase.reads) / readonly_phase.wall);
  const double retained = hcd::FiniteOrZero(live_qps / readonly_qps);
  double apply_sum = 0.0, apply_max = 0.0, refreeze_sum = 0.0;
  uint64_t subcores = 0, full_rebuilds = 0;
  for (const hcd::BatchApplyReport& r : reports) {
    apply_sum += r.total_seconds;
    apply_max = std::max(apply_max, r.total_seconds);
    refreeze_sum += r.refreeze_seconds;
    subcores += r.stats.subcores_touched;
    full_rebuilds += r.full_rebuild ? 1 : 0;
  }
  const double apply_mean =
      reports.empty() ? 0.0 : apply_sum / static_cast<double>(reports.size());

  if (args.json) {
    std::printf(
        "{\"command\":\"live-bench\",\"graph\":{\"n\":%u,\"m\":%llu},"
        "\"result\":{\"query_threads\":%d,\"batches\":%zu,"
        "\"batch_size\":%d,\"update_rate\":%.3f,\"epochs\":%llu,"
        "\"live\":{\"reads\":%llu,\"qps\":%.1f,\"latency_us\":{"
        "\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}},"
        "\"read_only\":{\"reads\":%llu,\"qps\":%.1f,\"latency_us\":{"
        "\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}},"
        "\"qps_retained\":%.3f,"
        "\"batch_apply_ms\":{\"mean\":%.3f,\"max\":%.3f},"
        "\"refreeze_ms_total\":%.3f,\"subcores_touched\":%llu,"
        "\"full_rebuilds\":%llu}}\n",
        n, static_cast<unsigned long long>(m), workers, reports.size(),
        args.batch_size, args.update_rate,
        static_cast<unsigned long long>(live.Epoch()),
        static_cast<unsigned long long>(live_phase.reads), live_qps,
        live_phase.latencies.P50() * 1e6, live_phase.latencies.P95() * 1e6,
        live_phase.latencies.P99() * 1e6,
        static_cast<unsigned long long>(readonly_phase.reads), readonly_qps,
        readonly_phase.latencies.P50() * 1e6,
        readonly_phase.latencies.P95() * 1e6,
        readonly_phase.latencies.P99() * 1e6, retained, apply_mean * 1e3,
        apply_max * 1e3, refreeze_sum * 1e3,
        static_cast<unsigned long long>(subcores),
        static_cast<unsigned long long>(full_rebuilds));
    return 0;
  }
  std::printf("live phase: %d readers over %zu batches x %d updates "
              "(%llu epochs published)\n",
              workers, reports.size(), args.batch_size,
              static_cast<unsigned long long>(live.Epoch()));
  std::printf("  read QPS  %.0f   p50 %.1f us   p99 %.1f us\n", live_qps,
              live_phase.latencies.P50() * 1e6,
              live_phase.latencies.P99() * 1e6);
  std::printf("read-only phase (same duration):\n");
  std::printf("  read QPS  %.0f   p50 %.1f us   p99 %.1f us\n", readonly_qps,
              readonly_phase.latencies.P50() * 1e6,
              readonly_phase.latencies.P99() * 1e6);
  std::printf("throughput retained under writes: %.1f%%\n", retained * 100.0);
  std::printf("batch apply: mean %.2f ms, max %.2f ms (%llu subcores, "
              "%llu full rebuilds)\n",
              apply_mean * 1e3, apply_max * 1e3,
              static_cast<unsigned long long>(subcores),
              static_cast<unsigned long long>(full_rebuilds));
  return 0;
}

std::atomic<bool> g_serve_stop{false};

void ServeSignalHandler(int) { g_serve_stop.store(true); }

/// Minimal scanner over the server's fixed-layout stats JSON (see
/// QueryServer::RenderStatsJson): finds `"key":` at or after `from` and
/// parses the number that follows. Good enough for rendering a document we
/// emit ourselves; not a general JSON parser.
bool FindJsonNumber(const std::string& json, const char* key, size_t from,
                    double* value) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return false;
  const char* start = json.c_str() + pos + needle.size();
  char* end = nullptr;
  const double parsed = std::strtod(start, &end);
  if (end == start) return false;
  *value = parsed;
  return true;
}

double JsonNumberOr(const std::string& json, const char* key, size_t from,
                    double fallback) {
  double value = fallback;
  FindJsonNumber(json, key, from, &value);
  return value;
}

/// One "  <name>  mean  p50  p95  p99 (count)" row from the quantile
/// object that follows `from` (a position inside the stats JSON just
/// before the object's keys).
void PrintQuantileRow(const std::string& json, const char* name,
                      size_t from) {
  std::printf("  %-8s %10.1f %10.1f %10.1f %10.1f %12.0f\n", name,
              JsonNumberOr(json, "mean_us", from, 0.0),
              JsonNumberOr(json, "p50_us", from, 0.0),
              JsonNumberOr(json, "p95_us", from, 0.0),
              JsonNumberOr(json, "p99_us", from, 0.0),
              JsonNumberOr(json, "count", from, 0.0));
}

/// Renders the kStats JSON as the human `stats --connect` view: server
/// line, totals line, one row per rolling window, and the lifetime phase
/// attribution table.
void PrintServerStatsJson(const std::string& json) {
  std::printf("uptime %.1fs  epoch %.0f  workers %.0f  queue %.0f  "
              "inflight %.0f\n",
              JsonNumberOr(json, "uptime_seconds", 0, 0.0),
              JsonNumberOr(json, "epoch", 0, 0.0),
              JsonNumberOr(json, "workers", 0, 0.0),
              JsonNumberOr(json, "queue_depth", 0, 0.0),
              JsonNumberOr(json, "inflight", 0, 0.0));
  const size_t totals_pos = json.find("\"totals\":{");
  std::printf("totals: %.0f requests, %.0f cache hits, %.0f bad, %.0f shed, "
              "%.0f connections, slow log %.0f written / %.0f dropped\n",
              JsonNumberOr(json, "requests", totals_pos, 0.0),
              JsonNumberOr(json, "cache_hits", totals_pos, 0.0),
              JsonNumberOr(json, "bad_requests", totals_pos, 0.0),
              JsonNumberOr(json, "shed", totals_pos, 0.0),
              JsonNumberOr(json, "connections", totals_pos, 0.0),
              JsonNumberOr(json, "slow_log_written", totals_pos, 0.0),
              JsonNumberOr(json, "slow_log_dropped", totals_pos, 0.0));
  std::printf("  %-8s %10s %8s %8s %10s %10s %10s\n", "window", "qps",
              "hit%", "err%", "p50_us", "p95_us", "p99_us");
  size_t pos = json.find("\"windows\":[");
  while (pos != std::string::npos) {
    const size_t label_pos = json.find("\"label\":\"", pos + 1);
    if (label_pos == std::string::npos) break;
    const size_t label_start = label_pos + 9;
    const size_t label_end = json.find('"', label_start);
    if (label_end == std::string::npos) break;
    const std::string label =
        json.substr(label_start, label_end - label_start);
    const size_t latency_pos = json.find("\"latency_us\":", label_pos);
    std::printf("  %-8s %10.0f %8.1f %8.2f %10.1f %10.1f %10.1f\n",
                label.c_str(), JsonNumberOr(json, "qps", label_pos, 0.0),
                JsonNumberOr(json, "cache_hit_rate", label_pos, 0.0) * 100.0,
                JsonNumberOr(json, "error_rate", label_pos, 0.0) * 100.0,
                JsonNumberOr(json, "p50_us", latency_pos, 0.0),
                JsonNumberOr(json, "p95_us", latency_pos, 0.0),
                JsonNumberOr(json, "p99_us", latency_pos, 0.0));
    pos = label_end;
  }
  const size_t total_pos = json.find("\"total\":{");
  if (total_pos == std::string::npos) return;
  std::printf("lifetime phase attribution (us):\n");
  std::printf("  %-8s %10s %10s %10s %10s %12s\n", "phase", "mean", "p50",
              "p95", "p99", "count");
  PrintQuantileRow(json, "latency", json.find("\"latency_us\":", total_pos));
  const size_t phases_pos = json.find("\"phases_us\":{", total_pos);
  for (const char* phase : {"queue", "decode", "cache", "search", "encode"}) {
    const std::string needle = std::string("\"") + phase + "\":{";
    PrintQuantileRow(json, phase, json.find(needle, phases_pos));
  }
}

/// `stats --connect=HOST:PORT [--watch=N]`: fetches a running server's
/// kStats snapshot and renders it (raw JSON under --json); --watch
/// refreshes every N seconds until interrupted.
int CmdStatsConnect(const CliArgs& args) {
  if (!args.pos.empty()) return Usage();
  g_serve_stop.store(false);
  if (args.watch_seconds > 0) {
    std::signal(SIGINT, ServeSignalHandler);
    std::signal(SIGTERM, ServeSignalHandler);
  }
  for (;;) {
    hcd::server::QueryClient client;
    Status s = client.Connect(args.connect_host,
                              static_cast<uint16_t>(args.connect_port));
    std::string json;
    if (s.ok()) s = client.FetchStats(&json);
    if (!s.ok()) return Fail(s);
    if (args.json) {
      std::printf("%s\n", json.c_str());
    } else {
      PrintServerStatsJson(json);
    }
    std::fflush(stdout);
    if (args.watch_seconds <= 0) return 0;
    for (int tick = 0;
         tick < args.watch_seconds * 10 && !g_serve_stop.load(); ++tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_serve_stop.load()) return 0;
  }
}

/// Runs the socket front door over <graph> until SIGINT/SIGTERM: builds
/// the hierarchy once (LiveEngine, so a future writer could keep applying
/// batches), starts the QueryServer, prints the bound port, and waits.
int CmdServe(const CliArgs& args) {
  if (args.pos.size() != 1) return Usage();
  Graph graph;
  Status s = HasSuffix(args.pos[0], ".bin")
                 ? hcd::LoadBinary(args.pos[0], &graph)
                 : hcd::LoadEdgeListText(args.pos[0], &graph);
  if (!s.ok()) return Fail(s);
  // --snapshot: load a prebuilt flat index instead of constructing the
  // hierarchy at startup. Serving defaults to --snapshot-mode=mmap: the
  // kernel pages the index in on demand and shares the page cache across
  // restarts and processes, so the server is ready as soon as the graph is
  // loaded and validation has run.
  const hcd::SnapshotMode serve_mode =
      args.snapshot_mode_set ? args.snapshot_mode : hcd::SnapshotMode::kMmap;
  std::shared_ptr<const hcd::FlatHcdIndex> snapshot_flat;
  if (!args.snapshot_path.empty()) {
    hcd::FlatHcdIndex flat;
    s = hcd::LoadFlatSnapshot(args.snapshot_path, serve_mode, &flat);
    if (!s.ok()) return Fail(s);
    snapshot_flat =
        std::make_shared<const hcd::FlatHcdIndex>(std::move(flat));
    if (snapshot_flat->kind() != args.options.hierarchy) {
      return Fail(Status::InvalidArgument(
          args.snapshot_path + ": snapshot kind " +
          hcd::HierarchyKindName(snapshot_flat->kind()) +
          " does not match --hierarchy=" +
          hcd::HierarchyKindName(args.options.hierarchy)));
    }
    const hcd::VertexId covered =
        snapshot_flat->kind() == hcd::HierarchyKind::kCore
            ? snapshot_flat->NumVertices()
            : snapshot_flat->NumGraphVertices();
    if (covered != graph.NumVertices()) {
      return Fail(Status::InvalidArgument(
          args.snapshot_path + ": snapshot covers " + std::to_string(covered) +
          " graph vertices but " + args.pos[0] + " has " +
          std::to_string(graph.NumVertices())));
    }
  }
  // --hierarchy=truss|nucleus: build the element hierarchy up front (on a
  // copy of the graph — the live engine takes the original) and serve its
  // eager search index next to the core snapshots. The live manager keeps
  // publishing core generations; element requests route by their wire
  // hierarchy byte. With --snapshot, the element index is built straight
  // over the (typically mapped) snapshot — no decomposition runs at all.
  std::optional<HcdEngine> element_engine;
  std::optional<hcd::ElementSearchIndex> snapshot_element_index;
  hcd::server::ServerOptions options;
  if (args.options.hierarchy != hcd::HierarchyKind::kCore) {
    if (snapshot_flat != nullptr) {
      snapshot_element_index.emplace(snapshot_flat, nullptr);
      options.element_index = &*snapshot_element_index;
    } else {
      element_engine.emplace(Graph(graph), args.options);
      options.element_index = &element_engine->ElementSearcher();
    }
  }
  hcd::LiveEngineOptions live_options;
  live_options.engine = args.options;
  live_options.engine.hierarchy = hcd::HierarchyKind::kCore;
  if (snapshot_flat != nullptr &&
      snapshot_flat->kind() == hcd::HierarchyKind::kCore) {
    live_options.initial_flat = snapshot_flat;
  }
  hcd::LiveEngine live(std::move(graph), live_options);

  options.port = static_cast<uint16_t>(args.port);
  options.workers = args.server_workers;
  options.max_pending = args.max_pending;
  options.cache = !args.no_cache;
  if (args.slow_query_ms >= 0.0 && args.slow_log_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--slow-query-ms needs --slow-log=FILE to write the records to"));
  }
  options.slow_query_ms = args.slow_query_ms;
  options.slow_log_path = args.slow_log_path;
  options.slow_log_sample_every = args.slow_log_sample;
  hcd::server::QueryServer server(&live.manager(), options);
  s = server.Start();
  if (!s.ok()) return Fail(s);

  // The port line is the readiness signal scripts wait for; flush it.
  std::string hierarchy_note =
      options.element_index != nullptr
          ? std::string(", ") +
                hcd::HierarchyKindName(args.options.hierarchy) + " index"
          : "";
  if (snapshot_flat != nullptr) {
    hierarchy_note +=
        std::string(", snapshot ") + hcd::SnapshotModeName(serve_mode);
  }
  if (!args.slow_log_path.empty()) {
    hierarchy_note += ", slow log " + args.slow_log_path;
  }
  std::printf("serving %s on 127.0.0.1:%u (%d workers, cache %s%s)\n",
              args.pos[0].c_str(), server.port(), server.workers(),
              options.cache ? "on" : "off", hierarchy_note.c_str());
  std::fflush(stdout);

  g_serve_stop.store(false);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();

  const hcd::server::ServerStats stats = server.stats();
  const hcd::server::SlowQueryLog* slow_log = server.slow_log();
  if (args.json) {
    std::string slow_extra;
    if (slow_log != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    ",\"slow_log\":{\"written\":%llu,\"dropped\":%llu}",
                    static_cast<unsigned long long>(slow_log->written()),
                    static_cast<unsigned long long>(slow_log->dropped()));
      slow_extra = buf;
    }
    std::printf(
        "{\"command\":\"serve\",\"port\":%u,\"workers\":%d,"
        "\"result\":{\"requests\":%llu,\"cache_hits\":%llu,"
        "\"metrics_requests\":%llu,\"stats_requests\":%llu,"
        "\"bad_requests\":%llu,\"shed\":%llu,"
        "\"connections\":%llu%s}}\n",
        server.port(), server.workers(),
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.metrics_requests),
        static_cast<unsigned long long>(stats.stats_requests),
        static_cast<unsigned long long>(stats.bad_requests),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.connections),
        slow_extra.c_str());
    return 0;
  }
  std::printf("served %llu queries (%llu cache hits) over %llu connections; "
              "%llu shed, %llu bad\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.bad_requests));
  if (slow_log != nullptr) {
    std::printf("slow log: %llu records written, %llu dropped\n",
                static_cast<unsigned long long>(slow_log->written()),
                static_cast<unsigned long long>(slow_log->dropped()));
  }
  return 0;
}

/// Drives a query server from --connections loopback clients — an
/// in-process one over the positional graph, or an external one named by
/// --connect — and reports sustained QPS, nearest-rank tail latency and
/// the result-cache hit rate. The workload cycles through the metric mix
/// and --distinct-k k values, so every (metric, k) pair repeats and a
/// warm cache answers most requests.
int CmdServeBench(const CliArgs& args) {
  const bool self_hosted = args.connect_port < 0;
  if (self_hosted && args.pos.size() != 1) return Usage();
  if (!self_hosted && !args.pos.empty()) return Usage();

  std::optional<hcd::LiveEngine> live;
  std::optional<hcd::server::QueryServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string dataset = "remote";
  if (self_hosted) {
    Graph graph;
    Status s = HasSuffix(args.pos[0], ".bin")
                   ? hcd::LoadBinary(args.pos[0], &graph)
                   : hcd::LoadEdgeListText(args.pos[0], &graph);
    if (!s.ok()) return Fail(s);
    dataset = hcd::bench::DatasetNameFromPath(args.pos[0]);
    hcd::LiveEngineOptions live_options;
    live_options.engine = args.options;
    live.emplace(std::move(graph), live_options);
    hcd::server::ServerOptions options;
    options.port = static_cast<uint16_t>(args.port);
    options.workers = args.server_workers;
    // Self mode drives exactly --connections clients; make sure admission
    // control never sheds the bench's own load.
    options.max_pending = std::max(args.max_pending, args.connections);
    options.cache = !args.no_cache;
    server.emplace(&live->manager(), options);
    s = server->Start();
    if (!s.ok()) return Fail(s);
    port = server->port();
  } else {
    host = args.connect_host;
    port = static_cast<uint16_t>(args.connect_port);
  }

  std::vector<hcd::Metric> workload = args.workload;
  if (workload.empty()) {
    workload.assign(std::begin(hcd::kAllMetrics), std::end(hcd::kAllMetrics));
  }
  const int connections = args.connections;
  const int queries = args.queries;
  const uint32_t distinct_k = static_cast<uint32_t>(args.distinct_k);

  // Connection c serves query ids c, c+connections, ...; the key of query
  // q is (metric q mod |mix|, k (q / |mix|) mod distinct_k), so the
  // distinct-key count is |mix| * distinct_k and everything beyond the
  // first cycle repeats — the cache-hit half of the acceptance test.
  std::vector<hcd::bench::LatencyRecorder> recorders(connections);
  std::vector<uint64_t> hit_counts(connections, 0);
  std::vector<Status> worker_status(connections, Status::Ok());
  hcd::Timer timer;
  std::vector<std::thread> pool;
  pool.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    pool.emplace_back([&, c] {
      hcd::server::QueryClient client;
      Status s = client.Connect(host, port);
      if (!s.ok()) {
        worker_status[c] = s;
        return;
      }
      // Windowed pipelining: keep up to --pipeline requests in flight per
      // connection (the server answers a connection's frames in order, so
      // response i matches request i). A window of 1 is the classic
      // latency-faithful request/response loop; deeper windows amortize
      // the per-frame syscall round trip and measure sustained server
      // throughput instead of loopback RTT. Recorded latencies at depth
      // > 1 include queueing time inside the window.
      hcd::server::QueryRequest request;
      hcd::server::QueryResponse response;
      std::vector<int> ids;
      for (int q = c; q < queries; q += connections) ids.push_back(q);
      const size_t window = static_cast<size_t>(args.pipeline);
      std::vector<hcd::Timer> in_flight(window);
      size_t sent = 0, received = 0;
      while (received < ids.size()) {
        while (sent < ids.size() && sent - received < window) {
          const int q = ids[sent];
          const size_t mi = static_cast<size_t>(q) % workload.size();
          request.metric = workload[mi];
          request.k = static_cast<uint32_t>(q / workload.size()) % distinct_k;
          in_flight[sent % window] = hcd::Timer();
          s = client.SendQuery(request);
          if (!s.ok()) {
            worker_status[c] = s;
            return;
          }
          ++sent;
        }
        s = client.ReadQueryResponse(&response);
        if (!s.ok() || response.status != hcd::server::ResponseStatus::kOk) {
          worker_status[c] =
              s.ok() ? Status::Internal("server refused a query") : s;
          return;
        }
        recorders[c].Record(in_flight[received % window].Seconds());
        if (response.cache_hit) ++hit_counts[c];
        ++received;
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  const double wall = timer.Seconds();
  for (const Status& s : worker_status) {
    if (!s.ok()) return Fail(s);
  }

  hcd::bench::LatencyRecorder latencies;
  uint64_t hits = 0;
  for (int c = 0; c < connections; ++c) {
    latencies.Merge(recorders[c]);
    hits += hit_counts[c];
  }
  const uint64_t served = latencies.Count();
  // Guarded ratios: a degenerate run (zero wall, zero requests) must
  // report 0, never `inf`/`nan`.
  const double qps = hcd::FiniteOrZero(static_cast<double>(served) / wall);
  const double hit_rate =
      hcd::FiniteOrZero(static_cast<double>(hits) /
                        static_cast<double>(served));

  if (!args.server_metrics_out.empty()) {
    hcd::server::QueryClient client;
    Status s = client.Connect(host, port);
    std::string text;
    if (s.ok()) s = client.FetchMetrics(&text);
    if (!s.ok()) return Fail(s);
    const int rc = WriteTextFile(args.server_metrics_out, text);
    if (rc != 0) return rc;
  }

  // --server-phase-report: one kStats fetch after the run, so the
  // server-side queue/decode/cache/search/encode attribution can be read
  // next to the client-observed tail.
  std::string server_stats_json;
  if (args.server_phase_report) {
    hcd::server::QueryClient client;
    Status s = client.Connect(host, port);
    if (s.ok()) s = client.FetchStats(&server_stats_json);
    if (!s.ok()) return Fail(s);
  }

  hcd::bench::ReportBaseline(
      "serve_bench", dataset, connections, wall,
      {{"qps", qps},
       {"hit_rate", hit_rate},
       {"queries", static_cast<double>(served)},
       {"pipeline", static_cast<double>(args.pipeline)},
       {"p99_us", latencies.P99() * 1e6}});

  if (args.json) {
    std::string server_extra;
    if (self_hosted) {
      const hcd::server::ServerStats stats = server->stats();
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    ",\"server\":{\"workers\":%d,\"requests\":%llu,"
                    "\"cache_hits\":%llu,\"shed\":%llu}",
                    server->workers(),
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.cache_hits),
                    static_cast<unsigned long long>(stats.shed));
      server_extra = buf;
    }
    if (!server_stats_json.empty()) {
      server_extra += ",\"server_stats\":" + server_stats_json;
    }
    std::printf(
        "{\"command\":\"serve-bench\",\"connections\":%d,\"pipeline\":%d,"
        "\"result\":{\"queries\":%llu,\"qps\":%.1f,\"hit_rate\":%.4f,"
        "\"cache_hits\":%llu,\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,"
        "\"p99\":%.1f}%s}}\n",
        connections, args.pipeline,
        static_cast<unsigned long long>(served), qps, hit_rate,
        static_cast<unsigned long long>(hits), latencies.P50() * 1e6,
        latencies.P95() * 1e6, latencies.P99() * 1e6, server_extra.c_str());
    return 0;
  }
  std::printf("served %llu queries over %d connections "
              "(%zu-metric mix, k<%u, pipeline %d)\n",
              static_cast<unsigned long long>(served), connections,
              workload.size(), distinct_k, args.pipeline);
  std::printf("QPS   %.0f\n", qps);
  std::printf("p50   %.1f us\n", latencies.P50() * 1e6);
  std::printf("p95   %.1f us\n", latencies.P95() * 1e6);
  std::printf("p99   %.1f us\n", latencies.P99() * 1e6);
  std::printf("cache hit rate %.1f%% (%llu/%llu)\n", hit_rate * 100.0,
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(served));
  if (!server_stats_json.empty()) {
    const size_t total_pos = server_stats_json.find("\"total\":{");
    std::printf("server phase attribution (lifetime, us; client p99 was "
                "%.1f us including the wire):\n",
                latencies.P99() * 1e6);
    std::printf("  %-8s %10s %10s %10s %10s %12s\n", "phase", "mean", "p50",
                "p95", "p99", "count");
    PrintQuantileRow(server_stats_json, "latency",
                     server_stats_json.find("\"latency_us\":", total_pos));
    const size_t phases_pos =
        server_stats_json.find("\"phases_us\":{", total_pos);
    for (const char* phase :
         {"queue", "decode", "cache", "search", "encode"}) {
      const std::string needle = std::string("\"") + phase + "\":{";
      PrintQuantileRow(server_stats_json, phase,
                       server_stats_json.find(needle, phases_pos));
    }
  }
  return 0;
}

int RunCommand(const std::string& cmd, const CliArgs& args) {
  if (cmd == "gen") return CmdGen(args);
  if (cmd == "convert") return CmdConvert(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "build") return CmdBuild(args);
  if (cmd == "search") return CmdSearch(args);
  if (cmd == "export") return CmdExport(args);
  if (cmd == "truss") return CmdTruss(args);
  if (cmd == "influential") return CmdInfluential(args);
  if (cmd == "bestk") return CmdBestK(args);
  if (cmd == "query-bench") return CmdQueryBench(args);
  if (cmd == "live-bench") return CmdLiveBench(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "serve-bench") return CmdServeBench(args);
  return Usage();
}

int WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) return Fail(Status::IoError("cannot write " + path));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  CliArgs args;
  if (!ParseCliArgs(argc, argv, 2, &args)) return Usage();
  if (cmd != "query-bench" && cmd != "live-bench" && cmd != "serve-bench" &&
      !args.serve_flag.empty()) {
    std::fprintf(stderr,
                 "error: flag '%s' is only valid for query-bench, "
                 "live-bench or serve-bench\n",
                 args.serve_flag.c_str());
    return Usage();
  }
  if (cmd != "live-bench" && !args.live_flag.empty()) {
    std::fprintf(stderr, "error: flag '%s' is only valid for live-bench\n",
                 args.live_flag.c_str());
    return Usage();
  }
  if (cmd != "serve" && cmd != "serve-bench" && !args.server_flag.empty()) {
    std::fprintf(stderr,
                 "error: flag '%s' is only valid for serve or serve-bench\n",
                 args.server_flag.c_str());
    return Usage();
  }
  if (cmd != "serve-bench" && cmd != "stats" && !args.connect_flag.empty()) {
    std::fprintf(stderr,
                 "error: flag '%s' is only valid for serve-bench or stats\n",
                 args.connect_flag.c_str());
    return Usage();
  }
  if (cmd != "serve" && !args.serve_only_flag.empty()) {
    std::fprintf(stderr, "error: flag '%s' is only valid for serve\n",
                 args.serve_only_flag.c_str());
    return Usage();
  }
  if (cmd != "stats" && !args.stats_flag.empty()) {
    std::fprintf(stderr, "error: flag '%s' is only valid for stats\n",
                 args.stats_flag.c_str());
    return Usage();
  }
  if (cmd != "serve-bench" && !args.bench_only_flag.empty()) {
    std::fprintf(stderr, "error: flag '%s' is only valid for serve-bench\n",
                 args.bench_only_flag.c_str());
    return Usage();
  }
  if (cmd != "build" && cmd != "export" && cmd != "query-bench" &&
      cmd != "serve" && !args.hierarchy_flag.empty()) {
    std::fprintf(stderr,
                 "error: flag '%s' is only valid for build, export, "
                 "query-bench or serve\n",
                 args.hierarchy_flag.c_str());
    return Usage();
  }
  if (cmd != "export" && cmd != "query-bench" && cmd != "serve" &&
      !args.snapshot_flag.empty()) {
    std::fprintf(stderr,
                 "error: flag '%s' is only valid for export, query-bench "
                 "or serve\n",
                 args.snapshot_flag.c_str());
    return Usage();
  }

  // Observability backends live for the whole invocation: every ScopedStage
  // and ScopedSpan below RunCommand reports into them, and the files are
  // written after the command (and its root span) finish. With neither flag
  // the tracer/registry stay uninstalled and the whole layer is a no-op.
  hcd::Tracer tracer;
  hcd::MetricsRegistry registry;
  if (!args.trace_out.empty()) tracer.Install();
  // The server commands always get a registry: the in-process /metrics
  // endpoint (and serve-bench's --server-metrics-out) serve its Prometheus
  // rendering even when no --metrics-out file was requested.
  const bool metrics_installed =
      !args.metrics_out.empty() || cmd == "serve" || cmd == "serve-bench";
  if (metrics_installed) registry.Install();

  int rc;
  const std::string root_name = "cli." + cmd;
  {
    hcd::ScopedSpan root_span(root_name.c_str());
    rc = RunCommand(cmd, args);
  }

  if (!args.trace_out.empty()) {
    tracer.Uninstall();
    const Status s = tracer.WriteChromeJson(args.trace_out);
    if (!s.ok() && rc == 0) rc = Fail(s);
  }
  if (metrics_installed) registry.Uninstall();
  if (!args.metrics_out.empty()) {
    const std::string text = HasSuffix(args.metrics_out, ".json")
                                 ? registry.RenderJson()
                                 : registry.RenderPrometheus();
    const int write_rc = WriteTextFile(args.metrics_out, text);
    if (write_rc != 0 && rc == 0) rc = write_rc;
  }
  return rc;
}
