#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/timer.h"
#include "hcd/query.h"
#include "parallel/omp_utils.h"
#include "search/metrics.h"

namespace hcd::server {
namespace {

// The wire format encodes a metric as its index into kAllMetrics; the
// per-metric histogram table is likewise indexed by the raw enum value.
// Both are only sound while the array enumerates the enum in order.
constexpr bool MetricsAreDense() {
  for (size_t i = 0; i < std::size(kAllMetrics); ++i) {
    if (static_cast<size_t>(kAllMetrics[i]) != i) return false;
  }
  return true;
}
static_assert(MetricsAreDense(),
              "kAllMetrics must enumerate Metric values in declaration order");

constexpr int kPollMillis = 100;  ///< stop-flag check cadence for blocked IO

enum class ReadResult {
  kFrame,    ///< one complete frame read
  kClosed,   ///< peer closed cleanly at a frame boundary
  kError,    ///< IO error or protocol violation (bad length, torn frame)
  kStopped,  ///< server shutdown observed mid-wait
};

/// Receives exactly `n` bytes, polling so a shutdown is observed within
/// kPollMillis even on an idle connection. `*got_any` reports whether any
/// byte of the current frame arrived, distinguishing clean EOF from a
/// torn frame.
ReadResult RecvExact(int fd, char* buf, size_t n,
                     const std::atomic<bool>& stop, bool* got_any) {
  size_t done = 0;
  while (done < n) {
    if (stop.load(std::memory_order_relaxed)) return ReadResult::kStopped;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    if (ready == 0) continue;
    const ssize_t r = ::recv(fd, buf + done, n - done, 0);
    if (r == 0) {
      return done == 0 && !*got_any ? ReadResult::kClosed : ReadResult::kError;
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadResult::kError;
    }
    done += static_cast<size_t>(r);
    *got_any = true;
  }
  return ReadResult::kFrame;
}

/// Reads one length-prefixed frame into `*payload`.
ReadResult ReadFrame(int fd, const std::atomic<bool>& stop,
                     std::string* payload) {
  char prefix[4];
  bool got_any = false;
  const ReadResult head = RecvExact(fd, prefix, sizeof(prefix), stop, &got_any);
  if (head != ReadResult::kFrame) return head;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (length > kMaxPayloadBytes) return ReadResult::kError;
  payload->resize(length);
  if (length == 0) return ReadResult::kFrame;
  return RecvExact(fd, payload->data(), length, stop, &got_any);
}

/// Sends all of `data`; MSG_NOSIGNAL so a vanished peer surfaces as an
/// error return instead of SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(w);
  }
  return true;
}

bool WriteFrame(int fd, std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  AppendFrame(&out, payload);
  return WriteAll(fd, out);
}

}  // namespace

QueryOutcome ExecuteQuery(const QuerySnapshot& snapshot,
                          const QueryRequest& request, SearchWorkspace* ws) {
  QueryOutcome out;
  out.epoch = snapshot.epoch();
  const FlatHcdIndex& flat = snapshot.flat();
  const SearchIndex& sidx = snapshot.search_index();
  if (request.vertices.empty()) {
    const SearchHit hit = SearchInto(flat, sidx, request.metric, ws);
    if (request.k == 0) {
      if (hit.best_node == kInvalidNode) return out;
      out.found = true;
      out.node = hit.best_node;
      out.score = hit.best_score;
    } else {
      // Restrict the argmax to nodes of level >= k over the scores
      // SearchInto just filled, keeping its first-node-wins tie order.
      TreeNodeId best = kInvalidNode;
      double best_score = 0.0;
      for (TreeNodeId node = 0; node < flat.NumNodes(); ++node) {
        if (flat.Level(node) < request.k) continue;
        if (best == kInvalidNode || ws->scores[node] > best_score) {
          best = node;
          best_score = ws->scores[node];
        }
      }
      if (best == kInvalidNode) return out;
      out.found = true;
      out.node = best;
      out.score = best_score;
    }
  } else {
    const TreeNodeId node =
        NodeOfKCoreContainingAll(flat, request.vertices, request.k);
    if (node == kInvalidNode) return out;
    out.found = true;
    out.node = node;
    out.score = EvaluateMetric(request.metric,
                               sidx.PrimaryFor(request.metric)[node],
                               sidx.globals());
  }
  out.level = flat.Level(out.node);
  out.core_size = flat.CoreSize(out.node);
  return out;
}

QueryOutcome ExecuteElementQuery(const ElementSearchIndex& index,
                                 const QueryRequest& request, uint64_t epoch) {
  QueryOutcome out;
  out.epoch = epoch;
  ElementHit hit;
  if (request.vertices.empty()) {
    hit = request.k == 0 ? index.Densest() : index.DensestAtLeast(request.k);
  } else {
    // The ids are untrusted: NodeOfKCoreContaining rejects out-of-range
    // element ids, so a hostile request degrades to found = false.
    const TreeNodeId node =
        NodeOfKCoreContainingAll(index.flat(), request.vertices, request.k);
    if (node == kInvalidNode) return out;
    hit.found = true;
    hit.node = node;
    hit.level = index.flat().Level(node);
    hit.elements = index.CommunityElements(node);
    hit.score = index.Density(node);
  }
  if (!hit.found) return out;
  out.found = true;
  out.node = hit.node;
  out.level = hit.level;
  out.core_size = hit.elements;
  out.score = hit.score;
  return out;
}

QueryServer::QueryServer(const SnapshotManager* manager, ServerOptions options)
    : manager_(manager), options_(options) {
  HCD_CHECK(manager_ != nullptr) << "a query server needs a snapshot manager";
  if (options_.workers <= 0) options_.workers = HardwareThreads();
  if (options_.max_pending < 0) options_.max_pending = 0;
  if (options_.cache) {
    cache_ = std::make_unique<ResultCache>(options_.cache_options);
  }
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  HCD_CHECK(!started_) << "query server already started";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  if (::listen(listen_fd_, options_.max_pending + options_.workers + 16) != 0) {
    const std::string message = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  // Resolve every instrument once, before any worker exists: the
  // per-request path must perform zero registry lookups (bench_micro's
  // zero-lookup row and server_test assert exactly this).
  if (MetricsRegistry* registry = MetricsRegistry::Current()) {
    instruments_.requests = registry->GetCounter(
        "hcd_server_requests_total", "Query requests answered by the server.");
    instruments_.cache_hits = registry->GetCounter(
        "hcd_server_cache_hits_total",
        "Query requests answered from the epoch-keyed result cache.");
    instruments_.overload = registry->GetCounter(
        "hcd_server_overload_total",
        "Connections shed by admission control (pending queue full).");
    instruments_.bad_requests = registry->GetCounter(
        "hcd_server_bad_requests_total",
        "Malformed frames; the offending connection is closed.");
    const std::string latency_name = "hcd_query_latency_seconds";
    const std::string latency_help = "End-to-end latency of one served query.";
    instruments_.latency = registry->GetHistogram(latency_name, latency_help);
    instruments_.latency_by_metric.resize(std::size(kAllMetrics));
    for (size_t i = 0; i < std::size(kAllMetrics); ++i) {
      instruments_.latency_by_metric[i] = registry->GetHistogram(
          latency_name, latency_help, {{"metric", MetricName(kAllMetrics[i])}});
    }
  }

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Connections still pending were never owned by a worker: shed them.
  for (const int fd : pending_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kOverloaded));
    ::close(fd);
  }
  pending_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void QueryServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool admitted = false;
    {
      // Admission: there is an idle worker to take the connection now, or
      // room in the bounded pending queue. Everything else is shed.
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() <
          idle_workers_ + static_cast<size_t>(options_.max_pending)) {
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.overload != nullptr) instruments_.overload->Increment();
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kOverloaded));
      ::close(fd);
    }
  }
}

void QueryServer::WorkerLoop() {
  // Worker-owned serve state, created once per worker lifetime: the
  // epoch-cached snapshot reader and the reusable scoring workspace
  // (instruments were already resolved at Start).
  SnapshotReader reader(*manager_);
  SearchWorkspace ws;
  ElementWorkspace ews;
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      ++idle_workers_;
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      --idle_workers_;
      if (stop_.load(std::memory_order_relaxed)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(fd, &reader, &ws, &ews);
    ::close(fd);
  }
}

void QueryServer::ServeConnection(int fd, SnapshotReader* reader,
                                  SearchWorkspace* ws, ElementWorkspace* ews) {
  std::string payload;
  while (!stop_.load(std::memory_order_relaxed)) {
    const ReadResult read = ReadFrame(fd, stop_, &payload);
    if (read == ReadResult::kClosed || read == ReadResult::kStopped) return;
    if (read == ReadResult::kError) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.bad_requests != nullptr) {
        instruments_.bad_requests->Increment();
      }
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kBadRequest));
      return;
    }
    MessageType type;
    if (!DecodeRequestType(payload, &type)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.bad_requests != nullptr) {
        instruments_.bad_requests->Increment();
      }
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kBadRequest));
      return;
    }
    if (type == MessageType::kMetrics) {
      metrics_requests_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry* registry = MetricsRegistry::Current();
      const std::string text =
          registry != nullptr ? registry->RenderPrometheus() : std::string();
      if (!WriteFrame(fd, EncodeMetricsResponse(text))) return;
      continue;
    }
    QueryRequest request;
    if (!DecodeQueryRequest(payload, &request)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.bad_requests != nullptr) {
        instruments_.bad_requests->Increment();
      }
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kBadRequest));
      return;
    }
    if (!AnswerQuery(fd, request, reader, ws, ews)) return;
  }
}

bool QueryServer::AnswerQuery(int fd, const QueryRequest& request,
                              SnapshotReader* reader, SearchWorkspace* ws,
                              ElementWorkspace* ews) {
  Timer timer;
  // The generation this request is answered on is fixed here: a publish
  // racing with the request leaves this query on its acquired snapshot,
  // and the cache refuses to mix the two epochs.
  const QuerySnapshot snapshot = reader->Snapshot();
  const uint64_t epoch = snapshot.epoch();
  // Element requests route to the static element index when its kind
  // matches; otherwise they answer found = false (the default outcome) so
  // a client can probe what the server has loaded without being dropped.
  const ElementSearchIndex* element_index =
      request.hierarchy != HierarchyKind::kCore &&
              options_.element_index != nullptr &&
              options_.element_index->kind() == request.hierarchy
          ? options_.element_index
          : nullptr;

  CachedResult result;
  bool hit = false;
  std::string key;
  if (cache_ != nullptr) {
    key = CacheKeyFor(request);
    hit = cache_->Lookup(epoch, key, &result);
  }
  if (!hit) {
    QueryOutcome outcome;
    if (request.hierarchy == HierarchyKind::kCore) {
      outcome = ExecuteQuery(snapshot, request, ws);
    } else if (element_index != nullptr) {
      outcome = ExecuteElementQuery(*element_index, request, epoch);
    } else {
      outcome.epoch = epoch;  // unserved kind: found stays false
    }
    result = {outcome.epoch, outcome.found, outcome.node,
              outcome.level, outcome.core_size, outcome.score};
    if (cache_ != nullptr) cache_->Insert(epoch, key, result);
  }

  QueryResponse response;
  response.status = ResponseStatus::kOk;
  response.epoch = epoch;
  response.cache_hit = hit;
  response.found = result.found;
  response.level = result.level;
  response.core_size = result.core_size;
  response.score = result.score;
  if (result.found && request.max_return_vertices > 0) {
    if (element_index != nullptr) {
      // Element communities echo their member graph vertices (sorted),
      // materialized per request into the worker's stamp workspace.
      element_index->CommunityOf(result.node, ews, &response.vertices);
      if (response.vertices.size() > request.max_return_vertices) {
        response.vertices.resize(request.max_return_vertices);
      }
    } else {
      // Node ids in the cache are valid exactly for `epoch`, which is the
      // generation `snapshot` holds, so this span cannot dangle.
      const std::span<const VertexId> members =
          snapshot.CoreVertices(result.node);
      const size_t count =
          std::min<size_t>(request.max_return_vertices, members.size());
      response.vertices.assign(members.begin(), members.begin() + count);
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (instruments_.requests != nullptr) {
    instruments_.requests->Increment();
    if (hit) instruments_.cache_hits->Increment();
    const double seconds = timer.Seconds();
    instruments_.latency->Observe(seconds);
    instruments_.latency_by_metric[static_cast<size_t>(request.metric)]
        ->Observe(seconds);
  }
  return WriteFrame(fd, EncodeQueryResponse(response));
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.metrics_requests = metrics_requests_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.connections = connections_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hcd::server
