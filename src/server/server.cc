#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/telemetry.h"
#include "hcd/query.h"
#include "parallel/omp_utils.h"
#include "search/metrics.h"

namespace hcd::server {
namespace {

// The wire format encodes a metric as its index into kAllMetrics; the
// per-metric histogram table is likewise indexed by the raw enum value.
// Both are only sound while the array enumerates the enum in order.
constexpr bool MetricsAreDense() {
  for (size_t i = 0; i < std::size(kAllMetrics); ++i) {
    if (static_cast<size_t>(kAllMetrics[i]) != i) return false;
  }
  return true;
}
static_assert(MetricsAreDense(),
              "kAllMetrics must enumerate Metric values in declaration order");

constexpr int kPollMillis = 100;  ///< stop-flag check cadence for blocked IO

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t UnixNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// The request stamp clock: tracer-epoch nanoseconds when tracing (so the
/// stamps double as span ts values), steady-clock nanoseconds otherwise.
/// Either way consecutive stamps subtract into exact phase durations.
uint64_t StampNow(const Tracer* tracer) {
  return tracer != nullptr ? tracer->NowNs() : SteadyNowNs();
}

uint64_t StampDelta(uint64_t from, uint64_t to) {
  return to > from ? to - from : 0;
}

/// Which of ExecuteQuery's regimes answered, for the slow log.
const char* RegimeName(const QueryRequest& request, bool element_served) {
  if (request.hierarchy != HierarchyKind::kCore) {
    return element_served ? "element" : "unserved";
  }
  if (!request.vertices.empty()) return "vertex-set";
  return request.k == 0 ? "global" : "level";
}

/// Positions of the window-sample counters pushed by the stats ticker.
enum WindowCounter {
  kWinRequests = 0,
  kWinCacheHits,
  kWinBadRequests,
  kWinShed,
  kWinConnections,
  kNumWindowCounters,
};

std::string StatsDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", FiniteOrZero(value));
  return buf;
}

enum class ReadResult {
  kFrame,    ///< one complete frame read
  kClosed,   ///< peer closed cleanly at a frame boundary
  kError,    ///< IO error or protocol violation (bad length, torn frame)
  kStopped,  ///< server shutdown observed mid-wait
};

/// Receives exactly `n` bytes, polling so a shutdown is observed within
/// kPollMillis even on an idle connection. `*got_any` reports whether any
/// byte of the current frame arrived, distinguishing clean EOF from a
/// torn frame.
ReadResult RecvExact(int fd, char* buf, size_t n,
                     const std::atomic<bool>& stop, bool* got_any) {
  size_t done = 0;
  while (done < n) {
    if (stop.load(std::memory_order_relaxed)) return ReadResult::kStopped;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    if (ready == 0) continue;
    const ssize_t r = ::recv(fd, buf + done, n - done, 0);
    if (r == 0) {
      return done == 0 && !*got_any ? ReadResult::kClosed : ReadResult::kError;
    }
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadResult::kError;
    }
    done += static_cast<size_t>(r);
    *got_any = true;
  }
  return ReadResult::kFrame;
}

/// Reads one length-prefixed frame into `*payload`.
ReadResult ReadFrame(int fd, const std::atomic<bool>& stop,
                     std::string* payload) {
  char prefix[4];
  bool got_any = false;
  const ReadResult head = RecvExact(fd, prefix, sizeof(prefix), stop, &got_any);
  if (head != ReadResult::kFrame) return head;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (length > kMaxPayloadBytes) return ReadResult::kError;
  payload->resize(length);
  if (length == 0) return ReadResult::kFrame;
  return RecvExact(fd, payload->data(), length, stop, &got_any);
}

/// Sends all of `data`; MSG_NOSIGNAL so a vanished peer surfaces as an
/// error return instead of SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(w);
  }
  return true;
}

bool WriteFrame(int fd, std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  AppendFrame(&out, payload);
  return WriteAll(fd, out);
}

}  // namespace

QueryOutcome ExecuteQuery(const QuerySnapshot& snapshot,
                          const QueryRequest& request, SearchWorkspace* ws) {
  QueryOutcome out;
  out.epoch = snapshot.epoch();
  const FlatHcdIndex& flat = snapshot.flat();
  const SearchIndex& sidx = snapshot.search_index();
  if (request.vertices.empty()) {
    const SearchHit hit = SearchInto(flat, sidx, request.metric, ws);
    if (request.k == 0) {
      if (hit.best_node == kInvalidNode) return out;
      out.found = true;
      out.node = hit.best_node;
      out.score = hit.best_score;
    } else {
      // Restrict the argmax to nodes of level >= k over the scores
      // SearchInto just filled, keeping its first-node-wins tie order.
      TreeNodeId best = kInvalidNode;
      double best_score = 0.0;
      for (TreeNodeId node = 0; node < flat.NumNodes(); ++node) {
        if (flat.Level(node) < request.k) continue;
        if (best == kInvalidNode || ws->scores[node] > best_score) {
          best = node;
          best_score = ws->scores[node];
        }
      }
      if (best == kInvalidNode) return out;
      out.found = true;
      out.node = best;
      out.score = best_score;
    }
  } else {
    const TreeNodeId node =
        NodeOfKCoreContainingAll(flat, request.vertices, request.k);
    if (node == kInvalidNode) return out;
    out.found = true;
    out.node = node;
    out.score = EvaluateMetric(request.metric,
                               sidx.PrimaryFor(request.metric)[node],
                               sidx.globals());
  }
  out.level = flat.Level(out.node);
  out.core_size = flat.CoreSize(out.node);
  return out;
}

QueryOutcome ExecuteElementQuery(const ElementSearchIndex& index,
                                 const QueryRequest& request, uint64_t epoch) {
  QueryOutcome out;
  out.epoch = epoch;
  ElementHit hit;
  if (request.vertices.empty()) {
    hit = request.k == 0 ? index.Densest() : index.DensestAtLeast(request.k);
  } else {
    // The ids are untrusted: NodeOfKCoreContaining rejects out-of-range
    // element ids, so a hostile request degrades to found = false.
    const TreeNodeId node =
        NodeOfKCoreContainingAll(index.flat(), request.vertices, request.k);
    if (node == kInvalidNode) return out;
    hit.found = true;
    hit.node = node;
    hit.level = index.flat().Level(node);
    hit.elements = index.CommunityElements(node);
    hit.score = index.Density(node);
  }
  if (!hit.found) return out;
  out.found = true;
  out.node = hit.node;
  out.level = hit.level;
  out.core_size = hit.elements;
  out.score = hit.score;
  return out;
}

const char* QueryServer::PhaseName(int phase) {
  switch (phase) {
    case kQueue: return "queue";
    case kDecode: return "decode";
    case kCache: return "cache";
    case kSearch: return "search";
    case kEncode: return "encode";
    default: return "?";
  }
}

QueryServer::QueryServer(const SnapshotManager* manager, ServerOptions options)
    : manager_(manager), options_(options) {
  HCD_CHECK(manager_ != nullptr) << "a query server needs a snapshot manager";
  if (options_.workers <= 0) options_.workers = HardwareThreads();
  if (options_.max_pending < 0) options_.max_pending = 0;
  if (options_.stats_tick_millis <= 0) options_.stats_tick_millis = 1000;
  if (options_.cache) {
    cache_ = std::make_unique<ResultCache>(options_.cache_options);
  }
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  HCD_CHECK(!started_) << "query server already started";
  // Resolve every instrument once, first thing, before the socket exists
  // and before any server thread could run: the per-request path must
  // perform zero registry lookups (bench_micro's zero-lookup row and
  // server_test assert exactly this), and resolving before any other
  // Start step can fail means the registry can never end up tracking only
  // part of what the plain-atomic ServerStats mirror counts.
  if (MetricsRegistry* registry = MetricsRegistry::Current()) {
    instruments_.requests = registry->GetCounter(
        "hcd_server_requests_total", "Query requests answered by the server.");
    instruments_.cache_hits = registry->GetCounter(
        "hcd_server_cache_hits_total",
        "Query requests answered from the epoch-keyed result cache.");
    instruments_.overload = registry->GetCounter(
        "hcd_server_overload_total",
        "Connections shed by admission control (pending queue full).");
    instruments_.bad_requests = registry->GetCounter(
        "hcd_server_bad_requests_total",
        "Malformed frames; the offending connection is closed.");
    instruments_.slow_log_dropped = registry->GetCounter(
        "hcd_server_slow_log_dropped_total",
        "Slow-query log lines refused by a full ring buffer.");
    // Registered here (it is incremented by Tracer::PublishDroppedSpans)
    // so the serving smoke can assert its presence and zero value.
    registry->GetCounter("hcd_trace_dropped_spans_total",
                         "Trace spans discarded by full per-thread buffers.");
    const std::string latency_name = "hcd_query_latency_seconds";
    const std::string latency_help =
        "End-to-end latency of one served query (queue wait included).";
    instruments_.latency = registry->GetHistogram(latency_name, latency_help);
    instruments_.latency_by_metric.resize(std::size(kAllMetrics));
    for (size_t i = 0; i < std::size(kAllMetrics); ++i) {
      instruments_.latency_by_metric[i] = registry->GetHistogram(
          latency_name, latency_help, {{"metric", MetricName(kAllMetrics[i])}});
    }
    for (int phase = 0; phase < kNumPhases; ++phase) {
      instruments_.phases[phase] = registry->GetHistogram(
          "hcd_server_phase_seconds",
          "Per-phase share of each served query's latency.",
          {{"phase", PhaseName(phase)}});
    }
    instruments_.queue_depth = registry->GetGauge(
        "hcd_server_queue_depth",
        "Accepted connections waiting for a worker.");
    instruments_.inflight = registry->GetGauge(
        "hcd_server_inflight",
        "Requests currently between frame read and response write.");
    instruments_.queue_depth->Set(0.0);
    instruments_.inflight->Set(0.0);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  if (::listen(listen_fd_, options_.max_pending + options_.workers + 16) != 0) {
    const std::string message = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (!options_.slow_log_path.empty()) {
    SlowQueryLog::Options log_options;
    log_options.path = options_.slow_log_path;
    slow_log_ = std::make_unique<SlowQueryLog>(log_options);
    if (Status status = slow_log_->Start(); !status.ok()) {
      slow_log_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  }

  start_steady_ns_ = SteadyNowNs();
  start_unix_ms_ = UnixNowMs();
  // Seed the window ring so the first ticker push already yields a delta.
  windows_.Push(CaptureSample());

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  stats_ticker_ = std::thread([this] { StatsTickerLoop(); });
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  {
    // Taken so the ticker is either still before its predicate check (and
    // will see stop_) or inside the wait (and will get the notify) — never
    // in the unlocked gap where the notify would be lost for a full tick.
    std::lock_guard<std::mutex> lock(ticker_mu_);
  }
  ticker_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (stats_ticker_.joinable()) stats_ticker_.join();
  // Connections still pending were never owned by a worker: shed them.
  // The registry's overload counter moves in lockstep with the atomic so
  // the two views cannot drift across a shutdown.
  for (const PendingConn& conn : pending_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (instruments_.overload != nullptr) instruments_.overload->Increment();
    WriteFrame(conn.fd, EncodeStatusOnlyResponse(ResponseStatus::kOverloaded));
    ::close(conn.fd);
  }
  pending_.clear();
  if (instruments_.queue_depth != nullptr) instruments_.queue_depth->Set(0.0);
  if (slow_log_ != nullptr) slow_log_->Stop();
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void QueryServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool admitted = false;
    {
      // Admission: there is an idle worker to take the connection now, or
      // room in the bounded pending queue. Everything else is shed.
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() <
          idle_workers_ + static_cast<size_t>(options_.max_pending)) {
        pending_.push_back({fd, StampNow(Tracer::Current())});
        if (instruments_.queue_depth != nullptr) {
          instruments_.queue_depth->Set(static_cast<double>(pending_.size()));
        }
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.overload != nullptr) instruments_.overload->Increment();
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kOverloaded));
      ::close(fd);
    }
  }
}

void QueryServer::WorkerLoop() {
  // Worker-owned serve state, created once per worker lifetime: the
  // epoch-cached snapshot reader, the reusable scoring workspaces and the
  // timing scratch (instruments were already resolved at Start).
  WorkerContext ctx(*manager_);
  while (true) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      ++idle_workers_;
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      --idle_workers_;
      if (stop_.load(std::memory_order_relaxed)) return;
      conn = pending_.front();
      pending_.pop_front();
      ctx.queue_depth = pending_.size();
      if (instruments_.queue_depth != nullptr) {
        instruments_.queue_depth->Set(static_cast<double>(pending_.size()));
      }
    }
    ctx.conn_enqueue_ns = conn.enqueue_ns;
    ctx.conn_queue_ns =
        StampDelta(conn.enqueue_ns, StampNow(Tracer::Current()));
    ctx.first_request = true;
    connections_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(conn.fd, &ctx);
    ::close(conn.fd);
  }
}

void QueryServer::ServeConnection(int fd, WorkerContext* ctx) {
  std::string payload;
  while (!stop_.load(std::memory_order_relaxed)) {
    const ReadResult read = ReadFrame(fd, stop_, &payload);
    if (read == ReadResult::kClosed || read == ReadResult::kStopped) return;
    // t0 anchors the request's stamp chain: everything from here to the
    // response write is attributed to exactly one phase.
    Tracer* const tracer = Tracer::Current();
    const uint64_t t0 = StampNow(tracer);
    if (read == ReadResult::kError) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.bad_requests != nullptr) {
        instruments_.bad_requests->Increment();
      }
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kBadRequest));
      return;
    }
    MessageType type;
    if (!DecodeRequestType(payload, &type)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.bad_requests != nullptr) {
        instruments_.bad_requests->Increment();
      }
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kBadRequest));
      return;
    }
    if (type == MessageType::kMetrics) {
      metrics_requests_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry* registry = MetricsRegistry::Current();
      const std::string text =
          registry != nullptr ? registry->RenderPrometheus() : std::string();
      if (!WriteFrame(fd, EncodeMetricsResponse(text))) return;
      continue;
    }
    if (type == MessageType::kStats) {
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      if (!WriteFrame(fd, EncodeMetricsResponse(RenderStatsJson()))) return;
      continue;
    }
    QueryRequest request;
    if (!DecodeQueryRequest(payload, &request)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.bad_requests != nullptr) {
        instruments_.bad_requests->Increment();
      }
      WriteFrame(fd, EncodeStatusOnlyResponse(ResponseStatus::kBadRequest));
      return;
    }
    const uint64_t t1 = StampNow(tracer);  // decode done
    if (!AnswerQuery(fd, request, ctx, t0, t1, tracer)) return;
  }
}

bool QueryServer::AnswerQuery(int fd, const QueryRequest& request,
                              WorkerContext* ctx, uint64_t t0, uint64_t t1,
                              Tracer* tracer) {
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (instruments_.inflight != nullptr) {
    instruments_.inflight->Set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  }
  // The generation this request is answered on is fixed here: a publish
  // racing with the request leaves this query on its acquired snapshot,
  // and the cache refuses to mix the two epochs.
  const QuerySnapshot snapshot = ctx->reader.Snapshot();
  const uint64_t epoch = snapshot.epoch();
  // Element requests route to the static element index when its kind
  // matches; otherwise they answer found = false (the default outcome) so
  // a client can probe what the server has loaded without being dropped.
  const ElementSearchIndex* element_index =
      request.hierarchy != HierarchyKind::kCore &&
              options_.element_index != nullptr &&
              options_.element_index->kind() == request.hierarchy
          ? options_.element_index
          : nullptr;

  CachedResult result;
  bool hit = false;
  std::string key;
  if (cache_ != nullptr) {
    key = CacheKeyFor(request);
    hit = cache_->Lookup(epoch, key, &result);
  }
  const uint64_t t2 = StampNow(tracer);  // snapshot + cache resolved
  if (!hit) {
    QueryOutcome outcome;
    if (request.hierarchy == HierarchyKind::kCore) {
      outcome = ExecuteQuery(snapshot, request, &ctx->ws);
    } else if (element_index != nullptr) {
      outcome = ExecuteElementQuery(*element_index, request, epoch);
    } else {
      outcome.epoch = epoch;  // unserved kind: found stays false
    }
    result = {outcome.epoch, outcome.found, outcome.node,
              outcome.level, outcome.core_size, outcome.score};
    if (cache_ != nullptr) cache_->Insert(epoch, key, result);
  }

  QueryResponse response;
  response.status = ResponseStatus::kOk;
  response.epoch = epoch;
  response.cache_hit = hit;
  response.found = result.found;
  response.level = result.level;
  response.core_size = result.core_size;
  response.score = result.score;
  if (result.found && request.max_return_vertices > 0) {
    if (element_index != nullptr) {
      // Element communities echo their member graph vertices (sorted),
      // materialized per request into the worker's stamp workspace.
      element_index->CommunityOf(result.node, &ctx->ews, &response.vertices);
      if (response.vertices.size() > request.max_return_vertices) {
        response.vertices.resize(request.max_return_vertices);
      }
    } else {
      // Node ids in the cache are valid exactly for `epoch`, which is the
      // generation `snapshot` holds, so this span cannot dangle.
      const std::span<const VertexId> members =
          snapshot.CoreVertices(result.node);
      const size_t count =
          std::min<size_t>(request.max_return_vertices, members.size());
      response.vertices.assign(members.begin(), members.begin() + count);
    }
  }
  const uint64_t t3 = StampNow(tracer);  // scored + vertices materialized

  // The request/hit counters precede the response on the wire: a client
  // that fetches metrics right after reading its last response must see
  // every answered request counted (the CI smoke pins the exact total).
  // The latency/phase recording stays after the write so it covers it.
  const uint64_t seq = requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (response.cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (instruments_.requests != nullptr) {
    instruments_.requests->Increment();
    if (response.cache_hit) instruments_.cache_hits->Increment();
  }

  const bool ok = WriteFrame(fd, EncodeQueryResponse(response));
  const uint64_t t4 = StampNow(tracer);  // response on the wire

  const uint64_t stamps[5] = {t0, t1, t2, t3, t4};
  RecordRequestObservability(request, response, ctx, seq, stamps, tracer);

  inflight_.fetch_sub(1, std::memory_order_relaxed);
  if (instruments_.inflight != nullptr) {
    instruments_.inflight->Set(
        static_cast<double>(inflight_.load(std::memory_order_relaxed)));
  }
  return ok;
}

void QueryServer::RecordRequestObservability(const QueryRequest& request,
                                             const QueryResponse& response,
                                             WorkerContext* ctx, uint64_t seq,
                                             const uint64_t stamps[5],
                                             Tracer* tracer) {
  RequestTimings& timings = ctx->timings;
  timings.ResetPhases();
  timings.trace_id = request.trace_id;
  timings.sampled = request.sampled;
  timings.queue_ns = ctx->first_request ? ctx->conn_queue_ns : 0;
  timings.decode_ns = StampDelta(stamps[0], stamps[1]);
  timings.cache_ns = StampDelta(stamps[1], stamps[2]);
  timings.search_ns = StampDelta(stamps[2], stamps[3]);
  timings.encode_ns = StampDelta(stamps[3], stamps[4]);

  const double total_seconds = static_cast<double>(timings.TotalNs()) * 1e-9;
  const double phase_seconds[kNumPhases] = {
      static_cast<double>(timings.queue_ns) * 1e-9,
      static_cast<double>(timings.decode_ns) * 1e-9,
      static_cast<double>(timings.cache_ns) * 1e-9,
      static_cast<double>(timings.search_ns) * 1e-9,
      static_cast<double>(timings.encode_ns) * 1e-9,
  };
  // The always-on mirrors feed the kStats windows whether or not a
  // registry is installed; the registry instruments see the same values.
  latency_hist_.Observe(total_seconds);
  for (int phase = 0; phase < kNumPhases; ++phase) {
    phase_hist_[phase].Observe(phase_seconds[phase]);
  }
  if (instruments_.requests != nullptr) {
    instruments_.latency->Observe(total_seconds);
    instruments_.latency_by_metric[static_cast<size_t>(request.metric)]
        ->Observe(total_seconds);
    for (int phase = 0; phase < kNumPhases; ++phase) {
      instruments_.phases[phase]->Observe(phase_seconds[phase]);
    }
  }

  if (tracer != nullptr) {
    const std::string trace_hex = TraceIdHex(timings.trace_id);
    const auto record = [&](const char* name, uint64_t ts, uint64_t dur) {
      TraceSpan span;
      span.name = name;
      span.ts_ns = ts;
      span.dur_ns = dur;
      span.args.push_back({"trace_id", 0, trace_hex, true});
      tracer->RecordSpan(std::move(span));
    };
    if (ctx->first_request && ctx->conn_queue_ns > 0) {
      // The connection's pending-queue wait, deferred to its first request
      // so the span can carry that request's trace id.
      record("serve.queue", ctx->conn_enqueue_ns, ctx->conn_queue_ns);
    }
    record("serve.decode", stamps[0], timings.decode_ns);
    record("serve.cache", stamps[1], timings.cache_ns);
    record("serve.search", stamps[2], timings.search_ns);
    record("serve.encode", stamps[3], timings.encode_ns);
    TraceSpan root;
    root.name = "serve.request";
    root.ts_ns = stamps[0];
    root.dur_ns = StampDelta(stamps[0], stamps[4]);
    root.args.push_back({"trace_id", 0, trace_hex, true});
    root.args.push_back(
        {"sampled", timings.sampled ? uint64_t{1} : uint64_t{0}, "", false});
    root.args.push_back(
        {"cache_hit", response.cache_hit ? uint64_t{1} : uint64_t{0}, "",
         false});
    root.args.push_back({"epoch", response.epoch, "", false});
    tracer->RecordSpan(std::move(root));
  }

  if (slow_log_ != nullptr) {
    const double total_ms = static_cast<double>(timings.TotalNs()) * 1e-6;
    const bool slow =
        options_.slow_query_ms >= 0 && total_ms >= options_.slow_query_ms;
    const bool sampled_log =
        options_.slow_log_sample_every > 0 &&
        seq % static_cast<uint64_t>(options_.slow_log_sample_every) == 0;
    if (slow || sampled_log) {
      const bool element_served =
          options_.element_index != nullptr &&
          options_.element_index->kind() == request.hierarchy;
      SlowLogRecord record;
      record.ts_unix_ms = UnixNowMs();
      record.reason = slow ? "slow" : "sampled";
      record.regime = RegimeName(request, element_served);
      record.hierarchy = request.hierarchy;
      record.metric = request.metric;
      record.k = request.k;
      record.cache_hit = response.cache_hit;
      record.found = response.found;
      record.overloaded = ctx->queue_depth > 0;
      record.epoch = response.epoch;
      record.queue_depth = ctx->queue_depth;
      record.timings = timings;
      if (!slow_log_->Append(FormatSlowLogRecord(record)) &&
          instruments_.slow_log_dropped != nullptr) {
        instruments_.slow_log_dropped->Increment();
      }
    }
  }
  ctx->first_request = false;
}

void QueryServer::StatsTickerLoop() {
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    ticker_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.stats_tick_millis),
        [this] { return stop_.load(std::memory_order_relaxed); });
    if (stop_.load(std::memory_order_relaxed)) return;
    windows_.Push(CaptureSample());
  }
}

WindowSample QueryServer::CaptureSample() const {
  WindowSample sample;
  sample.at_seconds = static_cast<double>(SteadyNowNs()) * 1e-9;
  sample.counters.resize(kNumWindowCounters);
  sample.counters[kWinRequests] = requests_.load(std::memory_order_relaxed);
  sample.counters[kWinCacheHits] =
      cache_hits_.load(std::memory_order_relaxed);
  sample.counters[kWinBadRequests] =
      bad_requests_.load(std::memory_order_relaxed);
  sample.counters[kWinShed] = shed_.load(std::memory_order_relaxed);
  sample.counters[kWinConnections] =
      connections_.load(std::memory_order_relaxed);
  sample.histograms.reserve(1 + kNumPhases);
  sample.histograms.push_back(SampleHistogram(latency_hist_));
  for (int phase = 0; phase < kNumPhases; ++phase) {
    sample.histograms.push_back(SampleHistogram(phase_hist_[phase]));
  }
  return sample;
}

namespace {

/// `{"count":N,"mean_us":...,"p50_us":...,"p95_us":...,"p99_us":...}` for
/// one histogram sample (a windowed delta or a cumulative snapshot).
std::string QuantilesJson(const HistogramSample& sample) {
  const uint64_t count = sample.TotalCount();
  const double mean =
      count > 0 ? sample.sum_seconds / static_cast<double>(count) : 0.0;
  std::string out = "{\"count\":";
  out += std::to_string(count);
  out += ",\"mean_us\":";
  out += StatsDouble(mean * 1e6);
  out += ",\"p50_us\":";
  out += StatsDouble(SampleQuantile(sample, 0.5) * 1e6);
  out += ",\"p95_us\":";
  out += StatsDouble(SampleQuantile(sample, 0.95) * 1e6);
  out += ",\"p99_us\":";
  out += StatsDouble(SampleQuantile(sample, 0.99) * 1e6);
  out += '}';
  return out;
}

uint64_t WinCounter(const WindowSample& sample, size_t index) {
  return index < sample.counters.size() ? sample.counters[index] : 0;
}

const HistogramSample& WinHistogram(const WindowSample& sample, size_t index) {
  static const HistogramSample kEmpty;
  return index < sample.histograms.size() ? sample.histograms[index] : kEmpty;
}

}  // namespace

std::string QueryServer::RenderStatsJson() const {
  const ServerStats totals = stats();
  std::string out;
  out.reserve(2048);
  out += "{\"server\":{\"start_unix_ms\":";
  out += std::to_string(start_unix_ms_);
  out += ",\"uptime_seconds\":";
  out += StatsDouble(static_cast<double>(SteadyNowNs() - start_steady_ns_) *
                     1e-9);
  out += ",\"workers\":";
  out += std::to_string(options_.workers);
  out += ",\"epoch\":";
  out += std::to_string(manager_->Epoch());
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    out += ",\"queue_depth\":";
    out += std::to_string(pending_.size());
  }
  out += ",\"inflight\":";
  out += std::to_string(
      std::max<int64_t>(0, inflight_.load(std::memory_order_relaxed)));
  out += ",\"totals\":{\"requests\":";
  out += std::to_string(totals.requests);
  out += ",\"cache_hits\":";
  out += std::to_string(totals.cache_hits);
  out += ",\"metrics_requests\":";
  out += std::to_string(totals.metrics_requests);
  out += ",\"stats_requests\":";
  out += std::to_string(totals.stats_requests);
  out += ",\"bad_requests\":";
  out += std::to_string(totals.bad_requests);
  out += ",\"shed\":";
  out += std::to_string(totals.shed);
  out += ",\"connections\":";
  out += std::to_string(totals.connections);
  out += ",\"slow_log_appended\":";
  out += std::to_string(slow_log_ != nullptr ? slow_log_->appended() : 0);
  out += ",\"slow_log_written\":";
  out += std::to_string(slow_log_ != nullptr ? slow_log_->written() : 0);
  out += ",\"slow_log_dropped\":";
  out += std::to_string(slow_log_ != nullptr ? slow_log_->dropped() : 0);
  out += "}},\"windows\":[";
  // The windows are deltas between ring samples, so each reflects exactly
  // the requests that completed inside its span (its `seconds` reports the
  // real time covered, which also keeps the rates honest if a tick slips).
  static constexpr size_t kWindowTicks[] = {1, 10, 60};
  bool first = true;
  for (const size_t ticks : kWindowTicks) {
    WindowSample delta;
    if (!windows_.Delta(ticks, &delta)) continue;
    const double span =
        delta.at_seconds > 0 ? delta.at_seconds : 1e-9;  // div-by-zero guard
    const uint64_t requests = WinCounter(delta, kWinRequests);
    const uint64_t bad = WinCounter(delta, kWinBadRequests);
    const uint64_t shed = WinCounter(delta, kWinShed);
    const uint64_t connections = WinCounter(delta, kWinConnections);
    if (!first) out += ',';
    first = false;
    out += "{\"label\":\"";
    out += StatsDouble(static_cast<double>(ticks) *
                       static_cast<double>(options_.stats_tick_millis) / 1e3);
    out += "s\",\"ticks\":";
    out += std::to_string(ticks);
    out += ",\"seconds\":";
    out += StatsDouble(delta.at_seconds);
    out += ",\"qps\":";
    out += StatsDouble(static_cast<double>(requests) / span);
    out += ",\"error_rate\":";
    out += StatsDouble(static_cast<double>(bad) /
                       static_cast<double>(std::max<uint64_t>(requests + bad,
                                                              1)));
    out += ",\"shed_rate\":";
    out += StatsDouble(
        static_cast<double>(shed) /
        static_cast<double>(std::max<uint64_t>(connections + shed, 1)));
    out += ",\"cache_hit_rate\":";
    out += StatsDouble(static_cast<double>(WinCounter(delta, kWinCacheHits)) /
                       static_cast<double>(std::max<uint64_t>(requests, 1)));
    out += ",\"latency_us\":";
    out += QuantilesJson(WinHistogram(delta, 0));
    out += ",\"phases_us\":{";
    for (int phase = 0; phase < kNumPhases; ++phase) {
      if (phase > 0) out += ',';
      out += '"';
      out += PhaseName(phase);
      out += "\":";
      out += QuantilesJson(WinHistogram(delta, 1 + static_cast<size_t>(phase)));
    }
    out += "}}";
  }
  // Lifetime totals over the same histograms, for tools (serve-bench's
  // --server-phase-report) that want attribution across a whole run.
  out += "],\"total\":{\"latency_us\":";
  out += QuantilesJson(SampleHistogram(latency_hist_));
  out += ",\"phases_us\":{";
  for (int phase = 0; phase < kNumPhases; ++phase) {
    if (phase > 0) out += ',';
    out += '"';
    out += PhaseName(phase);
    out += "\":";
    out += QuantilesJson(SampleHistogram(phase_hist_[phase]));
  }
  out += "}}}";
  return out;
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.metrics_requests = metrics_requests_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.connections = connections_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hcd::server
