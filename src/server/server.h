#ifndef HCD_SERVER_SERVER_H_
#define HCD_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rolling_window.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/live.h"
#include "engine/snapshot.h"
#include "search/element_search.h"
#include "search/search_index.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/slow_log.h"

namespace hcd::server {

/// One evaluated query, before response encoding. `epoch` is always the
/// generation of the snapshot that answered (found or not).
struct QueryOutcome {
  uint64_t epoch = 0;
  bool found = false;
  TreeNodeId node = kInvalidNode;
  uint32_t level = 0;
  uint64_t core_size = 0;
  double score = 0.0;
};

/// Evaluates one protocol query against `snapshot`, the single scoring
/// path the server, serve-bench's self mode and the soak tests share:
///
///   - empty vertex set, k == 0: QuerySnapshot-equivalent global best
///     (bit-identical to SearchInto on the same snapshot);
///   - empty vertex set, k > 0: best-scoring node among those of level
///     >= k (first such node wins ties, matching SearchInto's order);
///   - non-empty vertex set: the k-core containing all listed vertices
///     (NodeOfKCoreContainingAll ancestor walks), scored under the
///     requested metric in O(1) from the eager primary values.
///
/// Reads only const snapshot state; any number of threads may call it
/// concurrently, each with its own workspace.
QueryOutcome ExecuteQuery(const QuerySnapshot& snapshot,
                          const QueryRequest& request, SearchWorkspace* ws);

/// Evaluates one element-hierarchy query (request.hierarchy is truss or
/// nucleus) against an ElementSearchIndex, mirroring ExecuteQuery's three
/// regimes with `request.vertices` carrying element ids:
///
///   - empty ids, k == 0: the globally densest community (Densest);
///   - empty ids, k > 0: the densest community of level >= k
///     (DensestAtLeast, same first-node-wins tie order);
///   - non-empty ids: the community containing all listed elements
///     (NodeOfKCoreContainingAll ancestor walks over element ids), scored
///     by its precomputed density.
///
/// Out-of-range element ids answer found = false. `epoch` stamps the
/// outcome (the index is static; the server passes the current snapshot
/// generation so the result cache keys uniformly). Reads only const index
/// state; safe for any number of concurrent callers.
QueryOutcome ExecuteElementQuery(const ElementSearchIndex& index,
                                 const QueryRequest& request, uint64_t epoch);

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back from
  /// port() after Start). The server is loopback-only by design — it is a
  /// serving-stack testbed, not a hardened public front door.
  uint16_t port = 0;
  /// Fixed worker pool size; 0 = hardware threads. Each worker owns a
  /// SnapshotReader, a reusable SearchWorkspace and pre-resolved
  /// instruments, and serves one connection at a time to completion.
  int workers = 0;
  /// Admission control: accepted connections waiting for a worker beyond
  /// this bound are shed with a kOverloaded frame and closed.
  int max_pending = 64;
  /// Serve results through the epoch-keyed ResultCache.
  bool cache = true;
  ResultCache::Options cache_options;
  /// Optional element-hierarchy index (truss or nucleus) served alongside
  /// the core snapshots; must outlive the server. Requests whose hierarchy
  /// byte matches its kind are answered by ExecuteElementQuery; element
  /// requests for any other kind (or when this is null) answer
  /// found = false without closing the connection, so one client can probe
  /// what the server has loaded. The index is static across publishes —
  /// its answers are cached under the current core-snapshot epoch.
  const ElementSearchIndex* element_index = nullptr;
  /// Slow-query logging: with a non-empty `slow_log_path`, a request whose
  /// total (queue wait + work) exceeds `slow_query_ms` milliseconds
  /// appends one JSONL record (0 logs every request; negative disables
  /// the threshold entirely, leaving only sampling).
  double slow_query_ms = -1.0;
  std::string slow_log_path;
  /// Deterministic always-sample riding on the slow log: every Nth request
  /// (by the global request counter) logs with reason "sampled" even when
  /// fast, so the log shows the healthy baseline next to the outliers.
  /// 0 disables sampling.
  int slow_log_sample_every = 1024;
  /// Cadence of the rolling-window ticker behind the kStats message, in
  /// milliseconds. The window ring holds 61 ticks, so at the default
  /// 1000 ms the "60-tick" window spans one minute. Tests shrink this to
  /// exercise windows without sleeping for real minutes.
  int stats_tick_millis = 1000;
};

/// Counters mirrored into the metrics registry (kept as plain atomics too
/// so tests and serve-bench's self mode can read them without a registry).
struct ServerStats {
  uint64_t requests = 0;       ///< query requests answered
  uint64_t cache_hits = 0;     ///< answered from the result cache
  uint64_t metrics_requests = 0;
  uint64_t stats_requests = 0; ///< kStats snapshots served
  uint64_t bad_requests = 0;   ///< malformed frames (connection closed)
  uint64_t shed = 0;           ///< connections refused by admission control
  uint64_t connections = 0;    ///< connections handed to workers
};

/// Blocking-socket query server over a SnapshotManager: one accept loop,
/// a bounded pending-connection queue, and a fixed worker pool. A worker
/// pops a connection and answers its length-prefixed requests in order
/// until the peer closes (clients may pipeline many frames; each is
/// answered as soon as it is read, so a batch of requests costs one
/// round trip). Publishing a new generation through the manager never
/// blocks the server: workers pick up the new epoch on their next
/// request via their SnapshotReader, in-flight queries finish on the
/// generation they acquired, and the result cache invalidates itself
/// wholesale per shard on first sight of the new epoch.
///
/// With a MetricsRegistry installed, Start() resolves (once, never per
/// request, and before any server thread exists so the registry can never
/// drift from the plain-atomic ServerStats mirror): counters
/// hcd_server_requests_total, hcd_server_cache_hits_total,
/// hcd_server_overload_total, hcd_server_bad_requests_total,
/// hcd_server_slow_log_dropped_total, hcd_trace_dropped_spans_total, the
/// hcd_query_latency_seconds histogram family (one unlabeled series plus
/// one {metric=...} child per metric), the per-phase
/// hcd_server_phase_seconds{phase=queue|decode|cache|search|encode}
/// histograms, and the hcd_server_queue_depth / hcd_server_inflight
/// gauges. The kMetrics endpoint serves the installed registry's
/// Prometheus rendering.
///
/// Request-scoped observability (docs/OBSERVABILITY.md "Request-scoped
/// serving"): every query is timed with consecutive monotonic stamps so
/// its decode/cache/search/encode phases sum exactly to its wall time
/// (plus the connection's pending-queue wait, attributed to the first
/// request). The per-phase histograms and an internal always-on mirror
/// feed both the slow-query log and the kStats rolling windows; with a
/// Tracer installed each request additionally records a `serve.request`
/// span plus one span per phase, all carrying the request's wire trace id,
/// so the client's `client.query` lane and the server's lanes pair up in
/// one Perfetto view.
class QueryServer {
 public:
  /// The manager must outlive the server. Does not listen yet.
  QueryServer(const SnapshotManager* manager, ServerOptions options);

  /// Stops and joins if still running.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept loop and worker pool. Errors
  /// (port in use, ...) are returned, not aborted on.
  Status Start();

  /// Stops accepting, drains workers and joins all threads. Idempotent.
  /// In-flight requests finish; connections waiting in the pending queue
  /// are shed.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  int workers() const { return static_cast<int>(workers_.size()); }

  ServerStats stats() const;
  /// Null when ServerOptions::cache is false.
  const ResultCache* cache() const { return cache_.get(); }
  /// Null unless ServerOptions::slow_log_path is set.
  const SlowQueryLog* slow_log() const { return slow_log_.get(); }

  /// The kStats JSON document: lifetime totals plus rolling 1/10/60-tick
  /// windows of QPS, error/shed/cache-hit rates and per-phase latency
  /// quantiles derived from windowed histogram deltas. Callable from any
  /// thread while the server runs (the wire kStats handler is exactly
  /// this).
  std::string RenderStatsJson() const;

  /// Request phases in wire/report order; indexes the phase histograms.
  enum Phase { kQueue = 0, kDecode, kCache, kSearch, kEncode, kNumPhases };
  static const char* PhaseName(int phase);

 private:
  /// Instrument pointers resolved once at Start so the per-request path
  /// performs zero registry lookups (latency_by_metric indexed by Metric
  /// value, phases by Phase).
  struct Instruments {
    Counter* requests = nullptr;
    Counter* cache_hits = nullptr;
    Counter* overload = nullptr;
    Counter* bad_requests = nullptr;
    Counter* slow_log_dropped = nullptr;
    Histogram* latency = nullptr;
    std::vector<Histogram*> latency_by_metric;
    Histogram* phases[kNumPhases] = {};
    Gauge* queue_depth = nullptr;
    Gauge* inflight = nullptr;
  };

  /// One accepted connection waiting for a worker, stamped at admission
  /// so the worker that pops it can attribute the queue wait.
  struct PendingConn {
    int fd = -1;
    uint64_t enqueue_ns = 0;
  };

  /// Worker-owned serve state, created once per worker lifetime and
  /// reused across connections and requests (the RequestTimings scratch is
  /// the "reusable per-worker" struct the slow log and spans fill from).
  struct WorkerContext {
    explicit WorkerContext(const SnapshotManager& manager)
        : reader(manager) {}
    SnapshotReader reader;
    SearchWorkspace ws;
    ElementWorkspace ews;
    RequestTimings timings;
    uint64_t conn_enqueue_ns = 0;  ///< current connection's admission stamp
    uint64_t conn_queue_ns = 0;    ///< its pending-queue wait
    uint64_t queue_depth = 0;      ///< pending depth seen when it was popped
    bool first_request = false;    ///< queue wait not yet attributed
  };

  void AcceptLoop();
  void WorkerLoop();
  void StatsTickerLoop();
  /// One cumulative sample of the window counters and histograms.
  WindowSample CaptureSample() const;
  /// Serves one connection to completion; returns on EOF, error, or stop.
  void ServeConnection(int fd, WorkerContext* ctx);
  /// Answers one already-decoded query request on `fd`. `t0`/`t1` continue
  /// the caller's stamp chain (frame read done / decode done) on the clock
  /// `tracer` implies, so phase durations sum exactly to the total.
  bool AnswerQuery(int fd, const QueryRequest& request, WorkerContext* ctx,
                   uint64_t t0, uint64_t t1, Tracer* tracer);
  /// Post-response bookkeeping: phase histograms, spans, slow log. The
  /// request/hit counters are incremented by the caller BEFORE the
  /// response is written (so an exact count fetched over the wire never
  /// under-reads); `seq` is that increment's 1-based sequence number,
  /// which keys the deterministic slow-log sampling. `stamps` holds the
  /// request's five consecutive clock stamps t0..t4 (frame read /
  /// decoded / cache resolved / scored / response written).
  void RecordRequestObservability(const QueryRequest& request,
                                  const QueryResponse& response,
                                  WorkerContext* ctx, uint64_t seq,
                                  const uint64_t stamps[5], Tracer* tracer);

  const SnapshotManager* manager_;
  ServerOptions options_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<SlowQueryLog> slow_log_;
  Instruments instruments_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> pending_;  ///< accepted conns awaiting a worker
  size_t idle_workers_ = 0;   ///< workers parked in WorkerLoop's wait

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::thread stats_ticker_;
  mutable std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;

  /// Always-on mirrors of the latency and phase histograms (observed next
  /// to the registry instruments): the kStats windows and totals read
  /// these, so live introspection works with or without a registry.
  Histogram latency_hist_;
  Histogram phase_hist_[kNumPhases];
  RollingWindow windows_;
  uint64_t start_steady_ns_ = 0;   ///< uptime origin
  uint64_t start_unix_ms_ = 0;     ///< wall-clock stamp of Start()

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> metrics_requests_{0};
  std::atomic<uint64_t> stats_requests_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<int64_t> inflight_{0};  ///< requests between decode and write
};

}  // namespace hcd::server

#endif  // HCD_SERVER_SERVER_H_
