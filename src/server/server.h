#ifndef HCD_SERVER_SERVER_H_
#define HCD_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/live.h"
#include "engine/snapshot.h"
#include "search/element_search.h"
#include "search/search_index.h"
#include "server/protocol.h"
#include "server/result_cache.h"

namespace hcd::server {

/// One evaluated query, before response encoding. `epoch` is always the
/// generation of the snapshot that answered (found or not).
struct QueryOutcome {
  uint64_t epoch = 0;
  bool found = false;
  TreeNodeId node = kInvalidNode;
  uint32_t level = 0;
  uint64_t core_size = 0;
  double score = 0.0;
};

/// Evaluates one protocol query against `snapshot`, the single scoring
/// path the server, serve-bench's self mode and the soak tests share:
///
///   - empty vertex set, k == 0: QuerySnapshot-equivalent global best
///     (bit-identical to SearchInto on the same snapshot);
///   - empty vertex set, k > 0: best-scoring node among those of level
///     >= k (first such node wins ties, matching SearchInto's order);
///   - non-empty vertex set: the k-core containing all listed vertices
///     (NodeOfKCoreContainingAll ancestor walks), scored under the
///     requested metric in O(1) from the eager primary values.
///
/// Reads only const snapshot state; any number of threads may call it
/// concurrently, each with its own workspace.
QueryOutcome ExecuteQuery(const QuerySnapshot& snapshot,
                          const QueryRequest& request, SearchWorkspace* ws);

/// Evaluates one element-hierarchy query (request.hierarchy is truss or
/// nucleus) against an ElementSearchIndex, mirroring ExecuteQuery's three
/// regimes with `request.vertices` carrying element ids:
///
///   - empty ids, k == 0: the globally densest community (Densest);
///   - empty ids, k > 0: the densest community of level >= k
///     (DensestAtLeast, same first-node-wins tie order);
///   - non-empty ids: the community containing all listed elements
///     (NodeOfKCoreContainingAll ancestor walks over element ids), scored
///     by its precomputed density.
///
/// Out-of-range element ids answer found = false. `epoch` stamps the
/// outcome (the index is static; the server passes the current snapshot
/// generation so the result cache keys uniformly). Reads only const index
/// state; safe for any number of concurrent callers.
QueryOutcome ExecuteElementQuery(const ElementSearchIndex& index,
                                 const QueryRequest& request, uint64_t epoch);

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back from
  /// port() after Start). The server is loopback-only by design — it is a
  /// serving-stack testbed, not a hardened public front door.
  uint16_t port = 0;
  /// Fixed worker pool size; 0 = hardware threads. Each worker owns a
  /// SnapshotReader, a reusable SearchWorkspace and pre-resolved
  /// instruments, and serves one connection at a time to completion.
  int workers = 0;
  /// Admission control: accepted connections waiting for a worker beyond
  /// this bound are shed with a kOverloaded frame and closed.
  int max_pending = 64;
  /// Serve results through the epoch-keyed ResultCache.
  bool cache = true;
  ResultCache::Options cache_options;
  /// Optional element-hierarchy index (truss or nucleus) served alongside
  /// the core snapshots; must outlive the server. Requests whose hierarchy
  /// byte matches its kind are answered by ExecuteElementQuery; element
  /// requests for any other kind (or when this is null) answer
  /// found = false without closing the connection, so one client can probe
  /// what the server has loaded. The index is static across publishes —
  /// its answers are cached under the current core-snapshot epoch.
  const ElementSearchIndex* element_index = nullptr;
};

/// Counters mirrored into the metrics registry (kept as plain atomics too
/// so tests and serve-bench's self mode can read them without a registry).
struct ServerStats {
  uint64_t requests = 0;       ///< query requests answered
  uint64_t cache_hits = 0;     ///< answered from the result cache
  uint64_t metrics_requests = 0;
  uint64_t bad_requests = 0;   ///< malformed frames (connection closed)
  uint64_t shed = 0;           ///< connections refused by admission control
  uint64_t connections = 0;    ///< connections handed to workers
};

/// Blocking-socket query server over a SnapshotManager: one accept loop,
/// a bounded pending-connection queue, and a fixed worker pool. A worker
/// pops a connection and answers its length-prefixed requests in order
/// until the peer closes (clients may pipeline many frames; each is
/// answered as soon as it is read, so a batch of requests costs one
/// round trip). Publishing a new generation through the manager never
/// blocks the server: workers pick up the new epoch on their next
/// request via their SnapshotReader, in-flight queries finish on the
/// generation they acquired, and the result cache invalidates itself
/// wholesale per shard on first sight of the new epoch.
///
/// With a MetricsRegistry installed, Start() resolves (once, never per
/// request): counters hcd_server_requests_total,
/// hcd_server_cache_hits_total, hcd_server_overload_total,
/// hcd_server_bad_requests_total, and the hcd_query_latency_seconds
/// histogram family (one unlabeled series plus one {metric=...} child per
/// metric). The kMetrics endpoint serves the installed registry's
/// Prometheus rendering.
class QueryServer {
 public:
  /// The manager must outlive the server. Does not listen yet.
  QueryServer(const SnapshotManager* manager, ServerOptions options);

  /// Stops and joins if still running.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept loop and worker pool. Errors
  /// (port in use, ...) are returned, not aborted on.
  Status Start();

  /// Stops accepting, drains workers and joins all threads. Idempotent.
  /// In-flight requests finish; connections waiting in the pending queue
  /// are shed.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  int workers() const { return static_cast<int>(workers_.size()); }

  ServerStats stats() const;
  /// Null when ServerOptions::cache is false.
  const ResultCache* cache() const { return cache_.get(); }

 private:
  /// Per-metric histogram pointers indexed by Metric value, resolved at
  /// Start so the per-request path performs zero registry lookups.
  struct Instruments {
    Counter* requests = nullptr;
    Counter* cache_hits = nullptr;
    Counter* overload = nullptr;
    Counter* bad_requests = nullptr;
    Histogram* latency = nullptr;
    std::vector<Histogram*> latency_by_metric;
  };

  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection to completion; returns on EOF, error, or stop.
  void ServeConnection(int fd, SnapshotReader* reader, SearchWorkspace* ws,
                       ElementWorkspace* ews);
  /// Answers one already-decoded query request on `fd`.
  bool AnswerQuery(int fd, const QueryRequest& request, SnapshotReader* reader,
                   SearchWorkspace* ws, ElementWorkspace* ews);

  const SnapshotManager* manager_;
  ServerOptions options_;
  std::unique_ptr<ResultCache> cache_;
  Instruments instruments_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;   ///< accepted fds awaiting a worker
  size_t idle_workers_ = 0;   ///< workers parked in WorkerLoop's wait

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> metrics_requests_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> connections_{0};
};

}  // namespace hcd::server

#endif  // HCD_SERVER_SERVER_H_
