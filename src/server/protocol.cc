#include "server/protocol.h"

#include <algorithm>
#include <cstring>

namespace hcd::server {
namespace {

constexpr size_t kMetricCount = std::size(kAllMetrics);

void AppendU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian reader over one payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    *out = value;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::string_view Rest() const { return data_.substr(pos_); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

uint64_t DoubleBits(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  out.reserve(24 + 4 * request.vertices.size());
  AppendU8(&out, static_cast<uint8_t>(MessageType::kQuery));
  AppendU8(&out, static_cast<uint8_t>(request.metric));
  AppendU8(&out, static_cast<uint8_t>(request.hierarchy));
  AppendU32(&out, request.k);
  AppendU32(&out, request.max_return_vertices);
  AppendU32(&out, static_cast<uint32_t>(request.vertices.size()));
  for (const VertexId v : request.vertices) AppendU32(&out, v);
  if (request.trace_id != 0) {
    AppendU64(&out, request.trace_id);
    AppendU8(&out, request.sampled ? 1 : 0);
  }
  return out;
}

std::string EncodeMetricsRequest() {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(MessageType::kMetrics));
  return out;
}

std::string EncodeStatsRequest() {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(MessageType::kStats));
  return out;
}

std::string EncodeQueryResponse(const QueryResponse& response) {
  std::string out;
  out.reserve(35 + 4 * response.vertices.size());
  AppendU8(&out, static_cast<uint8_t>(response.status));
  if (response.status != ResponseStatus::kOk) return out;
  AppendU64(&out, response.epoch);
  AppendU8(&out, response.cache_hit ? 1 : 0);
  AppendU8(&out, response.found ? 1 : 0);
  AppendU32(&out, response.level);
  AppendU64(&out, response.core_size);
  AppendU64(&out, DoubleBits(response.score));
  AppendU32(&out, static_cast<uint32_t>(response.vertices.size()));
  for (const VertexId v : response.vertices) AppendU32(&out, v);
  return out;
}

std::string EncodeMetricsResponse(std::string_view prometheus_text) {
  std::string out;
  out.reserve(1 + prometheus_text.size());
  AppendU8(&out, static_cast<uint8_t>(ResponseStatus::kOk));
  out.append(prometheus_text);
  return out;
}

std::string EncodeStatusOnlyResponse(ResponseStatus status) {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(status));
  return out;
}

bool DecodeRequestType(std::string_view payload, MessageType* out) {
  if (payload.empty()) return false;
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  if (type != static_cast<uint8_t>(MessageType::kQuery) &&
      type != static_cast<uint8_t>(MessageType::kMetrics) &&
      type != static_cast<uint8_t>(MessageType::kStats)) {
    return false;
  }
  *out = static_cast<MessageType>(type);
  return true;
}

bool DecodeQueryRequest(std::string_view payload, QueryRequest* out) {
  Reader reader(payload);
  uint8_t type = 0;
  uint8_t metric = 0;
  uint8_t hierarchy = 0;
  uint32_t num_vertices = 0;
  if (!reader.ReadU8(&type) ||
      type != static_cast<uint8_t>(MessageType::kQuery) ||
      !reader.ReadU8(&metric) || metric >= kMetricCount ||
      !reader.ReadU8(&hierarchy) || !IsValidHierarchyKind(hierarchy) ||
      !reader.ReadU32(&out->k) || !reader.ReadU32(&out->max_return_vertices) ||
      !reader.ReadU32(&num_vertices)) {
    return false;
  }
  // The length prefix already bounds the frame, so the count can lie at
  // most kMaxPayloadBytes/4 — but it must match the bytes actually sent:
  // exactly the vertex array (version 1), or the vertex array plus the
  // nine-byte trace context (version 2).
  const size_t vertex_bytes = size_t{num_vertices} * 4;
  const size_t rest = reader.Rest().size();
  if (rest != vertex_bytes && rest != vertex_bytes + 9) return false;
  out->metric = kAllMetrics[metric];
  out->hierarchy = static_cast<HierarchyKind>(hierarchy);
  out->vertices.resize(num_vertices);
  for (uint32_t i = 0; i < num_vertices; ++i) {
    if (!reader.ReadU32(&out->vertices[i])) return false;
  }
  out->trace_id = 0;
  out->sampled = false;
  if (!reader.AtEnd()) {
    uint8_t sampled = 0;
    if (!reader.ReadU64(&out->trace_id) || !reader.ReadU8(&sampled) ||
        sampled > 1) {
      return false;
    }
    out->sampled = sampled != 0;
  }
  return reader.AtEnd();
}

bool DecodeQueryResponse(std::string_view payload, QueryResponse* out) {
  Reader reader(payload);
  uint8_t status = 0;
  if (!reader.ReadU8(&status) ||
      status > static_cast<uint8_t>(ResponseStatus::kBadRequest)) {
    return false;
  }
  out->status = static_cast<ResponseStatus>(status);
  if (out->status != ResponseStatus::kOk) return reader.AtEnd();
  uint8_t cache_hit = 0;
  uint8_t found = 0;
  uint64_t score_bits = 0;
  uint32_t num_vertices = 0;
  if (!reader.ReadU64(&out->epoch) || !reader.ReadU8(&cache_hit) ||
      !reader.ReadU8(&found) || !reader.ReadU32(&out->level) ||
      !reader.ReadU64(&out->core_size) || !reader.ReadU64(&score_bits) ||
      !reader.ReadU32(&num_vertices)) {
    return false;
  }
  if (reader.Rest().size() != size_t{num_vertices} * 4) return false;
  out->cache_hit = cache_hit != 0;
  out->found = found != 0;
  out->score = DoubleFromBits(score_bits);
  out->vertices.resize(num_vertices);
  for (uint32_t i = 0; i < num_vertices; ++i) {
    if (!reader.ReadU32(&out->vertices[i])) return false;
  }
  return reader.AtEnd();
}

bool DecodeMetricsResponse(std::string_view payload, ResponseStatus* status,
                           std::string* text) {
  Reader reader(payload);
  uint8_t raw = 0;
  if (!reader.ReadU8(&raw) ||
      raw > static_cast<uint8_t>(ResponseStatus::kBadRequest)) {
    return false;
  }
  *status = static_cast<ResponseStatus>(raw);
  text->assign(reader.Rest());
  return true;
}

void AppendFrame(std::string* out, std::string_view payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

std::string CacheKeyFor(const QueryRequest& request) {
  std::vector<VertexId> sorted(request.vertices);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key;
  key.reserve(6 + 4 * sorted.size());
  AppendU8(&key, static_cast<uint8_t>(request.metric));
  AppendU8(&key, static_cast<uint8_t>(request.hierarchy));
  AppendU32(&key, request.k);
  for (const VertexId v : sorted) AppendU32(&key, v);
  return key;
}

}  // namespace hcd::server
