#ifndef HCD_SERVER_RESULT_CACHE_H_
#define HCD_SERVER_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "hcd/forest.h"

namespace hcd::server {

/// One cached query answer. The tree node id is stored alongside the
/// scalar result so the responder can serve the core's vertex span in
/// O(1) from the snapshot of the same epoch — node ids are only
/// meaningful against the generation recorded in `epoch`, which is why
/// the cache never lets an entry cross generations.
struct CachedResult {
  uint64_t epoch = 0;
  bool found = false;
  TreeNodeId node = kInvalidNode;
  uint32_t level = 0;
  uint64_t core_size = 0;
  double score = 0.0;
};

/// Epoch-keyed result cache of the query server. Results are immutable
/// per snapshot (every piece behind a QuerySnapshot is deeply const), so
/// correctness reduces to one rule: an entry inserted against epoch E may
/// only ever be returned to a lookup for epoch E. The cache enforces the
/// rule per shard:
///
///   - Lookup(E, key): if the shard's resident epoch is older than E the
///     whole shard is dropped first (the wholesale invalidation on
///     publish) and the lookup misses; if the shard is *newer* than E the
///     caller holds a draining generation mid-handover and simply misses
///     — it computes against its own snapshot and its insert is
///     discarded. Either way a stale-epoch result is never served.
///   - Insert(E, value): ignored unless E is the shard's resident epoch
///     (advancing it first when E is newer).
///
/// Sharded by key hash so concurrent workers rarely contend on one mutex;
/// each shard is bounded (`max_entries_per_shard`) so a hostile or
/// high-cardinality key stream cannot grow the cache without limit —
/// beyond the bound new keys are computed but not retained.
class ResultCache {
 public:
  struct Options {
    size_t shards = 16;
    size_t max_entries_per_shard = 1 << 16;
  };

  /// Monotonic totals since construction (relaxed atomics; exact only at
  /// quiescence, like every other counter in the registry).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t stale_drops = 0;    ///< inserts/lookups from draining epochs
    uint64_t epoch_flushes = 0;  ///< shard-level wholesale invalidations
  };

  ResultCache();
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True and fills `*out` on a hit at exactly `epoch`.
  bool Lookup(uint64_t epoch, const std::string& key, CachedResult* out);

  /// Offers `value` (whose .epoch must equal `epoch`) for retention.
  void Insert(uint64_t epoch, const std::string& key,
              const CachedResult& value);

  Stats stats() const;

  /// Entries currently resident (sums shard sizes; test/introspection
  /// only).
  size_t Size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    uint64_t epoch = 0;  ///< generation of every resident entry
    std::unordered_map<std::string, CachedResult> map;
  };

  /// Drops the shard's entries and advances it to `epoch`. Caller holds
  /// the shard mutex.
  void AdvanceLocked(Shard* shard, uint64_t epoch);

  Shard* ShardFor(const std::string& key);

  Options options_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> stale_drops_{0};
  std::atomic<uint64_t> epoch_flushes_{0};
};

}  // namespace hcd::server

#endif  // HCD_SERVER_RESULT_CACHE_H_
