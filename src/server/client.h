#ifndef HCD_SERVER_CLIENT_H_
#define HCD_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace hcd::server {

/// Blocking client for the query server's framed protocol: one TCP
/// connection, requests answered in order. Used by `hcd_cli serve-bench`,
/// the CI smoke job and the end-to-end tests. Not thread-safe; open one
/// client per driving thread.
///
/// Requests can be pipelined: any number of SendQuery calls may be in
/// flight before the matching ReadQueryResponse calls, and the server
/// answers strictly in order — a batch of queries then costs one round
/// trip. Query() is the one-at-a-time convenience wrapper.
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connects to `host:port` (numeric IPv4, e.g. "127.0.0.1"), retrying
  /// connection-refused until `timeout_seconds` elapses so a caller can
  /// race a server that is still binding (the CI smoke job does exactly
  /// this instead of sleeping).
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_seconds = 5.0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One query, one response (SendQuery + ReadQueryResponse).
  Status Query(const QueryRequest& request, QueryResponse* response);

  /// Writes one query frame without waiting for the answer.
  Status SendQuery(const QueryRequest& request);
  /// Reads the next response frame (answers arrive in send order).
  Status ReadQueryResponse(QueryResponse* response);

  /// Fetches the server's Prometheus exposition. On an OK status the text
  /// is in `*text`; an overloaded/bad-request status is returned as an
  /// error.
  Status FetchMetrics(std::string* text);

 private:
  Status WriteFrame(std::string_view payload);
  Status ReadFrame(std::string* payload);

  int fd_ = -1;
};

}  // namespace hcd::server

#endif  // HCD_SERVER_CLIENT_H_
