#ifndef HCD_SERVER_CLIENT_H_
#define HCD_SERVER_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/status.h"
#include "server/protocol.h"

namespace hcd::server {

/// Blocking client for the query server's framed protocol: one TCP
/// connection, requests answered in order. Used by `hcd_cli serve-bench`,
/// the CI smoke job and the end-to-end tests. Not thread-safe; open one
/// client per driving thread.
///
/// Requests can be pipelined: any number of SendQuery calls may be in
/// flight before the matching ReadQueryResponse calls, and the server
/// answers strictly in order — a batch of queries then costs one round
/// trip. Query() is the one-at-a-time convenience wrapper.
///
/// With a Tracer installed, SendQuery stamps each request with a fresh
/// nonzero trace id (unless the caller set one) and ReadQueryResponse
/// records a `client.query` span covering send-to-answer, carrying the
/// same id — so a client trace and the server's trace of the same run pair
/// up per request in one Perfetto view. Because answers arrive in send
/// order, pipelined requests match their spans through a FIFO of in-flight
/// send stamps; install or uninstall the tracer only between requests, not
/// while any are in flight. Without a tracer all of this is skipped.
class QueryClient {
 public:
  QueryClient() = default;
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connects to `host:port` (numeric IPv4, e.g. "127.0.0.1"), retrying
  /// connection-refused until `timeout_seconds` elapses so a caller can
  /// race a server that is still binding (the CI smoke job does exactly
  /// this instead of sleeping).
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_seconds = 5.0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One query, one response (SendQuery + ReadQueryResponse).
  Status Query(const QueryRequest& request, QueryResponse* response);

  /// Writes one query frame without waiting for the answer.
  Status SendQuery(const QueryRequest& request);
  /// Reads the next response frame (answers arrive in send order).
  Status ReadQueryResponse(QueryResponse* response);

  /// Fetches the server's Prometheus exposition. On an OK status the text
  /// is in `*text`; an overloaded/bad-request status is returned as an
  /// error.
  Status FetchMetrics(std::string* text);

  /// Fetches the server's live-stats JSON snapshot (the kStats message:
  /// rolling windows plus lifetime totals). Same error contract as
  /// FetchMetrics.
  Status FetchStats(std::string* json);

 private:
  /// One pipelined request awaiting its answer, for client-side spans.
  struct InflightRequest {
    uint64_t trace_id = 0;
    bool sampled = false;
    uint64_t sent_ns = 0;  ///< tracer-epoch send time
  };

  Status WriteFrame(std::string_view payload);
  Status ReadFrame(std::string* payload);

  int fd_ = -1;
  std::deque<InflightRequest> inflight_;  ///< only populated while tracing
};

}  // namespace hcd::server

#endif  // HCD_SERVER_CLIENT_H_
