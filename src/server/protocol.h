#ifndef HCD_SERVER_PROTOCOL_H_
#define HCD_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.h"
#include "hcd/hierarchy_kind.h"
#include "search/metrics.h"

namespace hcd::server {

/// Wire format of the query server (docs/SERVING.md has the byte-level
/// diagrams). Every message is one length-prefixed frame:
///
///   u32 payload_length | payload bytes
///
/// followed immediately by the payload. All integers are little-endian
/// fixed-width; doubles travel as their IEEE-754 bit pattern in a u64, so
/// a score round-trips bit-identically. A frame's payload is capped at
/// kMaxPayloadBytes — a peer announcing more is a protocol error and the
/// connection is closed (this bounds per-connection memory against
/// garbage or hostile length prefixes).
///
/// Request payload:
///   u8  type                    (MessageType)
///   -- type == kQuery:
///   u8  metric                  (index into kAllMetrics)
///   u8  hierarchy               (HierarchyKind: 0 core, 1 truss, 2 nucleus)
///   u32 k                       (0 = no level constraint)
///   u32 max_return_vertices     (cap on vertices echoed back)
///   u32 num_vertices
///   u32 vertices[num_vertices]
///   -- optionally (trace context, frame version 2):
///   u64 trace_id                (nonzero request-scoped id)
///   u8  sampled                 (0 or 1)
///
/// The trace context is a strictly optional tail: a version-1 frame ends
/// at the vertex array and decodes with trace_id == 0, so old clients keep
/// working against new servers; a version-2 frame carries exactly nine
/// more bytes. Any other tail length (or a sampled byte > 1) is malformed.
/// The trace id never enters the cache key — it names the request, not the
/// question — and servers attach it to every span recorded for the
/// request, so one Perfetto view lines up the client's and the server's
/// lanes of the same query.
///
/// Query semantics for hierarchy == core: with an empty vertex set, the
/// best-scoring k-core under `metric` over all tree nodes of level >= k
/// (k = 0 is exactly QuerySnapshot::Search). With vertices, the k-core
/// containing *all* of them (the shared ancestor-walk node), scored under
/// `metric`; `found` is false when no such core exists.
///
/// For hierarchy == truss / nucleus the server must be configured with a
/// matching element index (otherwise it answers found = false without
/// closing the connection). The `vertices` field then carries *element
/// ids* (edge ids / triangle ids of the frozen index), `metric` is
/// ignored (element communities score by density), and the semantics
/// mirror the core regimes: empty ids + k == 0 is the densest community,
/// empty ids + k > 0 the densest community of level >= k, and non-empty
/// ids the community containing all of them. The echoed vertices are the
/// community's *member graph vertices* (sorted), `core_size` counts its
/// elements, and `score` is its density.
///
/// Response payload:
///   u8  status                  (ResponseStatus)
///   -- status == kOk, answering kQuery:
///   u64 epoch                   (snapshot generation that answered)
///   u8  cache_hit
///   u8  found
///   u32 level                   (k of the answering core)
///   u64 core_size
///   u64 score_bits              (IEEE-754 double)
///   u32 num_vertices            (<= requested max_return_vertices)
///   u32 vertices[num_vertices]
///   -- status == kOk, answering kMetrics:
///   the Prometheus text exposition, raw bytes to end of frame
///   -- status == kOk, answering kStats:
///   the server's live-stats JSON snapshot (rolling 1s/10s/60s windows of
///   QPS, error/shed/cache-hit rates and per-phase latency quantiles, plus
///   lifetime totals), raw bytes to end of frame
///   -- status == kOverloaded / kBadRequest: nothing further; an
///   overloaded server sends this frame right after accept and closes.
enum class MessageType : uint8_t {
  kQuery = 1,
  kMetrics = 2,
  kStats = 3,
};

enum class ResponseStatus : uint8_t {
  kOk = 0,
  kOverloaded = 1,
  kBadRequest = 2,
};

/// Hard cap on one frame's payload (1 MiB): bigger than any legitimate
/// query or metrics dump, small enough that a bad length prefix cannot
/// make a worker allocate unbounded memory.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

struct QueryRequest {
  Metric metric = Metric::kAverageDegree;
  HierarchyKind hierarchy = HierarchyKind::kCore;
  uint32_t k = 0;
  uint32_t max_return_vertices = 0;
  std::vector<VertexId> vertices;
  /// Request-scoped trace context; 0 means "none" and encodes as a
  /// version-1 frame with no trailing trace bytes.
  uint64_t trace_id = 0;
  bool sampled = false;
};

struct QueryResponse {
  ResponseStatus status = ResponseStatus::kOk;
  uint64_t epoch = 0;
  bool cache_hit = false;
  bool found = false;
  uint32_t level = 0;
  uint64_t core_size = 0;
  double score = 0.0;
  std::vector<VertexId> vertices;
};

// --- payload encoding (no framing) -----------------------------------------

std::string EncodeQueryRequest(const QueryRequest& request);
std::string EncodeMetricsRequest();
std::string EncodeStatsRequest();
std::string EncodeQueryResponse(const QueryResponse& response);
std::string EncodeMetricsResponse(std::string_view prometheus_text);
/// The one-byte shed/bad-request frames.
std::string EncodeStatusOnlyResponse(ResponseStatus status);

/// Decoders are strict: exact length, in-range enum values, and no
/// trailing bytes (except the metrics response, whose tail IS the text).
/// They return false on any malformed payload and leave *out unspecified.
bool DecodeRequestType(std::string_view payload, MessageType* out);
bool DecodeQueryRequest(std::string_view payload, QueryRequest* out);
bool DecodeQueryResponse(std::string_view payload, QueryResponse* out);
/// Splits a response payload into status + text. Shared by the kMetrics
/// and kStats responses, whose payloads are shaped identically (one status
/// byte, then the document to end of frame).
bool DecodeMetricsResponse(std::string_view payload, ResponseStatus* status,
                           std::string* text);

/// Appends `payload` to `out` as one frame (length prefix + bytes).
void AppendFrame(std::string* out, std::string_view payload);

/// The canonical cache key of a query: metric, hierarchy, k and the
/// sorted, deduplicated vertex set, packed as bytes. Two requests that
/// must receive the same answer on one snapshot produce the same key
/// regardless of vertex order or duplicates. The trace context is
/// deliberately excluded — it identifies the request, not the question, so
/// traced and untraced askers of the same query share a cache entry.
std::string CacheKeyFor(const QueryRequest& request);

}  // namespace hcd::server

#endif  // HCD_SERVER_PROTOCOL_H_
