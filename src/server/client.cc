#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/trace.h"

namespace hcd::server {
namespace {

Status IoError(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

/// Process-unique nonzero trace ids: a per-process random-ish base (clock
/// entropy mixed through a 64-bit finalizer) plus an odd stride, so
/// concurrent clients in one process never collide and two processes are
/// overwhelmingly unlikely to.
uint64_t NextTraceId() {
  static const uint64_t base = [] {
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count())
            << 17;
    // splitmix64 finalizer: spreads the clock bits over the whole word.
    seed += 0x9e3779b97f4a7c15ull;
    seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9ull;
    seed = (seed ^ (seed >> 27)) * 0x94d049bb133111ebull;
    return seed ^ (seed >> 31);
  }();
  static std::atomic<uint64_t> next{0};
  const uint64_t id =
      base + next.fetch_add(1, std::memory_order_relaxed) * 0x10001ull;
  return id == 0 ? 1 : id;
}

}  // namespace

QueryClient::~QueryClient() { Close(); }

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inflight_.clear();  // unanswered sends never get spans after a reconnect
}

Status QueryClient::Connect(const std::string& host, uint16_t port,
                            double timeout_seconds) {
  Close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return IoError("socket");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return Status::Ok();
    }
    const int error = errno;
    Close();
    // The server may still be binding its port: refused connections are
    // retried until the deadline so callers need no readiness sleep.
    if ((error != ECONNREFUSED && error != ECONNRESET) ||
        std::chrono::steady_clock::now() >= deadline) {
      errno = error;
      return IoError("connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status QueryClient::WriteFrame(std::string_view payload) {
  if (fd_ < 0) return Status::Internal("client not connected");
  std::string out;
  out.reserve(4 + payload.size());
  AppendFrame(&out, payload);
  size_t done = 0;
  while (done < out.size()) {
    const ssize_t w =
        ::send(fd_, out.data() + done, out.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("send");
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status QueryClient::ReadFrame(std::string* payload) {
  if (fd_ < 0) return Status::Internal("client not connected");
  char prefix[4];
  size_t done = 0;
  while (done < sizeof(prefix)) {
    const ssize_t r = ::recv(fd_, prefix + done, sizeof(prefix) - done, 0);
    if (r == 0) return Status::IoError("server closed the connection");
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("recv");
    }
    done += static_cast<size_t>(r);
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (length > kMaxPayloadBytes) {
    return Status::Corruption("oversized response frame");
  }
  payload->resize(length);
  done = 0;
  while (done < length) {
    const ssize_t r = ::recv(fd_, payload->data() + done, length - done, 0);
    if (r == 0) return Status::IoError("server closed mid-frame");
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("recv");
    }
    done += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status QueryClient::SendQuery(const QueryRequest& request) {
  Tracer* tracer = Tracer::Current();
  if (tracer == nullptr) return WriteFrame(EncodeQueryRequest(request));
  // Traced path: propagate (or mint) the request's trace id and remember
  // the send stamp so the matching ReadQueryResponse can record the span.
  QueryRequest traced = request;
  if (traced.trace_id == 0) {
    traced.trace_id = NextTraceId();
    traced.sampled = true;
  }
  const Status status = WriteFrame(EncodeQueryRequest(traced));
  if (status.ok()) {
    inflight_.push_back({traced.trace_id, traced.sampled, tracer->NowNs()});
  }
  return status;
}

Status QueryClient::ReadQueryResponse(QueryResponse* response) {
  std::string payload;
  if (Status status = ReadFrame(&payload); !status.ok()) return status;
  if (!DecodeQueryResponse(payload, response)) {
    return Status::Corruption("malformed query response");
  }
  if (!inflight_.empty()) {
    // Answers arrive in send order, so the oldest in-flight stamp is this
    // response's request.
    const InflightRequest sent = inflight_.front();
    inflight_.pop_front();
    if (Tracer* tracer = Tracer::Current()) {
      TraceSpan span;
      span.name = "client.query";
      span.ts_ns = sent.sent_ns;
      const uint64_t now = tracer->NowNs();
      span.dur_ns = now > sent.sent_ns ? now - sent.sent_ns : 0;
      span.args.push_back({"trace_id", 0, TraceIdHex(sent.trace_id), true});
      span.args.push_back(
          {"sampled", sent.sampled ? uint64_t{1} : uint64_t{0}, "", false});
      span.args.push_back({"status",
                           static_cast<uint64_t>(response->status), "",
                           false});
      span.args.push_back(
          {"cache_hit", response->cache_hit ? uint64_t{1} : uint64_t{0}, "",
           false});
      tracer->RecordSpan(std::move(span));
    }
  }
  return Status::Ok();
}

Status QueryClient::Query(const QueryRequest& request,
                          QueryResponse* response) {
  if (Status status = SendQuery(request); !status.ok()) return status;
  return ReadQueryResponse(response);
}

Status QueryClient::FetchMetrics(std::string* text) {
  if (Status status = WriteFrame(EncodeMetricsRequest()); !status.ok()) {
    return status;
  }
  std::string payload;
  if (Status status = ReadFrame(&payload); !status.ok()) return status;
  ResponseStatus response_status = ResponseStatus::kOk;
  if (!DecodeMetricsResponse(payload, &response_status, text)) {
    return Status::Corruption("malformed metrics response");
  }
  if (response_status != ResponseStatus::kOk) {
    return Status::Internal("server refused the metrics request");
  }
  return Status::Ok();
}

Status QueryClient::FetchStats(std::string* json) {
  if (Status status = WriteFrame(EncodeStatsRequest()); !status.ok()) {
    return status;
  }
  std::string payload;
  if (Status status = ReadFrame(&payload); !status.ok()) return status;
  ResponseStatus response_status = ResponseStatus::kOk;
  if (!DecodeMetricsResponse(payload, &response_status, json)) {
    return Status::Corruption("malformed stats response");
  }
  if (response_status != ResponseStatus::kOk) {
    return Status::Internal("server refused the stats request");
  }
  return Status::Ok();
}

}  // namespace hcd::server
