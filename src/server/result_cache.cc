#include "server/result_cache.h"

#include <functional>

#include "common/check.h"

namespace hcd::server {

ResultCache::ResultCache() : ResultCache(Options()) {}

ResultCache::ResultCache(Options options) : options_(options) {
  HCD_CHECK(options_.shards > 0) << "a result cache needs at least one shard";
  shards_ = std::vector<Shard>(options_.shards);
}

ResultCache::Shard* ResultCache::ShardFor(const std::string& key) {
  return &shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void ResultCache::AdvanceLocked(Shard* shard, uint64_t epoch) {
  if (!shard->map.empty()) {
    shard->map.clear();
    epoch_flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  shard->epoch = epoch;
}

bool ResultCache::Lookup(uint64_t epoch, const std::string& key,
                         CachedResult* out) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  if (epoch > shard->epoch) {
    // First sight of a newer generation: everything resident answers an
    // older snapshot and is dropped wholesale.
    AdvanceLocked(shard, epoch);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (epoch < shard->epoch) {
    // The caller is finishing queries on a draining generation while the
    // shard already serves a newer one. Serving the resident (newer)
    // entries would hand the caller answers from a snapshot it does not
    // hold, so this is always a miss.
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto it = shard->map.find(key);
  if (it == shard->map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *out = it->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(uint64_t epoch, const std::string& key,
                         const CachedResult& value) {
  HCD_CHECK(value.epoch == epoch)
      << "cached result stamped with epoch " << value.epoch
      << " offered for epoch " << epoch;
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  if (epoch < shard->epoch) {
    // A draining generation's computation arriving after handover: the
    // result is correct for its own epoch but that epoch is gone here.
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (epoch > shard->epoch) AdvanceLocked(shard, epoch);
  if (shard->map.size() >= options_.max_entries_per_shard &&
      shard->map.find(key) == shard->map.end()) {
    return;  // full: new keys are computed fresh but not retained
  }
  shard->map.insert_or_assign(key, value);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  stats.epoch_flushes = epoch_flushes_.load(std::memory_order_relaxed);
  return stats;
}

size_t ResultCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace hcd::server
