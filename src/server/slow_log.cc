#include "server/slow_log.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/trace.h"

namespace hcd::server {
namespace {

void AppendField(std::string* out, const char* key, uint64_t value) {
  out->append("\"");
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

void AppendField(std::string* out, const char* key, bool value) {
  out->append("\"");
  out->append(key);
  out->append("\":");
  out->append(value ? "true" : "false");
}

/// `value` must not need JSON escaping (every caller passes a fixed
/// identifier: reason, regime, hierarchy or metric name, hex trace id).
void AppendField(std::string* out, const char* key, const char* value) {
  out->append("\"");
  out->append(key);
  out->append("\":\"");
  out->append(value);
  out->append("\"");
}

size_t RoundUpPow2(size_t n) {
  size_t pow2 = 2;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

}  // namespace

std::string FormatSlowLogRecord(const SlowLogRecord& record) {
  const RequestTimings& t = record.timings;
  std::string out;
  out.reserve(320);
  out += '{';
  AppendField(&out, "ts_unix_ms", record.ts_unix_ms);
  out += ',';
  AppendField(&out, "reason", record.reason);
  out += ',';
  AppendField(&out, "trace_id", TraceIdHex(t.trace_id).c_str());
  out += ',';
  AppendField(&out, "sampled", t.sampled);
  out += ',';
  AppendField(&out, "regime", record.regime);
  out += ',';
  AppendField(&out, "hierarchy", HierarchyKindName(record.hierarchy));
  out += ',';
  AppendField(&out, "metric", MetricName(record.metric));
  out += ',';
  AppendField(&out, "k", uint64_t{record.k});
  out += ',';
  AppendField(&out, "cache_hit", record.cache_hit);
  out += ',';
  AppendField(&out, "found", record.found);
  out += ',';
  AppendField(&out, "overloaded", record.overloaded);
  out += ',';
  AppendField(&out, "epoch", record.epoch);
  out += ',';
  AppendField(&out, "queue_depth", record.queue_depth);
  out += ',';
  AppendField(&out, "total_ns", t.TotalNs());
  out += ",\"phase_ns\":{";
  AppendField(&out, "queue", t.queue_ns);
  out += ',';
  AppendField(&out, "decode", t.decode_ns);
  out += ',';
  AppendField(&out, "cache", t.cache_ns);
  out += ',';
  AppendField(&out, "search", t.search_ns);
  out += ',';
  AppendField(&out, "encode", t.encode_ns);
  out += "}}";
  return out;
}

SlowQueryLog::SlowQueryLog(Options options) : options_(std::move(options)) {
  const size_t capacity = RoundUpPow2(std::max<size_t>(options_.capacity, 2));
  cells_ = std::vector<Cell>(capacity);
  mask_ = capacity - 1;
  for (size_t i = 0; i < capacity; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

SlowQueryLog::~SlowQueryLog() { Stop(); }

Status SlowQueryLog::Start() {
  HCD_CHECK(!started_) << "slow-query log already started";
  file_ = std::fopen(options_.path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open slow log " + options_.path + ": " +
                           std::strerror(errno));
  }
  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::Ok();
}

void SlowQueryLog::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) flusher_.join();
  std::fclose(file_);
  file_ = nullptr;
  started_ = false;
}

bool SlowQueryLog::Append(std::string&& line) {
  size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.sequence.load(std::memory_order_acquire);
    const intptr_t diff =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (diff == 0) {
      // The cell is free for ticket `pos`; claim it, write, publish.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.line = std::move(line);
        cell.sequence.store(pos + 1, std::memory_order_release);
        appended_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    } else if (diff < 0) {
      // The cell still holds an unconsumed line a full lap behind: the
      // ring is full. Drop rather than block the serving worker.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool SlowQueryLog::TryPop(std::string* line) {
  Cell& cell = cells_[dequeue_pos_ & mask_];
  const size_t seq = cell.sequence.load(std::memory_order_acquire);
  if (static_cast<intptr_t>(seq) -
          static_cast<intptr_t>(dequeue_pos_ + 1) <
      0) {
    return false;  // not yet published
  }
  *line = std::move(cell.line);
  cell.line.clear();
  // Free the cell for its next-lap producer.
  cell.sequence.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
  ++dequeue_pos_;
  return true;
}

void SlowQueryLog::FlusherLoop() {
  std::string line;
  auto drain = [&] {
    bool any = false;
    while (TryPop(&line)) {
      any = true;
      std::fwrite(line.data(), 1, line.size(), file_);
      std::fputc('\n', file_);
      written_.fetch_add(1, std::memory_order_relaxed);
    }
    if (any) std::fflush(file_);
  };
  while (!stop_.load(std::memory_order_acquire)) {
    drain();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.flush_interval_ms));
  }
  // Producers are quiesced before Stop() (the server joins its workers
  // first), so one last drain empties the ring.
  drain();
}

}  // namespace hcd::server
