#ifndef HCD_SERVER_SLOW_LOG_H_
#define HCD_SERVER_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "hcd/hierarchy_kind.h"
#include "search/metrics.h"

namespace hcd::server {

/// Per-request phase attribution in nanoseconds, filled by a worker from
/// consecutive monotonic stamps (so the phase fields sum exactly to the
/// request's total). One instance lives in each worker and is reused
/// across requests. `queue_ns` is the connection's wait in the pending
/// queue, attributed to its first request (later requests on the same
/// connection never waited, so it is 0 for them).
struct RequestTimings {
  uint64_t trace_id = 0;
  bool sampled = false;
  uint64_t queue_ns = 0;
  uint64_t decode_ns = 0;
  uint64_t cache_ns = 0;   ///< snapshot acquire + cache key + lookup
  uint64_t search_ns = 0;  ///< scoring (or cache-hit materialization)
  uint64_t encode_ns = 0;  ///< response encode + socket write

  uint64_t TotalNs() const {
    return queue_ns + decode_ns + cache_ns + search_ns + encode_ns;
  }
  void ResetPhases() {
    trace_id = 0;
    sampled = false;
    queue_ns = decode_ns = cache_ns = search_ns = encode_ns = 0;
  }
};

/// Everything one slow-log line records, gathered by the worker after the
/// response is on the wire.
struct SlowLogRecord {
  uint64_t ts_unix_ms = 0;      ///< wall clock, for correlating across hosts
  const char* reason = "slow";  ///< "slow" (over threshold) or "sampled"
  const char* regime = "global";
  HierarchyKind hierarchy = HierarchyKind::kCore;
  Metric metric = Metric::kAverageDegree;
  uint32_t k = 0;
  bool cache_hit = false;
  bool found = false;
  bool overloaded = false;  ///< pending queue was non-empty at dispatch
  uint64_t epoch = 0;
  uint64_t queue_depth = 0;  ///< pending connections when this one was popped
  RequestTimings timings;
};

/// One JSONL line (no trailing newline); split out of the log so tests can
/// validate the schema without a file or a flusher thread.
std::string FormatSlowLogRecord(const SlowLogRecord& record);

/// Append-only JSONL sink for slow-query records that never blocks a
/// serving worker: Append pushes the formatted line into a bounded
/// lock-free MPSC ring (Vyukov-style sequence-stamped cells) and a
/// dedicated flusher thread drains it to the file every few milliseconds.
/// When producers outrun the flusher the ring refuses the push and the
/// line is counted in dropped() instead of stalling the request path.
class SlowQueryLog {
 public:
  struct Options {
    std::string path;
    /// Ring capacity in lines (rounded up to a power of two).
    size_t capacity = 4096;
    int flush_interval_ms = 10;
  };

  explicit SlowQueryLog(Options options);
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens (appends to) the file and starts the flusher thread.
  Status Start();

  /// Drains whatever is still queued, joins the flusher and closes the
  /// file. Idempotent.
  void Stop();

  /// Enqueues one line; lock-free, callable from any number of workers.
  /// False (and one more dropped()) when the ring is full.
  bool Append(std::string&& line);

  uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t written() const { return written_.load(std::memory_order_relaxed); }

 private:
  /// One ring slot. `sequence` implements the Vyukov handshake: it reads
  /// `index` when the cell is free for the producer that owns ticket
  /// `index`, and `index + 1` once the line is fully written and visible
  /// to the consumer.
  struct Cell {
    std::atomic<size_t> sequence{0};
    std::string line;
  };

  void FlusherLoop();
  /// Pops one line if available (single consumer: the flusher).
  bool TryPop(std::string* line);

  Options options_;
  std::vector<Cell> cells_;
  size_t mask_ = 0;
  std::atomic<size_t> enqueue_pos_{0};
  size_t dequeue_pos_ = 0;  ///< flusher-only

  std::FILE* file_ = nullptr;
  std::thread flusher_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};
};

}  // namespace hcd::server

#endif  // HCD_SERVER_SLOW_LOG_H_
