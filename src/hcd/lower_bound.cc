#include "hcd/lower_bound.h"

#include "hcd/vertex_rank.h"
#include "parallel/omp_utils.h"
#include "parallel/union_find.h"
#include "parallel/wf_union_find.h"

namespace hcd {

VertexId UnionFindLowerBound(const Graph& graph, const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  if (n == 0) return 0;
  const VertexRank vr = ComputeVertexRank(cd);
  if (MaxThreads() == 1) {
    // Serial configuration: plain union-find, like PHCD (1).
    UnionFind uf(n, vr.rank.data());
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId u : graph.Neighbors(v)) {
        if (u > v) uf.Union(v, u);
      }
    }
    VertexId components = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (uf.Find(v) == v) ++components;
    }
    return components;
  }
  WaitFreeUnionFind uf(n, vr.rank.data());
#pragma omp parallel for schedule(dynamic, 256)
  for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
    VertexId v = static_cast<VertexId>(vi);
    for (VertexId u : graph.Neighbors(v)) {
      if (u > v) uf.Union(v, u);
    }
  }
  VertexId components = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (uf.Find(v) == v) ++components;
  }
  return components;
}

}  // namespace hcd
