#ifndef HCD_HCD_NAIVE_HCD_H_
#define HCD_HCD_NAIVE_HCD_H_

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/forest.h"

namespace hcd {

/// Definition-driven HCD oracle: for each k from k_max down to 0, finds the
/// connected components of the subgraph induced by {v : c(v) >= k} by BFS
/// (each component is one k-core), creates a tree node for every component
/// whose k-shell part is non-empty, and adopts the parentless nodes of
/// higher levels contained in the component (Definitions 1-3).
///
/// O(k_max * m) — for tests only; independent of both LCPS and PHCD.
HcdForest NaiveHcdBuild(const Graph& graph, const CoreDecomposition& cd);

}  // namespace hcd

#endif  // HCD_HCD_NAIVE_HCD_H_
