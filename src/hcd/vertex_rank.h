#ifndef HCD_HCD_VERTEX_RANK_H_
#define HCD_HCD_VERTEX_RANK_H_

#include <span>
#include <vector>

#include "core/core_decomposition.h"
#include "graph/types.h"

namespace hcd {

/// Output of the paper's Algorithm 1: all vertices sorted by vertex rank
/// (Definition 4: ascending coreness, ties by ascending id), the inverse
/// permutation r(v), and the k-shell boundaries inside the sorted order.
struct VertexRank {
  /// Vsort: vertices sorted by vertex rank.
  std::vector<VertexId> sorted;
  /// r(v): position of v in `sorted`. Lower value = lower vertex rank.
  std::vector<VertexId> rank;
  /// shell_start[k] .. shell_start[k+1] delimit H_k inside `sorted`;
  /// size k_max + 2.
  std::vector<VertexId> shell_start;

  /// The k-shell H_k as a slice of the sorted order.
  std::span<const VertexId> Shell(uint32_t k) const {
    return {sorted.data() + shell_start[k],
            static_cast<size_t>(shell_start[k + 1] - shell_start[k])};
  }
};

/// Computes the vertex rank in parallel (Algorithm 1): a stable counting
/// sort by coreness with per-thread shell bins. O(n) work.
VertexRank ComputeVertexRank(const CoreDecomposition& cd);

}  // namespace hcd

#endif  // HCD_HCD_VERTEX_RANK_H_
