#include "hcd/vertex_rank.h"

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {

VertexRank ComputeVertexRank(const CoreDecomposition& cd) {
  const VertexId n = static_cast<VertexId>(cd.coreness.size());
  const uint32_t num_shells = cd.k_max + 1;
  VertexRank vr;
  vr.sorted.resize(n);
  vr.rank.resize(n);
  vr.shell_start.assign(num_shells + 1, 0);
  if (n == 0) return vr;

  const int pmax = MaxThreads();
  // counts[p * num_shells + k]: vertices of shell k owned by thread p.
  std::vector<VertexId> counts(static_cast<size_t>(pmax) * num_shells, 0);
  std::vector<VertexId> offsets(static_cast<size_t>(pmax) * num_shells, 0);

  // Count and place inside ONE parallel region: the OpenMP spec guarantees
  // identical iteration-to-thread assignment for two static-schedule loops
  // only when they bind to the same region. The static chunks are
  // contiguous ascending id blocks, so concatenating per-thread slices in
  // thread order keeps each shell sorted by id (the Definition 4 ties).
#pragma omp parallel num_threads(pmax)
  {
    const int p = ThreadId();
    VertexId* my_counts = counts.data() + static_cast<size_t>(p) * num_shells;
#pragma omp for schedule(static)
    for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
      ++my_counts[cd.coreness[static_cast<VertexId>(vi)]];
    }
    // (implicit barrier)
#pragma omp single
    {
      // Exclusive scan over (shell, thread): shells concatenate in
      // ascending k, per-thread slices within a shell in thread order.
      VertexId running = 0;
      for (uint32_t k = 0; k < num_shells; ++k) {
        vr.shell_start[k] = running;
        for (int q = 0; q < pmax; ++q) {
          offsets[static_cast<size_t>(q) * num_shells + k] = running;
          running += counts[static_cast<size_t>(q) * num_shells + k];
        }
      }
      vr.shell_start[num_shells] = running;
      HCD_CHECK_EQ(running, n);
    }
    // (implicit barrier after single)
    VertexId* my_offsets = offsets.data() + static_cast<size_t>(p) * num_shells;
#pragma omp for schedule(static)
    for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
      VertexId v = static_cast<VertexId>(vi);
      VertexId pos = my_offsets[cd.coreness[v]]++;
      vr.sorted[pos] = v;
      vr.rank[v] = pos;
    }
  }
  return vr;
}

}  // namespace hcd
