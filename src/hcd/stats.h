#ifndef HCD_HCD_STATS_H_
#define HCD_HCD_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hcd/flat_index.h"
#include "hcd/forest.h"

namespace hcd {

/// Structural statistics of a hierarchy (any HcdForest: vertex, edge or
/// triangle elements), for exploration and reporting (Table II's |T| plus
/// the shape the paper discusses qualitatively).
struct ForestStats {
  TreeNodeId num_nodes = 0;
  uint64_t num_roots = 0;
  /// Longest root-to-leaf path, counted in nodes (0 for an empty forest).
  uint32_t depth = 0;
  /// Largest number of children of any node.
  uint32_t max_branching = 0;
  /// Largest level (k) with a node.
  uint32_t max_level = 0;
  /// nodes_per_level[k]: number of tree nodes at level k.
  std::vector<uint64_t> nodes_per_level;
  /// elements_per_level[k]: total elements stored in level-k nodes.
  std::vector<uint64_t> elements_per_level;
};

/// Computes the statistics in O(|T| + n). Accepts either the builder
/// forest or the frozen index.
ForestStats ComputeForestStats(const HcdForest& forest);
ForestStats ComputeForestStats(const FlatHcdIndex& index);

/// Multi-line human-readable rendering of the statistics.
std::string ForestStatsToString(const ForestStats& stats);

}  // namespace hcd

#endif  // HCD_HCD_STATS_H_
