#ifndef HCD_HCD_DIVIDE_CONQUER_H_
#define HCD_HCD_DIVIDE_CONQUER_H_

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/forest.h"

namespace hcd {

/// The divide-and-conquer HCD construction of Section III-E, implemented so
/// its cost profile can be measured against PHCD (the paper's feasibility
/// argument):
///  1. vertices are split into `num_partitions` disjoint parts;
///  2. each part independently computes its *partial tree nodes* (per
///     shell, the groups connected through coreness>=k paths inside the
///     part) — the role LCPS plays per partition in the paper's sketch;
///  3. partial nodes are merged into the true k-core tree nodes by local
///     k-core searches over the full graph (the RC primitive);
///  4. parent-child relations are recovered with local k-core searches.
/// Steps 3-4 dominate and are what makes the paradigm uncompetitive.
///
/// Produces the exact HCD (tested against the oracle); cost is
/// O(sum over k of m(K_k)) for the merge instead of PHCD's near-linear
/// union-find work.
HcdForest DivideAndConquerHcd(const Graph& graph, const CoreDecomposition& cd,
                              int num_partitions);

}  // namespace hcd

#endif  // HCD_HCD_DIVIDE_CONQUER_H_
