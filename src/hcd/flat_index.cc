#include "hcd/flat_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/trace.h"
#include "parallel/omp_utils.h"

namespace hcd {
namespace {

/// Counting sort of node ids by descending level, ties by ascending id.
/// Also emits the group boundaries (one group per distinct level).
void BuildDescLevelOrder(std::span<const uint32_t> levels,
                         std::vector<TreeNodeId>* order,
                         std::vector<uint32_t>* group_offsets) {
  const size_t num_nodes = levels.size();
  order->resize(num_nodes);
  group_offsets->assign(1, 0);
  if (num_nodes == 0) return;

  uint32_t max_level = 0;
  for (uint32_t l : levels) max_level = std::max(max_level, l);
  // Bucket b holds level max_level - b, so ascending buckets are descending
  // levels.
  std::vector<uint32_t> bucket_size(static_cast<size_t>(max_level) + 1, 0);
  for (uint32_t l : levels) ++bucket_size[max_level - l];
  std::vector<uint32_t> bucket_start(bucket_size.size() + 1, 0);
  for (size_t b = 0; b < bucket_size.size(); ++b) {
    bucket_start[b + 1] = bucket_start[b] + bucket_size[b];
    if (bucket_size[b] > 0) group_offsets->push_back(bucket_start[b + 1]);
  }
  std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    (*order)[cursor[max_level - levels[t]]++] = t;
  }
}

}  // namespace

Status FlatHcdIndex::Adopt(Data d, FlatHcdIndex* out) {
  auto corrupt = [](const std::string& msg) {
    return Status::Corruption("flat index: " + msg);
  };
  const size_t num_nodes = d.levels.size();
  if (num_nodes >= kInvalidNode) return corrupt("too many nodes");
  if (d.num_vertices >= kInvalidVertex) return corrupt("too many vertices");

  // Element domain: the kind tag must be known, the member array must be
  // exactly arity-strided over every element id, and each element's members
  // must be in-range, canonically ascending graph vertices. kCore carries
  // no member array (an element IS its vertex), so the graph vertex count
  // must coincide with the element count.
  if (!IsValidHierarchyKind(static_cast<uint32_t>(d.kind))) {
    return corrupt("unknown hierarchy kind");
  }
  if (d.num_graph_vertices >= kInvalidVertex) {
    return corrupt("too many graph vertices");
  }
  if (d.kind == HierarchyKind::kCore) {
    if (!d.element_members.empty()) {
      return corrupt("core index carries element members");
    }
    if (d.num_graph_vertices != d.num_vertices) {
      return corrupt("core index graph vertex count mismatch");
    }
  } else {
    const uint32_t arity = ElementArity(d.kind);
    if (d.element_members.size() !=
        static_cast<uint64_t>(arity) * d.num_vertices) {
      return corrupt("element member count does not match arity");
    }
    for (size_t i = 0; i < d.element_members.size(); ++i) {
      if (d.element_members[i] >= d.num_graph_vertices) {
        return corrupt("element member vertex out of range");
      }
      if (i % arity != 0 && d.element_members[i - 1] >= d.element_members[i]) {
        return corrupt("element members not strictly ascending");
      }
    }
  }
  if (d.parents.size() != num_nodes || d.subtree_nodes.size() != num_nodes ||
      d.desc_level_order.size() != num_nodes ||
      d.child_offsets.size() != num_nodes + 1 ||
      d.vertex_offsets.size() != num_nodes + 1 ||
      d.tid.size() != d.num_vertices) {
    return corrupt("section size mismatch");
  }
  if (d.child_offsets.front() != 0 || d.vertex_offsets.front() != 0) {
    return corrupt("offset array does not start at 0");
  }
  for (size_t t = 0; t < num_nodes; ++t) {
    if (d.child_offsets[t + 1] < d.child_offsets[t] ||
        d.vertex_offsets[t + 1] < d.vertex_offsets[t]) {
      return corrupt("offset array not monotone");
    }
  }
  if (d.child_offsets.back() != d.children.size()) {
    return corrupt("children size does not match offsets");
  }
  if (d.vertex_offsets.back() != d.vertices.size()) {
    return corrupt("vertices size does not match offsets");
  }
  if (d.vertices.size() > d.num_vertices) {
    return corrupt("more placed vertices than graph vertices");
  }

  // Preorder nesting: a node's parent precedes it, sits at a strictly lower
  // level, and the child's subtree interval nests inside the parent's.
  size_t root_count = 0;
  for (size_t t = 0; t < num_nodes; ++t) {
    const uint64_t sub = d.subtree_nodes[t];
    if (sub == 0 || t + sub > num_nodes) {
      return corrupt("subtree interval out of range");
    }
    const TreeNodeId p = d.parents[t];
    if (p == kInvalidNode) {
      ++root_count;
      continue;
    }
    if (p >= t) return corrupt("parent does not precede child in preorder");
    if (d.levels[p] >= d.levels[t]) {
      return corrupt("parent level not below child level");
    }
    if (t >= static_cast<uint64_t>(p) + d.subtree_nodes[p] ||
        t + sub > static_cast<uint64_t>(p) + d.subtree_nodes[p]) {
      return corrupt("child subtree escapes parent subtree");
    }
  }

  // Roots are exactly the parentless nodes, ascending, and their subtree
  // intervals tile [0, N).
  if (d.roots.size() != root_count) return corrupt("root count mismatch");
  {
    size_t ri = 0;
    uint64_t expected_next = 0;
    for (size_t t = 0; t < num_nodes; ++t) {
      if (d.parents[t] != kInvalidNode) continue;
      if (d.roots[ri] != t) return corrupt("roots array mismatch");
      if (t != expected_next) return corrupt("root subtrees do not tile");
      expected_next = t + d.subtree_nodes[t];
      ++ri;
    }
    if (num_nodes > 0 && expected_next != num_nodes) {
      return corrupt("root subtrees do not tile");
    }
  }

  // Children: each node's child list must be exactly its subtree's top-level
  // decomposition — first child at t+1, each next child one subtree later.
  // Combined with the totals check this makes children <-> parents a
  // bijection and pins subtree_nodes to the true subtree sizes.
  if (d.children.size() != num_nodes - root_count) {
    return corrupt("children total does not match non-root count");
  }
  for (size_t t = 0; t < num_nodes; ++t) {
    uint64_t expected_child = t + 1;
    for (uint32_t i = d.child_offsets[t]; i < d.child_offsets[t + 1]; ++i) {
      const TreeNodeId c = d.children[i];
      if (c >= num_nodes) return corrupt("child id out of range");
      if (d.parents[c] != t) return corrupt("child/parent mismatch");
      if (c != expected_child) {
        return corrupt("children not at preorder subtree boundaries");
      }
      expected_child = static_cast<uint64_t>(c) + d.subtree_nodes[c];
    }
    if (expected_child != t + d.subtree_nodes[t]) {
      return corrupt("subtree size does not match children");
    }
  }

  // Vertex placements: per-node spans agree with tid, no vertex appears in
  // more than one span slot, and every vertex with a tid appears in exactly
  // the span that tid names. Per-vertex tracking (not just totals) so a
  // duplicate in one span can't be offset by a phantom placement elsewhere.
  {
    std::vector<uint8_t> seen(d.num_vertices, 0);
    for (size_t t = 0; t < num_nodes; ++t) {
      for (uint32_t i = d.vertex_offsets[t]; i < d.vertex_offsets[t + 1];
           ++i) {
        const VertexId v = d.vertices[i];
        if (v >= d.num_vertices) return corrupt("vertex id out of range");
        if (d.tid[v] != t) {
          return corrupt("tid does not match vertex placement");
        }
        if (seen[v] != 0) return corrupt("vertex placed more than once");
        seen[v] = 1;
      }
    }
    for (VertexId v = 0; v < d.num_vertices; ++v) {
      const TreeNodeId t = d.tid[v];
      if (t == kInvalidNode) continue;
      if (t >= num_nodes) return corrupt("tid out of range");
      if (seen[v] == 0) {
        return corrupt("tid names a node whose span omits the vertex");
      }
    }
  }

  // desc_level_order: a permutation of the nodes, grouped by strictly
  // descending level with ascending ids inside a group (canonical form).
  // The offsets array is validated in full before any of it is used to
  // index desc_level_order: strictly increasing, first 0, last num_nodes,
  // so every [begin, end) below is in bounds.
  if (d.level_group_offsets.empty() || d.level_group_offsets.front() != 0 ||
      d.level_group_offsets.back() != num_nodes) {
    return corrupt("level group offsets malformed");
  }
  for (size_t g = 0; g + 1 < d.level_group_offsets.size(); ++g) {
    if (d.level_group_offsets[g + 1] <= d.level_group_offsets[g] ||
        d.level_group_offsets[g + 1] > num_nodes) {
      return corrupt("level group offsets not strictly increasing");
    }
  }
  {
    std::vector<uint8_t> seen(num_nodes, 0);
    bool have_prev_level = false;
    uint32_t prev_level = 0;
    for (size_t g = 0; g + 1 < d.level_group_offsets.size(); ++g) {
      const uint32_t begin = d.level_group_offsets[g];
      const uint32_t end = d.level_group_offsets[g + 1];
      const TreeNodeId first = d.desc_level_order[begin];
      if (first >= num_nodes) return corrupt("level order id out of range");
      const uint32_t group_level = d.levels[first];
      if (have_prev_level && group_level >= prev_level) {
        return corrupt("level groups not strictly descending");
      }
      have_prev_level = true;
      prev_level = group_level;
      for (uint32_t i = begin; i < end; ++i) {
        const TreeNodeId t = d.desc_level_order[i];
        if (t >= num_nodes || seen[t] != 0) {
          return corrupt("level order is not a permutation");
        }
        seen[t] = 1;
        if (d.levels[t] != group_level) {
          return corrupt("mixed levels inside level group");
        }
        if (i > begin && d.desc_level_order[i - 1] >= t) {
          return corrupt("level group ids not ascending");
        }
      }
    }
  }

  out->data_ = std::move(d);
  return Status::Ok();
}

FlatHcdIndex Freeze(const HcdForest& forest) {
  const TreeNodeId num_nodes = forest.NumNodes();
  const VertexId n = forest.NumVertices();

  FlatHcdIndex out;
  FlatHcdIndex::Data& d = out.data_;
  d.num_vertices = n;
  d.num_graph_vertices = n;  // kCore: elements are the graph vertices
  d.tid.assign(n, kInvalidNode);
  if (num_nodes == 0) return out;

  // Child CSR over the builder's node ids, straight from parent pointers
  // (works whether or not BuildChildren ran). Freeze re-checks the level
  // contract so a malformed builder forest fails loudly here instead of
  // producing a cyclic "preorder".
  std::vector<uint32_t> old_child_offsets(num_nodes + 1, 0);
  std::vector<TreeNodeId> old_children;
  {
    ScopedSpan span("freeze.child_csr");
    span.AddArg("nodes", num_nodes);
    for (TreeNodeId t = 0; t < num_nodes; ++t) {
      const TreeNodeId p = forest.Parent(t);
      if (p == kInvalidNode) continue;
      HCD_CHECK_LT(forest.Level(p), forest.Level(t))
          << "parent level must be below child level";
      ++old_child_offsets[p + 1];
    }
    for (TreeNodeId t = 0; t < num_nodes; ++t) {
      old_child_offsets[t + 1] += old_child_offsets[t];
    }
    old_children.resize(old_child_offsets[num_nodes]);
    std::vector<uint32_t> cursor(old_child_offsets.begin(),
                                 old_child_offsets.end() - 1);
    for (TreeNodeId t = 0; t < num_nodes; ++t) {
      const TreeNodeId p = forest.Parent(t);
      if (p != kInvalidNode) old_children[cursor[p]++] = t;
    }
  }
  auto old_children_of = [&](TreeNodeId t) {
    return std::span<const TreeNodeId>(old_children)
        .subspan(old_child_offsets[t],
                 old_child_offsets[t + 1] - old_child_offsets[t]);
  };

  std::vector<uint32_t> old_levels(num_nodes);
  for (TreeNodeId t = 0; t < num_nodes; ++t) old_levels[t] = forest.Level(t);

  // Subtree node / vertex counts, bottom-up. Nodes of equal level are never
  // ancestor/descendant, so each descending-level group is one parallel
  // step whose reads (children) were all written by earlier groups.
  std::vector<TreeNodeId> sub_nodes(num_nodes);
  std::vector<uint32_t> sub_verts(num_nodes);
  {
    ScopedSpan span("freeze.subtree_counts");
    std::vector<TreeNodeId> old_order;
    std::vector<uint32_t> old_group_offsets;
    BuildDescLevelOrder(old_levels, &old_order, &old_group_offsets);
    span.AddArg("level_groups", old_group_offsets.size() - 1);
    for (size_t g = 0; g + 1 < old_group_offsets.size(); ++g) {
      const uint32_t begin = old_group_offsets[g];
      const uint32_t end = old_group_offsets[g + 1];
      ParallelFor(begin, end, [&](uint32_t i) {
        const TreeNodeId t = old_order[i];
        TreeNodeId sn = 1;
        uint32_t sv = static_cast<uint32_t>(forest.Vertices(t).size());
        for (TreeNodeId c : old_children_of(t)) {
          sn += sub_nodes[c];
          sv += sub_verts[c];
        }
        sub_nodes[t] = sn;
        sub_verts[t] = sv;
      });
    }
  }

  // Per-root preorder id / vertex-slot bases (exclusive scans), so each tree
  // can be numbered independently in parallel.
  std::vector<TreeNodeId> old_roots;
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    if (forest.Parent(t) == kInvalidNode) old_roots.push_back(t);
  }
  const size_t num_roots = old_roots.size();
  std::vector<TreeNodeId> node_base(num_roots + 1, 0);
  std::vector<uint32_t> vert_base(num_roots + 1, 0);
  for (size_t r = 0; r < num_roots; ++r) {
    node_base[r + 1] = node_base[r] + sub_nodes[old_roots[r]];
    vert_base[r + 1] = vert_base[r] + sub_verts[old_roots[r]];
  }
  HCD_CHECK_EQ(node_base[num_roots], num_nodes)
      << "forest has a parent cycle or orphan nodes";
  const uint32_t total_placed = vert_base[num_roots];

  d.levels.resize(num_nodes);
  d.parents.resize(num_nodes);
  d.subtree_nodes.resize(num_nodes);
  d.vertex_offsets.resize(static_cast<size_t>(num_nodes) + 1);
  d.vertex_offsets[num_nodes] = total_placed;
  d.vertices.resize(total_placed);
  d.roots.resize(num_roots);

  std::vector<TreeNodeId> old2new(num_nodes);
  // One preorder DFS per tree; trees write disjoint ranges of every output
  // array, so the loop is embarrassingly parallel (dynamic: tree sizes are
  // typically very skewed). The parallel/for split exists so each worker can
  // carry a span of its own — the trace then shows the tree-size skew
  // directly.
  {
    ScopedSpan span("freeze.preorder");
    span.AddArg("roots", num_roots);
#pragma omp parallel
    {
      ScopedSpan worker_span("freeze.preorder.worker");
      TreeNodeId numbered = 0;
#pragma omp for schedule(dynamic)
      for (int64_t r = 0; r < static_cast<int64_t>(num_roots); ++r) {
        TreeNodeId next_id = node_base[r];
        uint32_t next_slot = vert_base[r];
        std::vector<TreeNodeId> stack = {old_roots[r]};
        while (!stack.empty()) {
          const TreeNodeId old_t = stack.back();
          stack.pop_back();
          const TreeNodeId new_t = next_id++;
          old2new[old_t] = new_t;
          d.levels[new_t] = old_levels[old_t];
          d.subtree_nodes[new_t] = sub_nodes[old_t];
          const TreeNodeId old_p = forest.Parent(old_t);
          // A node's parent is visited before it in the same tree's DFS, so
          // its new id is already available.
          d.parents[new_t] =
              old_p == kInvalidNode ? kInvalidNode : old2new[old_p];
          d.vertex_offsets[new_t] = next_slot;
          for (VertexId v : forest.Vertices(old_t)) {
            d.vertices[next_slot++] = v;
            d.tid[v] = new_t;
          }
          // Push in reverse so children pop (and get numbered) in ascending
          // builder order.
          const std::span<const TreeNodeId> kids = old_children_of(old_t);
          for (size_t i = kids.size(); i-- > 0;) stack.push_back(kids[i]);
        }
        d.roots[r] = node_base[r];
        numbered += sub_nodes[old_roots[r]];
      }
      worker_span.AddArg("nodes", numbered);
    }
  }

  // Child CSR over the new ids. Sibling order is preserved by the DFS, so
  // translating the old lists keeps children ascending.
  {
    ScopedSpan span("freeze.relabel");
    std::vector<TreeNodeId> new2old(num_nodes);
    ParallelFor(TreeNodeId{0}, num_nodes,
                [&](TreeNodeId t) { new2old[old2new[t]] = t; });
    d.child_offsets.resize(static_cast<size_t>(num_nodes) + 1);
    d.child_offsets[0] = 0;
    for (TreeNodeId t = 0; t < num_nodes; ++t) {
      d.child_offsets[t + 1] =
          d.child_offsets[t] +
          static_cast<uint32_t>(old_children_of(new2old[t]).size());
    }
    d.children.resize(d.child_offsets[num_nodes]);
    ParallelFor(TreeNodeId{0}, num_nodes, [&](TreeNodeId t) {
      const std::span<const TreeNodeId> kids = old_children_of(new2old[t]);
      uint32_t offset = d.child_offsets[t];
      for (TreeNodeId c : kids) d.children[offset++] = old2new[c];
    });

    std::vector<TreeNodeId> order;
    std::vector<uint32_t> group_offsets;
    BuildDescLevelOrder(d.levels, &order, &group_offsets);
    d.desc_level_order = std::move(order);
    d.level_group_offsets = std::move(group_offsets);
  }
  return out;
}

FlatHcdIndex Freeze(HcdForest&& forest) {
  FlatHcdIndex out = Freeze(static_cast<const HcdForest&>(forest));
  forest = HcdForest();  // release the builder arrays eagerly
  return out;
}

FlatHcdIndex Freeze(const HcdForest& forest, HierarchyKind kind,
                    std::span<const VertexId> element_members,
                    VertexId num_graph_vertices) {
  ScopedSpan span("freeze.kind");
  span.AddArg("kind", std::string(HierarchyKindName(kind)));
  FlatHcdIndex out = Freeze(forest);
  FlatHcdIndex::Data& d = out.data_;
  if (kind == HierarchyKind::kCore) {
    HCD_CHECK(element_members.empty())
        << "core freeze takes no element members";
    HCD_CHECK_EQ(num_graph_vertices, d.num_vertices);
    return out;
  }
  HCD_CHECK_EQ(element_members.size(),
               static_cast<uint64_t>(ElementArity(kind)) * d.num_vertices)
      << "element member array must be arity-strided over every element id";
  d.kind = kind;
  d.num_graph_vertices = num_graph_vertices;
  d.element_members =
      std::vector<VertexId>(element_members.begin(), element_members.end());
  return out;
}

}  // namespace hcd
