#ifndef HCD_HCD_LCPS_H_
#define HCD_HCD_LCPS_H_

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/forest.h"

namespace hcd {

/// Serial HCD construction by Level Component Priority Search (Matula &
/// Beck; the paper's state-of-the-art serial baseline, Section I).
///
/// The search repeatedly visits the unvisited neighbor of the visited
/// region with the highest priority pri(w) = max over visited neighbors v
/// of min(c(w), c(v)). The max-priority order guarantees that when the
/// frontier priority drops to p, every k-core with k > p touching the
/// visited region is completely visited, so the tree can be maintained with
/// a stack of open nodes:
///  - visiting w with priority p closes every open node with level > p;
///    a closed node's parent is the node below it on the stack, except for
///    the last-closed node, which is adopted by w's node when w opens a new
///    level between p and the closed level;
///  - w then joins the open node at level c(w), opening it if necessary.
///
/// Priorities live in bucket arrays with lazy deletion, the cost profile
/// the paper attributes to LCPS ("multiple dynamic arrays").
///
/// Requires `cd` to be the core decomposition of `graph` (e.g. from
/// BzCoreDecomposition). O(m) time. With a sink, records a "construction"
/// stage (counters: nodes).
HcdForest LcpsBuild(const Graph& graph, const CoreDecomposition& cd,
                    TelemetrySink* sink = nullptr);

}  // namespace hcd

#endif  // HCD_HCD_LCPS_H_
