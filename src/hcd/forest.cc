#include "hcd/forest.h"

#include <algorithm>
#include <numeric>

namespace hcd {

void HcdForest::BuildChildren() {
  children_.assign(NumNodes(), {});
  for (TreeNodeId node = 0; node < NumNodes(); ++node) {
    TreeNodeId parent = parents_[node];
    if (parent != kInvalidNode) {
      HCD_CHECK_LT(levels_[parent], levels_[node])
          << "parent level must be below child level";
      children_[parent].push_back(node);
    }
  }
  children_built_ = true;
}

std::vector<TreeNodeId> HcdForest::Roots() const {
  std::vector<TreeNodeId> roots;
  for (TreeNodeId node = 0; node < NumNodes(); ++node) {
    if (parents_[node] == kInvalidNode) roots.push_back(node);
  }
  return roots;
}

std::vector<TreeNodeId> HcdForest::NodesByDescendingLevel() const {
  std::vector<TreeNodeId> order(NumNodes());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](TreeNodeId a, TreeNodeId b) {
                     return levels_[a] > levels_[b];
                   });
  return order;
}

std::vector<VertexId> HcdForest::CoreVertices(TreeNodeId node) const {
  HCD_CHECK(children_built_);
  std::vector<VertexId> result;
  std::vector<TreeNodeId> stack = {node};
  while (!stack.empty()) {
    TreeNodeId cur = stack.back();
    stack.pop_back();
    result.insert(result.end(), vertices_[cur].begin(), vertices_[cur].end());
    for (TreeNodeId child : children_[cur]) stack.push_back(child);
  }
  return result;
}

uint64_t HcdForest::CoreSize(TreeNodeId node) const {
  HCD_CHECK(children_built_);
  uint64_t total = 0;
  std::vector<TreeNodeId> stack = {node};
  while (!stack.empty()) {
    TreeNodeId cur = stack.back();
    stack.pop_back();
    total += vertices_[cur].size();
    for (TreeNodeId child : children_[cur]) stack.push_back(child);
  }
  return total;
}

}  // namespace hcd
