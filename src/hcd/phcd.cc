#include "hcd/phcd.h"

#include <atomic>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/trace.h"
#include "hcd/vertex_rank.h"
#include "parallel/omp_utils.h"
#include "parallel/union_find.h"
#include "parallel/wf_union_find.h"

namespace hcd {
namespace {

/// Serial specialization: the same four steps per k, over the plain
/// (non-atomic) union-find. This is the configuration measured as
/// "PHCD (1)" — a sensible implementation does not pay for atomics when one
/// thread is requested.
HcdForest PhcdBuildSerial(const Graph& graph, const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  HcdForest forest(n);

  const VertexRank vr = ComputeVertexRank(cd);
  UnionFind uf(n, vr.rank.data());
  const auto& coreness = cd.coreness;

  std::vector<TreeNodeId> parent_of;
  std::vector<bool> in_kpc(n, false);
  std::vector<VertexId> kpc_pivot;
  std::vector<VertexId> pivot_of;  // pivot per shell position

  for (int64_t k = cd.k_max; k >= 0; --k) {
    const auto shell = vr.Shell(static_cast<uint32_t>(k));
    if (shell.empty()) continue;
    const uint32_t ck = static_cast<uint32_t>(k);
    ScopedSpan shell_span("phcd.shell");
    shell_span.AddArg("k", ck);
    shell_span.AddArg("shell_size", shell.size());

    // Steps 1+2 fused (serial-only optimization): capture the pivot of an
    // adjacent k'-core on an edge immediately before the union over that
    // edge. The first edge that merges a core performs its capture while
    // the core is still untouched, so every adjacent core's original pivot
    // is recorded; later edges into the now-merged component read a pivot
    // of shell coreness and are skipped.
    kpc_pivot.clear();
    for (VertexId v : shell) {
      VertexId rv = uf.Find(v);
      for (VertexId u : graph.Neighbors(v)) {
        if (coreness[u] > ck) {
          const VertexId ru = uf.Find(u);
          const VertexId pvt = uf.PivotAtRoot(ru);
          if (coreness[pvt] > ck && !in_kpc[pvt]) {
            in_kpc[pvt] = true;
            kpc_pivot.push_back(pvt);
          }
          rv = uf.LinkRoots(rv, ru);
        } else if (coreness[u] == ck && u > v) {
          rv = uf.LinkRoots(rv, uf.Find(u));
        }
      }
    }

    // Step 3: group the shell into new nodes by pivot.
    pivot_of.resize(shell.size());
    for (size_t i = 0; i < shell.size(); ++i) {
      const VertexId v = shell[i];
      const VertexId pvt = uf.GetPivot(v);
      pivot_of[i] = pvt;
      if (pvt == v) {
        TreeNodeId node = forest.NewNode(ck);
        parent_of.push_back(kInvalidNode);
        forest.AddVertex(node, v);
      }
    }
    for (size_t i = 0; i < shell.size(); ++i) {
      if (pivot_of[i] != shell[i]) {
        forest.AddVertex(forest.Tid(pivot_of[i]), shell[i]);
      }
    }

    // Step 4: parents for the stored child pivots.
    for (VertexId child_pivot : kpc_pivot) {
      parent_of[forest.Tid(child_pivot)] = forest.Tid(uf.GetPivot(child_pivot));
      in_kpc[child_pivot] = false;
    }
  }

  for (TreeNodeId node = 0; node < forest.NumNodes(); ++node) {
    if (parent_of[node] != kInvalidNode) {
      forest.SetParent(node, parent_of[node]);
    }
  }
  forest.BuildChildren();
  return forest;
}

HcdForest PhcdBuildParallel(const Graph& graph, const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  HcdForest forest(n);

  // Algorithm 1: k-shells and vertex rank.
  const VertexRank vr = ComputeVertexRank(cd);
  WaitFreeUnionFind uf(n, vr.rank.data());
  const auto& coreness = cd.coreness;

  // tid lives in the forest; parents are written into this flat array in
  // Step 4 (one writer per child node) and folded into the forest at the
  // end.
  std::vector<TreeNodeId> parent_of;  // indexed by TreeNodeId

  // Dedup flags for kpc_pivot ("atomic add if not exists", Line 9).
  std::unique_ptr<std::atomic<bool>[]> in_kpc(new std::atomic<bool>[n]);
  for (VertexId v = 0; v < n; ++v) {
    in_kpc[v].store(false, std::memory_order_relaxed);
  }

  std::vector<VertexId> kpc_pivot;
  std::vector<VertexId> pivot_of;  // pivot per shell position
  const int pmax = MaxThreads();
  std::vector<std::vector<VertexId>> local_kpc(pmax);

  for (int64_t k = cd.k_max; k >= 0; --k) {
    const auto shell = vr.Shell(static_cast<uint32_t>(k));
    if (shell.empty()) continue;
    const uint32_t ck = static_cast<uint32_t>(k);
    const int64_t shell_size = static_cast<int64_t>(shell.size());
    // One span per shell level, with nested per-step spans and per-worker
    // spans inside the two heavy parallel steps, so a trace shows how the
    // union-find merge work balances across threads at every level.
    ScopedSpan shell_span("phcd.shell");
    shell_span.AddArg("k", ck);
    shell_span.AddArg("shell_size", shell.size());

    // Step 1: pivots of existing k'-cores (k' > k) adjacent to the k-shell.
    kpc_pivot.clear();
    {
      ScopedSpan step_span("phcd.pivots");
#pragma omp parallel num_threads(pmax)
      {
        ScopedSpan worker_span("phcd.pivots.worker");
        worker_span.AddArg("k", ck);
        auto& mine = local_kpc[ThreadId()];
        mine.clear();
#pragma omp for schedule(dynamic, 256)
        for (int64_t i = 0; i < shell_size; ++i) {
          VertexId v = shell[i];
          for (VertexId u : graph.Neighbors(v)) {
            if (coreness[u] > ck) {
              VertexId pvt = uf.GetPivot(u);
              if (!in_kpc[pvt].exchange(true)) mine.push_back(pvt);
            }
          }
        }
      }
      for (auto& mine : local_kpc) {
        kpc_pivot.insert(kpc_pivot.end(), mine.begin(), mine.end());
      }
      step_span.AddArg("pivots", kpc_pivot.size());
    }

    // Step 2: connect the k-shell to the existing graph.
    {
      ScopedSpan step_span("phcd.union");
#pragma omp parallel num_threads(pmax)
      {
        ScopedSpan worker_span("phcd.union.worker");
        worker_span.AddArg("k", ck);
#pragma omp for schedule(dynamic, 256)
        for (int64_t i = 0; i < shell_size; ++i) {
          VertexId v = shell[i];
          for (VertexId u : graph.Neighbors(v)) {
            if (coreness[u] > ck || (coreness[u] == ck && u > v)) {
              uf.Union(v, u);
            }
          }
        }
      }
    }

    // Step 3: one new tree node per pivot; group the shell by pivot. The
    // pivot lookups run in parallel; node membership is then appended
    // serially from the cached pivots (O(|H_k|) with no synchronization).
    ScopedSpan group_span("phcd.group");
    pivot_of.resize(shell.size());
#pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < shell_size; ++i) {
      pivot_of[i] = uf.GetPivot(shell[i]);
    }
    for (size_t i = 0; i < shell.size(); ++i) {
      if (pivot_of[i] == shell[i]) {
        TreeNodeId node = forest.NewNode(ck);
        parent_of.push_back(kInvalidNode);
        forest.AddVertex(node, shell[i]);
      }
    }
    for (size_t i = 0; i < shell.size(); ++i) {
      if (pivot_of[i] != shell[i]) {
        forest.AddVertex(forest.Tid(pivot_of[i]), shell[i]);
      }
    }

    // Step 4: the stored child pivots now live in components whose pivot is
    // a k-shell vertex; that vertex's node is the parent.
#pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < static_cast<int64_t>(kpc_pivot.size()); ++i) {
      VertexId child_pivot = kpc_pivot[i];
      VertexId new_pivot = uf.GetPivot(child_pivot);
      HCD_DCHECK(new_pivot != child_pivot);
      TreeNodeId child = forest.Tid(child_pivot);
      TreeNodeId parent = forest.Tid(new_pivot);
      HCD_DCHECK(child != kInvalidNode);
      HCD_DCHECK(parent != kInvalidNode);
      parent_of[child] = parent;
      in_kpc[child_pivot].store(false, std::memory_order_relaxed);
    }
  }

  for (TreeNodeId node = 0; node < forest.NumNodes(); ++node) {
    if (parent_of[node] != kInvalidNode) {
      forest.SetParent(node, parent_of[node]);
    }
  }
  forest.BuildChildren();
  return forest;
}

}  // namespace

HcdForest PhcdBuild(const Graph& graph, const CoreDecomposition& cd,
                    TelemetrySink* sink) {
  ScopedStage stage(sink, "construction");
  HcdForest forest =
      graph.NumVertices() == 0
          ? HcdForest(0)
          : (MaxThreads() == 1 ? PhcdBuildSerial(graph, cd)
                               : PhcdBuildParallel(graph, cd));
  stage.AddCounter("shells", cd.k_max + 1);
  stage.AddCounter("nodes", forest.NumNodes());
  return forest;
}

}  // namespace hcd
