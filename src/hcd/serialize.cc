#include "hcd/serialize.h"

#include <cstdio>
#include <memory>
#include <vector>

namespace hcd {
namespace {

constexpr uint64_t kForestMagic = 0x484344464f523031ULL;  // "HCDFOR01"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  uint64_t size = v.size();
  if (std::fwrite(&size, sizeof(size), 1, f) != 1) return false;
  if (size == 0) return true;
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t size = 0;
  if (std::fread(&size, sizeof(size), 1, f) != 1) return false;
  v->resize(size);
  if (size == 0) return true;
  return std::fread(v->data(), sizeof(T), size, f) == size;
}

}  // namespace

Status SaveForest(const HcdForest& forest, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  uint64_t n = forest.NumVertices();
  uint64_t num_nodes = forest.NumNodes();
  bool ok = std::fwrite(&kForestMagic, sizeof(kForestMagic), 1, f.get()) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fwrite(&num_nodes, sizeof(num_nodes), 1, f.get()) == 1;

  std::vector<uint32_t> levels(num_nodes);
  std::vector<TreeNodeId> parents(num_nodes);
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    levels[t] = forest.Level(t);
    parents[t] = forest.Parent(t);
  }
  ok = ok && WriteVec(f.get(), levels) && WriteVec(f.get(), parents);
  for (TreeNodeId t = 0; t < num_nodes && ok; ++t) {
    std::vector<VertexId> verts(forest.Vertices(t).begin(),
                                forest.Vertices(t).end());
    ok = WriteVec(f.get(), verts);
  }
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadForest(const std::string& path, HcdForest* forest) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t num_nodes = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f.get()) == 1;
  ok = ok && std::fread(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fread(&num_nodes, sizeof(num_nodes), 1, f.get()) == 1;
  if (!ok) return Status::Corruption(path + ": truncated header");
  if (magic != kForestMagic) return Status::Corruption(path + ": bad magic");

  std::vector<uint32_t> levels;
  std::vector<TreeNodeId> parents;
  if (!ReadVec(f.get(), &levels) || !ReadVec(f.get(), &parents) ||
      levels.size() != num_nodes || parents.size() != num_nodes) {
    return Status::Corruption(path + ": truncated node tables");
  }

  HcdForest result(static_cast<VertexId>(n));
  for (uint64_t t = 0; t < num_nodes; ++t) {
    TreeNodeId id = result.NewNode(levels[t]);
    (void)id;
  }
  for (uint64_t t = 0; t < num_nodes; ++t) {
    std::vector<VertexId> verts;
    if (!ReadVec(f.get(), &verts)) {
      return Status::Corruption(path + ": truncated vertex lists");
    }
    for (VertexId v : verts) {
      if (v >= n) return Status::Corruption(path + ": vertex out of range");
      result.AddVertex(static_cast<TreeNodeId>(t), v);
    }
  }
  for (uint64_t t = 0; t < num_nodes; ++t) {
    if (parents[t] != kInvalidNode) {
      if (parents[t] >= num_nodes) {
        return Status::Corruption(path + ": parent out of range");
      }
      result.SetParent(static_cast<TreeNodeId>(t), parents[t]);
    }
  }
  result.BuildChildren();
  *forest = std::move(result);
  return Status::Ok();
}

}  // namespace hcd
