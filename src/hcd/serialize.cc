#include "hcd/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/mapped_file.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace hcd {
namespace {

constexpr uint64_t kForestMagicV1 = 0x484344464f523031ULL;  // "HCDFOR01"
constexpr uint64_t kForestMagicV2 = 0x484344464f523032ULL;  // "HCDFOR02"
constexpr uint64_t kForestMagicV3 = 0x484344464f523033ULL;  // "HCDFOR03"

// v2 header: kForestMagicV2, num_vertices, num_nodes, num_roots,
// num_children, num_placed, num_level_groups, reserved (0).
constexpr size_t kV2HeaderWords = 8;
constexpr size_t kV2HeaderBytes = kV2HeaderWords * sizeof(uint64_t);
// v3 header: kForestMagicV3, kind, num_graph_vertices, num_vertices
// (elements), num_nodes, num_roots, num_children, num_placed,
// num_level_groups, num_element_members, reserved, reserved (0).
constexpr size_t kV3HeaderWords = 12;
constexpr size_t kV3HeaderBytes = kV3HeaderWords * sizeof(uint64_t);
// Sections are padded to 8 bytes so each starts at an aligned offset.
constexpr uint64_t kSectionAlign = 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status OpenForRead(const std::string& path, FilePtr* f, uint64_t* file_size) {
  f->reset(std::fopen(path.c_str(), "rb"));
  if (*f == nullptr) return Status::IoError("cannot open " + path);
  if (std::fseek(f->get(), 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek " + path);
  }
  const long end = std::ftell(f->get());
  if (end < 0) return Status::IoError("cannot stat " + path);
  *file_size = static_cast<uint64_t>(end);
  std::rewind(f->get());
  return Status::Ok();
}

uint64_t RemainingBytes(std::FILE* f, uint64_t file_size) {
  const long pos = std::ftell(f);
  if (pos < 0 || static_cast<uint64_t>(pos) > file_size) return 0;
  return file_size - static_cast<uint64_t>(pos);
}

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  uint64_t size = v.size();
  if (std::fwrite(&size, sizeof(size), 1, f) != 1) return false;
  if (size == 0) return true;
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

/// Reads a length-prefixed array, refusing to allocate more elements than
/// the rest of the file could possibly hold — a corrupt 64-bit count must
/// fail cleanly instead of driving a giant resize.
template <typename T>
bool ReadVec(std::FILE* f, uint64_t file_size, std::vector<T>* v) {
  uint64_t size = 0;
  if (std::fread(&size, sizeof(size), 1, f) != 1) return false;
  if (size > RemainingBytes(f, file_size) / sizeof(T)) return false;
  v->resize(size);
  if (size == 0) return true;
  return std::fread(v->data(), sizeof(T), size, f) == size;
}

uint64_t PaddedSectionBytes(uint64_t count) {
  const uint64_t bytes = count * sizeof(uint32_t);
  return (bytes + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

template <typename T>
bool WriteSection(std::FILE* f, const ArrayRef<T>& v) {
  static_assert(sizeof(T) == sizeof(uint32_t));
  const uint64_t bytes = v.size() * sizeof(T);
  if (bytes > 0 && std::fwrite(v.data(), sizeof(T), v.size(), f) != v.size()) {
    return false;
  }
  const uint64_t pad = PaddedSectionBytes(v.size()) - bytes;
  if (pad > 0) {
    const char zeros[kSectionAlign] = {};
    if (std::fwrite(zeros, 1, pad, f) != pad) return false;
  }
  return true;
}

/// Bulk-reads one v2 section of a known element count (the count was
/// already validated against the file size, so the resize is safe). This is
/// the copying path; MapFlatBody below aliases the same bytes instead.
template <typename T>
bool ReadSection(std::FILE* f, uint64_t count, ArrayRef<T>* v) {
  static_assert(sizeof(T) == sizeof(uint32_t));
  v->resize(count);
  if (count > 0 && std::fread(v->data(), sizeof(T), count, f) != count) {
    return false;
  }
  const long pad =
      static_cast<long>(PaddedSectionBytes(count) - count * sizeof(T));
  return pad == 0 || std::fseek(f, pad, SEEK_CUR) == 0;
}

/// Observes one snapshot load in the metrics registry, labeled by how the
/// bytes reached memory ("read" = copying loader, "mmap" = zero-copy map).
void RecordSnapshotLoad(const char* mode, double seconds) {
  if (MetricsRegistry* registry = MetricsRegistry::Current()) {
    registry
        ->GetHistogram("hcd_snapshot_load_seconds",
                       "Wall time to load one flat snapshot into a servable "
                       "index",
                       {{"mode", mode}})
        ->Observe(seconds);
  }
}

/// v1 body after the magic word. Every structural property the builders
/// guarantee is re-validated here: this is the untrusted-input path, so
/// violations return Corruption instead of tripping the builder CHECKs.
Status LoadForestV1Body(std::FILE* f, uint64_t file_size,
                        const std::string& path, HcdForest* forest) {
  uint64_t n = 0;
  uint64_t num_nodes = 0;
  bool ok = std::fread(&n, sizeof(n), 1, f) == 1;
  ok = ok && std::fread(&num_nodes, sizeof(num_nodes), 1, f) == 1;
  if (!ok) return Status::Corruption(path + ": truncated header");
  if (n >= kInvalidVertex || num_nodes >= kInvalidNode) {
    return Status::Corruption(path + ": implausible header counts");
  }

  std::vector<uint32_t> levels;
  std::vector<TreeNodeId> parents;
  if (!ReadVec(f, file_size, &levels) || !ReadVec(f, file_size, &parents) ||
      levels.size() != num_nodes || parents.size() != num_nodes) {
    return Status::Corruption(path + ": truncated node tables");
  }

  HcdForest result(static_cast<VertexId>(n));
  for (uint64_t t = 0; t < num_nodes; ++t) {
    TreeNodeId id = result.NewNode(levels[t]);
    (void)id;
  }
  for (uint64_t t = 0; t < num_nodes; ++t) {
    std::vector<VertexId> verts;
    if (!ReadVec(f, file_size, &verts)) {
      return Status::Corruption(path + ": truncated vertex lists");
    }
    for (VertexId v : verts) {
      if (v >= n) return Status::Corruption(path + ": vertex out of range");
      if (result.Tid(v) != kInvalidNode) {
        return Status::Corruption(path + ": vertex placed in two nodes");
      }
      result.AddVertex(static_cast<TreeNodeId>(t), v);
    }
  }
  for (uint64_t t = 0; t < num_nodes; ++t) {
    if (parents[t] == kInvalidNode) continue;
    if (parents[t] >= num_nodes) {
      return Status::Corruption(path + ": parent out of range");
    }
    if (levels[parents[t]] >= levels[t]) {
      return Status::Corruption(path + ": parent level inversion");
    }
    result.SetParent(static_cast<TreeNodeId>(t), parents[t]);
  }
  result.BuildChildren();
  *forest = std::move(result);
  return Status::Ok();
}

/// Validated header counts of a v2/v3 flat snapshot. One struct serves both
/// versions (v2 is a kCore header with no member section), so the copying
/// loader and the zero-copy mapper share a single source of truth for the
/// section layout.
struct FlatHeader {
  HierarchyKind kind = HierarchyKind::kCore;
  uint64_t n = 0;             ///< elements (index "vertices")
  uint64_t ng = 0;            ///< graph vertices (== n for v2)
  uint64_t num_nodes = 0;
  uint64_t num_roots = 0;
  uint64_t num_children = 0;
  uint64_t num_placed = 0;
  uint64_t num_level_groups = 0;
  uint64_t num_members = 0;   ///< element_members section (0 for v2)
  uint64_t header_bytes = 0;  ///< kV2HeaderBytes or kV3HeaderBytes
};

/// Parses + sanity-checks the v2 header words after the magic.
Status ParseFlatHeaderV2(const uint64_t* words, const std::string& path,
                         FlatHeader* h) {
  h->kind = HierarchyKind::kCore;
  h->n = words[0];
  h->ng = words[0];  // v2 is always kCore: elements ARE graph vertices
  h->num_nodes = words[1];
  h->num_roots = words[2];
  h->num_children = words[3];
  h->num_placed = words[4];
  h->num_level_groups = words[5];
  h->num_members = 0;
  h->header_bytes = kV2HeaderBytes;
  const uint64_t reserved = words[6];
  if (h->n >= kInvalidVertex || h->num_nodes >= kInvalidNode ||
      h->num_roots > h->num_nodes ||
      h->num_children != h->num_nodes - h->num_roots ||
      h->num_placed > h->n || h->num_level_groups > h->num_nodes ||
      reserved != 0 ||
      (h->num_nodes > 0 && (h->num_roots == 0 || h->num_level_groups == 0))) {
    return Status::Corruption(path + ": implausible header counts");
  }
  return Status::Ok();
}

/// Parses + sanity-checks the v3 header words after the magic.
Status ParseFlatHeaderV3(const uint64_t* words, const std::string& path,
                         FlatHeader* h) {
  const uint64_t kind_raw = words[0];
  // A v3 file tagged kCore is rejected as non-canonical: the writer emits
  // v2 for core indexes, so accepting both would break byte-identical
  // round-trips.
  if (kind_raw > static_cast<uint64_t>(HierarchyKind::kNucleus) ||
      kind_raw == static_cast<uint64_t>(HierarchyKind::kCore)) {
    return Status::Corruption(path + ": bad hierarchy kind tag");
  }
  h->kind = static_cast<HierarchyKind>(kind_raw);
  h->ng = words[1];
  h->n = words[2];
  h->num_nodes = words[3];
  h->num_roots = words[4];
  h->num_children = words[5];
  h->num_placed = words[6];
  h->num_level_groups = words[7];
  h->num_members = words[8];
  h->header_bytes = kV3HeaderBytes;
  const uint64_t reserved = words[9] | words[10];
  if (h->n >= kInvalidVertex || h->ng >= kInvalidVertex ||
      h->num_nodes >= kInvalidNode || h->num_roots > h->num_nodes ||
      h->num_children != h->num_nodes - h->num_roots ||
      h->num_placed > h->n || h->num_level_groups > h->num_nodes ||
      reserved != 0 || h->num_members != ElementArity(h->kind) * h->n ||
      (h->num_nodes > 0 && (h->num_roots == 0 || h->num_level_groups == 0))) {
    return Status::Corruption(path + ": implausible header counts");
  }
  return Status::Ok();
}

/// The exact byte size a well-formed file with this header must have. The
/// header fixes every section size, so this doubles as the layout's offset
/// arithmetic: sections follow the header in declaration order, each padded
/// to kSectionAlign. (PaddedSectionBytes(0) == 0, so the v2 case — no
/// element_members section — falls out of num_members == 0.)
uint64_t ExpectedFlatFileSize(const FlatHeader& h) {
  return h.header_bytes +
         4 * PaddedSectionBytes(h.num_nodes) +      // levels, parents,
                                                    // subtree_nodes,
                                                    // desc_level_order
         2 * PaddedSectionBytes(h.num_nodes + 1) +  // child/vertex offsets
         PaddedSectionBytes(h.num_children) +
         PaddedSectionBytes(h.num_placed) + PaddedSectionBytes(h.n) +
         PaddedSectionBytes(h.num_level_groups + 1) +
         PaddedSectionBytes(h.num_roots) + PaddedSectionBytes(h.num_members);
}

/// Copying body shared by v2 and v3: bulk-reads each section into owned
/// ArrayRefs and funnels through Adopt. The file size was already proven to
/// match the header exactly, so every fread is in bounds.
Status ReadFlatBody(std::FILE* f, const FlatHeader& h, const std::string& path,
                    FlatHcdIndex* index) {
  FlatHcdIndex::Data d;
  d.kind = h.kind;
  d.num_vertices = static_cast<VertexId>(h.n);
  d.num_graph_vertices = static_cast<VertexId>(h.ng);
  bool ok = ReadSection(f, h.num_nodes, &d.levels) &&
            ReadSection(f, h.num_nodes, &d.parents) &&
            ReadSection(f, h.num_nodes, &d.subtree_nodes) &&
            ReadSection(f, h.num_nodes + 1, &d.child_offsets) &&
            ReadSection(f, h.num_children, &d.children) &&
            ReadSection(f, h.num_nodes + 1, &d.vertex_offsets) &&
            ReadSection(f, h.num_placed, &d.vertices) &&
            ReadSection(f, h.n, &d.tid) &&
            ReadSection(f, h.num_nodes, &d.desc_level_order) &&
            ReadSection(f, h.num_level_groups + 1, &d.level_group_offsets) &&
            ReadSection(f, h.num_roots, &d.roots);
  if (ok && h.kind != HierarchyKind::kCore) {
    ok = ReadSection(f, h.num_members, &d.element_members);
  }
  if (!ok) return Status::Corruption(path + ": truncated sections");

  Status s = FlatHcdIndex::Adopt(std::move(d), index);
  if (!s.ok()) return Status(s.code(), path + ": " + s.message());
  return Status::Ok();
}

Status LoadFlatV2Body(std::FILE* f, uint64_t file_size,
                      const std::string& path, FlatHcdIndex* index) {
  uint64_t words[kV2HeaderWords - 1];  // magic already consumed
  if (std::fread(words, sizeof(uint64_t), std::size(words), f) !=
      std::size(words)) {
    return Status::Corruption(path + ": truncated header");
  }
  FlatHeader h;
  HCD_RETURN_IF_ERROR(ParseFlatHeaderV2(words, path, &h));
  // The whole file size must match exactly before anything is allocated.
  if (ExpectedFlatFileSize(h) != file_size) {
    return Status::Corruption(path + ": section sizes do not match file size");
  }
  return ReadFlatBody(f, h, path, index);
}

Status LoadFlatV3Body(std::FILE* f, uint64_t file_size,
                      const std::string& path, FlatHcdIndex* index) {
  uint64_t words[kV3HeaderWords - 1];  // magic already consumed
  if (std::fread(words, sizeof(uint64_t), std::size(words), f) !=
      std::size(words)) {
    return Status::Corruption(path + ": truncated header");
  }
  FlatHeader h;
  HCD_RETURN_IF_ERROR(ParseFlatHeaderV3(words, path, &h));
  // The whole file size must match exactly before anything is allocated.
  if (ExpectedFlatFileSize(h) != file_size) {
    return Status::Corruption(path + ": section sizes do not match file size");
  }
  return ReadFlatBody(f, h, path, index);
}

/// Zero-copy body shared by v2 and v3: aliases each section inside the
/// mapping at its computed offset and funnels through the same Adopt
/// validation the copying loader uses. The caller proved the file size
/// matches the header exactly BEFORE this runs, so no alias — and no
/// validation read through one — can touch bytes past the mapping
/// (truncation is a Status, never a SIGBUS).
Status MapFlatBody(const std::shared_ptr<const MappedFile>& file,
                   const FlatHeader& h, const std::string& path,
                   FlatHcdIndex* index) {
  FlatHcdIndex::Data d;
  d.kind = h.kind;
  d.num_vertices = static_cast<VertexId>(h.n);
  d.num_graph_vertices = static_cast<VertexId>(h.ng);
  uint64_t offset = h.header_bytes;
  // Sections start at 8-byte offsets inside a page-aligned mapping, so the
  // uint32 casts below are always aligned.
  auto alias = [&]<typename T>(uint64_t count, ArrayRef<T>* section) {
    *section = ArrayRef<T>(
        reinterpret_cast<const T*>(file->data() + offset),
        static_cast<size_t>(count), file);
    offset += PaddedSectionBytes(count);
  };
  alias(h.num_nodes, &d.levels);
  alias(h.num_nodes, &d.parents);
  alias(h.num_nodes, &d.subtree_nodes);
  alias(h.num_nodes + 1, &d.child_offsets);
  alias(h.num_children, &d.children);
  alias(h.num_nodes + 1, &d.vertex_offsets);
  alias(h.num_placed, &d.vertices);
  alias(h.n, &d.tid);
  alias(h.num_nodes, &d.desc_level_order);
  alias(h.num_level_groups + 1, &d.level_group_offsets);
  alias(h.num_roots, &d.roots);
  if (h.kind != HierarchyKind::kCore) {
    alias(h.num_members, &d.element_members);
  }

  Status s = FlatHcdIndex::Adopt(std::move(d), index);
  if (!s.ok()) return Status(s.code(), path + ": " + s.message());
  return Status::Ok();
}

}  // namespace

Status SaveForest(const HcdForest& forest, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  uint64_t n = forest.NumVertices();
  uint64_t num_nodes = forest.NumNodes();
  bool ok = std::fwrite(&kForestMagicV1, sizeof(kForestMagicV1), 1, f.get()) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fwrite(&num_nodes, sizeof(num_nodes), 1, f.get()) == 1;

  std::vector<uint32_t> levels(num_nodes);
  std::vector<TreeNodeId> parents(num_nodes);
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    levels[t] = forest.Level(t);
    parents[t] = forest.Parent(t);
  }
  ok = ok && WriteVec(f.get(), levels) && WriteVec(f.get(), parents);
  for (TreeNodeId t = 0; t < num_nodes && ok; ++t) {
    std::vector<VertexId> verts(forest.Vertices(t).begin(),
                                forest.Vertices(t).end());
    ok = WriteVec(f.get(), verts);
  }
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadForest(const std::string& path, HcdForest* forest) {
  FilePtr f;
  uint64_t file_size = 0;
  HCD_RETURN_IF_ERROR(OpenForRead(path, &f, &file_size));

  uint64_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  if (magic == kForestMagicV2 || magic == kForestMagicV3) {
    return Status::InvalidArgument(
        path + ": flat snapshot; load with LoadFlatIndex");
  }
  if (magic != kForestMagicV1) return Status::Corruption(path + ": bad magic");
  return LoadForestV1Body(f.get(), file_size, path, forest);
}

Status SaveFlatIndex(const FlatHcdIndex& index, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  const FlatHcdIndex::Data& d = index.data();
  bool ok;
  if (d.kind == HierarchyKind::kCore) {
    // Core snapshots stay v2, bit-identical to the pre-kind format.
    const uint64_t header[kV2HeaderWords] = {
        kForestMagicV2,
        d.num_vertices,
        d.levels.size(),
        d.roots.size(),
        d.children.size(),
        d.vertices.size(),
        index.NumLevelGroups(),
        0,  // reserved
    };
    ok = std::fwrite(header, sizeof(uint64_t), kV2HeaderWords, f.get()) ==
         kV2HeaderWords;
  } else {
    const uint64_t header[kV3HeaderWords] = {
        kForestMagicV3,
        static_cast<uint64_t>(d.kind),
        d.num_graph_vertices,
        d.num_vertices,
        d.levels.size(),
        d.roots.size(),
        d.children.size(),
        d.vertices.size(),
        index.NumLevelGroups(),
        d.element_members.size(),
        0,  // reserved
        0,  // reserved
    };
    ok = std::fwrite(header, sizeof(uint64_t), kV3HeaderWords, f.get()) ==
         kV3HeaderWords;
  }
  ok = ok && WriteSection(f.get(), d.levels) &&
       WriteSection(f.get(), d.parents) &&
       WriteSection(f.get(), d.subtree_nodes) &&
       WriteSection(f.get(), d.child_offsets) &&
       WriteSection(f.get(), d.children) &&
       WriteSection(f.get(), d.vertex_offsets) &&
       WriteSection(f.get(), d.vertices) && WriteSection(f.get(), d.tid) &&
       WriteSection(f.get(), d.desc_level_order) &&
       WriteSection(f.get(), d.level_group_offsets) &&
       WriteSection(f.get(), d.roots);
  if (d.kind != HierarchyKind::kCore) {
    ok = ok && WriteSection(f.get(), d.element_members);
  }
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadFlatIndex(const std::string& path, FlatHcdIndex* index) {
  ScopedSpan span("load.snapshot.read");
  span.AddArg("path", path);
  Timer timer;

  FilePtr f;
  uint64_t file_size = 0;
  HCD_RETURN_IF_ERROR(OpenForRead(path, &f, &file_size));
  span.AddArg("bytes", file_size);

  uint64_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  Status s;
  if (magic == kForestMagicV2) {
    s = LoadFlatV2Body(f.get(), file_size, path, index);
  } else if (magic == kForestMagicV3) {
    s = LoadFlatV3Body(f.get(), file_size, path, index);
  } else if (magic == kForestMagicV1) {
    HcdForest forest;
    HCD_RETURN_IF_ERROR(LoadForestV1Body(f.get(), file_size, path, &forest));
    *index = Freeze(std::move(forest));
    s = Status::Ok();
  } else {
    return Status::Corruption(path + ": bad magic");
  }
  if (s.ok()) RecordSnapshotLoad("read", timer.Seconds());
  return s;
}

Status MapFlatIndex(const std::string& path, FlatHcdIndex* index) {
  ScopedSpan span("load.snapshot.map");
  span.AddArg("path", path);
  Timer timer;

  std::shared_ptr<const MappedFile> file;
  HCD_RETURN_IF_ERROR(MappedFile::Open(path, &file));
  span.AddArg("bytes", file->size());
  if (file->size() < sizeof(uint64_t)) {
    return Status::Corruption(path + ": truncated header");
  }
  uint64_t magic = 0;
  std::memcpy(&magic, file->data(), sizeof(magic));
  if (magic == kForestMagicV1) {
    // v1 is builder-shaped, not a flat layout — nothing to alias. Drop the
    // mapping and take the copying migration path instead.
    file.reset();
    return LoadFlatIndex(path, index);
  }
  if (magic != kForestMagicV2 && magic != kForestMagicV3) {
    return Status::Corruption(path + ": bad magic");
  }

  const size_t header_words =
      magic == kForestMagicV2 ? kV2HeaderWords : kV3HeaderWords;
  if (file->size() < header_words * sizeof(uint64_t)) {
    return Status::Corruption(path + ": truncated header");
  }
  uint64_t words[kV3HeaderWords - 1];  // magic excluded; v3 is the larger
  std::memcpy(words, file->data() + sizeof(uint64_t),
              (header_words - 1) * sizeof(uint64_t));
  FlatHeader h;
  if (magic == kForestMagicV2) {
    HCD_RETURN_IF_ERROR(ParseFlatHeaderV2(words, path, &h));
  } else {
    HCD_RETURN_IF_ERROR(ParseFlatHeaderV3(words, path, &h));
  }
  // The whole file size must match the header exactly BEFORE any section is
  // aliased: a truncated file must fail here with a Status, never fault on
  // a later page access.
  if (ExpectedFlatFileSize(h) != file->size()) {
    return Status::Corruption(path + ": section sizes do not match file size");
  }
  Status s = MapFlatBody(file, h, path, index);
  if (s.ok()) RecordSnapshotLoad("mmap", timer.Seconds());
  return s;
}

const char* SnapshotModeName(SnapshotMode mode) {
  return mode == SnapshotMode::kMmap ? "mmap" : "read";
}

bool ParseSnapshotMode(std::string_view text, SnapshotMode* mode) {
  if (text == "read") {
    *mode = SnapshotMode::kRead;
    return true;
  }
  if (text == "mmap") {
    *mode = SnapshotMode::kMmap;
    return true;
  }
  return false;
}

Status LoadFlatSnapshot(const std::string& path, SnapshotMode mode,
                        FlatHcdIndex* index) {
  return mode == SnapshotMode::kMmap ? MapFlatIndex(path, index)
                                     : LoadFlatIndex(path, index);
}

}  // namespace hcd
