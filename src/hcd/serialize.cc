#include "hcd/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace hcd {
namespace {

constexpr uint64_t kForestMagicV1 = 0x484344464f523031ULL;  // "HCDFOR01"
constexpr uint64_t kForestMagicV2 = 0x484344464f523032ULL;  // "HCDFOR02"
constexpr uint64_t kForestMagicV3 = 0x484344464f523033ULL;  // "HCDFOR03"

// v2 header: kForestMagicV2, num_vertices, num_nodes, num_roots,
// num_children, num_placed, num_level_groups, reserved (0).
constexpr size_t kV2HeaderWords = 8;
constexpr size_t kV2HeaderBytes = kV2HeaderWords * sizeof(uint64_t);
// v3 header: kForestMagicV3, kind, num_graph_vertices, num_vertices
// (elements), num_nodes, num_roots, num_children, num_placed,
// num_level_groups, num_element_members, reserved, reserved (0).
constexpr size_t kV3HeaderWords = 12;
constexpr size_t kV3HeaderBytes = kV3HeaderWords * sizeof(uint64_t);
// Sections are padded to 8 bytes so each starts at an aligned offset.
constexpr uint64_t kSectionAlign = 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status OpenForRead(const std::string& path, FilePtr* f, uint64_t* file_size) {
  f->reset(std::fopen(path.c_str(), "rb"));
  if (*f == nullptr) return Status::IoError("cannot open " + path);
  if (std::fseek(f->get(), 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek " + path);
  }
  const long end = std::ftell(f->get());
  if (end < 0) return Status::IoError("cannot stat " + path);
  *file_size = static_cast<uint64_t>(end);
  std::rewind(f->get());
  return Status::Ok();
}

uint64_t RemainingBytes(std::FILE* f, uint64_t file_size) {
  const long pos = std::ftell(f);
  if (pos < 0 || static_cast<uint64_t>(pos) > file_size) return 0;
  return file_size - static_cast<uint64_t>(pos);
}

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  uint64_t size = v.size();
  if (std::fwrite(&size, sizeof(size), 1, f) != 1) return false;
  if (size == 0) return true;
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

/// Reads a length-prefixed array, refusing to allocate more elements than
/// the rest of the file could possibly hold — a corrupt 64-bit count must
/// fail cleanly instead of driving a giant resize.
template <typename T>
bool ReadVec(std::FILE* f, uint64_t file_size, std::vector<T>* v) {
  uint64_t size = 0;
  if (std::fread(&size, sizeof(size), 1, f) != 1) return false;
  if (size > RemainingBytes(f, file_size) / sizeof(T)) return false;
  v->resize(size);
  if (size == 0) return true;
  return std::fread(v->data(), sizeof(T), size, f) == size;
}

uint64_t PaddedSectionBytes(uint64_t count) {
  const uint64_t bytes = count * sizeof(uint32_t);
  return (bytes + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

template <typename T>
bool WriteSection(std::FILE* f, const std::vector<T>& v) {
  static_assert(sizeof(T) == sizeof(uint32_t));
  const uint64_t bytes = v.size() * sizeof(T);
  if (bytes > 0 && std::fwrite(v.data(), sizeof(T), v.size(), f) != v.size()) {
    return false;
  }
  const uint64_t pad = PaddedSectionBytes(v.size()) - bytes;
  if (pad > 0) {
    const char zeros[kSectionAlign] = {};
    if (std::fwrite(zeros, 1, pad, f) != pad) return false;
  }
  return true;
}

/// Bulk-reads one v2 section of a known element count (the count was
/// already validated against the file size, so the resize is safe).
template <typename T>
bool ReadSection(std::FILE* f, uint64_t count, std::vector<T>* v) {
  static_assert(sizeof(T) == sizeof(uint32_t));
  v->resize(count);
  if (count > 0 && std::fread(v->data(), sizeof(T), count, f) != count) {
    return false;
  }
  const long pad =
      static_cast<long>(PaddedSectionBytes(count) - count * sizeof(T));
  return pad == 0 || std::fseek(f, pad, SEEK_CUR) == 0;
}

/// v1 body after the magic word. Every structural property the builders
/// guarantee is re-validated here: this is the untrusted-input path, so
/// violations return Corruption instead of tripping the builder CHECKs.
Status LoadForestV1Body(std::FILE* f, uint64_t file_size,
                        const std::string& path, HcdForest* forest) {
  uint64_t n = 0;
  uint64_t num_nodes = 0;
  bool ok = std::fread(&n, sizeof(n), 1, f) == 1;
  ok = ok && std::fread(&num_nodes, sizeof(num_nodes), 1, f) == 1;
  if (!ok) return Status::Corruption(path + ": truncated header");
  if (n >= kInvalidVertex || num_nodes >= kInvalidNode) {
    return Status::Corruption(path + ": implausible header counts");
  }

  std::vector<uint32_t> levels;
  std::vector<TreeNodeId> parents;
  if (!ReadVec(f, file_size, &levels) || !ReadVec(f, file_size, &parents) ||
      levels.size() != num_nodes || parents.size() != num_nodes) {
    return Status::Corruption(path + ": truncated node tables");
  }

  HcdForest result(static_cast<VertexId>(n));
  for (uint64_t t = 0; t < num_nodes; ++t) {
    TreeNodeId id = result.NewNode(levels[t]);
    (void)id;
  }
  for (uint64_t t = 0; t < num_nodes; ++t) {
    std::vector<VertexId> verts;
    if (!ReadVec(f, file_size, &verts)) {
      return Status::Corruption(path + ": truncated vertex lists");
    }
    for (VertexId v : verts) {
      if (v >= n) return Status::Corruption(path + ": vertex out of range");
      if (result.Tid(v) != kInvalidNode) {
        return Status::Corruption(path + ": vertex placed in two nodes");
      }
      result.AddVertex(static_cast<TreeNodeId>(t), v);
    }
  }
  for (uint64_t t = 0; t < num_nodes; ++t) {
    if (parents[t] == kInvalidNode) continue;
    if (parents[t] >= num_nodes) {
      return Status::Corruption(path + ": parent out of range");
    }
    if (levels[parents[t]] >= levels[t]) {
      return Status::Corruption(path + ": parent level inversion");
    }
    result.SetParent(static_cast<TreeNodeId>(t), parents[t]);
  }
  result.BuildChildren();
  *forest = std::move(result);
  return Status::Ok();
}

Status LoadFlatV2Body(std::FILE* f, uint64_t file_size,
                      const std::string& path, FlatHcdIndex* index) {
  uint64_t header[kV2HeaderWords - 1];  // magic already consumed
  if (std::fread(header, sizeof(uint64_t), std::size(header), f) !=
      std::size(header)) {
    return Status::Corruption(path + ": truncated header");
  }
  const uint64_t n = header[0];
  const uint64_t num_nodes = header[1];
  const uint64_t num_roots = header[2];
  const uint64_t num_children = header[3];
  const uint64_t num_placed = header[4];
  const uint64_t num_level_groups = header[5];
  const uint64_t reserved = header[6];
  if (n >= kInvalidVertex || num_nodes >= kInvalidNode ||
      num_roots > num_nodes || num_children != num_nodes - num_roots ||
      num_placed > n || num_level_groups > num_nodes || reserved != 0 ||
      (num_nodes > 0 && (num_roots == 0 || num_level_groups == 0))) {
    return Status::Corruption(path + ": implausible header counts");
  }

  // The header fixes every section size; the whole file size must match
  // exactly before anything is allocated.
  const uint64_t expected_size =
      kV2HeaderBytes +
      4 * PaddedSectionBytes(num_nodes) +      // levels, parents,
                                               // subtree_nodes,
                                               // desc_level_order
      2 * PaddedSectionBytes(num_nodes + 1) +  // child/vertex offsets
      PaddedSectionBytes(num_children) + PaddedSectionBytes(num_placed) +
      PaddedSectionBytes(n) + PaddedSectionBytes(num_level_groups + 1) +
      PaddedSectionBytes(num_roots);
  if (expected_size != file_size) {
    return Status::Corruption(path + ": section sizes do not match file size");
  }

  FlatHcdIndex::Data d;
  d.num_vertices = static_cast<VertexId>(n);
  d.num_graph_vertices = static_cast<VertexId>(n);  // v2 is always kCore
  bool ok = ReadSection(f, num_nodes, &d.levels) &&
            ReadSection(f, num_nodes, &d.parents) &&
            ReadSection(f, num_nodes, &d.subtree_nodes) &&
            ReadSection(f, num_nodes + 1, &d.child_offsets) &&
            ReadSection(f, num_children, &d.children) &&
            ReadSection(f, num_nodes + 1, &d.vertex_offsets) &&
            ReadSection(f, num_placed, &d.vertices) &&
            ReadSection(f, n, &d.tid) &&
            ReadSection(f, num_nodes, &d.desc_level_order) &&
            ReadSection(f, num_level_groups + 1, &d.level_group_offsets) &&
            ReadSection(f, num_roots, &d.roots);
  if (!ok) return Status::Corruption(path + ": truncated sections");

  Status s = FlatHcdIndex::Adopt(std::move(d), index);
  if (!s.ok()) return Status(s.code(), path + ": " + s.message());
  return Status::Ok();
}

Status LoadFlatV3Body(std::FILE* f, uint64_t file_size,
                      const std::string& path, FlatHcdIndex* index) {
  uint64_t header[kV3HeaderWords - 1];  // magic already consumed
  if (std::fread(header, sizeof(uint64_t), std::size(header), f) !=
      std::size(header)) {
    return Status::Corruption(path + ": truncated header");
  }
  const uint64_t kind_raw = header[0];
  const uint64_t ng = header[1];
  const uint64_t n = header[2];
  const uint64_t num_nodes = header[3];
  const uint64_t num_roots = header[4];
  const uint64_t num_children = header[5];
  const uint64_t num_placed = header[6];
  const uint64_t num_level_groups = header[7];
  const uint64_t num_members = header[8];
  const uint64_t reserved = header[9] | header[10];
  // A v3 file tagged kCore is rejected as non-canonical: the writer emits
  // v2 for core indexes, so accepting both would break byte-identical
  // round-trips.
  if (kind_raw > static_cast<uint64_t>(HierarchyKind::kNucleus) ||
      kind_raw == static_cast<uint64_t>(HierarchyKind::kCore)) {
    return Status::Corruption(path + ": bad hierarchy kind tag");
  }
  const HierarchyKind kind = static_cast<HierarchyKind>(kind_raw);
  if (n >= kInvalidVertex || ng >= kInvalidVertex ||
      num_nodes >= kInvalidNode || num_roots > num_nodes ||
      num_children != num_nodes - num_roots || num_placed > n ||
      num_level_groups > num_nodes || reserved != 0 ||
      num_members != ElementArity(kind) * n ||
      (num_nodes > 0 && (num_roots == 0 || num_level_groups == 0))) {
    return Status::Corruption(path + ": implausible header counts");
  }

  // The header fixes every section size; the whole file size must match
  // exactly before anything is allocated.
  const uint64_t expected_size =
      kV3HeaderBytes +
      4 * PaddedSectionBytes(num_nodes) +      // levels, parents,
                                               // subtree_nodes,
                                               // desc_level_order
      2 * PaddedSectionBytes(num_nodes + 1) +  // child/vertex offsets
      PaddedSectionBytes(num_children) + PaddedSectionBytes(num_placed) +
      PaddedSectionBytes(n) + PaddedSectionBytes(num_level_groups + 1) +
      PaddedSectionBytes(num_roots) + PaddedSectionBytes(num_members);
  if (expected_size != file_size) {
    return Status::Corruption(path + ": section sizes do not match file size");
  }

  FlatHcdIndex::Data d;
  d.kind = kind;
  d.num_vertices = static_cast<VertexId>(n);
  d.num_graph_vertices = static_cast<VertexId>(ng);
  bool ok = ReadSection(f, num_nodes, &d.levels) &&
            ReadSection(f, num_nodes, &d.parents) &&
            ReadSection(f, num_nodes, &d.subtree_nodes) &&
            ReadSection(f, num_nodes + 1, &d.child_offsets) &&
            ReadSection(f, num_children, &d.children) &&
            ReadSection(f, num_nodes + 1, &d.vertex_offsets) &&
            ReadSection(f, num_placed, &d.vertices) &&
            ReadSection(f, n, &d.tid) &&
            ReadSection(f, num_nodes, &d.desc_level_order) &&
            ReadSection(f, num_level_groups + 1, &d.level_group_offsets) &&
            ReadSection(f, num_roots, &d.roots) &&
            ReadSection(f, num_members, &d.element_members);
  if (!ok) return Status::Corruption(path + ": truncated sections");

  Status s = FlatHcdIndex::Adopt(std::move(d), index);
  if (!s.ok()) return Status(s.code(), path + ": " + s.message());
  return Status::Ok();
}

}  // namespace

Status SaveForest(const HcdForest& forest, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  uint64_t n = forest.NumVertices();
  uint64_t num_nodes = forest.NumNodes();
  bool ok = std::fwrite(&kForestMagicV1, sizeof(kForestMagicV1), 1, f.get()) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fwrite(&num_nodes, sizeof(num_nodes), 1, f.get()) == 1;

  std::vector<uint32_t> levels(num_nodes);
  std::vector<TreeNodeId> parents(num_nodes);
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    levels[t] = forest.Level(t);
    parents[t] = forest.Parent(t);
  }
  ok = ok && WriteVec(f.get(), levels) && WriteVec(f.get(), parents);
  for (TreeNodeId t = 0; t < num_nodes && ok; ++t) {
    std::vector<VertexId> verts(forest.Vertices(t).begin(),
                                forest.Vertices(t).end());
    ok = WriteVec(f.get(), verts);
  }
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadForest(const std::string& path, HcdForest* forest) {
  FilePtr f;
  uint64_t file_size = 0;
  HCD_RETURN_IF_ERROR(OpenForRead(path, &f, &file_size));

  uint64_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  if (magic == kForestMagicV2 || magic == kForestMagicV3) {
    return Status::InvalidArgument(
        path + ": flat snapshot; load with LoadFlatIndex");
  }
  if (magic != kForestMagicV1) return Status::Corruption(path + ": bad magic");
  return LoadForestV1Body(f.get(), file_size, path, forest);
}

Status SaveFlatIndex(const FlatHcdIndex& index, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  const FlatHcdIndex::Data& d = index.data();
  bool ok;
  if (d.kind == HierarchyKind::kCore) {
    // Core snapshots stay v2, bit-identical to the pre-kind format.
    const uint64_t header[kV2HeaderWords] = {
        kForestMagicV2,
        d.num_vertices,
        d.levels.size(),
        d.roots.size(),
        d.children.size(),
        d.vertices.size(),
        index.NumLevelGroups(),
        0,  // reserved
    };
    ok = std::fwrite(header, sizeof(uint64_t), kV2HeaderWords, f.get()) ==
         kV2HeaderWords;
  } else {
    const uint64_t header[kV3HeaderWords] = {
        kForestMagicV3,
        static_cast<uint64_t>(d.kind),
        d.num_graph_vertices,
        d.num_vertices,
        d.levels.size(),
        d.roots.size(),
        d.children.size(),
        d.vertices.size(),
        index.NumLevelGroups(),
        d.element_members.size(),
        0,  // reserved
        0,  // reserved
    };
    ok = std::fwrite(header, sizeof(uint64_t), kV3HeaderWords, f.get()) ==
         kV3HeaderWords;
  }
  ok = ok && WriteSection(f.get(), d.levels) &&
       WriteSection(f.get(), d.parents) &&
       WriteSection(f.get(), d.subtree_nodes) &&
       WriteSection(f.get(), d.child_offsets) &&
       WriteSection(f.get(), d.children) &&
       WriteSection(f.get(), d.vertex_offsets) &&
       WriteSection(f.get(), d.vertices) && WriteSection(f.get(), d.tid) &&
       WriteSection(f.get(), d.desc_level_order) &&
       WriteSection(f.get(), d.level_group_offsets) &&
       WriteSection(f.get(), d.roots);
  if (d.kind != HierarchyKind::kCore) {
    ok = ok && WriteSection(f.get(), d.element_members);
  }
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadFlatIndex(const std::string& path, FlatHcdIndex* index) {
  FilePtr f;
  uint64_t file_size = 0;
  HCD_RETURN_IF_ERROR(OpenForRead(path, &f, &file_size));

  uint64_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  if (magic == kForestMagicV2) {
    return LoadFlatV2Body(f.get(), file_size, path, index);
  }
  if (magic == kForestMagicV3) {
    return LoadFlatV3Body(f.get(), file_size, path, index);
  }
  if (magic == kForestMagicV1) {
    HcdForest forest;
    HCD_RETURN_IF_ERROR(LoadForestV1Body(f.get(), file_size, path, &forest));
    *index = Freeze(std::move(forest));
    return Status::Ok();
  }
  return Status::Corruption(path + ": bad magic");
}

}  // namespace hcd
