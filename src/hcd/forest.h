#ifndef HCD_HCD_FOREST_H_
#define HCD_HCD_FOREST_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "graph/types.h"

namespace hcd {

using TreeNodeId = uint32_t;
inline constexpr TreeNodeId kInvalidNode =
    std::numeric_limits<TreeNodeId>::max();

/// The hierarchical core decomposition index (Section II-B, Figure 2).
///
/// Each tree node T_i corresponds to one k-core S and stores exactly the
/// vertices of S with coreness k (V(T_i) = S ∩ H_k); `Parent` is P(T_i)
/// (kInvalidNode for forest roots), `Children` is C(T_i), and `Tid(v)` maps
/// each vertex to its unique containing node. The original k-core of a node
/// is the union of the vertex sets of the node's subtree (CoreVertices).
///
/// Construction protocol (used by the LCPS / PHCD / oracle builders):
/// create nodes with NewNode, populate them with AddVertex, link with
/// SetParent, then call BuildChildren once to materialize child lists.
class HcdForest {
 public:
  HcdForest() : HcdForest(0) {}
  explicit HcdForest(VertexId num_vertices)
      : tid_(num_vertices, kInvalidNode) {}

  // --- construction ---------------------------------------------------------

  /// Creates an empty tree node at core level `level`; returns its id.
  TreeNodeId NewNode(uint32_t level) {
    levels_.push_back(level);
    parents_.push_back(kInvalidNode);
    vertices_.emplace_back();
    return static_cast<TreeNodeId>(levels_.size() - 1);
  }

  /// Adds `v` to node `node` and records tid(v). A vertex may join exactly
  /// one node.
  void AddVertex(TreeNodeId node, VertexId v) {
    HCD_DCHECK(node < NumNodes());
    HCD_DCHECK(v < tid_.size());
    HCD_DCHECK(tid_[v] == kInvalidNode) << "vertex already placed";
    vertices_[node].push_back(v);
    tid_[v] = node;
  }

  void SetParent(TreeNodeId child, TreeNodeId parent) {
    HCD_DCHECK(child < NumNodes());
    HCD_DCHECK(parent < NumNodes());
    parents_[child] = parent;
  }

  /// Derives all child lists from the parent pointers. Call once after all
  /// SetParent calls.
  void BuildChildren();

  // --- accessors -------------------------------------------------------------

  TreeNodeId NumNodes() const { return static_cast<TreeNodeId>(levels_.size()); }
  VertexId NumVertices() const { return static_cast<VertexId>(tid_.size()); }

  uint32_t Level(TreeNodeId node) const { return levels_[node]; }
  TreeNodeId Parent(TreeNodeId node) const { return parents_[node]; }
  std::span<const TreeNodeId> Children(TreeNodeId node) const {
    HCD_DCHECK(children_built_);
    return children_[node];
  }
  std::span<const VertexId> Vertices(TreeNodeId node) const {
    return vertices_[node];
  }

  /// Node containing v, or kInvalidNode if v was never placed.
  TreeNodeId Tid(VertexId v) const { return tid_[v]; }

  /// All nodes without a parent.
  std::vector<TreeNodeId> Roots() const;

  /// Node ids ordered by descending level (ties by id). Processing in this
  /// order guarantees children come before parents, as required by the
  /// bottom-up accumulations of Algorithms 3-5.
  std::vector<TreeNodeId> NodesByDescendingLevel() const;

  /// Vertices of the node's original k-core: the union of the subtree's
  /// vertex sets.
  std::vector<VertexId> CoreVertices(TreeNodeId node) const;

  /// Number of vertices in the node's original k-core.
  uint64_t CoreSize(TreeNodeId node) const;

 private:
  std::vector<uint32_t> levels_;
  std::vector<TreeNodeId> parents_;
  std::vector<std::vector<VertexId>> vertices_;
  std::vector<std::vector<TreeNodeId>> children_;
  std::vector<TreeNodeId> tid_;
  bool children_built_ = false;
};

}  // namespace hcd

#endif  // HCD_HCD_FOREST_H_
