#ifndef HCD_HCD_LOWER_BOUND_H_
#define HCD_HCD_LOWER_BOUND_H_

#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// The paper's LB baseline (Table III): unions every adjacent vertex pair
/// in the pivot-extended wait-free union-find, including the vertex-rank
/// preprocessing. This is the unavoidable connection cost of any
/// union-find-based HCD construction; PHCD's runtime is compared against
/// it. Uses the current OpenMP thread count. Returns the number of
/// components, so the work cannot be optimized away.
VertexId UnionFindLowerBound(const Graph& graph, const CoreDecomposition& cd);

}  // namespace hcd

#endif  // HCD_HCD_LOWER_BOUND_H_
