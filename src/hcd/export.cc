#include "hcd/export.h"

#include <algorithm>
#include <sstream>

namespace hcd {
namespace {

template <typename Hierarchy>
std::string ForestToDotImpl(const Hierarchy& forest, const DotOptions& options) {
  std::ostringstream out;
  out << "digraph hcd {\n";
  out << "  rankdir=BT;\n";
  out << "  node [shape=box, style=filled];\n";
  uint32_t max_level = 1;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    max_level = std::max(max_level, forest.Level(t));
  }
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    out << "  n" << t << " [label=\"k=" << forest.Level(t) << " |V|="
        << forest.Vertices(t).size() << "\\n{";
    const auto verts = forest.Vertices(t);
    for (size_t i = 0; i < verts.size() && i < options.max_vertices_per_label;
         ++i) {
      if (i > 0) out << ",";
      out << verts[i];
    }
    if (verts.size() > options.max_vertices_per_label) out << ",...";
    out << "}\"";
    if (options.color_by_level) {
      // Map level to one of 9 blues (1 = lightest).
      uint32_t shade = 1 + (forest.Level(t) * 8) / std::max(max_level, 1u);
      out << ", colorscheme=blues9, fillcolor=" << std::min(shade, 9u);
    }
    out << "];\n";
  }
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    if (forest.Parent(t) != kInvalidNode) {
      out << "  n" << t << " -> n" << forest.Parent(t) << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

template <typename Hierarchy>
std::string ForestToJsonImpl(const Hierarchy& forest) {
  std::ostringstream out;
  out << "[\n";
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    out << "  {\"id\": " << t << ", \"level\": " << forest.Level(t)
        << ", \"parent\": ";
    if (forest.Parent(t) == kInvalidNode) {
      out << "null";
    } else {
      out << forest.Parent(t);
    }
    out << ", \"vertices\": [";
    const auto verts = forest.Vertices(t);
    for (size_t i = 0; i < verts.size(); ++i) {
      if (i > 0) out << ", ";
      out << verts[i];
    }
    out << "]}";
    if (t + 1 < forest.NumNodes()) out << ",";
    out << "\n";
  }
  out << "]\n";
  return out.str();
}

}  // namespace

std::string ForestToDot(const HcdForest& forest, const DotOptions& options) {
  return ForestToDotImpl(forest, options);
}

std::string ForestToDot(const FlatHcdIndex& index, const DotOptions& options) {
  return ForestToDotImpl(index, options);
}

std::string ForestToJson(const HcdForest& forest) {
  return ForestToJsonImpl(forest);
}

std::string ForestToJson(const FlatHcdIndex& index) {
  return ForestToJsonImpl(index);
}

}  // namespace hcd
