#ifndef HCD_HCD_PHCD_H_
#define HCD_HCD_PHCD_H_

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/forest.h"

namespace hcd {

/// Parallel HCD construction (the paper's Algorithm 2).
///
/// Starting from an empty graph, adds the k-shells in descending k and
/// builds the forest bottom-up. Connectivity of the growing graph is
/// maintained in a wait-free union-find whose components each track their
/// *pivot* — the member with the lowest vertex rank (Definitions 4-5). For
/// each k:
///   Step 1  records the pivots of the existing (k+1)-cores adjacent to the
///           k-shell (these become children of this round's new nodes);
///   Step 2  unions every k-shell vertex with its neighbors of coreness
///           >= k;
///   Step 3  groups the k-shell into new tree nodes by pivot;
///   Step 4  assigns each recorded child pivot's node the node of its
///           component's new pivot as parent.
/// Steps run as parallel loops over the k-shell separated by barriers, so
/// pivot reads always observe quiescent union-find state.
///
/// Work: O(n sqrt(p) + m alpha(n)) union-find operations overall. Uses the
/// current OpenMP thread count; with one thread this is the paper's
/// "PHCD (1)" serial configuration.
///
/// Requires `cd` to be the core decomposition of `graph`. With a sink,
/// records a "construction" stage (counters: shells, nodes).
HcdForest PhcdBuild(const Graph& graph, const CoreDecomposition& cd,
                    TelemetrySink* sink = nullptr);

}  // namespace hcd

#endif  // HCD_HCD_PHCD_H_
