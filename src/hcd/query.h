#ifndef HCD_HCD_QUERY_H_
#define HCD_HCD_QUERY_H_

#include <span>
#include <vector>

#include "hcd/flat_index.h"
#include "hcd/forest.h"

namespace hcd {

/// Local k-core queries on the HCD index (the ShellStruct / CL-Tree
/// functionality the paper cites as applications of the structure): all
/// answers come from ancestor walks plus subtree collection, with no graph
/// traversal.

/// The tree node associated with the k-core containing `v`: the highest
/// ancestor of tid(v) whose level is still >= k. Returns kInvalidNode when
/// c(v) < k (v is in no k-core).
TreeNodeId NodeOfKCoreContaining(const HcdForest& forest, VertexId v,
                                 uint32_t k);

/// Vertex set of the k-core containing `v` (empty when there is none).
/// O(answer size) after the ancestor walk.
std::vector<VertexId> KCoreContaining(const HcdForest& forest, VertexId v,
                                      uint32_t k);

/// Coreness of `v` as recorded by the index (level of its tree node).
uint32_t CorenessOf(const HcdForest& forest, VertexId v);

/// True iff u and v belong to a common k-core.
bool InSameKCore(const HcdForest& forest, VertexId u, VertexId v, uint32_t k);

// --- FlatHcdIndex overloads -------------------------------------------------
//
// The serve phase never touches the builder forest, so the same local
// queries exist on the frozen index (same ancestor-walk answers; vertex
// sets come back as O(1) spans instead of allocated vectors). These are
// what the query server (src/server/) evaluates per request.

/// The tree node of the k-core containing `v` on the frozen index, or
/// kInvalidNode when c(v) < k or `v` is out of range / never placed.
TreeNodeId NodeOfKCoreContaining(const FlatHcdIndex& index, VertexId v,
                                 uint32_t k);

/// The tree node of the k-core containing *all* of `vertices` (the node
/// every per-vertex ancestor walk lands on), or kInvalidNode when any
/// vertex is outside every k-core or the walks disagree. Empty input is
/// kInvalidNode — "all vertices" of an empty set names no core.
TreeNodeId NodeOfKCoreContainingAll(const FlatHcdIndex& index,
                                    std::span<const VertexId> vertices,
                                    uint32_t k);

/// Coreness of `v` as recorded by the frozen index (0 when out of range).
uint32_t CorenessOf(const FlatHcdIndex& index, VertexId v);

/// True iff u and v belong to a common k-core on the frozen index.
bool InSameKCore(const FlatHcdIndex& index, VertexId u, VertexId v,
                 uint32_t k);

}  // namespace hcd

#endif  // HCD_HCD_QUERY_H_
