#ifndef HCD_HCD_QUERY_H_
#define HCD_HCD_QUERY_H_

#include <vector>

#include "hcd/forest.h"

namespace hcd {

/// Local k-core queries on the HCD index (the ShellStruct / CL-Tree
/// functionality the paper cites as applications of the structure): all
/// answers come from ancestor walks plus subtree collection, with no graph
/// traversal.

/// The tree node associated with the k-core containing `v`: the highest
/// ancestor of tid(v) whose level is still >= k. Returns kInvalidNode when
/// c(v) < k (v is in no k-core).
TreeNodeId NodeOfKCoreContaining(const HcdForest& forest, VertexId v,
                                 uint32_t k);

/// Vertex set of the k-core containing `v` (empty when there is none).
/// O(answer size) after the ancestor walk.
std::vector<VertexId> KCoreContaining(const HcdForest& forest, VertexId v,
                                      uint32_t k);

/// Coreness of `v` as recorded by the index (level of its tree node).
uint32_t CorenessOf(const HcdForest& forest, VertexId v);

/// True iff u and v belong to a common k-core.
bool InSameKCore(const HcdForest& forest, VertexId u, VertexId v, uint32_t k);

}  // namespace hcd

#endif  // HCD_HCD_QUERY_H_
