#ifndef HCD_HCD_SERIALIZE_H_
#define HCD_HCD_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "hcd/forest.h"

namespace hcd {

/// Writes a versioned binary snapshot of the forest (levels, parents and
/// vertex memberships; children are rebuilt on load).
Status SaveForest(const HcdForest& forest, const std::string& path);

/// Loads a forest written by SaveForest.
Status LoadForest(const std::string& path, HcdForest* forest);

}  // namespace hcd

#endif  // HCD_HCD_SERIALIZE_H_
