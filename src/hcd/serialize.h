#ifndef HCD_HCD_SERIALIZE_H_
#define HCD_HCD_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "hcd/flat_index.h"
#include "hcd/forest.h"

namespace hcd {

/// Snapshot formats
/// ----------------
/// v1 ("HCDFOR01"): builder-shaped stream — header, level/parent tables,
/// then one length-prefixed vertex list per node. Kept for backward
/// compatibility; new snapshots are always v2.
///
/// v2 ("HCDFOR02"): the FlatHcdIndex layout itself. A fixed 64-byte header
/// (magic + section element counts) followed by the index's arrays written
/// verbatim, each section padded to 8-byte alignment. Loading is a handful
/// of bulk reads (mmap-friendly: every section sits at a computable aligned
/// offset) funneled through FlatHcdIndex::Adopt, which validates all
/// structural invariants, so corrupt files of any version yield
/// Status::Corruption — never an abort. v2 carries no kind tag and always
/// loads as HierarchyKind::kCore.
///
/// v3 ("HCDFOR03"): the kind-tagged flat layout for non-core hierarchies
/// (truss / nucleus). A fixed 96-byte header — magic, kind, graph vertex
/// count, then the v2 section counts plus the element-member count — and
/// the v2 sections followed by one trailing element_members section
/// (arity * element count vertices, the element -> member-vertex
/// materialization). Core indexes keep writing v2, byte-identical to
/// before, so existing snapshots and their hashes are untouched; a v3
/// file tagged kCore is rejected as non-canonical.

/// Writes a v1 builder-shaped snapshot of the forest (levels, parents and
/// vertex memberships; children are rebuilt on load).
Status SaveForest(const HcdForest& forest, const std::string& path);

/// Loads a v1 forest snapshot written by SaveForest. Rejects v2 files
/// (use LoadFlatIndex) and corrupt v1 files with a non-ok Status.
Status LoadForest(const std::string& path, HcdForest* forest);

/// Writes a flat snapshot: v2 for a core index (byte-identical to the
/// pre-kind format), v3 for truss / nucleus. Byte-for-byte deterministic:
/// saving a loaded index reproduces the input file exactly.
Status SaveFlatIndex(const FlatHcdIndex& index, const std::string& path);

/// Loads a snapshot of any version into a flat index: v2/v3 files are read
/// section-by-section as whole arrays (v2 adopts as kCore); v1 files are
/// loaded as a forest and converted via Freeze (the migration path).
Status LoadFlatIndex(const std::string& path, FlatHcdIndex* index);

/// Zero-copy load: mmaps the file read-only and aliases every v2/v3 section
/// in place (the index's ArrayRefs co-own the mapping), after proving the
/// file size matches the header-declared section layout exactly — a
/// truncated or padded file fails with Status::Corruption before any byte
/// past the header is touched, never with a fault. The aliased sections
/// still funnel through FlatHcdIndex::Adopt, so every structural-corruption
/// case the copying loader rejects is rejected here too. v1 files fall back
/// to the copying LoadFlatIndex (they have no flat layout to alias). The
/// resulting index answers bit-identically to a read-loaded one.
Status MapFlatIndex(const std::string& path, FlatHcdIndex* index);

/// How snapshot bytes reach memory: kRead copies them into owned arrays,
/// kMmap aliases the mapped file (page-cache backed, shared across
/// processes, demand-paged).
enum class SnapshotMode {
  kRead,
  kMmap,
};

/// "read" / "mmap".
const char* SnapshotModeName(SnapshotMode mode);

/// Parses "read" / "mmap"; returns false (leaving `*mode` untouched) on
/// anything else.
bool ParseSnapshotMode(std::string_view text, SnapshotMode* mode);

/// Dispatches to LoadFlatIndex or MapFlatIndex by mode.
Status LoadFlatSnapshot(const std::string& path, SnapshotMode mode,
                        FlatHcdIndex* index);

}  // namespace hcd

#endif  // HCD_HCD_SERIALIZE_H_
