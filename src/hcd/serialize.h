#ifndef HCD_HCD_SERIALIZE_H_
#define HCD_HCD_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "hcd/flat_index.h"
#include "hcd/forest.h"

namespace hcd {

/// Snapshot formats
/// ----------------
/// v1 ("HCDFOR01"): builder-shaped stream — header, level/parent tables,
/// then one length-prefixed vertex list per node. Kept for backward
/// compatibility; new snapshots are always v2.
///
/// v2 ("HCDFOR02"): the FlatHcdIndex layout itself. A fixed 64-byte header
/// (magic + section element counts) followed by the index's arrays written
/// verbatim, each section padded to 8-byte alignment. Loading is a handful
/// of bulk reads (mmap-friendly: every section sits at a computable aligned
/// offset) funneled through FlatHcdIndex::Adopt, which validates all
/// structural invariants, so corrupt files of either version yield
/// Status::Corruption — never an abort.

/// Writes a v1 builder-shaped snapshot of the forest (levels, parents and
/// vertex memberships; children are rebuilt on load).
Status SaveForest(const HcdForest& forest, const std::string& path);

/// Loads a v1 forest snapshot written by SaveForest. Rejects v2 files
/// (use LoadFlatIndex) and corrupt v1 files with a non-ok Status.
Status LoadForest(const std::string& path, HcdForest* forest);

/// Writes a v2 flat snapshot. Byte-for-byte deterministic: saving a loaded
/// index reproduces the input file exactly.
Status SaveFlatIndex(const FlatHcdIndex& index, const std::string& path);

/// Loads a snapshot of either version into a flat index: v2 files are read
/// section-by-section as whole arrays; v1 files are loaded as a forest and
/// converted via Freeze (the migration path).
Status LoadFlatIndex(const std::string& path, FlatHcdIndex* index);

}  // namespace hcd

#endif  // HCD_HCD_SERIALIZE_H_
