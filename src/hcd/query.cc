#include "hcd/query.h"

namespace hcd {

TreeNodeId NodeOfKCoreContaining(const HcdForest& forest, VertexId v,
                                 uint32_t k) {
  TreeNodeId node = forest.Tid(v);
  if (node == kInvalidNode || forest.Level(node) < k) return kInvalidNode;
  while (true) {
    const TreeNodeId parent = forest.Parent(node);
    if (parent == kInvalidNode || forest.Level(parent) < k) return node;
    node = parent;
  }
}

std::vector<VertexId> KCoreContaining(const HcdForest& forest, VertexId v,
                                      uint32_t k) {
  const TreeNodeId node = NodeOfKCoreContaining(forest, v, k);
  if (node == kInvalidNode) return {};
  return forest.CoreVertices(node);
}

uint32_t CorenessOf(const HcdForest& forest, VertexId v) {
  const TreeNodeId node = forest.Tid(v);
  return node == kInvalidNode ? 0 : forest.Level(node);
}

bool InSameKCore(const HcdForest& forest, VertexId u, VertexId v, uint32_t k) {
  const TreeNodeId nu = NodeOfKCoreContaining(forest, u, k);
  if (nu == kInvalidNode) return false;
  return nu == NodeOfKCoreContaining(forest, v, k);
}

TreeNodeId NodeOfKCoreContaining(const FlatHcdIndex& index, VertexId v,
                                 uint32_t k) {
  if (v >= index.NumVertices()) return kInvalidNode;
  TreeNodeId node = index.Tid(v);
  if (node == kInvalidNode || index.Level(node) < k) return kInvalidNode;
  while (true) {
    const TreeNodeId parent = index.Parent(node);
    if (parent == kInvalidNode || index.Level(parent) < k) return node;
    node = parent;
  }
}

TreeNodeId NodeOfKCoreContainingAll(const FlatHcdIndex& index,
                                    std::span<const VertexId> vertices,
                                    uint32_t k) {
  if (vertices.empty()) return kInvalidNode;
  TreeNodeId common = kInvalidNode;
  for (const VertexId v : vertices) {
    const TreeNodeId node = NodeOfKCoreContaining(index, v, k);
    if (node == kInvalidNode) return kInvalidNode;
    if (common == kInvalidNode) {
      common = node;
    } else if (node != common) {
      return kInvalidNode;
    }
  }
  return common;
}

uint32_t CorenessOf(const FlatHcdIndex& index, VertexId v) {
  if (v >= index.NumVertices()) return 0;
  const TreeNodeId node = index.Tid(v);
  return node == kInvalidNode ? 0 : index.Level(node);
}

bool InSameKCore(const FlatHcdIndex& index, VertexId u, VertexId v,
                 uint32_t k) {
  const TreeNodeId nu = NodeOfKCoreContaining(index, u, k);
  if (nu == kInvalidNode) return false;
  return nu == NodeOfKCoreContaining(index, v, k);
}

}  // namespace hcd
