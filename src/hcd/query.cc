#include "hcd/query.h"

namespace hcd {

TreeNodeId NodeOfKCoreContaining(const HcdForest& forest, VertexId v,
                                 uint32_t k) {
  TreeNodeId node = forest.Tid(v);
  if (node == kInvalidNode || forest.Level(node) < k) return kInvalidNode;
  while (true) {
    const TreeNodeId parent = forest.Parent(node);
    if (parent == kInvalidNode || forest.Level(parent) < k) return node;
    node = parent;
  }
}

std::vector<VertexId> KCoreContaining(const HcdForest& forest, VertexId v,
                                      uint32_t k) {
  const TreeNodeId node = NodeOfKCoreContaining(forest, v, k);
  if (node == kInvalidNode) return {};
  return forest.CoreVertices(node);
}

uint32_t CorenessOf(const HcdForest& forest, VertexId v) {
  const TreeNodeId node = forest.Tid(v);
  return node == kInvalidNode ? 0 : forest.Level(node);
}

bool InSameKCore(const HcdForest& forest, VertexId u, VertexId v, uint32_t k) {
  const TreeNodeId nu = NodeOfKCoreContaining(forest, u, k);
  if (nu == kInvalidNode) return false;
  return nu == NodeOfKCoreContaining(forest, v, k);
}

}  // namespace hcd
