#include "hcd/stats.h"

#include <algorithm>
#include <sstream>

namespace hcd {
namespace {

template <typename Hierarchy>
ForestStats ComputeForestStatsImpl(const Hierarchy& forest) {
  ForestStats stats;
  stats.num_nodes = forest.NumNodes();
  if (stats.num_nodes == 0) return stats;

  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    stats.max_level = std::max(stats.max_level, forest.Level(t));
    stats.max_branching = std::max(
        stats.max_branching, static_cast<uint32_t>(forest.Children(t).size()));
    if (forest.Parent(t) == kInvalidNode) ++stats.num_roots;
  }
  stats.nodes_per_level.assign(stats.max_level + 1, 0);
  stats.elements_per_level.assign(stats.max_level + 1, 0);
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    ++stats.nodes_per_level[forest.Level(t)];
    stats.elements_per_level[forest.Level(t)] += forest.Vertices(t).size();
  }

  // Depth via one pass in ascending-level order: a parent's depth is final
  // before any of its (strictly higher-level) children are visited.
  std::vector<uint32_t> depth(forest.NumNodes(), 1);
  const auto order = forest.NodesByDescendingLevel();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TreeNodeId t = *it;
    const TreeNodeId p = forest.Parent(t);
    if (p != kInvalidNode) depth[t] = depth[p] + 1;
    stats.depth = std::max(stats.depth, depth[t]);
  }
  return stats;
}

}  // namespace

ForestStats ComputeForestStats(const HcdForest& forest) {
  return ComputeForestStatsImpl(forest);
}

ForestStats ComputeForestStats(const FlatHcdIndex& index) {
  return ComputeForestStatsImpl(index);
}

std::string ForestStatsToString(const ForestStats& stats) {
  std::ostringstream out;
  out << "nodes         " << stats.num_nodes << "\n";
  out << "roots         " << stats.num_roots << "\n";
  out << "depth         " << stats.depth << "\n";
  out << "max branching " << stats.max_branching << "\n";
  out << "max level     " << stats.max_level << "\n";
  if (!stats.nodes_per_level.empty()) {
    out << "levels (k: nodes/elements):\n";
    const uint32_t step =
        std::max<uint32_t>(1, (stats.max_level + 1) / 12);
    for (uint32_t k = 0; k <= stats.max_level; k += step) {
      out << "  " << k << ": " << stats.nodes_per_level[k] << "/"
          << stats.elements_per_level[k] << "\n";
    }
  }
  return out.str();
}

}  // namespace hcd
