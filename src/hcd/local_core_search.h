#ifndef HCD_HCD_LOCAL_CORE_SEARCH_H_
#define HCD_HCD_LOCAL_CORE_SEARCH_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/forest.h"

namespace hcd {

/// Local k-core search (RC, Section III-E): the maximal connected subgraph
/// containing `v` in which every vertex has coreness >= c(v) — i.e. the
/// c(v)-core containing v — found by BFS from v.
std::vector<VertexId> LocalCoreSearch(const Graph& graph,
                                      const CoreDecomposition& cd, VertexId v);

/// The RC experiment of Table III: recomputes every parent-child relation
/// of the HCD with local k-core searches (one BFS per tree node, over the
/// current OpenMP threads), the essential primitive of the divide-and-
/// conquer paradigm the paper rules out. Returns the parent of every node
/// (kInvalidNode for roots); callers compare against `forest` to confirm
/// correctness and measure the cost.
std::vector<TreeNodeId> RcComputeParents(const Graph& graph,
                                         const CoreDecomposition& cd,
                                         const HcdForest& forest);

}  // namespace hcd

#endif  // HCD_HCD_LOCAL_CORE_SEARCH_H_
