#include "hcd/naive_hcd.h"

#include <vector>

#include "common/check.h"
#include "hcd/vertex_rank.h"

namespace hcd {

HcdForest NaiveHcdBuild(const Graph& graph, const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  HcdForest forest(n);
  if (n == 0) return forest;

  const VertexRank vr = ComputeVertexRank(cd);

  std::vector<int64_t> stamp(n, -1);   // round in which comp_id[v] is valid
  std::vector<VertexId> comp_id(n, 0);
  std::vector<VertexId> queue;

  struct Pending {
    TreeNodeId node;
    VertexId rep;  // any vertex of the node, for component lookup
  };
  std::vector<Pending> parentless;

  for (int64_t k = cd.k_max; k >= 0; --k) {
    // Vertices with coreness >= k form the suffix of the rank order.
    const VertexId begin = vr.shell_start[k];
    const auto active = std::span<const VertexId>(
        vr.sorted.data() + begin, vr.sorted.size() - begin);

    // Label connected components of the active subgraph.
    VertexId num_comps = 0;
    for (VertexId src : active) {
      if (stamp[src] == k) continue;
      const VertexId comp = num_comps++;
      stamp[src] = k;
      comp_id[src] = comp;
      queue.assign(1, src);
      while (!queue.empty()) {
        VertexId v = queue.back();
        queue.pop_back();
        for (VertexId u : graph.Neighbors(v)) {
          if (cd.coreness[u] >= static_cast<uint32_t>(k) && stamp[u] != k) {
            stamp[u] = k;
            comp_id[u] = comp;
            queue.push_back(u);
          }
        }
      }
    }

    // One node per component with a non-empty k-shell part.
    std::vector<TreeNodeId> comp_node(num_comps, kInvalidNode);
    for (VertexId v : vr.Shell(static_cast<uint32_t>(k))) {
      TreeNodeId& node = comp_node[comp_id[v]];
      if (node == kInvalidNode) node = forest.NewNode(static_cast<uint32_t>(k));
      forest.AddVertex(node, v);
    }

    // Adopt parentless higher-level nodes whose component gained a node.
    std::vector<Pending> still_pending;
    for (const Pending& p : parentless) {
      HCD_DCHECK(stamp[p.rep] == k);
      TreeNodeId node = comp_node[comp_id[p.rep]];
      if (node != kInvalidNode) {
        forest.SetParent(p.node, node);
      } else {
        still_pending.push_back(p);
      }
    }
    parentless = std::move(still_pending);
    for (VertexId c = 0; c < num_comps; ++c) {
      if (comp_node[c] != kInvalidNode) {
        parentless.push_back(
            {comp_node[c], forest.Vertices(comp_node[c]).front()});
      }
    }
  }

  forest.BuildChildren();
  return forest;
}

}  // namespace hcd
