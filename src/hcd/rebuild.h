#ifndef HCD_HCD_REBUILD_H_
#define HCD_HCD_REBUILD_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"

namespace hcd {

/// What an incremental re-freeze will touch. Granularity is whole trees of
/// the old FlatHcdIndex: a tree is exactly one connected component of the
/// graph it was built from, so a tree containing no endpoint of a changed
/// edge and no vertex of changed coreness is bit-identical in the new
/// hierarchy and can be spliced through untouched.
///
/// The dirty vertex set (the union of the dirty trees' components) is
/// closed under new-graph adjacency: every new-graph edge incident to it
/// either was applied by the batch (both endpoints touched, hence dirty)
/// or already existed (both endpoints in one old component, hence in one
/// tree). Merges and splits of components therefore happen entirely inside
/// the dirty region, which is what makes splicing sound.
struct RebuildPlan {
  /// Old-index root node ids of the dirty trees, ascending.
  std::vector<TreeNodeId> dirty_roots;
  /// Union of the dirty trees' vertices (the region to rebuild).
  std::vector<VertexId> dirty_vertices;
  /// |dirty_vertices| / NumVertices of the old index.
  double dirty_fraction = 0.0;
  /// True when the plan decided an incremental splice is not worth it
  /// (dirty_fraction above the threshold); ApplyRebuild then runs the
  /// ordinary full PhcdBuild + Freeze.
  bool full_rebuild = false;
};

struct RebuildOptions {
  /// Dirty-vertex fraction above which ApplyRebuild falls back to a full
  /// rebuild: past this point rebuilding most trees anyway, the splice
  /// bookkeeping is pure overhead.
  double full_rebuild_threshold = 0.25;
};

/// Plans the incremental re-freeze for a set of touched vertices (the
/// endpoints of every applied edge plus every vertex whose coreness
/// changed — BatchStats::changed_vertices + applied_edges provides exactly
/// this). Touched ids must be valid for `old_index`.
RebuildPlan PlanRebuild(const FlatHcdIndex& old_index,
                        std::span<const VertexId> touched,
                        const RebuildOptions& options = {});

/// Executes a plan against the updated graph and its (already maintained)
/// core decomposition, producing the new frozen index.
///
/// Incremental path: induce the dirty region, PhcdBuild + Freeze just that
/// subgraph (stage "rebuild.subbuild"), then splice the kept trees' blocks
/// (shifted to their new preorder ids) with the freshly built blocks,
/// recompute the descending-level order, and run the result through
/// FlatHcdIndex::Adopt (stage "rebuild.splice") — so a splicing bug
/// surfaces as Corruption, never as a silently wrong index. Full path:
/// PhcdBuild + Freeze of the whole graph.
///
/// Requires new_graph.NumVertices() == old_index.NumVertices() (live
/// batches mutate edges, never the vertex set) and `new_cd` to be the
/// decomposition of `new_graph`.
Status ApplyRebuild(const RebuildPlan& plan, const FlatHcdIndex& old_index,
                    const Graph& new_graph, const CoreDecomposition& new_cd,
                    TelemetrySink* sink, FlatHcdIndex* out);

}  // namespace hcd

#endif  // HCD_HCD_REBUILD_H_
