#ifndef HCD_HCD_EXPORT_H_
#define HCD_HCD_EXPORT_H_

#include <string>

#include "hcd/flat_index.h"
#include "hcd/forest.h"

namespace hcd {

/// Options controlling DOT rendering of a forest.
struct DotOptions {
  /// Print at most this many vertex ids inside each node label.
  uint32_t max_vertices_per_label = 8;
  /// Color nodes by level (Graphviz "colorscheme=blues9" style).
  bool color_by_level = true;
};

/// Renders the hierarchy as Graphviz DOT (one graph node per tree node,
/// edges parent -> child), the paper's visualization application. Accepts
/// either the builder forest or the frozen index.
std::string ForestToDot(const HcdForest& forest, const DotOptions& options = {});
std::string ForestToDot(const FlatHcdIndex& index, const DotOptions& options = {});

/// Renders the hierarchy as a JSON document: an array of
/// {"id", "level", "parent", "vertices"} objects. Note the two
/// representations number nodes differently (the frozen index uses
/// preorder ids), so their JSON differs in ids but not in structure.
std::string ForestToJson(const HcdForest& forest);
std::string ForestToJson(const FlatHcdIndex& index);

}  // namespace hcd

#endif  // HCD_HCD_EXPORT_H_
