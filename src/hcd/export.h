#ifndef HCD_HCD_EXPORT_H_
#define HCD_HCD_EXPORT_H_

#include <string>

#include "hcd/forest.h"

namespace hcd {

/// Options controlling DOT rendering of a forest.
struct DotOptions {
  /// Print at most this many vertex ids inside each node label.
  uint32_t max_vertices_per_label = 8;
  /// Color nodes by level (Graphviz "colorscheme=blues9" style).
  bool color_by_level = true;
};

/// Renders the forest as Graphviz DOT (one graph node per tree node, edges
/// parent -> child), the paper's visualization application.
std::string ForestToDot(const HcdForest& forest, const DotOptions& options = {});

/// Renders the forest as a JSON document: an array of
/// {"id", "level", "parent", "vertices"} objects.
std::string ForestToJson(const HcdForest& forest);

}  // namespace hcd

#endif  // HCD_HCD_EXPORT_H_
