#include "hcd/local_core_search.h"

#include <vector>

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {

std::vector<VertexId> LocalCoreSearch(const Graph& graph,
                                      const CoreDecomposition& cd,
                                      VertexId v) {
  const uint32_t k = cd.coreness[v];
  std::vector<bool> seen(graph.NumVertices(), false);
  std::vector<VertexId> result;
  std::vector<VertexId> stack = {v};
  seen[v] = true;
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    result.push_back(x);
    for (VertexId u : graph.Neighbors(x)) {
      if (!seen[u] && cd.coreness[u] >= k) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return result;
}

std::vector<TreeNodeId> RcComputeParents(const Graph& graph,
                                         const CoreDecomposition& cd,
                                         const HcdForest& forest) {
  const TreeNodeId num_nodes = forest.NumNodes();
  const VertexId n = graph.NumVertices();
  std::vector<TreeNodeId> parents(num_nodes, kInvalidNode);
  if (num_nodes == 0) return parents;

  const int pmax = MaxThreads();
  // Per-thread best container found so far for every node: the ancestor
  // with the largest level strictly below the node's own level is its
  // parent.
  std::vector<std::vector<TreeNodeId>> best(
      pmax, std::vector<TreeNodeId>(num_nodes, kInvalidNode));

#pragma omp parallel num_threads(pmax)
  {
    const int p = ThreadId();
    auto& my_best = best[p];
    // Epoch-stamped visited marks: one BFS per tree node.
    std::vector<TreeNodeId> stamp(n, kInvalidNode);
    std::vector<VertexId> stack;

#pragma omp for schedule(dynamic, 1)
    for (int64_t ti = 0; ti < static_cast<int64_t>(num_nodes); ++ti) {
      const TreeNodeId t = static_cast<TreeNodeId>(ti);
      const uint32_t k = forest.Level(t);
      const VertexId seed = forest.Vertices(t).front();
      stack.assign(1, seed);
      stamp[seed] = t;
      while (!stack.empty()) {
        VertexId v = stack.back();
        stack.pop_back();
        TreeNodeId tv = forest.Tid(v);
        if (tv != t && forest.Level(tv) > k) {
          TreeNodeId cur = my_best[tv];
          if (cur == kInvalidNode || forest.Level(cur) < k) my_best[tv] = t;
        }
        for (VertexId u : graph.Neighbors(v)) {
          if (stamp[u] != t && cd.coreness[u] >= k) {
            stamp[u] = t;
            stack.push_back(u);
          }
        }
      }
    }
  }

  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    for (int p = 0; p < pmax; ++p) {
      TreeNodeId cand = best[p][t];
      if (cand == kInvalidNode) continue;
      if (parents[t] == kInvalidNode ||
          forest.Level(parents[t]) < forest.Level(cand)) {
        parents[t] = cand;
      }
    }
  }
  return parents;
}

}  // namespace hcd
