#include "hcd/rebuild.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/trace.h"
#include "graph/subgraph.h"
#include "hcd/phcd.h"

namespace hcd {

RebuildPlan PlanRebuild(const FlatHcdIndex& old_index,
                        std::span<const VertexId> touched,
                        const RebuildOptions& options) {
  RebuildPlan plan;
  const std::span<const TreeNodeId> roots = old_index.Roots();
  std::vector<uint8_t> dirty(roots.size(), 0);
  for (VertexId v : touched) {
    const TreeNodeId t = old_index.Tid(v);
    if (t == kInvalidNode) continue;
    // The owning tree is the block [r, r + SubtreeNodes(r)) containing t:
    // r is the largest root id <= t, roots being ascending preorder ids.
    const size_t i =
        std::upper_bound(roots.begin(), roots.end(), t) - roots.begin() - 1;
    dirty[i] = 1;
  }
  for (size_t i = 0; i < roots.size(); ++i) {
    if (!dirty[i]) continue;
    plan.dirty_roots.push_back(roots[i]);
    const std::span<const VertexId> core = old_index.CoreVertices(roots[i]);
    plan.dirty_vertices.insert(plan.dirty_vertices.end(), core.begin(),
                               core.end());
  }
  plan.dirty_fraction =
      old_index.NumVertices() == 0
          ? 0.0
          : static_cast<double>(plan.dirty_vertices.size()) /
                static_cast<double>(old_index.NumVertices());
  plan.full_rebuild = plan.dirty_fraction > options.full_rebuild_threshold;
  return plan;
}

Status ApplyRebuild(const RebuildPlan& plan, const FlatHcdIndex& old_index,
                    const Graph& new_graph, const CoreDecomposition& new_cd,
                    TelemetrySink* sink, FlatHcdIndex* out) {
  if (new_graph.NumVertices() != old_index.NumVertices() ||
      new_cd.coreness.size() != new_graph.NumVertices()) {
    return Status::InvalidArgument(
        "rebuild requires an unchanged vertex set");
  }
  if (plan.full_rebuild) {
    HcdForest forest = PhcdBuild(new_graph, new_cd, sink);
    *out = Freeze(std::move(forest));
    return Status::Ok();
  }

  ScopedSpan span("rebuild.refreeze");
  span.AddArg("dirty_roots", plan.dirty_roots.size());
  span.AddArg("dirty_vertices", plan.dirty_vertices.size());

  // Rebuild the dirty region alone. Its vertex set is a union of whole
  // connected components (see RebuildPlan), so the induced subgraph is
  // those components verbatim and the restriction of the global coreness
  // is exactly the subgraph's own core decomposition.
  InducedSubgraph sub;
  FlatHcdIndex subflat;
  {
    ScopedStage stage(sink, "rebuild.subbuild");
    sub = Induce(new_graph, plan.dirty_vertices);
    CoreDecomposition sub_cd;
    sub_cd.coreness.resize(sub.vertices.size());
    for (size_t i = 0; i < sub.vertices.size(); ++i) {
      sub_cd.coreness[i] = new_cd.coreness[sub.vertices[i]];
      sub_cd.k_max = std::max(sub_cd.k_max, sub_cd.coreness[i]);
    }
    subflat = Freeze(PhcdBuild(sub.graph, sub_cd, nullptr));
    stage.AddCounter("vertices", sub.vertices.size());
    stage.AddCounter("nodes", subflat.NumNodes());
  }

  ScopedStage stage(sink, "rebuild.splice");
  const FlatHcdIndex::Data& old_data = old_index.data();
  const FlatHcdIndex::Data& sub_data = subflat.data();
  FlatHcdIndex::Data data;
  // Splicing rearranges trees, not elements: the element domain (kind,
  // member materialization) carries over from the old generation verbatim.
  data.kind = old_data.kind;
  data.num_vertices = old_data.num_vertices;
  data.num_graph_vertices = old_data.num_graph_vertices;
  data.element_members = old_data.element_members;
  data.child_offsets.assign(1, 0);
  data.vertex_offsets.assign(1, 0);

  // Appends src's contiguous preorder node range [first, first + count) as
  // the next nodes of `data`, shifting every node id by the block's new
  // base and mapping vertex ids through `vmap` (local->global) when given.
  // A block never references nodes outside itself, so a uniform delta is
  // all the renumbering a tree (or a run of whole trees) needs.
  auto append_nodes = [&data](const FlatHcdIndex::Data& src, TreeNodeId first,
                              TreeNodeId count,
                              const std::vector<VertexId>* vmap) {
    const TreeNodeId base = static_cast<TreeNodeId>(data.levels.size());
    const int64_t delta = static_cast<int64_t>(base) - first;
    auto shift = [delta](TreeNodeId t) {
      return t == kInvalidNode
                 ? kInvalidNode
                 : static_cast<TreeNodeId>(static_cast<int64_t>(t) + delta);
    };
    for (TreeNodeId t = first; t < first + count; ++t) {
      data.levels.push_back(src.levels[t]);
      data.parents.push_back(shift(src.parents[t]));
      data.subtree_nodes.push_back(src.subtree_nodes[t]);
      for (uint32_t c = src.child_offsets[t]; c < src.child_offsets[t + 1];
           ++c) {
        data.children.push_back(shift(src.children[c]));
      }
      data.child_offsets.push_back(static_cast<uint32_t>(data.children.size()));
      for (uint32_t i = src.vertex_offsets[t]; i < src.vertex_offsets[t + 1];
           ++i) {
        const VertexId v = src.vertices[i];
        data.vertices.push_back(vmap != nullptr ? (*vmap)[v] : v);
      }
      data.vertex_offsets.push_back(
          static_cast<uint32_t>(data.vertices.size()));
    }
    return base;
  };

  size_t kept_trees = 0;
  for (TreeNodeId r : old_index.Roots()) {
    if (std::binary_search(plan.dirty_roots.begin(), plan.dirty_roots.end(),
                           r)) {
      continue;
    }
    data.roots.push_back(
        append_nodes(old_data, r, old_index.SubtreeNodes(r), nullptr));
    ++kept_trees;
  }
  if (subflat.NumNodes() > 0) {
    const TreeNodeId base =
        append_nodes(sub_data, 0, subflat.NumNodes(), &sub.vertices);
    for (TreeNodeId r : sub_data.roots) {
      data.roots.push_back(base + r);
    }
  }

  const TreeNodeId num_nodes = static_cast<TreeNodeId>(data.levels.size());
  data.tid.assign(data.num_vertices, kInvalidNode);
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    for (uint32_t i = data.vertex_offsets[t]; i < data.vertex_offsets[t + 1];
         ++i) {
      data.tid[data.vertices[i]] = t;
    }
  }

  // Descending-level order and its grouping, by counting sort (ascending
  // ids within a level fall out of the ascending placement loop).
  uint32_t max_level = 0;
  for (uint32_t l : data.levels) max_level = std::max(max_level, l);
  std::vector<uint32_t> level_start(max_level + 1, 0);
  for (uint32_t l : data.levels) ++level_start[l];
  data.desc_level_order.resize(num_nodes);
  data.level_group_offsets.assign(1, 0);
  uint32_t pos = 0;
  for (int64_t l = max_level; l >= 0; --l) {
    const uint32_t count = level_start[l];
    if (count == 0) continue;
    level_start[l] = pos;
    pos += count;
    data.level_group_offsets.push_back(pos);
  }
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    data.desc_level_order[level_start[data.levels[t]]++] = t;
  }

  stage.AddCounter("kept_trees", kept_trees);
  stage.AddCounter("rebuilt_nodes", subflat.NumNodes());
  stage.AddCounter("nodes", num_nodes);
  // The validation funnel: a splicing bug becomes a Corruption status here
  // instead of a silently wrong serving index.
  return FlatHcdIndex::Adopt(std::move(data), out);
}

}  // namespace hcd
