#ifndef HCD_HCD_FLAT_INDEX_H_
#define HCD_HCD_FLAT_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/mapped_file.h"
#include "common/status.h"
#include "graph/types.h"
#include "hcd/forest.h"
#include "hcd/hierarchy_kind.h"

namespace hcd {

/// Immutable, query-facing representation of a hierarchical core
/// decomposition (Section II-B).
///
/// `HcdForest` stays the builder-facing structure (NewNode / AddVertex /
/// SetParent); `Freeze` renumbers its nodes in preorder and packs everything
/// into flat CSR arrays. Preorder numbering gives every node a contiguous
/// subtree interval, which is what makes the index cheap to serve from:
///
///   - subtree of t        = node ids [t, t + SubtreeNodes(t))
///   - CoreVertices(t)     = vertices[vertex_offsets[t],
///                                    vertex_offsets[t + SubtreeNodes(t)])
///     an O(1) span — the DFS + allocation of HcdForest::CoreVertices is
///     gone because a node's descendants' vertices are stored right after
///     its own.
///   - Vertices(t)         = vertices[vertex_offsets[t], vertex_offsets[t+1])
///     (the next preorder node starts where t's own vertices end).
///
/// The bottom-up accumulations of Algorithms 3-5 also get two fast shapes:
/// reverse preorder (children always follow parents, so a single descending
/// id loop is a valid serial schedule) and the precomputed descending-level
/// groups (nodes of equal level are mutually independent, so each group is a
/// parallel step).
///
/// The snapshot formats (hcd/serialize.h) are exactly the `Data` struct
/// below written section by section — v2 ("HCDFOR02") for core indexes,
/// the kind-tagged v3 ("HCDFOR03") for truss/nucleus — so loading is a
/// handful of bulk reads followed by `Adopt` validation.
///
/// One index class serves all three decomposition families: for truss and
/// nucleus hierarchies the "vertices" here are element ids (edges /
/// triangles) and `ElementMembers` materializes an element back to its
/// graph vertices; every structural accessor (subtree spans, level groups,
/// Tid, CoreVertices) is domain-agnostic and works unchanged.
class FlatHcdIndex {
 public:
  /// The packed arrays. N = node count, R = root count, G = number of
  /// distinct levels, P = number of placed elements (== sum of per-node
  /// element counts), n = number of elements in the decomposed domain.
  ///
  /// For the core hierarchy the elements ARE graph vertices (n = the graph's
  /// vertex count and `element_members` stays empty). For truss / nucleus
  /// hierarchies the "vertices" of this index are element ids (edges /
  /// triangles) and `element_members` materializes each element back to its
  /// member graph vertices with stride ElementArity(kind).
  ///
  /// Sections are storage-agnostic ArrayRefs: Freeze and the copying loader
  /// produce owned (vector-backed) sections, while MapFlatIndex aliases the
  /// snapshot's mmap'd bytes directly — same accessors, same bytes, zero
  /// copies. Aliased sections co-own the mapping, so a Data (and any index
  /// adopted from it) keeps the file mapped for as long as it lives.
  struct Data {
    HierarchyKind kind = HierarchyKind::kCore;
    VertexId num_vertices = 0;               // n (elements)
    /// Graph vertex count: the id domain of element_members. Equals
    /// num_vertices for kCore (enforced by Adopt).
    VertexId num_graph_vertices = 0;
    /// [ElementArity(kind) * n] member vertices per element id, in canonical
    /// order (edge endpoints ascending, triangle corners ascending). Empty
    /// for kCore.
    ArrayRef<VertexId> element_members;
    ArrayRef<uint32_t> levels;               // [N] core level per node
    ArrayRef<TreeNodeId> parents;            // [N] preorder parent; roots map
                                             //     to kInvalidNode
    ArrayRef<TreeNodeId> subtree_nodes;      // [N] nodes in subtree (incl. t)
    ArrayRef<uint32_t> child_offsets;        // [N+1] CSR into `children`
    ArrayRef<TreeNodeId> children;           // [N-R] ascending within a node
    ArrayRef<uint32_t> vertex_offsets;       // [N+1] CSR into `vertices`
    ArrayRef<VertexId> vertices;             // [P] vertex sets in preorder
    ArrayRef<TreeNodeId> tid;                // [n] vertex -> node
    ArrayRef<TreeNodeId> desc_level_order;        // [N] level desc, id asc
    ArrayRef<uint32_t> level_group_offsets;       // [G+1] into the above
    ArrayRef<TreeNodeId> roots;              // [R] ascending preorder ids

    /// True when any section aliases a mapped snapshot.
    bool mapped() const {
      return element_members.mapped() || levels.mapped() ||
             parents.mapped() || subtree_nodes.mapped() ||
             child_offsets.mapped() || children.mapped() ||
             vertex_offsets.mapped() || vertices.mapped() || tid.mapped() ||
             desc_level_order.mapped() || level_group_offsets.mapped() ||
             roots.mapped();
    }
  };

  FlatHcdIndex() {
    data_.child_offsets.assign(1, 0);
    data_.vertex_offsets.assign(1, 0);
    data_.level_group_offsets.assign(1, 0);
  }

  /// Validates `data` against every structural invariant of the layout
  /// (preorder parent/subtree nesting, level ordering, CSR monotonicity,
  /// children <-> parents bijection, tid <-> vertices consistency,
  /// desc_level_order permutation). Returns Corruption on any violation;
  /// on success moves the arrays into `*out`. This is the single funnel
  /// through which untrusted snapshot bytes become a live index.
  static Status Adopt(Data data, FlatHcdIndex* out);

  // --- accessors (mirror HcdForest) ----------------------------------------

  TreeNodeId NumNodes() const {
    return static_cast<TreeNodeId>(data_.levels.size());
  }
  VertexId NumVertices() const { return data_.num_vertices; }

  // --- element domain ------------------------------------------------------

  HierarchyKind kind() const { return data_.kind; }
  /// Member vertices per element (1 core / 2 truss / 3 nucleus).
  uint32_t arity() const { return ElementArity(data_.kind); }
  /// Number of elements in the decomposed domain (alias of NumVertices:
  /// the index's "vertices" are element ids).
  VertexId NumElements() const { return data_.num_vertices; }
  /// Graph vertex count — the id domain element members come from. Equals
  /// NumVertices() for kCore.
  VertexId NumGraphVertices() const { return data_.num_graph_vertices; }

  /// Member graph vertices of `element`, canonical ascending order.
  /// Valid only for kind() != kCore (a core element IS its vertex).
  std::span<const VertexId> ElementMembers(VertexId element) const {
    const uint32_t a = arity();
    return std::span<const VertexId>(data_.element_members)
        .subspan(static_cast<size_t>(element) * a, a);
  }

  uint32_t Level(TreeNodeId node) const { return data_.levels[node]; }
  TreeNodeId Parent(TreeNodeId node) const { return data_.parents[node]; }

  /// Nodes in the subtree rooted at `node`, including the node itself.
  TreeNodeId SubtreeNodes(TreeNodeId node) const {
    return data_.subtree_nodes[node];
  }

  std::span<const TreeNodeId> Children(TreeNodeId node) const {
    return std::span<const TreeNodeId>(data_.children)
        .subspan(data_.child_offsets[node],
                 data_.child_offsets[node + 1] - data_.child_offsets[node]);
  }

  /// Vertices owned by the node itself (V(T_i) = S ∩ H_k).
  std::span<const VertexId> Vertices(TreeNodeId node) const {
    return std::span<const VertexId>(data_.vertices)
        .subspan(data_.vertex_offsets[node],
                 data_.vertex_offsets[node + 1] - data_.vertex_offsets[node]);
  }

  /// Node containing v, or kInvalidNode if v was never placed.
  TreeNodeId Tid(VertexId v) const { return data_.tid[v]; }

  std::span<const TreeNodeId> Roots() const { return data_.roots; }

  /// Vertices of the node's original k-core. O(1): the subtree's vertex
  /// sets are contiguous in preorder.
  std::span<const VertexId> CoreVertices(TreeNodeId node) const {
    const uint32_t begin = data_.vertex_offsets[node];
    const uint32_t end =
        data_.vertex_offsets[node + data_.subtree_nodes[node]];
    return std::span<const VertexId>(data_.vertices)
        .subspan(begin, end - begin);
  }

  /// Number of vertices in the node's original k-core. O(1).
  uint64_t CoreSize(TreeNodeId node) const {
    return data_.vertex_offsets[node + data_.subtree_nodes[node]] -
           data_.vertex_offsets[node];
  }

  /// Node ids ordered by descending level (ties by preorder id). Unlike
  /// HcdForest::NodesByDescendingLevel this is precomputed — no sort, no
  /// allocation.
  std::span<const TreeNodeId> NodesByDescendingLevel() const {
    return data_.desc_level_order;
  }

  /// Descending-level grouping of NodesByDescendingLevel: group g holds all
  /// nodes of the g-th largest level. Nodes within a group never have
  /// ancestor/descendant relations, so a group is one parallel step of the
  /// bottom-up accumulations (Algorithm 3 lines 6-9).
  size_t NumLevelGroups() const {
    return data_.level_group_offsets.size() - 1;
  }
  std::span<const TreeNodeId> LevelGroup(size_t g) const {
    return std::span<const TreeNodeId>(data_.desc_level_order)
        .subspan(data_.level_group_offsets[g],
                 data_.level_group_offsets[g + 1] -
                     data_.level_group_offsets[g]);
  }

  /// Read-only view of the packed arrays; the v2 serializer writes these
  /// verbatim, which is what makes snapshots round-trip bit-identically.
  const Data& data() const { return data_; }

  /// True when the sections alias a mapped snapshot (MapFlatIndex) rather
  /// than owning their storage.
  bool mapped() const { return data_.mapped(); }

 private:
  friend FlatHcdIndex Freeze(const HcdForest& forest);
  friend FlatHcdIndex Freeze(const HcdForest& forest, HierarchyKind kind,
                             std::span<const VertexId> element_members,
                             VertexId num_graph_vertices);

  Data data_;
};

/// Renumbers the forest into preorder and packs it into a FlatHcdIndex.
/// Parallel across roots (one DFS per tree) with a level-synchronous
/// bottom-up sizing pass. The forest must satisfy the builder contract
/// (every parent edge strictly decreases the level walking up); violations
/// abort, as in HcdForest::BuildChildren — untrusted inputs must go through
/// LoadForest / LoadFlatIndex, which return Status instead.
FlatHcdIndex Freeze(const HcdForest& forest);

/// Freeze and release the builder representation's memory.
FlatHcdIndex Freeze(HcdForest&& forest);

/// Kind-tagged freeze: same preorder packing, with the forest's element
/// domain recorded and each element's member vertices carried alongside
/// (`element_members` is arity-strided by element id, covering ALL element
/// ids 0..forest.NumVertices(), placed or not — for a truss forest this is
/// exactly EdgeIndexer::edges flattened). `num_graph_vertices` is the graph
/// vertex count the member ids live in. The per-kind wrappers FreezeTruss
/// (src/truss) and FreezeNucleus (src/nucleus) build the member array from
/// their indexers; call those instead of this directly.
FlatHcdIndex Freeze(const HcdForest& forest, HierarchyKind kind,
                    std::span<const VertexId> element_members,
                    VertexId num_graph_vertices);

}  // namespace hcd

#endif  // HCD_HCD_FLAT_INDEX_H_
