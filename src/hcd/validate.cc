#include "hcd/validate.h"

#include <algorithm>
#include <string>
#include <vector>

namespace hcd {
namespace {

// The checks below are written once against the accessor surface the two
// representations share (Level/Parent/Children/Vertices/Tid/CoreVertices)
// and instantiated for both.

template <typename Hierarchy>
std::string NodeDesc(const Hierarchy& forest, TreeNodeId node) {
  return "node " + std::to_string(node) + " (level " +
         std::to_string(forest.Level(node)) + ")";
}

template <typename Hierarchy>
Status ValidateHcdImpl(const Graph& graph, const CoreDecomposition& cd,
                       const Hierarchy& forest) {
  const VertexId n = graph.NumVertices();
  if (forest.NumVertices() != n) {
    return Status::Corruption("forest vertex count mismatch");
  }

  // Vertex placement and levels.
  std::vector<uint64_t> placed(forest.NumNodes(), 0);
  for (VertexId v = 0; v < n; ++v) {
    TreeNodeId t = forest.Tid(v);
    if (t == kInvalidNode) {
      return Status::Corruption("vertex " + std::to_string(v) + " unplaced");
    }
    if (forest.Level(t) != cd.coreness[v]) {
      return Status::Corruption("vertex " + std::to_string(v) +
                                " coreness != level of " +
                                NodeDesc(forest, t));
    }
  }
  uint64_t total = 0;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    if (forest.Vertices(t).empty()) {
      return Status::Corruption(NodeDesc(forest, t) + " is empty");
    }
    for (VertexId v : forest.Vertices(t)) {
      if (forest.Tid(v) != t) {
        return Status::Corruption("tid inconsistent for vertex " +
                                  std::to_string(v));
      }
      ++placed[t];
    }
    total += placed[t];
  }
  if (total != n) {
    return Status::Corruption("vertices appear in multiple nodes");
  }

  // Parent levels and child lists.
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    TreeNodeId p = forest.Parent(t);
    if (p != kInvalidNode && forest.Level(p) >= forest.Level(t)) {
      return Status::Corruption("parent level not below child for " +
                                NodeDesc(forest, t));
    }
    for (TreeNodeId c : forest.Children(t)) {
      if (forest.Parent(c) != t) {
        return Status::Corruption("child list inconsistent at " +
                                  NodeDesc(forest, t));
      }
    }
  }

  // Per-node core checks: connected, min-degree >= k, maximal.
  std::vector<bool> in_core(n, false);
  std::vector<VertexId> stack;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    const uint32_t k = forest.Level(t);
    const auto core = forest.CoreVertices(t);
    for (VertexId v : core) in_core[v] = true;

    // Min internal degree and maximality.
    for (VertexId v : core) {
      uint64_t internal = 0;
      for (VertexId u : graph.Neighbors(v)) {
        if (in_core[u]) {
          ++internal;
        } else if (cd.coreness[u] >= k) {
          for (VertexId w : core) in_core[w] = false;
          return Status::Corruption(NodeDesc(forest, t) +
                                    " not maximal: vertex " +
                                    std::to_string(u) + " missing");
        }
      }
      if (internal < k) {
        for (VertexId w : core) in_core[w] = false;
        return Status::Corruption(NodeDesc(forest, t) + " vertex " +
                                  std::to_string(v) +
                                  " has internal degree < k");
      }
    }

    // Connectivity.
    uint64_t reached = 0;
    stack.assign(1, core.front());
    in_core[core.front()] = false;  // reuse as "not yet visited" marker
    ++reached;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : graph.Neighbors(v)) {
        if (in_core[u]) {
          in_core[u] = false;
          ++reached;
          stack.push_back(u);
        }
      }
    }
    if (reached != core.size()) {
      return Status::Corruption(NodeDesc(forest, t) + " core disconnected");
    }
  }
  return Status::Ok();
}

template <typename HierarchyA, typename HierarchyB>
bool HcdEqualsImpl(const HierarchyA& a, const HierarchyB& b) {
  if (a.NumVertices() != b.NumVertices()) return false;
  if (a.NumNodes() != b.NumNodes()) return false;
  const VertexId n = a.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    TreeNodeId ta = a.Tid(v);
    TreeNodeId tb = b.Tid(v);
    if ((ta == kInvalidNode) != (tb == kInvalidNode)) return false;
    if (ta == kInvalidNode) continue;
    if (a.Level(ta) != b.Level(tb)) return false;
  }
  for (TreeNodeId ta = 0; ta < a.NumNodes(); ++ta) {
    if (a.Vertices(ta).empty()) return false;
    TreeNodeId tb = b.Tid(a.Vertices(ta).front());
    // Same vertex set.
    std::vector<VertexId> va(a.Vertices(ta).begin(), a.Vertices(ta).end());
    std::vector<VertexId> vb(b.Vertices(tb).begin(), b.Vertices(tb).end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    if (va != vb) return false;
    // Same parent (compared via any representative vertex).
    TreeNodeId pa = a.Parent(ta);
    TreeNodeId pb = b.Parent(tb);
    if ((pa == kInvalidNode) != (pb == kInvalidNode)) return false;
    if (pa != kInvalidNode &&
        b.Tid(a.Vertices(pa).front()) != pb) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status ValidateHcd(const Graph& graph, const CoreDecomposition& cd,
                   const HcdForest& forest) {
  return ValidateHcdImpl(graph, cd, forest);
}

Status ValidateHcd(const Graph& graph, const CoreDecomposition& cd,
                   const FlatHcdIndex& index) {
  return ValidateHcdImpl(graph, cd, index);
}

bool HcdEquals(const HcdForest& a, const HcdForest& b) {
  return HcdEqualsImpl(a, b);
}

bool HcdEquals(const HcdForest& a, const FlatHcdIndex& b) {
  return HcdEqualsImpl(a, b);
}

bool HcdEquals(const FlatHcdIndex& a, const FlatHcdIndex& b) {
  return HcdEqualsImpl(a, b);
}

}  // namespace hcd
