#include "hcd/divide_conquer.h"

#include <vector>

#include "common/check.h"
#include "hcd/local_core_search.h"
#include "hcd/vertex_rank.h"
#include "parallel/union_find.h"

namespace hcd {

HcdForest DivideAndConquerHcd(const Graph& graph, const CoreDecomposition& cd,
                              int num_partitions) {
  const VertexId n = graph.NumVertices();
  HcdForest forest(n);
  if (n == 0) return forest;
  HCD_CHECK_GE(num_partitions, 1);

  const VertexRank vr = ComputeVertexRank(cd);
  std::vector<uint32_t> part(n);
  for (VertexId v = 0; v < n; ++v) {
    part[v] = static_cast<uint32_t>(static_cast<uint64_t>(v) *
                                    num_partitions / n);
  }

  // Step 2: partial tree nodes — pivot grouping restricted to
  // intra-partition edges, shells in descending k.
  UnionFind uf(n, vr.rank.data());
  std::vector<uint32_t> partial_of(n, 0);
  std::vector<VertexId> partial_rep;   // pivot vertex per partial node
  std::vector<uint32_t> partial_level;
  for (int64_t k = cd.k_max; k >= 0; --k) {
    const auto shell = vr.Shell(static_cast<uint32_t>(k));
    for (VertexId v : shell) {
      for (VertexId u : graph.Neighbors(v)) {
        if (part[u] != part[v]) continue;
        if (cd.coreness[u] > static_cast<uint32_t>(k) ||
            (cd.coreness[u] == static_cast<uint32_t>(k) && u > v)) {
          uf.Union(v, u);
        }
      }
    }
    for (VertexId v : shell) {
      const VertexId pvt = uf.GetPivot(v);
      if (pvt == v) {
        partial_of[v] = static_cast<uint32_t>(partial_rep.size());
        partial_rep.push_back(v);
        partial_level.push_back(static_cast<uint32_t>(k));
      }
    }
    for (VertexId v : shell) {
      const VertexId pvt = uf.GetPivot(v);
      if (pvt != v) partial_of[v] = partial_of[pvt];
    }
  }

  // Step 3/4: merge partial nodes into the true tree nodes with one local
  // k-core search per final node (the expensive part of the paradigm).
  std::vector<TreeNodeId> final_of_partial(partial_rep.size(), kInvalidNode);
  std::vector<uint32_t> stamp(n, 0);
  std::vector<VertexId> stack;
  uint32_t bfs_id = 0;
  for (size_t p = 0; p < partial_rep.size(); ++p) {
    if (final_of_partial[p] != kInvalidNode) continue;
    const uint32_t k = partial_level[p];
    const TreeNodeId node = forest.NewNode(k);
    ++bfs_id;
    stack.assign(1, partial_rep[p]);
    stamp[partial_rep[p]] = bfs_id;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (cd.coreness[v] == k) {
        forest.AddVertex(node, v);
        final_of_partial[partial_of[v]] = node;
      }
      for (VertexId u : graph.Neighbors(v)) {
        if (stamp[u] != bfs_id && cd.coreness[u] >= k) {
          stamp[u] = bfs_id;
          stack.push_back(u);
        }
      }
    }
  }

  // Step 5: parent-child relations via local k-core searches (RC).
  forest.BuildChildren();  // child lists required by RcComputeParents users
  const std::vector<TreeNodeId> parents = RcComputeParents(graph, cd, forest);
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    if (parents[t] != kInvalidNode) forest.SetParent(t, parents[t]);
  }
  forest.BuildChildren();
  return forest;
}

}  // namespace hcd
