#ifndef HCD_HCD_VALIDATE_H_
#define HCD_HCD_VALIDATE_H_

#include "common/status.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "hcd/forest.h"

namespace hcd {

/// Checks every HCD invariant of the hierarchy against `graph` and `cd`:
///  - every vertex belongs to exactly one node whose level equals its
///    coreness;
///  - parent levels are strictly below child levels;
///  - every node's original k-core (subtree vertex union) is connected in
///    the coreness>=k subgraph, has minimum internal degree >= k, and is
///    maximal (no adjacent coreness>=k vertex outside it).
/// Returns OK or a Corruption status describing the first violation.
/// O(sum of core sizes) = O(k_max * m) worst case; intended for tests.
/// Both the builder forest and the frozen index are accepted.
Status ValidateHcd(const Graph& graph, const CoreDecomposition& cd,
                   const HcdForest& forest);
Status ValidateHcd(const Graph& graph, const CoreDecomposition& cd,
                   const FlatHcdIndex& index);

/// Structural equality of two HCDs over the same vertex set: identical
/// node partition (as {level, vertex set}) and identical parent relation.
/// Node ids and vertex orders inside nodes may differ, so a forest can be
/// compared against its own frozen index (or two different builders'
/// outputs against each other).
bool HcdEquals(const HcdForest& a, const HcdForest& b);
bool HcdEquals(const HcdForest& a, const FlatHcdIndex& b);
bool HcdEquals(const FlatHcdIndex& a, const FlatHcdIndex& b);

}  // namespace hcd

#endif  // HCD_HCD_VALIDATE_H_
