#include "hcd/lcps.h"

#include <vector>

#include "common/check.h"

namespace hcd {
namespace {

struct OpenNode {
  uint32_t level;
  TreeNodeId node;
};

constexpr uint32_t kNoPriority = 0xFFFFFFFFu;

}  // namespace

HcdForest LcpsBuild(const Graph& graph, const CoreDecomposition& cd,
                    TelemetrySink* sink) {
  ScopedStage stage(sink, "construction");
  const VertexId n = graph.NumVertices();
  HcdForest forest(n);
  if (n == 0) return forest;

  std::vector<uint32_t> pri(n, kNoPriority);
  std::vector<bool> visited(n, false);
  // Bucket queue over priorities 0..k_max with lazy deletion: an entry in
  // bucket[p] is stale unless the vertex is unvisited and pri[v] == p
  // (priorities only increase).
  std::vector<std::vector<VertexId>> bucket(cd.k_max + 1);
  int64_t cur_max = -1;

  std::vector<OpenNode> open;
  VertexId seed_scan = 0;

  // Closes open nodes with level > p. The parent of a closed node is the
  // node beneath it, except possibly for the last one closed, whose parent
  // may be the node the current vertex is about to open (when c < its
  // level); that adoption is resolved by the caller.
  auto close_above = [&](uint32_t p, bool* have_orphan, OpenNode* orphan) {
    *have_orphan = false;
    while (!open.empty() && open.back().level > p) {
      OpenNode popped = open.back();
      open.pop_back();
      if (!open.empty() && open.back().level > p) {
        forest.SetParent(popped.node, open.back().node);
      } else {
        *have_orphan = true;
        *orphan = popped;
      }
    }
  };

  for (VertexId processed = 0; processed < n; ++processed) {
    // Pick the next vertex: highest-priority frontier entry, else a fresh
    // seed starting a new component.
    VertexId v = kInvalidVertex;
    uint32_t p = 0;
    while (cur_max >= 0) {
      auto& b = bucket[cur_max];
      while (!b.empty()) {
        VertexId cand = b.back();
        if (!visited[cand] && pri[cand] == static_cast<uint32_t>(cur_max)) {
          v = cand;
          p = static_cast<uint32_t>(cur_max);
          break;
        }
        b.pop_back();  // stale entry
      }
      if (v != kInvalidVertex) break;
      --cur_max;
    }
    if (v == kInvalidVertex) {
      // New component: close everything, then seed.
      while (!open.empty()) {
        OpenNode popped = open.back();
        open.pop_back();
        if (!open.empty()) forest.SetParent(popped.node, open.back().node);
      }
      while (visited[seed_scan]) ++seed_scan;
      v = seed_scan;
      p = 0;
    } else {
      bucket[cur_max].pop_back();
    }

    const uint32_t c = cd.coreness[v];
    HCD_DCHECK(p <= c);

    bool have_orphan = false;
    OpenNode orphan{0, kInvalidNode};
    close_above(p, &have_orphan, &orphan);

    // Join (or open) the node at level c. After close_above the stack top
    // has level <= p <= c.
    TreeNodeId node;
    if (!open.empty() && open.back().level == c) {
      node = open.back().node;
    } else {
      HCD_DCHECK(open.empty() || open.back().level < c);
      node = forest.NewNode(c);
      open.push_back({c, node});
    }
    forest.AddVertex(node, v);

    if (have_orphan) {
      if (c < orphan.level) {
        // The current vertex opened (or joined) the orphan's true parent.
        forest.SetParent(orphan.node, node);
      } else {
        // Sibling case (c >= orphan.level): the orphan's parent is the node
        // that was beneath it; that node is still on the stack, directly
        // below the entry we may just have pushed.
        if (open.size() >= 2) {
          forest.SetParent(orphan.node, open[open.size() - 2].node);
        }
        // else: the orphan is a root.
      }
    }

    visited[v] = true;
    for (VertexId u : graph.Neighbors(v)) {
      if (visited[u]) continue;
      uint32_t np = std::min(c, cd.coreness[u]);
      if (pri[u] == kNoPriority || np > pri[u]) {
        pri[u] = np;
        bucket[np].push_back(u);
        if (static_cast<int64_t>(np) > cur_max) cur_max = np;
      }
    }
  }
  // Close the final component.
  while (!open.empty()) {
    OpenNode popped = open.back();
    open.pop_back();
    if (!open.empty()) forest.SetParent(popped.node, open.back().node);
  }

  forest.BuildChildren();
  stage.AddCounter("nodes", forest.NumNodes());
  return forest;
}

}  // namespace hcd
