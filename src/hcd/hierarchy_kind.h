#ifndef HCD_HCD_HIERARCHY_KIND_H_
#define HCD_HCD_HIERARCHY_KIND_H_

#include <cstdint>
#include <string_view>

namespace hcd {

/// The element domain a frozen hierarchy decomposes (Section VI "other
/// cohesive subgraph models"): the PHCD paradigm applies unchanged whether
/// the decomposed elements are vertices (k-core), edges (k-truss) or
/// triangles ((3,4)-nucleus) — only the meaning of an element id and its
/// materialization back to graph vertices differ. The serve stack
/// (FlatHcdIndex, snapshots, search indexes, query-bench, the socket
/// server) is parameterized by this kind; the construction side stays in
/// src/hcd, src/truss and src/nucleus.
///
/// The numeric values are part of the v3 snapshot format — never reorder.
enum class HierarchyKind : uint32_t {
  kCore = 0,     ///< elements are graph vertices
  kTruss = 1,    ///< elements are undirected edges (EdgeIdx)
  kNucleus = 2,  ///< elements are triangles (TriIdx)
};

/// True iff `raw` is one of the enumerators above; the funnel for snapshot
/// bytes and wire bytes before a static_cast to HierarchyKind.
constexpr bool IsValidHierarchyKind(uint32_t raw) {
  return raw <= static_cast<uint32_t>(HierarchyKind::kNucleus);
}

/// Member vertices per element: 1 (a vertex), 2 (an edge's endpoints) or
/// 3 (a triangle's corners). This is the stride of the element_members
/// array of a flat index.
constexpr uint32_t ElementArity(HierarchyKind kind) {
  switch (kind) {
    case HierarchyKind::kCore: return 1;
    case HierarchyKind::kTruss: return 2;
    case HierarchyKind::kNucleus: return 3;
  }
  return 0;
}

/// "core", "truss" or "nucleus".
constexpr const char* HierarchyKindName(HierarchyKind kind) {
  switch (kind) {
    case HierarchyKind::kCore: return "core";
    case HierarchyKind::kTruss: return "truss";
    case HierarchyKind::kNucleus: return "nucleus";
  }
  return "?";
}

/// Parses a kind name; returns false (leaving `*kind` untouched) on
/// anything but "core" / "truss" / "nucleus".
inline bool ParseHierarchyKind(std::string_view name, HierarchyKind* kind) {
  if (name == "core") {
    *kind = HierarchyKind::kCore;
  } else if (name == "truss") {
    *kind = HierarchyKind::kTruss;
  } else if (name == "nucleus") {
    *kind = HierarchyKind::kNucleus;
  } else {
    return false;
  }
  return true;
}

}  // namespace hcd

#endif  // HCD_HCD_HIERARCHY_KIND_H_
