#include "graph/ingest.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "common/trace.h"
#include "graph/binary_format.h"
#include "graph/builder.h"
#include "graph/types.h"
#include "parallel/omp_utils.h"
#include "parallel/primitives.h"

namespace hcd {
namespace {

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

/// pread the exact byte range [file_off, file_off + size) into `dst`,
/// tolerating short reads and EINTR. False on error or premature EOF.
bool PreadExact(int fd, char* dst, uint64_t size, uint64_t file_off) {
  while (size > 0) {
    const ssize_t got = ::pread(fd, dst, size, static_cast<off_t>(file_off));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF before the range ended
    dst += got;
    size -= static_cast<uint64_t>(got);
    file_off += static_cast<uint64_t>(got);
  }
  return true;
}

/// Reads [file_off, file_off + size) in parallel 32 MB slices (page-cached
/// files decompress from the kernel faster with several readers).
bool PreadParallelChunks(int fd, char* dst, uint64_t size, uint64_t file_off) {
  constexpr uint64_t kSlice = uint64_t{32} << 20;
  const uint64_t slices = (size + kSlice - 1) / kSlice;
  std::atomic<bool> ok{true};
  ParallelFor(uint64_t{0}, slices, [&](uint64_t s) {
    ScopedSpan span("load.read.slice");
    const uint64_t begin = s * kSlice;
    const uint64_t len = std::min(kSlice, size - begin);
    span.AddArg("slice", s);
    span.AddArg("bytes", len);
    if (!PreadExact(fd, dst + begin, len, file_off + begin)) {
      ok.store(false, std::memory_order_relaxed);
    }
  });
  return ok.load();
}

/// Loads the whole file into `*buf`. Regular files are sized via fstat and
/// read in parallel; anything else (pipe, device) falls back to a
/// sequential read loop.
Status ReadWholeFile(const std::string& path, std::vector<char>* buf) {
  FdCloser f{::open(path.c_str(), O_RDONLY)};
  if (f.fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(f.fd, &st) != 0) return Status::IoError("cannot stat " + path);
  if (!S_ISREG(st.st_mode)) {
    buf->clear();
    char tmp[1 << 16];
    for (;;) {
      const ssize_t got = ::read(f.fd, tmp, sizeof(tmp));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("read failed on " + path);
      }
      if (got == 0) break;
      buf->insert(buf->end(), tmp, tmp + got);
    }
    return Status::Ok();
  }
  buf->resize(static_cast<size_t>(st.st_size));
  if (!PreadParallelChunks(f.fd, buf->data(), buf->size(), 0)) {
    return Status::IoError("read failed on " + path);
  }
  return Status::Ok();
}

/// An edge as parsed from text, before id compaction.
struct RawEdge {
  uint64_t u = 0;
  uint64_t v = 0;
};

enum class ParseErrorKind { kNone, kExpectedUv, kIdOverflow };

/// Per-chunk parse result; the error (if any) carries the byte offset of
/// the offending line so line numbers only get counted on failure.
struct ChunkParse {
  std::vector<RawEdge> edges;
  uint64_t lines = 0;
  ParseErrorKind error = ParseErrorKind::kNone;
  size_t error_offset = 0;
};

inline bool IsSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Parses an unsigned 64-bit integer at `*p`; advances past the digits.
/// False when no digit is present or the value overflows.
bool ParseU64(const char** p, const char* end, uint64_t* out,
              bool* overflow) {
  const char* q = *p;
  if (q == end || *q < '0' || *q > '9') return false;
  uint64_t value = 0;
  while (q != end && *q >= '0' && *q <= '9') {
    const uint64_t digit = static_cast<uint64_t>(*q - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      *overflow = true;
      return false;
    }
    value = value * 10 + digit;
    ++q;
  }
  *p = q;
  *out = value;
  return true;
}

/// Parses one newline-aligned slice [begin, end) of the file buffer.
/// `base` is the buffer start, used to report error byte offsets.
ChunkParse ParseChunk(const char* base, const char* begin, const char* end) {
  ChunkParse out;
  out.edges.reserve(static_cast<size_t>((end - begin) / 12) + 1);
  const char* p = begin;
  while (p < end) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    const char* line_end = nl != nullptr ? nl : end;
    ++out.lines;
    const char* q = p;
    while (q != line_end && IsSpace(*q)) ++q;
    if (q != line_end && *q != '#' && *q != '%') {
      RawEdge e;
      bool overflow = false;
      bool ok = ParseU64(&q, line_end, &e.u, &overflow);
      if (ok) {
        while (q != line_end && IsSpace(*q)) ++q;
        ok = ParseU64(&q, line_end, &e.v, &overflow);
      }
      if (!ok) {
        out.error = overflow ? ParseErrorKind::kIdOverflow
                             : ParseErrorKind::kExpectedUv;
        out.error_offset = static_cast<size_t>(p - base);
        return out;
      }
      // Anything after the second id is ignored, matching the historical
      // sscanf("%u %u") leniency toward trailing columns.
      out.edges.push_back(e);
    }
    p = line_end + 1;
  }
  return out;
}

/// 1-based line number of the line starting at byte `offset`.
uint64_t LineNumberAt(const std::vector<char>& buf, size_t offset) {
  uint64_t line = 1;
  const char* p = buf.data();
  const char* end = p + offset;
  while (p < end) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    if (nl == nullptr) break;
    ++line;
    p = nl + 1;
  }
  return line;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Status IngestEdgeListText(const std::string& path, const IngestOptions& options,
                          Graph* graph, IngestStats* stats) {
  std::optional<ThreadCountGuard> guard;
  if (options.io_threads > 0) guard.emplace(options.io_threads);

  std::vector<char> buf;
  {
    ScopedStage stage(options.sink, "load.read");
    HCD_RETURN_IF_ERROR(ReadWholeFile(path, &buf));
    stage.AddCounter("bytes", buf.size());
  }
  if (stats != nullptr) stats->bytes = buf.size();

  // Newline-aligned chunks; chunking never changes the result, only how
  // the parse work is spread.
  const size_t threads = static_cast<size_t>(std::max(1, MaxThreads()));
  const size_t target =
      std::max(size_t{4096}, buf.size() / std::max(size_t{1}, threads * 8));
  std::vector<const char*> chunk_begin;
  {
    const char* p = buf.data();
    const char* end = buf.data() + buf.size();
    while (p < end) {
      chunk_begin.push_back(p);
      const char* next = p + std::min(static_cast<size_t>(end - p), target);
      const char* nl = next == end
                           ? end
                           : static_cast<const char*>(std::memchr(
                                 next, '\n', static_cast<size_t>(end - next)));
      p = nl == nullptr || nl == end ? end : nl + 1;
    }
    chunk_begin.push_back(end);
  }
  const size_t num_chunks = chunk_begin.size() - 1;

  std::vector<ChunkParse> parsed(num_chunks);
  uint64_t total_lines = 0;
  uint64_t total_edges = 0;
  {
    ScopedStage stage(options.sink, "load.parse");
    // Static scheduling: only ~threads*8 chunky iterations, so the dynamic
    // wrapper's 512-iteration grain would hand them all to one thread.
    ParallelFor(size_t{0}, num_chunks, [&](size_t c) {
      // Per-chunk span: worker threads record into their own buffers, so a
      // trace shows every chunk's parse time and which thread took it.
      ScopedSpan span("load.parse.chunk");
      parsed[c] = ParseChunk(buf.data(), chunk_begin[c], chunk_begin[c + 1]);
      span.AddArg("chunk", c);
      span.AddArg("edges", parsed[c].edges.size());
    });
    for (const ChunkParse& c : parsed) {
      if (c.error != ParseErrorKind::kNone) {
        const uint64_t line = LineNumberAt(buf, c.error_offset);
        const char* what = c.error == ParseErrorKind::kIdOverflow
                               ? ": vertex id overflows 64 bits"
                               : ": expected 'u v'";
        return Status::Corruption(path + ":" + std::to_string(line) + what);
      }
      total_lines += c.lines;
      total_edges += c.edges.size();
    }
    stage.AddCounter("lines", total_lines);
    stage.AddCounter("edges", total_edges);
  }
  if (stats != nullptr) {
    stats->lines = total_lines;
    stats->edges_parsed = total_edges;
  }

  // Deterministic remap: distinct raw ids in ascending order become
  // vertices 0..n-1 (documented canonical order; independent of chunking
  // and thread count).
  std::vector<uint64_t> first_edge(num_chunks + 1, 0);
  for (size_t c = 0; c < num_chunks; ++c) {
    first_edge[c + 1] = first_edge[c] + parsed[c].edges.size();
  }
  std::vector<RawEdge> raw(total_edges);
  ParallelFor(size_t{0}, num_chunks, [&](size_t c) {
    std::copy(parsed[c].edges.begin(), parsed[c].edges.end(),
              raw.begin() + static_cast<ptrdiff_t>(first_edge[c]));
    parsed[c].edges.clear();
    parsed[c].edges.shrink_to_fit();
  });

  EdgeList edges(total_edges);
  uint64_t num_ids = 0;
  {
    ScopedStage stage(options.sink, "load.remap");
    std::vector<uint64_t> ids(2 * total_edges);
    ParallelFor(size_t{0}, static_cast<size_t>(total_edges), [&](size_t i) {
      ids[2 * i] = raw[i].u;
      ids[2 * i + 1] = raw[i].v;
    });
    ParallelSort(ids);
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    num_ids = ids.size();
    if (num_ids >= kInvalidVertex) {
      return Status::Corruption(path + ": too many distinct vertex ids (" +
                                std::to_string(num_ids) + ")");
    }
    ParallelFor(size_t{0}, static_cast<size_t>(total_edges), [&](size_t i) {
      const auto at = [&ids](uint64_t raw_id) {
        return static_cast<VertexId>(
            std::lower_bound(ids.begin(), ids.end(), raw_id) - ids.begin());
      };
      edges[i] = {at(raw[i].u), at(raw[i].v)};
    });
    stage.AddCounter("vertices", num_ids);
  }
  raw.clear();
  raw.shrink_to_fit();
  if (stats != nullptr) stats->vertices = num_ids;

  {
    ScopedStage stage(options.sink, "load.build");
    GraphBuilder b;
    b.AddEdgesUnfiltered(std::move(edges));
    BuildStats bstats;
    *graph = std::move(b).Build(static_cast<VertexId>(num_ids), &bstats);
    stage.AddCounter("self_loops_dropped", bstats.self_loops_dropped);
    stage.AddCounter("duplicates_dropped", bstats.duplicates_dropped);
    if (stats != nullptr) {
      stats->self_loops_dropped = bstats.self_loops_dropped;
      stats->duplicates_dropped = bstats.duplicates_dropped;
    }
  }
  return Status::Ok();
}

Status IngestBinary(const std::string& path, const IngestOptions& options,
                    Graph* graph, IngestStats* stats) {
  std::optional<ThreadCountGuard> guard;
  if (options.io_threads > 0) guard.emplace(options.io_threads);

  std::vector<EdgeIndex> offsets;
  std::vector<VertexId> adj;
  uint64_t n = 0;
  uint64_t adj_size = 0;
  {
    ScopedStage stage(options.sink, "load.read");
    FdCloser f{::open(path.c_str(), O_RDONLY)};
    if (f.fd < 0) return Status::IoError("cannot open " + path);
    struct stat st;
    if (::fstat(f.fd, &st) != 0) return Status::IoError("cannot stat " + path);
    const uint64_t file_size = static_cast<uint64_t>(st.st_size);
    stage.AddCounter("bytes", file_size);
    if (stats != nullptr) stats->bytes = file_size;

    char header[internal::kBinaryHeaderBytes];
    if (file_size < internal::kBinaryHeaderBytes ||
        !PreadExact(f.fd, header, sizeof(header), 0)) {
      return Status::Corruption(path + ": truncated header");
    }
    const uint64_t magic = ReadU64(header);
    const uint32_t version = ReadU32(header + 8);
    n = ReadU64(header + 12);
    adj_size = ReadU64(header + 20);
    if (magic != internal::kBinaryMagic) {
      return Status::Corruption(path + ": bad magic");
    }
    if (version != internal::kBinaryVersion) {
      return Status::Corruption(path + ": unsupported version " +
                                std::to_string(version));
    }
    // Sanity-check the header against the real file size BEFORE allocating
    // anything: a corrupt n / adj_size must fail cleanly, not reserve
    // multi-GB buffers.
    if (n >= kInvalidVertex) {
      return Status::Corruption(path + ": vertex count " + std::to_string(n) +
                                " exceeds the 32-bit id space");
    }
    if (adj_size % 2 != 0) {
      return Status::Corruption(path + ": odd adjacency size " +
                                std::to_string(adj_size) +
                                " (undirected CSR stores both directions)");
    }
    const uint64_t body = file_size - internal::kBinaryHeaderBytes;
    const uint64_t offsets_bytes = (n + 1) * sizeof(EdgeIndex);
    if (offsets_bytes > body || adj_size > (body - offsets_bytes) / sizeof(VertexId) ||
        offsets_bytes + adj_size * sizeof(VertexId) != body) {
      return Status::Corruption(
          path + ": file size does not match header (n=" + std::to_string(n) +
          ", adj_size=" + std::to_string(adj_size) + ")");
    }

    offsets.resize(static_cast<size_t>(n) + 1);
    adj.resize(static_cast<size_t>(adj_size));
    bool ok = PreadParallelChunks(f.fd, reinterpret_cast<char*>(offsets.data()),
                                  offsets_bytes, internal::kBinaryHeaderBytes);
    ok = ok && (adj_size == 0 ||
                PreadParallelChunks(f.fd, reinterpret_cast<char*>(adj.data()),
                                    adj_size * sizeof(VertexId),
                                    internal::kBinaryHeaderBytes + offsets_bytes));
    if (!ok) return Status::Corruption(path + ": truncated body");
  }

  {
    ScopedStage stage(options.sink, "load.validate");
    if (offsets.front() != 0 || offsets.back() != adj_size) {
      return Status::Corruption(path + ": inconsistent offsets");
    }
    std::atomic<bool> monotone{true};
    ParallelFor(uint64_t{0}, n, [&](uint64_t v) {
      if (offsets[v] > offsets[v + 1]) {
        monotone.store(false, std::memory_order_relaxed);
      }
    });
    if (!monotone.load()) {
      return Status::Corruption(path + ": non-monotone offsets");
    }
    // With monotone offsets and back() == adj_size every slice is in
    // bounds, so the per-vertex scan below cannot read out of range.
    std::atomic<bool> adjacency_ok{true};
    ParallelForDynamic(uint64_t{0}, n, [&](uint64_t v) {
      for (EdgeIndex j = offsets[v]; j < offsets[v + 1]; ++j) {
        const VertexId a = adj[j];
        if (a >= n || a == v ||
            (j > offsets[v] && a <= adj[j - 1])) {
          adjacency_ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
    });
    if (!adjacency_ok.load()) {
      return Status::Corruption(
          path + ": invalid adjacency (out-of-range, self-loop, unsorted or "
                 "duplicate neighbor)");
    }
    stage.AddCounter("n", n);
    stage.AddCounter("adj", adj_size);
  }
  if (stats != nullptr) stats->vertices = n;

  *graph = Graph(std::move(offsets), std::move(adj));
  return Status::Ok();
}

}  // namespace hcd
