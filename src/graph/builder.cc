#include "graph/builder.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace hcd {

VertexId GraphBuilder::MinNumVertices() const {
  VertexId max_seen = 0;
  bool any = false;
  for (const auto& [u, v] : edges_) {
    max_seen = std::max({max_seen, u, v});
    any = true;
  }
  return any ? max_seen + 1 : 0;
}

Graph GraphBuilder::Build(VertexId num_vertices) && {
  HCD_CHECK_GE(num_vertices, MinNumVertices());

  // Canonicalize to (min, max), sort, dedup.
  for (auto& [u, v] : edges_) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<EdgeIndex> offsets(static_cast<size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  // Filling in sorted (u, v) order keeps every adjacency list sorted: a
  // vertex first receives its smaller neighbors (as second endpoints, in
  // increasing order) and then its larger neighbors (as first endpoints).
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<VertexId> adj(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  return Graph(std::move(offsets), std::move(adj));
}

Graph GraphFromEdges(const EdgeList& edges, VertexId num_vertices) {
  GraphBuilder b;
  b.Reserve(edges.size());
  b.AddEdges(edges);
  return std::move(b).Build(num_vertices);
}

Graph GraphFromEdges(const EdgeList& edges) {
  GraphBuilder b;
  b.Reserve(edges.size());
  b.AddEdges(edges);
  return std::move(b).Build();
}

}  // namespace hcd
