#include "graph/builder.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "parallel/omp_utils.h"
#include "parallel/primitives.h"

namespace hcd {
namespace {

// Block size for the deterministic deduplicating scatter: big enough that
// per-block bookkeeping vanishes, small enough to load-balance.
constexpr size_t kScatterBlock = size_t{1} << 16;

constexpr EdgeIndex kUnsetOffset = ~EdgeIndex{0};

}  // namespace

VertexId GraphBuilder::MinNumVertices() const {
  VertexId max_seen = 0;
  bool any = false;
  for (const auto& [u, v] : edges_) {
    max_seen = std::max({max_seen, u, v});
    any = true;
  }
  return any ? max_seen + 1 : 0;
}

Graph GraphBuilder::Build(VertexId num_vertices, BuildStats* stats) && {
  HCD_CHECK_GE(num_vertices, MinNumVertices());

  // Canonicalize to (min, max); drop self-loops. Bulk callers
  // (AddEdgesUnfiltered) bypass AddEdge's filter, so Build must enforce
  // the Graph invariant itself.
  const size_t m_in = edges_.size();
  ParallelFor(size_t{0}, m_in, [this](size_t i) {
    auto& [u, v] = edges_[i];
    if (u > v) std::swap(u, v);
  });
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.first == e.second; }),
               edges_.end());
  const size_t m = edges_.size();
  if (stats != nullptr) stats->self_loops_dropped = m_in - m;

  // Both orientations of every surviving edge, sorted. The sorted directed
  // list is unique regardless of thread count, so everything downstream is
  // deterministic.
  std::vector<Edge> dir(2 * m);
  ParallelFor(size_t{0}, m, [this, m, &dir](size_t i) {
    dir[i] = edges_[i];
    dir[m + i] = {edges_[i].second, edges_[i].first};
  });
  edges_.clear();
  edges_.shrink_to_fit();
  ParallelSort(dir);

  // Deduplicating scatter: keep the first entry of each run. Per-block
  // kept-counts -> exclusive scan -> per-block writes give every surviving
  // entry a position independent of the thread count.
  const size_t total_dir = dir.size();
  const size_t num_blocks = (total_dir + kScatterBlock - 1) / kScatterBlock;
  std::vector<EdgeIndex> block_kept(num_blocks + 1, 0);
  ParallelFor(size_t{0}, num_blocks, [&](size_t b) {
    const size_t begin = b * kScatterBlock;
    const size_t end = std::min(total_dir, begin + kScatterBlock);
    EdgeIndex kept = 0;
    for (size_t i = begin; i < end; ++i) {
      kept += (i == 0 || dir[i] != dir[i - 1]) ? 1 : 0;
    }
    block_kept[b + 1] = kept;
  });
  for (size_t b = 0; b < num_blocks; ++b) block_kept[b + 1] += block_kept[b];
  const EdgeIndex total_kept = num_blocks == 0 ? 0 : block_kept[num_blocks];
  if (stats != nullptr) {
    stats->duplicates_dropped = (total_dir - total_kept) / 2;
  }

  std::vector<VertexId> adj(total_kept);
  std::vector<EdgeIndex> starts(num_vertices, kUnsetOffset);
  ParallelFor(size_t{0}, num_blocks, [&](size_t b) {
    const size_t begin = b * kScatterBlock;
    const size_t end = std::min(total_dir, begin + kScatterBlock);
    EdgeIndex pos = block_kept[b];
    for (size_t i = begin; i < end; ++i) {
      if (i != 0 && dir[i] == dir[i - 1]) continue;
      adj[pos] = dir[i].second;
      if (i == 0 || dir[i].first != dir[i - 1].first) {
        starts[dir[i].first] = pos;
      }
      ++pos;
    }
  });

  // starts[u] is set exactly at u's first surviving entry; a backward fill
  // gives isolated vertices their successor's offset.
  std::vector<EdgeIndex> offsets(static_cast<size_t>(num_vertices) + 1);
  offsets[num_vertices] = total_kept;
  for (VertexId v = num_vertices; v-- > 0;) {
    offsets[v] = starts[v] == kUnsetOffset ? offsets[v + 1] : starts[v];
  }
  return Graph(std::move(offsets), std::move(adj));
}

Graph GraphFromEdges(const EdgeList& edges, VertexId num_vertices) {
  GraphBuilder b;
  b.Reserve(edges.size());
  b.AddEdges(edges);
  return std::move(b).Build(num_vertices);
}

Graph GraphFromEdges(const EdgeList& edges) {
  GraphBuilder b;
  b.Reserve(edges.size());
  b.AddEdges(edges);
  return std::move(b).Build();
}

}  // namespace hcd
