#include "graph/generators.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "graph/builder.h"

namespace hcd {

Graph PathGraph(VertexId n) {
  GraphBuilder b;
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return std::move(b).Build(n);
}

Graph CycleGraph(VertexId n) {
  HCD_CHECK_GE(n, 3u);
  GraphBuilder b;
  for (VertexId v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
  return std::move(b).Build(n);
}

Graph CompleteGraph(VertexId n) {
  GraphBuilder b;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  return std::move(b).Build(n);
}

Graph StarGraph(VertexId n) {
  HCD_CHECK_GE(n, 1u);
  GraphBuilder b;
  for (VertexId v = 1; v < n; ++v) b.AddEdge(0, v);
  return std::move(b).Build(n);
}

Graph PaperFigure1Graph() {
  GraphBuilder b;
  // S4: octahedron on 0..5 (all pairs except the three antipodal ones):
  // 4-regular, 6 vertices, 12 edges, average degree 4.
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) {
      bool antipodal = (u / 2 == v / 2);
      if (!antipodal) b.AddEdge(u, v);
    }
  }
  // 3-shell of S3.1: triangle {6,7,8} plus 5 edges into the octahedron.
  // S3.1 then has 9 vertices and 20 edges: average degree 40/9 ~ 4.44 as in
  // the paper's Example 2.
  b.AddEdge(6, 7);
  b.AddEdge(6, 8);
  b.AddEdge(7, 8);
  b.AddEdge(6, 0);
  b.AddEdge(6, 2);
  b.AddEdge(7, 1);
  b.AddEdge(7, 3);
  b.AddEdge(8, 4);
  // S3.2: 4-clique on 9..12.
  for (VertexId u = 9; u < 13; ++u) {
    for (VertexId v = u + 1; v < 13; ++v) b.AddEdge(u, v);
  }
  // 2-shell: path 13-14-15 bridging S3.1 and S3.2 into one 2-core.
  b.AddEdge(13, 0);
  b.AddEdge(13, 14);
  b.AddEdge(14, 15);
  b.AddEdge(15, 9);
  return std::move(b).Build(16);
}

Graph ErdosRenyiGnm(VertexId n, uint64_t m, uint64_t seed) {
  HCD_CHECK_GE(n, 2u);
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  HCD_CHECK_LE(m, max_edges);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  GraphBuilder b;
  b.Reserve(m);
  while (seen.size() < m) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) b.AddEdge(u, v);
  }
  return std::move(b).Build(n);
}

Graph ErdosRenyiGnp(VertexId n, double p, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) b.AddEdge(u, v);
    }
  }
  return std::move(b).Build(n);
}

Graph BarabasiAlbert(VertexId n, VertexId edges_per_vertex, uint64_t seed) {
  HCD_CHECK_GE(edges_per_vertex, 1u);
  HCD_CHECK_GT(n, edges_per_vertex);
  Rng rng(seed);
  GraphBuilder b;
  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // is degree-proportional sampling.
  std::vector<VertexId> targets;
  const VertexId m0 = edges_per_vertex + 1;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      b.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::vector<VertexId> picked;
  for (VertexId v = m0; v < n; ++v) {
    picked.clear();
    while (picked.size() < edges_per_vertex) {
      VertexId t = targets[rng.Uniform(targets.size())];
      if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (VertexId t : picked) {
      b.AddEdge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return std::move(b).Build(n);
}

Graph BarabasiAlbertVarying(VertexId n, VertexId min_epv, VertexId max_epv,
                            uint64_t seed) {
  HCD_CHECK_GE(min_epv, 1u);
  HCD_CHECK_LE(min_epv, max_epv);
  HCD_CHECK_GT(n, max_epv);
  Rng rng(seed);
  GraphBuilder b;
  std::vector<VertexId> targets;
  const VertexId m0 = max_epv + 1;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      b.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::vector<VertexId> picked;
  for (VertexId v = m0; v < n; ++v) {
    const VertexId epv =
        min_epv + static_cast<VertexId>(rng.Uniform(max_epv - min_epv + 1));
    picked.clear();
    while (picked.size() < epv) {
      VertexId t = targets[rng.Uniform(targets.size())];
      if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
        picked.push_back(t);
      }
    }
    for (VertexId t : picked) {
      b.AddEdge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return std::move(b).Build(n);
}

Graph RMat(uint32_t scale, uint64_t num_edges, double a, double b, double c,
           uint64_t seed) {
  HCD_CHECK_LE(scale, 31u);
  const double d = 1.0 - a - b - c;
  HCD_CHECK_GE(d, 0.0);
  const VertexId n = static_cast<VertexId>(1u) << scale;
  Rng rng(seed);
  GraphBuilder builder;
  builder.Reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.UniformDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);
  }
  return std::move(builder).Build(n);
}

Graph RMatGraph500(uint32_t scale, uint64_t num_edges, uint64_t seed) {
  return RMat(scale, num_edges, 0.57, 0.19, 0.19, seed);
}

Graph RingOfCliques(VertexId num_cliques, VertexId clique_size) {
  HCD_CHECK_GE(num_cliques, 3u);
  HCD_CHECK_GE(clique_size, 2u);
  GraphBuilder b;
  auto vertex = [clique_size](VertexId clique, VertexId i) {
    return clique * clique_size + i;
  };
  const VertexId bridge_base = num_cliques * clique_size;
  for (VertexId c = 0; c < num_cliques; ++c) {
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        b.AddEdge(vertex(c, i), vertex(c, j));
      }
    }
    // Bridge c sits between clique c and clique c+1.
    b.AddEdge(bridge_base + c, vertex(c, 0));
    b.AddEdge(bridge_base + c, vertex((c + 1) % num_cliques, 0));
  }
  return std::move(b).Build(bridge_base + num_cliques);
}

namespace {

/// Recursively materializes `spec`, appending edges to `edges`. Returns the
/// vertex ids of the spec's whole core (shell plus all descendant cores),
/// with one representative of each direct child placed first.
std::vector<VertexId> BuildSpecNode(const CoreSpec& spec, VertexId* next_id,
                                    EdgeList* edges, Rng* rng) {
  HCD_CHECK_GE(spec.level, 1u);
  const uint32_t k = spec.level;
  const VertexId s = spec.shell_size;
  HCD_CHECK_GE(s, 1u);

  std::vector<std::vector<VertexId>> child_cores;
  child_cores.reserve(spec.children.size());
  for (const CoreSpec& child : spec.children) {
    HCD_CHECK_GT(child.level, k) << "child core level must exceed parent";
    child_cores.push_back(BuildSpecNode(child, next_id, edges, rng));
  }

  const VertexId base = *next_id;
  *next_id += s;
  std::vector<VertexId> core;

  if (child_cores.empty()) {
    // Leaf: realize the shell as a connected k-regular circulant, so every
    // shell vertex has coreness exactly k.
    HCD_CHECK_GE(s, k + 1) << "leaf shell too small for a k-core";
    if (k == 1) {
      HCD_CHECK_EQ(s, 2u) << "level-1 leaf must be a single edge";
    }
    if (k % 2 == 1 && k > 1) {
      HCD_CHECK_EQ(s % 2, 0u) << "odd-level leaf needs an even shell";
    }
    for (VertexId i = 0; i < s; ++i) {
      for (uint32_t off = 1; off <= k / 2; ++off) {
        edges->emplace_back(base + i, base + (i + off) % s);
      }
    }
    if (k % 2 == 1) {
      // Perfect matching across the circle supplies the odd degree.
      for (VertexId i = 0; i < s / 2; ++i) {
        edges->emplace_back(base + i, base + i + s / 2);
      }
    }
    core.reserve(s);
    for (VertexId i = 0; i < s; ++i) core.push_back(base + i);
    return core;
  }

  // Internal node: a shell path plus attachment edges into child cores.
  // Every shell vertex ends with total degree exactly k, so its coreness is
  // exactly k; child cores keep their own (larger) coreness.
  std::vector<uint32_t> budget(s, k);
  if (s >= 2) {
    for (VertexId i = 0; i + 1 < s; ++i) {
      edges->emplace_back(base + i, base + i + 1);
      HCD_CHECK_GE(budget[i], 1u) << "internal shell level too small for path";
      HCD_CHECK_GE(budget[i + 1], 1u);
      --budget[i];
      --budget[i + 1];
    }
  }

  // Attachment pool: one representative per child first (so every child core
  // is touched and gets a parent edge), then the remaining child vertices,
  // rotated pseudo-randomly for variety.
  std::vector<VertexId> pool;
  for (const auto& cc : child_cores) pool.push_back(cc.front());
  std::vector<VertexId> rest;
  for (const auto& cc : child_cores) {
    for (size_t i = 1; i < cc.size(); ++i) rest.push_back(cc[i]);
  }
  if (!rest.empty()) {
    size_t rot = rng->Uniform(rest.size());
    std::rotate(rest.begin(), rest.begin() + rot, rest.end());
  }
  pool.insert(pool.end(), rest.begin(), rest.end());

  uint64_t total_budget = 0;
  for (uint32_t bi : budget) total_budget += bi;
  HCD_CHECK_GE(total_budget, child_cores.size())
      << "shell cannot reach every child core";

  size_t pos = 0;
  for (VertexId i = 0; i < s; ++i) {
    HCD_CHECK_LE(budget[i], pool.size())
        << "child cores too small for shell degree";
    for (uint32_t e = 0; e < budget[i]; ++e) {
      edges->emplace_back(base + i, pool[pos]);
      pos = (pos + 1) % pool.size();
    }
  }

  core.reserve(s + pool.size());
  // Keep one shell vertex first so the parent's representative edge lands on
  // the shell (any core vertex works; the shell is the natural anchor).
  for (VertexId i = 0; i < s; ++i) core.push_back(base + i);
  for (const auto& cc : child_cores) {
    core.insert(core.end(), cc.begin(), cc.end());
  }
  return core;
}

}  // namespace

Graph PlantedHierarchy(const CoreSpec& root, uint64_t seed) {
  return PlantedForest({root}, seed);
}

Graph PlantedForest(const std::vector<CoreSpec>& roots, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  VertexId next_id = 0;
  for (const CoreSpec& root : roots) {
    BuildSpecNode(root, &next_id, &edges, &rng);
  }
  return GraphFromEdges(edges, next_id);
}

CoreSpec OnionSpec(uint32_t k_max, VertexId shell_size) {
  HCD_CHECK_GE(k_max, 2u);
  CoreSpec node;
  node.level = k_max;
  node.shell_size = std::max<VertexId>(shell_size, k_max + 1);
  if (k_max % 2 == 1 && node.shell_size % 2 == 1) ++node.shell_size;
  for (uint32_t k = k_max - 1; k >= 2; --k) {
    CoreSpec wrap;
    wrap.level = k;
    wrap.shell_size = shell_size;
    wrap.children.push_back(std::move(node));
    node = std::move(wrap);
  }
  CoreSpec outer;
  outer.level = 1;
  outer.shell_size = 1;
  outer.children.push_back(std::move(node));
  return outer;
}

CoreSpec BranchingSpec(uint32_t k_min, uint32_t k_max, uint32_t step,
                       uint32_t fanout, VertexId shell_size) {
  HCD_CHECK_GE(k_min, 2u);
  HCD_CHECK_GE(step, 1u);
  HCD_CHECK_GE(fanout, 1u);
  CoreSpec node;
  node.level = k_min;
  if (k_min + step > k_max) {
    // Leaf constraints.
    node.shell_size = std::max<VertexId>(shell_size, k_min + 1);
    if (k_min % 2 == 1 && node.shell_size % 2 == 1) ++node.shell_size;
    return node;
  }
  node.shell_size = std::max<VertexId>(shell_size, 1);
  for (uint32_t c = 0; c < fanout; ++c) {
    node.children.push_back(
        BranchingSpec(k_min + step, k_max, step, fanout, shell_size));
  }
  return node;
}

}  // namespace hcd
