#ifndef HCD_GRAPH_GRAPH_H_
#define HCD_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "common/check.h"
#include "graph/types.h"

namespace hcd {

/// Immutable undirected simple graph in compressed sparse row (CSR) form.
///
/// Invariants (established by GraphBuilder, assumed by every algorithm):
///  - vertices are 0..NumVertices()-1;
///  - no self-loops, no parallel edges;
///  - adjacency is symmetric: u in Neighbors(v) iff v in Neighbors(u);
///  - each adjacency list is sorted ascending (enables binary-search
///    membership tests and deterministic iteration).
class Graph {
 public:
  /// Constructs an empty graph (0 vertices).
  Graph() : offsets_(1, 0) {}

  /// Constructs from raw CSR arrays. `offsets` has n+1 entries; `adj` has
  /// offsets[n] entries. Callers normally use GraphBuilder instead; this
  /// constructor CHECK-fails on malformed shapes but does not re-verify
  /// symmetry or sortedness (see GraphBuilder).
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> adj);

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Number of vertices n.
  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of undirected edges m.
  EdgeIndex NumEdges() const { return offsets_.back() / 2; }

  /// Degree of `v`.
  VertexId Degree(VertexId v) const {
    HCD_DCHECK(v < NumVertices());
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of `v`, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    HCD_DCHECK(v < NumVertices());
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True iff edge {u, v} exists. O(log Degree(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Start index of v's adjacency slice in the flat adjacency array.
  EdgeIndex AdjOffset(VertexId v) const { return offsets_[v]; }

  /// Flat adjacency array of size 2m (both directions of every edge).
  std::span<const VertexId> AdjArray() const { return adj_; }

  /// All undirected edges as (min, max) pairs, sorted.
  EdgeList Edges() const;

  /// 2m / n, or 0 for the empty graph.
  double AverageDegree() const;

  /// Largest vertex degree.
  VertexId MaxDegree() const;

 private:
  std::vector<EdgeIndex> offsets_;  // size n+1
  std::vector<VertexId> adj_;       // size 2m
};

}  // namespace hcd

#endif  // HCD_GRAPH_GRAPH_H_
