#ifndef HCD_GRAPH_SUBGRAPH_H_
#define HCD_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace hcd {

/// A vertex-induced subgraph together with the mapping back to the parent
/// graph: `graph` vertex i corresponds to `vertices[i]` in the original.
struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> vertices;
};

/// Extracts the subgraph induced by `vertices` (need not be sorted; must not
/// contain duplicates). O(sum of degrees of `vertices`).
InducedSubgraph Induce(const Graph& graph, std::vector<VertexId> vertices);

/// Number of edges of `graph` with both endpoints in `vertices`.
EdgeIndex CountInducedEdges(const Graph& graph,
                            const std::vector<VertexId>& vertices);

}  // namespace hcd

#endif  // HCD_GRAPH_SUBGRAPH_H_
