#ifndef HCD_GRAPH_BUILDER_H_
#define HCD_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace hcd {

/// Counters describing what Build normalized away; filled when a caller
/// passes a stats pointer (the ingest telemetry reports them).
struct BuildStats {
  uint64_t self_loops_dropped = 0;
  uint64_t duplicates_dropped = 0;
};

/// Accumulates edges and produces a normalized simple undirected Graph:
/// self-loops dropped, parallel edges (in either direction) deduplicated,
/// adjacency symmetrized and sorted. The paper symmetrizes all directed
/// inputs the same way (Section V-A).
///
/// Build runs in parallel over the ambient OpenMP thread count but its
/// output is identical for every thread count (canonicalize -> parallel
/// sort -> deduplicating scatter, all order-independent).
///
///   GraphBuilder b;
///   b.AddEdge(0, 1);
///   b.AddEdge(1, 0);      // duplicate, collapsed
///   Graph g = std::move(b).Build(2);
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Reserves space for `num_edges` AddEdge calls.
  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  /// Records edge {u, v}. Self-loops are ignored. Order of endpoints and
  /// duplicates do not matter.
  void AddEdge(VertexId u, VertexId v) {
    if (u == v) return;
    edges_.emplace_back(u, v);
  }

  /// Records every edge in `edges`.
  void AddEdges(const EdgeList& edges) {
    for (const auto& [u, v] : edges) AddEdge(u, v);
  }

  /// Appends `edges` wholesale without per-edge filtering — the bulk path
  /// used by the parallel ingest layer. Self-loops and duplicates are
  /// still dropped by Build, which also counts them into BuildStats.
  /// Moves the vector when the builder is empty.
  void AddEdgesUnfiltered(EdgeList&& edges) {
    if (edges_.empty()) {
      edges_ = std::move(edges);
    } else {
      edges_.insert(edges_.end(), edges.begin(), edges.end());
    }
  }

  /// Largest endpoint seen so far plus one, or 0 when no edges were added.
  VertexId MinNumVertices() const;

  /// Builds the graph over vertices 0..num_vertices-1. `num_vertices` must
  /// be at least MinNumVertices(); pass a larger value to include isolated
  /// vertices. Consumes the builder. When `stats` is non-null it receives
  /// the dropped self-loop / duplicate counts.
  Graph Build(VertexId num_vertices, BuildStats* stats) &&;

  Graph Build(VertexId num_vertices) && {
    return std::move(*this).Build(num_vertices, nullptr);
  }

  /// Builds with num_vertices = MinNumVertices().
  Graph Build() && { return std::move(*this).Build(MinNumVertices()); }

 private:
  EdgeList edges_;
};

/// Convenience: builds a normalized graph directly from an edge list.
Graph GraphFromEdges(const EdgeList& edges, VertexId num_vertices);
Graph GraphFromEdges(const EdgeList& edges);

}  // namespace hcd

#endif  // HCD_GRAPH_BUILDER_H_
