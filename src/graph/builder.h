#ifndef HCD_GRAPH_BUILDER_H_
#define HCD_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace hcd {

/// Accumulates edges and produces a normalized simple undirected Graph:
/// self-loops dropped, parallel edges (in either direction) deduplicated,
/// adjacency symmetrized and sorted. The paper symmetrizes all directed
/// inputs the same way (Section V-A).
///
///   GraphBuilder b;
///   b.AddEdge(0, 1);
///   b.AddEdge(1, 0);      // duplicate, collapsed
///   Graph g = std::move(b).Build(2);
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Reserves space for `num_edges` AddEdge calls.
  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  /// Records edge {u, v}. Self-loops are ignored. Order of endpoints and
  /// duplicates do not matter.
  void AddEdge(VertexId u, VertexId v) {
    if (u == v) return;
    edges_.emplace_back(u, v);
  }

  /// Records every edge in `edges`.
  void AddEdges(const EdgeList& edges) {
    for (const auto& [u, v] : edges) AddEdge(u, v);
  }

  /// Largest endpoint seen so far plus one, or 0 when no edges were added.
  VertexId MinNumVertices() const;

  /// Builds the graph over vertices 0..num_vertices-1. `num_vertices` must
  /// be at least MinNumVertices(); pass a larger value to include isolated
  /// vertices. Consumes the builder.
  Graph Build(VertexId num_vertices) &&;

  /// Builds with num_vertices = MinNumVertices().
  Graph Build() && { return std::move(*this).Build(MinNumVertices()); }

 private:
  EdgeList edges_;
};

/// Convenience: builds a normalized graph directly from an edge list.
Graph GraphFromEdges(const EdgeList& edges, VertexId num_vertices);
Graph GraphFromEdges(const EdgeList& edges);

}  // namespace hcd

#endif  // HCD_GRAPH_BUILDER_H_
