#ifndef HCD_GRAPH_BINARY_FORMAT_H_
#define HCD_GRAPH_BINARY_FORMAT_H_

#include <cstdint>

namespace hcd::internal {

/// On-disk CSR snapshot layout (native endianness), shared by SaveBinary
/// (io.cc) and the validated loader (ingest.cc):
///
///   uint64 magic   ("HCDGRJP1")
///   uint32 version (1)
///   uint64 n        — number of vertices
///   uint64 adj_size — number of adjacency entries (2m, even)
///   uint64 offsets[n + 1]  — offsets[0] == 0, monotone, back() == adj_size
///   uint32 adj[adj_size]   — per-vertex slices strictly ascending, < n,
///                            never the owning vertex (no self-loops)
///
/// Total file size is therefore exactly
///   kHeaderBytes + (n + 1) * 8 + adj_size * 4,
/// which the loader checks against the real file size before allocating
/// anything, so a corrupt header can never trigger a multi-GB allocation.
inline constexpr uint64_t kBinaryMagic = 0x48434447524a5031ULL;  // "HCDGRJP1"
inline constexpr uint32_t kBinaryVersion = 1;
inline constexpr uint64_t kBinaryHeaderBytes = 8 + 4 + 8 + 8;

}  // namespace hcd::internal

#endif  // HCD_GRAPH_BINARY_FORMAT_H_
