#ifndef HCD_GRAPH_IO_H_
#define HCD_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace hcd {

/// Loads a whitespace-separated edge-list text file ("u v" per line) in the
/// SNAP format: lines starting with '#' or '%' are comments; directed inputs
/// are symmetrized; self-loops are dropped; vertex ids need not be
/// contiguous — distinct raw ids are compacted in ascending-raw-id order
/// (the canonical numbering, identical for every thread count). Lines of
/// any length are accepted. On success stores the normalized graph in
/// `*graph`. This is a convenience wrapper over IngestEdgeListText
/// (graph/ingest.h), which additionally exposes thread-count control,
/// per-stage telemetry and ingest statistics.
Status LoadEdgeListText(const std::string& path, Graph* graph);

/// Writes `graph` as an edge-list text file (one "u v" line per undirected
/// edge, u < v), with a comment header. Flush/close failures (e.g. full
/// disk) surface as IoError.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Binary CSR snapshot (format documented in graph/binary_format.h). Much
/// faster to reload than text for benchmark datasets. Loading validates
/// the header against the file size and the CSR arrays structurally (see
/// IngestBinary in graph/ingest.h); saving checks flush/close.
Status SaveBinary(const Graph& graph, const std::string& path);
Status LoadBinary(const std::string& path, Graph* graph);

}  // namespace hcd

#endif  // HCD_GRAPH_IO_H_
