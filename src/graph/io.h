#ifndef HCD_GRAPH_IO_H_
#define HCD_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace hcd {

/// Loads a whitespace-separated edge-list text file ("u v" per line) in the
/// SNAP format: lines starting with '#' or '%' are comments; directed inputs
/// are symmetrized; vertex ids need not be contiguous (they are compacted).
/// On success stores the normalized graph in `*graph`.
Status LoadEdgeListText(const std::string& path, Graph* graph);

/// Writes `graph` as an edge-list text file (one "u v" line per undirected
/// edge, u < v), with a comment header.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

/// Binary CSR snapshot (magic + version + n + m + offsets + adjacency).
/// Much faster to reload than text for benchmark datasets.
Status SaveBinary(const Graph& graph, const std::string& path);
Status LoadBinary(const std::string& path, Graph* graph);

}  // namespace hcd

#endif  // HCD_GRAPH_IO_H_
