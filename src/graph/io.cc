#include "graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/builder.h"

namespace hcd {
namespace {

constexpr uint64_t kBinaryMagic = 0x48434447524a5031ULL;  // "HCDGRJP1"
constexpr uint32_t kBinaryVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status LoadEdgeListText(const std::string& path, Graph* graph) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  EdgeList edges;
  std::unordered_map<uint64_t, VertexId> remap;
  auto intern = [&remap](uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  char line[512];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '#' || *p == '%' || *p == '\n' || *p == '\0') continue;
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (std::sscanf(p, "%" SCNu64 " %" SCNu64, &raw_u, &raw_v) != 2) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 'u v'");
    }
    edges.emplace_back(intern(raw_u), intern(raw_v));
  }
  *graph = GraphFromEdges(edges, static_cast<VertexId>(remap.size()));
  return Status::Ok();
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::fprintf(f.get(), "# undirected simple graph: n=%u m=%" PRIu64 "\n",
               graph.NumVertices(), graph.NumEdges());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v < u) std::fprintf(f.get(), "%u %u\n", v, u);
    }
  }
  return Status::Ok();
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  const uint64_t n = graph.NumVertices();
  const uint64_t adj_size = graph.AdjArray().size();
  bool ok = std::fwrite(&kBinaryMagic, sizeof(kBinaryMagic), 1, f.get()) == 1;
  ok = ok && std::fwrite(&kBinaryVersion, sizeof(kBinaryVersion), 1, f.get()) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fwrite(&adj_size, sizeof(adj_size), 1, f.get()) == 1;
  std::vector<EdgeIndex> offsets(n + 1);
  for (VertexId v = 0; v < n; ++v) offsets[v] = graph.AdjOffset(v);
  offsets[n] = adj_size;
  ok = ok && std::fwrite(offsets.data(), sizeof(EdgeIndex), offsets.size(),
                         f.get()) == offsets.size();
  ok = ok && (adj_size == 0 ||
              std::fwrite(graph.AdjArray().data(), sizeof(VertexId), adj_size,
                          f.get()) == adj_size);
  if (!ok) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status LoadBinary(const std::string& path, Graph* graph) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t n = 0;
  uint64_t adj_size = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f.get()) == 1;
  ok = ok && std::fread(&version, sizeof(version), 1, f.get()) == 1;
  ok = ok && std::fread(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fread(&adj_size, sizeof(adj_size), 1, f.get()) == 1;
  if (!ok) return Status::Corruption(path + ": truncated header");
  if (magic != kBinaryMagic) return Status::Corruption(path + ": bad magic");
  if (version != kBinaryVersion) {
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }

  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> adj(adj_size);
  ok = std::fread(offsets.data(), sizeof(EdgeIndex), offsets.size(), f.get()) ==
       offsets.size();
  ok = ok && (adj_size == 0 || std::fread(adj.data(), sizeof(VertexId),
                                          adj_size, f.get()) == adj_size);
  if (!ok) return Status::Corruption(path + ": truncated body");
  if (offsets.front() != 0 || offsets.back() != adj_size) {
    return Status::Corruption(path + ": inconsistent offsets");
  }
  *graph = Graph(std::move(offsets), std::move(adj));
  return Status::Ok();
}

}  // namespace hcd
