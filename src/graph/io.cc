#include "graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "graph/binary_format.h"
#include "graph/ingest.h"

namespace hcd {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Finishes a file opened for writing: flush and close are checked
/// explicitly so a full disk surfaces as IoError instead of an Ok status
/// over a truncated file. `wrote_ok` carries the accumulated result of the
/// write calls themselves.
Status FinishWrite(FilePtr f, const std::string& path, bool wrote_ok) {
  std::FILE* raw = f.release();
  const bool flushed = std::fflush(raw) == 0;
  const bool closed = std::fclose(raw) == 0;
  if (!wrote_ok || !flushed || !closed) {
    return Status::IoError("write failed or short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Status LoadEdgeListText(const std::string& path, Graph* graph) {
  return IngestEdgeListText(path, IngestOptions{}, graph);
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  bool ok =
      std::fprintf(f.get(), "# undirected simple graph: n=%u m=%" PRIu64 "\n",
                   graph.NumVertices(), graph.NumEdges()) >= 0;
  for (VertexId v = 0; ok && v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v < u && std::fprintf(f.get(), "%u %u\n", v, u) < 0) {
        ok = false;
        break;
      }
    }
  }
  return FinishWrite(std::move(f), path, ok);
}

Status SaveBinary(const Graph& graph, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);

  const uint64_t n = graph.NumVertices();
  const uint64_t adj_size = graph.AdjArray().size();
  bool ok = std::fwrite(&internal::kBinaryMagic, sizeof(internal::kBinaryMagic),
                        1, f.get()) == 1;
  ok = ok && std::fwrite(&internal::kBinaryVersion,
                         sizeof(internal::kBinaryVersion), 1, f.get()) == 1;
  ok = ok && std::fwrite(&n, sizeof(n), 1, f.get()) == 1;
  ok = ok && std::fwrite(&adj_size, sizeof(adj_size), 1, f.get()) == 1;
  std::vector<EdgeIndex> offsets(n + 1);
  for (VertexId v = 0; v < n; ++v) offsets[v] = graph.AdjOffset(v);
  offsets[n] = adj_size;
  ok = ok && std::fwrite(offsets.data(), sizeof(EdgeIndex), offsets.size(),
                         f.get()) == offsets.size();
  ok = ok && (adj_size == 0 ||
              std::fwrite(graph.AdjArray().data(), sizeof(VertexId), adj_size,
                          f.get()) == adj_size);
  return FinishWrite(std::move(f), path, ok);
}

Status LoadBinary(const std::string& path, Graph* graph) {
  return IngestBinary(path, IngestOptions{}, graph);
}

}  // namespace hcd
