#ifndef HCD_GRAPH_INGEST_H_
#define HCD_GRAPH_INGEST_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/telemetry.h"
#include "graph/graph.h"

namespace hcd {

/// Knobs for the parallel ingest pipeline (text parse and binary load).
struct IngestOptions {
  /// OpenMP threads for every ingest stage (read, parse, remap, build,
  /// validate); 0 keeps the ambient setting. Applied with a scoped guard.
  int io_threads = 0;
  /// Optional per-stage telemetry receiver; stages are named "load.read",
  /// "load.parse", "load.remap", "load.build" (text) and "load.read",
  /// "load.validate" (binary).
  TelemetrySink* sink = nullptr;
};

/// What ingest saw and normalized; all counters are zero-initialized and
/// only the ones relevant to the chosen format are filled.
struct IngestStats {
  uint64_t bytes = 0;             ///< file size consumed
  uint64_t lines = 0;             ///< text lines scanned (incl. comments)
  uint64_t edges_parsed = 0;      ///< edge records parsed from text
  uint64_t vertices = 0;          ///< distinct vertices after remap
  uint64_t self_loops_dropped = 0;
  uint64_t duplicates_dropped = 0;
};

/// Parallel, validated replacement for the serial text loader. The file is
/// read into memory, split into newline-aligned chunks parsed concurrently
/// into per-chunk edge buffers, and raw 64-bit ids are remapped to the
/// canonical order "ascending raw id" (deterministic and independent of
/// the thread count — loading the same file at any `io_threads` yields a
/// byte-identical CSR). Lines of any length are handled; malformed lines
/// fail with Corruption carrying the 1-based line number. Self-loops and
/// duplicate/reversed edges are dropped by the parallel CSR build.
Status IngestEdgeListText(const std::string& path, const IngestOptions& options,
                          Graph* graph, IngestStats* stats = nullptr);

/// Validated binary CSR load (format in graph/binary_format.h). Before any
/// allocation the header is checked against the real file size, so corrupt
/// headers cannot trigger absurd allocations; after reading, offsets must
/// be monotone with the documented endpoints and every adjacency slice
/// must be strictly ascending, in range and self-loop free (checked in
/// parallel). Violations return Corruption instead of corrupting
/// downstream algorithms.
Status IngestBinary(const std::string& path, const IngestOptions& options,
                    Graph* graph, IngestStats* stats = nullptr);

}  // namespace hcd

#endif  // HCD_GRAPH_INGEST_H_
