#include "graph/subgraph.h"

#include <algorithm>

#include "common/check.h"
#include "graph/builder.h"

namespace hcd {

InducedSubgraph Induce(const Graph& graph, std::vector<VertexId> vertices) {
  std::vector<VertexId> local(graph.NumVertices(), kInvalidVertex);
  for (size_t i = 0; i < vertices.size(); ++i) {
    HCD_CHECK(local[vertices[i]] == kInvalidVertex) << "duplicate vertex";
    local[vertices[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder b;
  for (VertexId v : vertices) {
    for (VertexId u : graph.Neighbors(v)) {
      if (local[u] != kInvalidVertex && v < u) {
        b.AddEdge(local[v], local[u]);
      }
    }
  }
  InducedSubgraph result;
  result.graph = std::move(b).Build(static_cast<VertexId>(vertices.size()));
  result.vertices = std::move(vertices);
  return result;
}

EdgeIndex CountInducedEdges(const Graph& graph,
                            const std::vector<VertexId>& vertices) {
  std::vector<bool> in(graph.NumVertices(), false);
  for (VertexId v : vertices) in[v] = true;
  EdgeIndex count = 0;
  for (VertexId v : vertices) {
    for (VertexId u : graph.Neighbors(v)) {
      if (in[u] && v < u) ++count;
    }
  }
  return count;
}

}  // namespace hcd
