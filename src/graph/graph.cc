#include "graph/graph.h"

#include <algorithm>

namespace hcd {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> adj)
    : offsets_(std::move(offsets)), adj_(std::move(adj)) {
  HCD_CHECK(!offsets_.empty());
  HCD_CHECK_EQ(offsets_.front(), 0u);
  HCD_CHECK_EQ(offsets_.back(), adj_.size());
  HCD_CHECK_EQ(adj_.size() % 2, 0u) << "undirected graph needs even adjacency";
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeList Graph::Edges() const {
  EdgeList edges;
  edges.reserve(NumEdges());
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (VertexId u : Neighbors(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return edges;
}

double Graph::AverageDegree() const {
  if (NumVertices() == 0) return 0.0;
  return static_cast<double>(adj_.size()) / NumVertices();
}

VertexId Graph::MaxDegree() const {
  VertexId best = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) best = std::max(best, Degree(v));
  return best;
}

}  // namespace hcd
