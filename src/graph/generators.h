#ifndef HCD_GRAPH_GENERATORS_H_
#define HCD_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hcd {

// --- Elementary graphs (mostly for tests) -----------------------------------

/// Path v0-v1-...-v_{n-1}.
Graph PathGraph(VertexId n);

/// Cycle on n >= 3 vertices.
Graph CycleGraph(VertexId n);

/// Complete graph K_n (every vertex has coreness n-1).
Graph CompleteGraph(VertexId n);

/// Star: vertex 0 adjacent to 1..n-1.
Graph StarGraph(VertexId n);

/// The 11-vertex running example of the paper's Figure 1: a 4-core (5-clique
/// S4), a second 3-core (4-clique S3.2), a 3-shell of 3 vertices completing
/// S3.1 around the 4-core, and a 2-shell of 3 vertices tying everything into
/// one 2-core.
Graph PaperFigure1Graph();

// --- Random models -----------------------------------------------------------

/// G(n, m): m distinct uniform random edges (self-loops re-drawn).
Graph ErdosRenyiGnm(VertexId n, uint64_t m, uint64_t seed);

/// G(n, p) by Bernoulli sampling of each pair; O(n^2), intended for tests.
Graph ErdosRenyiGnp(VertexId n, double p, uint64_t seed);

/// Barabasi-Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices chosen
/// proportionally to degree. Produces skewed degree distributions like
/// social networks.
Graph BarabasiAlbert(VertexId n, VertexId edges_per_vertex, uint64_t seed);

/// Barabasi-Albert variant where each arriving vertex attaches a uniform
/// random number of edges in [min_epv, max_epv]. Unlike the fixed-m model
/// (whose coreness is constant m, collapsing the HCD to one node), this
/// spreads coreness over [min_epv, max_epv] like real social networks.
Graph BarabasiAlbertVarying(VertexId n, VertexId min_epv, VertexId max_epv,
                            uint64_t seed);

/// RMAT/Kronecker sampler over 2^scale vertices with quadrant probabilities
/// (a, b, c, d), a + b + c + d = 1. Produces heavy-tailed web-crawl-like
/// graphs (the role of the LAW datasets in Table II).
Graph RMat(uint32_t scale, uint64_t num_edges, double a, double b, double c,
           uint64_t seed);

/// RMAT with the standard Graph500 parameters (0.57, 0.19, 0.19).
Graph RMatGraph500(uint32_t scale, uint64_t num_edges, uint64_t seed);

// --- Structured / planted hierarchies ---------------------------------------

/// `num_cliques` cliques of `clique_size` vertices arranged in a ring, with
/// one degree-2 bridge vertex between consecutive cliques. For
/// clique_size >= 4 each clique is a distinct (clique_size-1)-core and the
/// bridges (coreness 2) tie everything into one enclosing 2-core, so the
/// HCD is a star of clique nodes under one bridge node. Vertices are laid
/// out clique-major: clique c occupies [c*clique_size, (c+1)*clique_size),
/// bridges follow at num_cliques*clique_size + c.
Graph RingOfCliques(VertexId num_cliques, VertexId clique_size);

/// Specification of one tree node of a planted core hierarchy: a shell of
/// `shell_size` vertices of coreness exactly `level`, wrapped around the
/// cores described by `children` (which must all have strictly larger
/// levels).
///
/// Preconditions, CHECK-enforced by PlantedHierarchy:
///  - level >= 1;
///  - leaf nodes: shell_size >= level + 1, and level odd requires
///    shell_size even (the shell is realized as a level-regular circulant);
///  - internal nodes: level >= 2, and level >= number of children when
///    shell_size == 1 (shell edges must touch every child core).
struct CoreSpec {
  uint32_t level = 1;
  VertexId shell_size = 1;
  std::vector<CoreSpec> children;
};

/// Builds a graph whose hierarchical core decomposition is exactly the spec
/// tree: each spec node becomes one k-core tree node whose vertex set is the
/// spec's shell. Roots of the produced forest correspond to `root`.
/// Deterministic given `seed` (used to spread attachment edges).
Graph PlantedHierarchy(const CoreSpec& root, uint64_t seed);

/// A multi-root planted forest: independent PlantedHierarchy components.
Graph PlantedForest(const std::vector<CoreSpec>& roots, uint64_t seed);

/// Convenience deep chain: levels k_max, k_max-1, ..., 1 nested like an
/// onion, `shell_size` vertices per shell. kmax-core is a clique.
CoreSpec OnionSpec(uint32_t k_max, VertexId shell_size);

/// A branching spec: every node at level l has `fanout` children at level
/// l + step until `k_max` is exceeded. Produces many tree nodes (high |T|).
CoreSpec BranchingSpec(uint32_t k_min, uint32_t k_max, uint32_t step,
                       uint32_t fanout, VertexId shell_size);

}  // namespace hcd

#endif  // HCD_GRAPH_GENERATORS_H_
