#ifndef HCD_GRAPH_TYPES_H_
#define HCD_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace hcd {

/// Vertex identifier; vertices are always 0..n-1.
using VertexId = uint32_t;

/// Index into the flat adjacency array (can exceed 2^32 for large graphs).
using EdgeIndex = uint64_t;

/// An undirected edge as an unordered pair of endpoints.
using Edge = std::pair<VertexId, VertexId>;

using EdgeList = std::vector<Edge>;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

}  // namespace hcd

#endif  // HCD_GRAPH_TYPES_H_
