#ifndef HCD_ENGINE_ENGINE_H_
#define HCD_ENGINE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "engine/snapshot.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "hcd/forest.h"
#include "hcd/hierarchy_kind.h"
#include "hcd/vertex_rank.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/triangle_index.h"
#include "search/element_search.h"
#include "search/metrics.h"
#include "search/pbks.h"
#include "search/search_index.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"

namespace hcd {

/// Which HCD construction algorithm the engine runs.
enum class EngineAlgo {
  kPhcd,   ///< parallel PHCD (Algorithm 2); serial specialization at p=1
  kLcps,   ///< serial LCPS baseline
  kNaive,  ///< definition-driven per-k BFS oracle (tests / ground truth)
};

/// "phcd", "lcps" or "naive".
const char* EngineAlgoName(EngineAlgo algo);

/// Parses an algorithm name; returns false (and leaves `*algo` untouched)
/// on anything but "phcd" / "lcps" / "naive".
bool ParseEngineAlgo(std::string_view name, EngineAlgo* algo);

/// Configuration shared by every consumer of the pipeline (CLI, examples,
/// benchmarks).
struct EngineOptions {
  EngineAlgo algo = EngineAlgo::kPhcd;
  /// Which decomposition family the hierarchy stages build: k-core
  /// (vertices), k-truss (edges) or (3,4)-nucleus (triangles). The
  /// construction stages dispatch on this; the frozen index is kind-tagged
  /// and every downstream flat-index consumer works unchanged. Non-core
  /// kinds record kind-prefixed stage names ("truss.decomposition",
  /// "truss.construction", "truss.construction.freeze", ...).
  HierarchyKind hierarchy = HierarchyKind::kCore;
  /// OpenMP threads for every engine-run stage; 0 keeps the ambient
  /// setting. Applied per stage via ThreadCountGuard, so the global OpenMP
  /// state is never leaked.
  int threads = 0;
  /// OpenMP threads for graph ingest (Load's parallel read/parse/build);
  /// 0 falls back to `threads`. Lets I/O-bound loading use a different
  /// width than the compute stages.
  int io_threads = 0;
  /// When false, stages run un-instrumented and telemetry() stays empty.
  bool telemetry = true;
};

/// The build-phase pipeline object behind every consumer of the library:
/// owns (or borrows) one graph and computes each derived stage lazily, at
/// most once — core decomposition, vertex rank, HCD forest, frozen flat
/// index, search index. Repeated accessor calls return the same cached
/// object, so e.g. all CLI commands and a long-lived query server pay for
/// each stage once.
///
/// Thread counts are applied per stage with ThreadCountGuard (never by
/// mutating global OpenMP state), and every stage reports wall time and
/// cheap counters to the engine's StageTelemetry unless telemetry is
/// disabled.
///
/// Thread-safety: the engine itself is not thread-safe — one engine is
/// driven by one orchestrating thread. Concurrency lives on the serve side:
/// Snapshot() finishes every query-side stage and returns an immutable
/// QuerySnapshot that any number of worker threads may query at once (see
/// engine/snapshot.h).
class HcdEngine {
 public:
  /// Owning constructor: the engine keeps the graph alive.
  explicit HcdEngine(Graph graph, EngineOptions options = {});

  /// Borrowing constructor: `*graph` must outlive the engine. Lets
  /// benchmarks construct many engines over one loaded dataset without
  /// copying it.
  explicit HcdEngine(const Graph* graph, EngineOptions options = {});

  HcdEngine(const HcdEngine&) = delete;
  HcdEngine& operator=(const HcdEngine&) = delete;

  /// Loads a graph (binary when `path` ends in ".bin", else SNAP edge-list
  /// text) through the parallel validated ingest layer and wraps it in an
  /// engine. Records the ingest sub-stages ("load.read", "load.parse",
  /// "load.remap", "load.build" / "load.validate") followed by an
  /// aggregate "load" stage (counters: n, m, bytes, edges_dropped).
  static Status Load(const std::string& path, const EngineOptions& options,
                     std::unique_ptr<HcdEngine>* out);

  const Graph& graph() const { return *graph_; }
  const EngineOptions& options() const { return options_; }

  /// Per-stage telemetry accumulated so far. Consumers may record their
  /// own stages (e.g. the CLI records "serialize").
  StageTelemetry& telemetry() { return telemetry_; }
  const StageTelemetry& telemetry() const { return telemetry_; }

  /// The engine's sink, or null when options().telemetry is false. Pass to
  /// library calls made outside the engine to merge their stages into the
  /// same report.
  TelemetrySink* sink() {
    return options_.telemetry ? &telemetry_ : nullptr;
  }

  /// Core decomposition (stage "decomposition"): PKC for phcd/lcps, the
  /// serial BZ reference for naive. Computed on first call.
  const CoreDecomposition& Coreness();

  /// Vertex rank over Coreness() (stage "rank"). Computed on first call.
  const VertexRank& Rank();

  /// Hierarchy forest of options().hierarchy built by options().algo
  /// (stage "construction" / "truss.construction" /
  /// "nucleus.construction"; for non-core kinds, kNaive selects the
  /// definition-driven oracle builder and anything else the parallel PHCD
  /// lift). Computed on first call. Builder-facing; query-side consumers
  /// should use Flat().
  const HcdForest& Forest();

  /// Immutable kind-tagged flat index frozen from Forest() (stage
  /// "construction.freeze", kind-prefixed for non-core kinds). Computed on
  /// first call; this is the representation every query path (search,
  /// stats, export) serves from.
  const FlatHcdIndex& Flat();

  /// Installs a prebuilt flat index (typically loaded or mmapped from a
  /// snapshot via hcd/serialize.h) as the engine's Flat() stage, skipping
  /// construction entirely. Fails with InvalidArgument if the index's kind
  /// does not match options().hierarchy, if its graph-vertex domain does not
  /// match the engine's graph, or if a flat index is already cached (built
  /// or adopted) — adoption must happen before the first Flat() call.
  /// Mapped indexes are shared as-is: the engine (and any snapshot sealed
  /// from it) co-owns the mapping, no bytes are copied.
  Status AdoptFlat(std::shared_ptr<const FlatHcdIndex> flat);

  /// Edge indexer of the graph (stage "truss.index"); the element
  /// substrate of truss and nucleus hierarchies. Computed on first call.
  const EdgeIndexer& Edges();

  /// Triangle indexer over Edges() (stage "nucleus.index"). Computed on
  /// first call.
  const TriangleIndexer& Triangles();

  /// Truss decomposition by support peeling (stage "truss.decomposition").
  /// Computed on first call.
  const TrussDecomposition& Trussness();

  /// (3,4)-nucleus decomposition (stage "nucleus.decomposition"). Computed
  /// on first call.
  const NucleusDecomposition& NucleusTheta();

  /// Memoized eager element-community search index over Flat(); requires a
  /// non-core hierarchy (stage "search.element"). The returned object is
  /// deeply const and serves concurrent readers, the element analogue of
  /// Searcher().
  const ElementSearchIndex& ElementSearcher();

  /// Memoized eager search index over Coreness() and Flat(); constructing
  /// it runs the PBKS preprocessing and both primary-value passes (stages
  /// "search.preprocess", "search.primary_a", "search.primary_b"). The
  /// index lives inside the engine's SnapshotState, so requesting it seals
  /// the serve-phase state (see Snapshot()).
  const SearchIndex& Searcher();

  /// Finishes every query-side stage (Coreness, Forest, Flat, Searcher),
  /// seals them into one refcounted immutable SnapshotState (epoch 0) and
  /// returns a shared-ownership view over it. Cheap once built; repeated
  /// calls return snapshots over the same state. Snapshots own the state:
  /// they stay valid after the engine is destroyed, so worker threads can
  /// keep serving while the builder goes away. The state shares the
  /// engine's cached graph, coreness and flat index (they are refcounted
  /// internally), so sealing neither copies nor invalidates references
  /// handed out by the accessors above; only a borrowed graph is copied,
  /// because the state must own everything it serves.
  QuerySnapshot Snapshot();

  /// Search via the cached search index (one "search.score" stage per
  /// call). Equivalent to Snapshot().Search(metric) with the engine's own
  /// reusable workspace.
  SearchResult Search(Metric metric);

 private:
  /// Builds state_ from the cached stages (first call only).
  const SnapshotState& SealedState();

  std::shared_ptr<const Graph> owned_graph_;  ///< null when borrowing
  const Graph* graph_;
  EngineOptions options_;
  StageTelemetry telemetry_;
  // Stage caches. Coreness and the flat index are refcounted so sealing
  // shares them with the SnapshotState without a move or copy — references
  // handed out before Snapshot() stay valid after it. Rank and the builder
  // forest are build-side only and never sealed.
  std::shared_ptr<const CoreDecomposition> cd_;
  std::optional<VertexRank> rank_;
  std::optional<HcdForest> forest_;
  std::shared_ptr<const FlatHcdIndex> flat_;
  std::shared_ptr<const SnapshotState> state_;
  SearchWorkspace workspace_;
  // Element-hierarchy stage caches (truss / nucleus only).
  std::optional<EdgeIndexer> eidx_;
  std::optional<TriangleIndexer> tidx_;
  std::optional<TrussDecomposition> td_;
  std::optional<NucleusDecomposition> nd_;
  std::optional<ElementSearchIndex> element_searcher_;
};

}  // namespace hcd

#endif  // HCD_ENGINE_ENGINE_H_
