#include "engine/live.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace hcd {
namespace {

std::shared_ptr<const SnapshotState> BuildInitialState(
    Graph graph, const LiveEngineOptions& options) {
  HcdEngine engine(std::move(graph), options.engine);
  if (options.initial_flat != nullptr) {
    const Status s = engine.AdoptFlat(options.initial_flat);
    HCD_CHECK(s.ok()) << "LiveEngine initial_flat rejected: " << s.message();
  }
  return engine.Snapshot().state();
}

}  // namespace

LiveEngine::LiveEngine(Graph graph, LiveEngineOptions options)
    : options_(options),
      manager_(BuildInitialState(std::move(graph), options)),
      // The state owns the (moved) graph now; the dynamic index copies its
      // adjacency into the mutable representation.
      dynamic_(manager_.Current()->graph(), options.hash_degree_threshold) {}

Status LiveEngine::ApplyBatch(std::span<const EdgeUpdate> updates,
                              BatchApplyReport* report) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Timer total;
  ScopedSpan span("live.apply_batch");
  span.AddArg("updates", updates.size());

  BatchApplyReport local;
  BatchApplyReport& rep = report != nullptr ? *report : local;
  rep = BatchApplyReport{};

  ApplyBatchOptions batch_options;
  batch_options.parallel = options_.parallel_batches;
  batch_options.verify_with_bz = options_.verify_batches;
  Timer apply_timer;
  {
    ScopedSpan apply_span("live.apply");
    const Status s = dynamic_.ApplyBatch(updates, &rep.stats, batch_options);
    if (!s.ok()) return s;
    apply_span.AddArg("applied", rep.stats.applied);
  }
  rep.apply_seconds = apply_timer.Seconds();

  const std::shared_ptr<const SnapshotState> old_state = manager_.Current();
  if (rep.stats.applied == 0) {
    // Net no-op: the graph is unchanged, so the published generation
    // already serves it — advancing the epoch would only churn caches.
    rep.epoch = old_state->epoch();
    rep.total_seconds = total.Seconds();
    return Status::Ok();
  }

  Timer refreeze_timer;
  std::shared_ptr<const Graph> new_graph;
  std::shared_ptr<const CoreDecomposition> new_cd;
  std::shared_ptr<const FlatHcdIndex> new_flat;
  {
    ScopedSpan refreeze_span("live.refreeze");
    new_graph = std::make_shared<const Graph>(dynamic_.ToGraph());
    CoreDecomposition cd;
    cd.coreness = dynamic_.CorenessValues();
    cd.k_max = dynamic_.KMax();
    new_cd = std::make_shared<const CoreDecomposition>(std::move(cd));

    std::vector<VertexId> touched = rep.stats.changed_vertices;
    touched.reserve(touched.size() + 2 * rep.stats.applied_edges.size());
    for (const auto& [u, v] : rep.stats.applied_edges) {
      touched.push_back(u);
      touched.push_back(v);
    }
    RebuildOptions rebuild_options;
    rebuild_options.full_rebuild_threshold = options_.full_rebuild_threshold;
    const RebuildPlan plan =
        PlanRebuild(old_state->flat(), touched, rebuild_options);
    rep.full_rebuild = plan.full_rebuild;
    rep.dirty_fraction = plan.dirty_fraction;
    refreeze_span.AddArg("dirty_fraction", plan.dirty_fraction);
    refreeze_span.AddArg("full", plan.full_rebuild ? 1 : 0);

    FlatHcdIndex flat;
    const Status s = ApplyRebuild(plan, old_state->flat(), *new_graph,
                                  *new_cd, nullptr, &flat);
    if (!s.ok()) return s;
    new_flat = std::make_shared<const FlatHcdIndex>(std::move(flat));
  }
  rep.refreeze_seconds = refreeze_timer.Seconds();

  {
    ScopedSpan publish_span("live.publish");
    rep.epoch = old_state->epoch() + 1;
    publish_span.AddArg("epoch", rep.epoch);
    manager_.Publish(SnapshotState::Create(std::move(new_graph),
                                           std::move(new_cd),
                                           std::move(new_flat), rep.epoch));
    rep.published = true;
  }
  rep.total_seconds = total.Seconds();
  span.AddArg("epoch", rep.epoch);

  if (MetricsRegistry* registry = MetricsRegistry::Current()) {
    registry
        ->GetGauge("hcd_snapshot_epoch",
                   "Epoch of the currently published live snapshot")
        ->Set(static_cast<double>(rep.epoch));
    registry
        ->GetHistogram(
            "hcd_batch_apply_seconds",
            "End-to-end latency of one live batch (apply + refreeze + "
            "publish)")
        ->Observe(rep.total_seconds);
    registry
        ->GetCounter(
            "hcd_subcores_touched_total",
            "Subcore clusters processed by batch-dynamic maintenance")
        ->Increment(rep.stats.subcores_touched);
  }
  return Status::Ok();
}

}  // namespace hcd
