#include "engine/engine.h"

#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "graph/ingest.h"
#include "hcd/lcps.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "nucleus/nucleus_hierarchy.h"
#include "parallel/omp_utils.h"
#include "truss/truss_hierarchy.h"

namespace hcd {
namespace {

bool HasSuffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

const char* EngineAlgoName(EngineAlgo algo) {
  switch (algo) {
    case EngineAlgo::kPhcd: return "phcd";
    case EngineAlgo::kLcps: return "lcps";
    case EngineAlgo::kNaive: return "naive";
  }
  return "?";
}

bool ParseEngineAlgo(std::string_view name, EngineAlgo* algo) {
  if (name == "phcd") {
    *algo = EngineAlgo::kPhcd;
  } else if (name == "lcps") {
    *algo = EngineAlgo::kLcps;
  } else if (name == "naive") {
    *algo = EngineAlgo::kNaive;
  } else {
    return false;
  }
  return true;
}

HcdEngine::HcdEngine(Graph graph, EngineOptions options)
    : owned_graph_(std::make_shared<const Graph>(std::move(graph))),
      graph_(owned_graph_.get()),
      options_(options) {}

HcdEngine::HcdEngine(const Graph* graph, EngineOptions options)
    : graph_(graph), options_(options) {}

Status HcdEngine::Load(const std::string& path, const EngineOptions& options,
                       std::unique_ptr<HcdEngine>* out) {
  Timer timer;
  Graph graph;
  // Ingest sub-stages land in a staging sink (the engine does not exist
  // yet) and are replayed into the engine's telemetry after construction.
  StageTelemetry ingest_stages;
  IngestOptions ingest_options;
  ingest_options.io_threads =
      options.io_threads > 0 ? options.io_threads : options.threads;
  ingest_options.sink = options.telemetry ? &ingest_stages : nullptr;
  IngestStats ingest_stats;
  Status s = HasSuffix(path, ".bin")
                 ? IngestBinary(path, ingest_options, &graph, &ingest_stats)
                 : IngestEdgeListText(path, ingest_options, &graph,
                                      &ingest_stats);
  if (!s.ok()) return s;
  const double seconds = timer.Seconds();
  out->reset(new HcdEngine(std::move(graph), options));
  if (TelemetrySink* sink = (*out)->sink()) {
    for (const StageRecord& r : ingest_stages.records()) sink->RecordStage(r);
    StageRecord record;
    record.stage = "load";
    record.seconds = seconds;
    record.counters = {{"n", (*out)->graph().NumVertices()},
                       {"m", (*out)->graph().NumEdges()},
                       {"bytes", ingest_stats.bytes},
                       {"edges_dropped", ingest_stats.self_loops_dropped +
                                             ingest_stats.duplicates_dropped}};
    sink->RecordStage(record);
  }
  return Status::Ok();
}

const CoreDecomposition& HcdEngine::Coreness() {
  if (cd_ == nullptr) {
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    cd_ = std::make_shared<const CoreDecomposition>(
        options_.algo == EngineAlgo::kNaive
            ? BzCoreDecomposition(*graph_, sink())
            : PkcCoreDecomposition(*graph_, sink()));
  }
  return *cd_;
}

const VertexRank& HcdEngine::Rank() {
  if (!rank_) {
    const CoreDecomposition& cd = Coreness();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "rank");
    rank_ = ComputeVertexRank(cd);
  }
  return *rank_;
}

const EdgeIndexer& HcdEngine::Edges() {
  if (!eidx_) {
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "truss.index");
    eidx_ = BuildEdgeIndexer(*graph_);
    stage.AddCounter("edges", eidx_->NumEdges());
  }
  return *eidx_;
}

const TriangleIndexer& HcdEngine::Triangles() {
  if (!tidx_) {
    const EdgeIndexer& eidx = Edges();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "nucleus.index");
    tidx_ = BuildTriangleIndexer(*graph_, eidx);
    stage.AddCounter("triangles", tidx_->NumTriangles());
  }
  return *tidx_;
}

const TrussDecomposition& HcdEngine::Trussness() {
  if (!td_) {
    const EdgeIndexer& eidx = Edges();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "truss.decomposition");
    td_ = PeelTrussDecomposition(*graph_, eidx);
    stage.AddCounter("k_max", td_->k_max);
  }
  return *td_;
}

const NucleusDecomposition& HcdEngine::NucleusTheta() {
  if (!nd_) {
    const EdgeIndexer& eidx = Edges();
    const TriangleIndexer& tidx = Triangles();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "nucleus.decomposition");
    nd_ = PeelNucleusDecomposition(*graph_, eidx, tidx);
    stage.AddCounter("k_max", nd_->k_max);
  }
  return *nd_;
}

const HcdForest& HcdEngine::Forest() {
  if (forest_) return *forest_;
  if (options_.hierarchy == HierarchyKind::kTruss) {
    const EdgeIndexer& eidx = Edges();
    const TrussDecomposition& td = Trussness();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "truss.construction");
    forest_ = options_.algo == EngineAlgo::kNaive
                  ? NaiveTrussHierarchy(*graph_, eidx, td)
                  : BuildTrussHierarchy(*graph_, eidx, td);
    stage.AddCounter("nodes", forest_->NumNodes());
    return *forest_;
  }
  if (options_.hierarchy == HierarchyKind::kNucleus) {
    const EdgeIndexer& eidx = Edges();
    const TriangleIndexer& tidx = Triangles();
    const NucleusDecomposition& nd = NucleusTheta();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    ScopedStage stage(sink(), "nucleus.construction");
    forest_ = options_.algo == EngineAlgo::kNaive
                  ? NaiveNucleusHierarchy(*graph_, eidx, tidx, nd)
                  : BuildNucleusHierarchy(*graph_, eidx, tidx, nd);
    stage.AddCounter("nodes", forest_->NumNodes());
    return *forest_;
  }
  {
    const CoreDecomposition& cd = Coreness();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    switch (options_.algo) {
      case EngineAlgo::kPhcd:
        forest_ = PhcdBuild(*graph_, cd, sink());
        break;
      case EngineAlgo::kLcps:
        forest_ = LcpsBuild(*graph_, cd, sink());
        break;
      case EngineAlgo::kNaive: {
        // The oracle builder has no sink parameter; time it here.
        ScopedStage stage(sink(), "construction");
        forest_ = NaiveHcdBuild(*graph_, cd);
        stage.AddCounter("nodes", forest_->NumNodes());
        break;
      }
    }
  }
  return *forest_;
}

const FlatHcdIndex& HcdEngine::Flat() {
  if (flat_ == nullptr) {
    const HcdForest& forest = Forest();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    switch (options_.hierarchy) {
      case HierarchyKind::kCore: {
        ScopedStage stage(sink(), "construction.freeze");
        flat_ = std::make_shared<const FlatHcdIndex>(Freeze(forest));
        stage.AddCounter("nodes", flat_->NumNodes());
        break;
      }
      case HierarchyKind::kTruss: {
        ScopedStage stage(sink(), "truss.construction.freeze");
        flat_ = std::make_shared<const FlatHcdIndex>(
            FreezeTruss(*graph_, *eidx_, forest));
        stage.AddCounter("nodes", flat_->NumNodes());
        break;
      }
      case HierarchyKind::kNucleus: {
        ScopedStage stage(sink(), "nucleus.construction.freeze");
        flat_ = std::make_shared<const FlatHcdIndex>(
            FreezeNucleus(*graph_, *tidx_, forest));
        stage.AddCounter("nodes", flat_->NumNodes());
        break;
      }
    }
  }
  return *flat_;
}

Status HcdEngine::AdoptFlat(std::shared_ptr<const FlatHcdIndex> flat) {
  if (flat == nullptr) {
    return Status::InvalidArgument("AdoptFlat: null index");
  }
  if (flat_ != nullptr) {
    return Status::InvalidArgument(
        "AdoptFlat: a flat index is already cached; adopt before the first "
        "Flat() call");
  }
  if (flat->kind() != options_.hierarchy) {
    return Status::InvalidArgument(
        std::string("AdoptFlat: snapshot kind ") +
        HierarchyKindName(flat->kind()) + " does not match engine hierarchy " +
        HierarchyKindName(options_.hierarchy));
  }
  const VertexId index_graph_vertices = flat->kind() == HierarchyKind::kCore
                                            ? flat->NumVertices()
                                            : flat->NumGraphVertices();
  if (index_graph_vertices != graph_->NumVertices()) {
    return Status::InvalidArgument(
        "AdoptFlat: snapshot covers " + std::to_string(index_graph_vertices) +
        " graph vertices but the graph has " +
        std::to_string(graph_->NumVertices()));
  }
  flat_ = std::move(flat);
  return Status::Ok();
}

const ElementSearchIndex& HcdEngine::ElementSearcher() {
  if (!element_searcher_) {
    HCD_CHECK(options_.hierarchy != HierarchyKind::kCore)
        << "ElementSearcher serves element hierarchies; use Searcher()";
    Flat();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    element_searcher_.emplace(flat_, sink());
  }
  return *element_searcher_;
}

const SnapshotState& HcdEngine::SealedState() {
  if (state_ == nullptr) {
    HCD_CHECK(options_.hierarchy == HierarchyKind::kCore)
        << "snapshot sealing scores core hierarchies; element hierarchies "
           "serve through ElementSearcher()";
    Coreness();
    Flat();
    std::optional<ThreadCountGuard> guard;
    if (options_.threads > 0) guard.emplace(options_.threads);
    // The state shares the engine's refcounted caches — sealing costs no
    // recomputation, no copy, and invalidates no outstanding references.
    // Only a borrowed graph is copied, because the state must own
    // everything it serves (the caller's graph may die first).
    std::shared_ptr<const Graph> graph =
        owned_graph_ != nullptr ? owned_graph_
                                : std::make_shared<const Graph>(*graph_);
    state_ = SnapshotState::Create(std::move(graph), cd_, flat_,
                                   /*epoch=*/0, sink());
  }
  return *state_;
}

const SearchIndex& HcdEngine::Searcher() {
  return SealedState().search_index();
}

QuerySnapshot HcdEngine::Snapshot() {
  SealedState();
  return QuerySnapshot(state_);
}

SearchResult HcdEngine::Search(Metric metric) {
  const SearchHit hit = Snapshot().Search(metric, &workspace_, sink());
  SearchResult result;
  result.best_node = hit.best_node;
  result.best_score = hit.best_score;
  result.scores = workspace_.scores;
  return result;
}

}  // namespace hcd
