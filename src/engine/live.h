#ifndef HCD_ENGINE_LIVE_H_
#define HCD_ENGINE_LIVE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "core/dynamic.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "hcd/rebuild.h"

namespace hcd {

/// Epoch-published holder of the current serve-phase generation: RCU with
/// shared_ptr as the grace period. The writer Publishes a fresh
/// SnapshotState; readers Acquire whatever generation is current. A
/// reader that acquired an old generation keeps serving from it
/// unperturbed — it holds plain shared ownership, never a lock — and the
/// old state is destroyed when its last reader drops it.
///
/// Publication is a mutex-guarded pointer swap plus a lock-free epoch
/// gauge, rather than std::atomic<std::shared_ptr>: libstdc++ implements
/// the latter with a spinlock bit whose relaxed-RMW unlock defeats
/// ThreadSanitizer's happens-before tracking (TSan does not model release
/// sequences through other threads' relaxed RMWs), so every hot-swap test
/// would report spurious races. Acquire()'s critical section is one
/// shared_ptr copy; steady-state readers that want to skip even that use
/// a SnapshotReader, which only touches the mutex when Epoch() moves.
class SnapshotManager {
 public:
  explicit SnapshotManager(std::shared_ptr<const SnapshotState> initial)
      : epoch_(initial->epoch()), state_(std::move(initial)) {}

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// The current generation as a serving view. Callable from any thread
  /// at any time; the lock is held only for the pointer copy, never while
  /// the snapshot is being queried.
  QuerySnapshot Acquire() const { return QuerySnapshot(Current()); }

  /// The current generation's state (e.g. for a writer deriving the next
  /// one).
  std::shared_ptr<const SnapshotState> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// Epoch of the current generation. Lock-free; safe to poll from reader
  /// hot loops.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Swaps in the next generation. Single writer at a time (LiveEngine
  /// serializes its writers); readers may Acquire concurrently.
  void Publish(std::shared_ptr<const SnapshotState> next) {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.store(next->epoch(), std::memory_order_release);
    state_ = std::move(next);
  }

 private:
  std::atomic<uint64_t> epoch_;
  mutable std::mutex mu_;
  std::shared_ptr<const SnapshotState> state_;  ///< guarded by mu_
};

/// A reader's cached handle onto a SnapshotManager. The steady-state path
/// is genuinely lock-free: each Snapshot() call is one atomic epoch load
/// plus a local shared_ptr copy, and the manager's mutex is touched only
/// at generation boundaries (when the epoch gauge moved since the last
/// call). One SnapshotReader per reader thread; not thread-safe itself.
class SnapshotReader {
 public:
  explicit SnapshotReader(const SnapshotManager& manager)
      : manager_(&manager) {}

  /// The freshest generation this reader has observed. May lag the
  /// writer by one publish — exactly the staleness RCU readers already
  /// tolerate mid-query.
  QuerySnapshot Snapshot() {
    const uint64_t epoch = manager_->Epoch();
    if (cached_ == nullptr || epoch != cached_epoch_) {
      cached_ = manager_->Current();
      cached_epoch_ = cached_->epoch();
    }
    return QuerySnapshot(cached_);
  }

  /// Epoch of the generation the last Snapshot() call returned (0 before
  /// the first call). Lets a serving worker key caches / responses off the
  /// generation it actually holds, not the possibly-newer published one.
  uint64_t observed_epoch() const { return cached_epoch_; }

 private:
  const SnapshotManager* manager_;
  std::shared_ptr<const SnapshotState> cached_;
  uint64_t cached_epoch_ = 0;
};

struct LiveEngineOptions {
  /// Options for the initial full build (algo, threads, telemetry).
  EngineOptions engine;
  /// Optional prebuilt core flat index (loaded or mmapped from a snapshot)
  /// adopted into the initial build, skipping hierarchy construction: the
  /// engine still computes coreness over the graph, but the forest build +
  /// freeze are replaced by the snapshot. Must be kCore and cover exactly
  /// the graph's vertices (checked; mismatches abort the constructor). A
  /// mapped index keeps its snapshot file mapped for as long as the initial
  /// generation is referenced; later batches re-freeze into owned storage.
  std::shared_ptr<const FlatHcdIndex> initial_flat;
  /// Dirty-vertex fraction above which a batch re-freezes the whole
  /// hierarchy instead of splicing (see RebuildOptions).
  double full_rebuild_threshold = 0.25;
  /// Degree at which DynamicCoreIndex adjacency flips to hashed.
  uint32_t hash_degree_threshold = DynamicCoreIndex::kDefaultHashDegreeThreshold;
  /// Run the parallel batch schedule (false: one-by-one fallback).
  bool parallel_batches = true;
  /// Cross-check every batch against a from-scratch BZ recomputation
  /// (debug: one full decomposition per batch).
  bool verify_batches = false;
};

/// Everything one ApplyBatch did, for benches and tests.
struct BatchApplyReport {
  uint64_t epoch = 0;  ///< epoch published by this batch (or current, if
                       ///< the batch was a no-op and nothing was published)
  bool published = false;
  bool full_rebuild = false;
  double dirty_fraction = 0.0;
  double apply_seconds = 0.0;     ///< coreness maintenance (ApplyBatch)
  double refreeze_seconds = 0.0;  ///< rebuild plan + splice + search index
  double total_seconds = 0.0;
  BatchStats stats;
};

/// A serving hierarchy over a mutating graph. One writer thread (or
/// several, serialized internally) applies edge batches; any number of
/// reader threads Acquire() snapshots and query them. Each batch runs
/// batch-dynamic coreness maintenance (DynamicCoreIndex::ApplyBatch),
/// re-freezes only the trees the batch touched (PlanRebuild/ApplyRebuild,
/// falling back to a full rebuild past `full_rebuild_threshold`), then
/// publishes the new generation with an incremented epoch.
///
/// Observability: spans "live.apply_batch" > "live.apply" /
/// "live.refreeze" / "live.publish" per batch; with a MetricsRegistry
/// installed, gauge `hcd_snapshot_epoch`, histogram
/// `hcd_batch_apply_seconds` and counter `hcd_subcores_touched_total`.
class LiveEngine {
 public:
  explicit LiveEngine(Graph graph, LiveEngineOptions options = {});

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Current-generation serving view; any thread, any time. Reader hot
  /// loops should prefer a SnapshotReader over manager() — it skips the
  /// manager's brief pointer-copy lock while the epoch is unchanged.
  QuerySnapshot Snapshot() const { return manager_.Acquire(); }

  /// Epoch of the published generation (0 until the first batch lands).
  uint64_t Epoch() const { return manager_.Epoch(); }

  const SnapshotManager& manager() const { return manager_; }

  /// Writer-side view of the maintained graph + coreness. Not synchronized
  /// with ApplyBatch — only meaningful from the (one) writer thread
  /// between batches.
  const DynamicCoreIndex& dynamic() const { return dynamic_; }

  /// Applies one batch end to end: coreness maintenance, incremental
  /// re-freeze, epoch publish. Serialized against concurrent ApplyBatch
  /// calls; readers are never blocked. On a validation error nothing is
  /// published and the writer-side state is unchanged. A batch whose net
  /// effect is empty publishes nothing (the epoch does not advance).
  Status ApplyBatch(std::span<const EdgeUpdate> updates,
                    BatchApplyReport* report = nullptr);

 private:
  LiveEngineOptions options_;
  std::mutex writer_mu_;
  SnapshotManager manager_;
  DynamicCoreIndex dynamic_;  ///< writer-side; guarded by writer_mu_
};

}  // namespace hcd

#endif  // HCD_ENGINE_LIVE_H_
