#include "engine/snapshot.h"

#include <string>
#include <utility>

#include "common/trace.h"

namespace hcd {

std::shared_ptr<const SnapshotState> SnapshotState::Create(
    std::shared_ptr<const Graph> graph,
    std::shared_ptr<const CoreDecomposition> cd,
    std::shared_ptr<const FlatHcdIndex> flat, uint64_t epoch,
    TelemetrySink* sink) {
  // make_shared is off the table because the constructor is private; one
  // extra allocation for the control block is fine.
  return std::shared_ptr<const SnapshotState>(new SnapshotState(
      std::move(graph), std::move(cd), std::move(flat), epoch, sink));
}

SearchHit QuerySnapshot::Search(Metric metric, SearchWorkspace* ws,
                                TelemetrySink* sink,
                                uint64_t trace_id) const {
  // One span per served query, on the serving thread's own timeline, so a
  // trace of a multi-threaded bench shows per-thread query interleaving.
  ScopedSpan span("serve.query");
  if (trace_id != 0) span.AddArg("trace_id", TraceIdHex(trace_id));
  span.AddArg("metric", std::string(MetricName(metric)));
  span.AddArg("epoch", state_->epoch());
  ScopedStage stage(sink, "search.score");
  const SearchHit hit =
      SearchInto(state_->flat(), state_->search_index(), metric, ws);
  stage.AddCounter("nodes", state_->flat().NumNodes());
  span.AddArg("best_node", hit.best_node);
  return hit;
}

SearchResult QuerySnapshot::Search(Metric metric) const {
  SearchWorkspace ws;
  const SearchHit hit = Search(metric, &ws);
  SearchResult result;
  result.best_node = hit.best_node;
  result.best_score = hit.best_score;
  result.scores = std::move(ws.scores);
  return result;
}

}  // namespace hcd
