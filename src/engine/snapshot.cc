#include "engine/snapshot.h"

#include <string>
#include <utility>

#include "common/trace.h"

namespace hcd {

SearchHit QuerySnapshot::Search(Metric metric, SearchWorkspace* ws,
                                TelemetrySink* sink) const {
  // One span per served query, on the serving thread's own timeline, so a
  // trace of a multi-threaded bench shows per-thread query interleaving.
  ScopedSpan span("serve.query");
  span.AddArg("metric", std::string(MetricName(metric)));
  ScopedStage stage(sink, "search.score");
  const SearchHit hit = SearchInto(*flat_, *search_, metric, ws);
  stage.AddCounter("nodes", flat_->NumNodes());
  span.AddArg("best_node", hit.best_node);
  return hit;
}

SearchResult QuerySnapshot::Search(Metric metric) const {
  SearchWorkspace ws;
  const SearchHit hit = Search(metric, &ws);
  SearchResult result;
  result.best_node = hit.best_node;
  result.best_score = hit.best_score;
  result.scores = std::move(ws.scores);
  return result;
}

}  // namespace hcd
