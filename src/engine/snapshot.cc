#include "engine/snapshot.h"

#include <utility>

namespace hcd {

SearchHit QuerySnapshot::Search(Metric metric, SearchWorkspace* ws,
                                TelemetrySink* sink) const {
  ScopedStage stage(sink, "search.score");
  const SearchHit hit = SearchInto(*flat_, *search_, metric, ws);
  stage.AddCounter("nodes", flat_->NumNodes());
  return hit;
}

SearchResult QuerySnapshot::Search(Metric metric) const {
  SearchWorkspace ws;
  const SearchHit hit = Search(metric, &ws);
  SearchResult result;
  result.best_node = hit.best_node;
  result.best_score = hit.best_score;
  result.scores = std::move(ws.scores);
  return result;
}

}  // namespace hcd
