#ifndef HCD_ENGINE_SNAPSHOT_H_
#define HCD_ENGINE_SNAPSHOT_H_

#include <span>

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "search/metrics.h"
#include "search/pbks.h"
#include "search/search_index.h"

namespace hcd {

/// The serve-phase view of one built pipeline: graph + coreness + frozen
/// FlatHcdIndex + eager SearchIndex, every piece immutable. Produced by
/// HcdEngine::Snapshot() after the build phase has finished all query-side
/// stages; from then on any number of worker threads may call Search on one
/// snapshot concurrently, each with its own SearchWorkspace — the same
/// build-once/serve-many shape as an inference server's loaded model.
///
/// A snapshot is a cheaply copyable value (four pointers): copies share the
/// same underlying state, so handing one to each worker costs nothing. The
/// engine that produced it owns that state and must outlive every copy;
/// engine mutators are off-limits while workers hold snapshots (the engine
/// only appends new stages, never invalidates built ones, so taking further
/// snapshots from the orchestrating thread stays safe).
class QuerySnapshot {
 public:
  QuerySnapshot(const Graph& graph, const CoreDecomposition& cd,
                const FlatHcdIndex& flat, const SearchIndex& search)
      : graph_(&graph), cd_(&cd), flat_(&flat), search_(&search) {}

  const Graph& graph() const { return *graph_; }
  const CoreDecomposition& coreness() const { return *cd_; }
  const FlatHcdIndex& flat() const { return *flat_; }
  const SearchIndex& search_index() const { return *search_; }

  /// Hot serve path: scores every tree node under `metric` into
  /// `ws->scores` and returns the best node. No allocation once the
  /// workspace is warm, no shared mutable state — safe to call from many
  /// threads at once. With a sink, records a "search.score" stage (counter:
  /// nodes); concurrent callers must pass a thread-safe sink
  /// (ConcurrentTelemetrySink).
  SearchHit Search(Metric metric, SearchWorkspace* ws,
                   TelemetrySink* sink = nullptr) const;

  /// Allocating convenience wrapper: same scores and best node as the
  /// workspace overload, returned as a self-contained SearchResult.
  SearchResult Search(Metric metric) const;

  /// Vertices of a search hit's k-core: an O(1) view into the frozen
  /// index's preorder vertex array (empty if nothing was found).
  std::span<const VertexId> CoreVertices(TreeNodeId node) const {
    if (node == kInvalidNode) return {};
    return flat_->CoreVertices(node);
  }

 private:
  const Graph* graph_;
  const CoreDecomposition* cd_;
  const FlatHcdIndex* flat_;
  const SearchIndex* search_;
};

}  // namespace hcd

#endif  // HCD_ENGINE_SNAPSHOT_H_
