#ifndef HCD_ENGINE_SNAPSHOT_H_
#define HCD_ENGINE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "search/metrics.h"
#include "search/pbks.h"
#include "search/search_index.h"

namespace hcd {

/// One immutable generation of the serve-phase state: the graph, its core
/// decomposition, the frozen FlatHcdIndex, and the eager SearchIndex. A
/// SnapshotState is reference-counted (std::shared_ptr<const
/// SnapshotState>), so its lifetime is governed by the snapshots that view
/// it, not by the engine that built it: a builder may publish a new
/// generation and be destroyed while in-flight readers finish on the old
/// one. This is the ownership unit the live update path hot-swaps
/// (engine/live.h) — RCU with shared_ptr as the grace period.
///
/// The graph, decomposition and flat index are themselves held through
/// shared_ptr<const T>: a state shares rather than copies the pieces its
/// builder already has, and two generations that agree on a piece (e.g.
/// the graph across a pure re-freeze) can share it too. Only the
/// SearchIndex is per-generation by value, built in place over the other
/// three.
///
/// `epoch` is the generation number: 0 for the state a build-phase
/// HcdEngine publishes, incremented by one for every batch a LiveEngine
/// applies. Results cached against a snapshot stay valid exactly as long
/// as the epoch matches.
class SnapshotState {
 public:
  /// Builds a state from the finished serve-phase pieces (none may be
  /// null). The SearchIndex is constructed in place over them (recording
  /// its "search.preprocess" / "search.primary_*" stages into `sink`), so
  /// the four parts can never disagree about which generation they belong
  /// to.
  static std::shared_ptr<const SnapshotState> Create(
      std::shared_ptr<const Graph> graph,
      std::shared_ptr<const CoreDecomposition> cd,
      std::shared_ptr<const FlatHcdIndex> flat, uint64_t epoch,
      TelemetrySink* sink = nullptr);

  const Graph& graph() const { return *graph_; }
  const CoreDecomposition& coreness() const { return *cd_; }
  const FlatHcdIndex& flat() const { return *flat_; }
  const SearchIndex& search_index() const { return search_; }
  uint64_t epoch() const { return epoch_; }

  /// The shared pieces, for builders deriving the next generation.
  const std::shared_ptr<const Graph>& shared_graph() const { return graph_; }
  const std::shared_ptr<const CoreDecomposition>& shared_coreness() const {
    return cd_;
  }
  const std::shared_ptr<const FlatHcdIndex>& shared_flat() const {
    return flat_;
  }

 private:
  SnapshotState(std::shared_ptr<const Graph> graph,
                std::shared_ptr<const CoreDecomposition> cd,
                std::shared_ptr<const FlatHcdIndex> flat, uint64_t epoch,
                TelemetrySink* sink)
      : graph_(std::move(graph)),
        cd_(std::move(cd)),
        flat_(std::move(flat)),
        epoch_(epoch),
        search_(*graph_, *cd_, *flat_, sink) {}

  const std::shared_ptr<const Graph> graph_;
  const std::shared_ptr<const CoreDecomposition> cd_;
  const std::shared_ptr<const FlatHcdIndex> flat_;
  const uint64_t epoch_;
  const SearchIndex search_;  // last: built over the members above
};

/// The serve-phase view of one built pipeline: a shared-ownership handle on
/// a SnapshotState. Every piece behind it is immutable; any number of
/// worker threads may call Search on one snapshot concurrently, each with
/// its own SearchWorkspace — the same build-once/serve-many shape as an
/// inference server's loaded model.
///
/// A snapshot is a cheaply copyable value (one shared_ptr): copies share
/// the same underlying state and keep it alive. Unlike the pre-refactor
/// raw-pointer snapshot, a QuerySnapshot does NOT require the engine that
/// built it to stay alive: the state is dropped when the last snapshot
/// referencing it is destroyed, which is what makes mutation-while-serving
/// well defined — a writer publishes a fresh SnapshotState and readers
/// drain off the old one at their own pace.
class QuerySnapshot {
 public:
  explicit QuerySnapshot(std::shared_ptr<const SnapshotState> state)
      : state_(std::move(state)) {}

  const Graph& graph() const { return state_->graph(); }
  const CoreDecomposition& coreness() const { return state_->coreness(); }
  const FlatHcdIndex& flat() const { return state_->flat(); }
  const SearchIndex& search_index() const { return state_->search_index(); }

  /// Generation number of the underlying state (see SnapshotState).
  uint64_t epoch() const { return state_->epoch(); }

  /// The shared state itself, e.g. to hold the graph alive independently
  /// of this snapshot value.
  const std::shared_ptr<const SnapshotState>& state() const { return state_; }

  /// Hot serve path: scores every tree node under `metric` into
  /// `ws->scores` and returns the best node. No allocation once the
  /// workspace is warm, no shared mutable state — safe to call from many
  /// threads at once. With a sink, records a "search.score" stage (counter:
  /// nodes); concurrent callers must pass a thread-safe sink
  /// (ConcurrentTelemetrySink). A nonzero `trace_id` is attached to the
  /// "serve.query" span (as "0x<hex>" text), tying a self-mode bench query
  /// to the same request-scoped id scheme the wire server uses.
  SearchHit Search(Metric metric, SearchWorkspace* ws,
                   TelemetrySink* sink = nullptr, uint64_t trace_id = 0) const;

  /// Allocating convenience wrapper: same scores and best node as the
  /// workspace overload, returned as a self-contained SearchResult.
  SearchResult Search(Metric metric) const;

  /// Vertices of a search hit's k-core: an O(1) view into the frozen
  /// index's preorder vertex array (empty if nothing was found). The span
  /// borrows from the shared state: it stays valid while any copy of this
  /// snapshot (or its state()) is alive, even across a LiveEngine swap.
  std::span<const VertexId> CoreVertices(TreeNodeId node) const {
    if (node == kInvalidNode) return {};
    return state_->flat().CoreVertices(node);
  }

 private:
  std::shared_ptr<const SnapshotState> state_;
};

}  // namespace hcd

#endif  // HCD_ENGINE_SNAPSHOT_H_
