#include "nucleus/triangle_index.h"

#include <algorithm>

#include "common/check.h"

namespace hcd {
namespace {

inline bool DegreeLess(const Graph& g, VertexId a, VertexId b) {
  const VertexId da = g.Degree(a);
  const VertexId db = g.Degree(b);
  return da < db || (da == db && a < b);
}

}  // namespace

TriIdx TriangleIndexer::IdOf(EdgeIdx e, VertexId w) const {
  const auto begin = edge_tri.begin() + edge_tri_start[e];
  const auto end = edge_tri.begin() + edge_tri_start[e + 1];
  auto it = std::lower_bound(
      begin, end, w,
      [](const std::pair<VertexId, TriIdx>& entry, VertexId key) {
        return entry.first < key;
      });
  if (it == end || it->first != w) return kInvalidTriangle;
  return it->second;
}

TriangleIndexer BuildTriangleIndexer(const Graph& graph,
                                     const EdgeIndexer& eidx) {
  const VertexId n = graph.NumVertices();
  TriangleIndexer tidx;

  // Enumerate each triangle once via the degree order (w < u < v).
  std::vector<EdgeIndex> mark(n, 0);  // 1 + position of w in N(v)
  for (VertexId v = 0; v < n; ++v) {
    const auto nv = graph.Neighbors(v);
    for (size_t i = 0; i < nv.size(); ++i) mark[nv[i]] = i + 1;
    for (size_t i = 0; i < nv.size(); ++i) {
      const VertexId u = nv[i];
      if (!DegreeLess(graph, u, v)) continue;
      for (VertexId w : graph.Neighbors(u)) {
        if (mark[w] && DegreeLess(graph, w, u)) {
          std::array<VertexId, 3> tri = {v, u, w};
          std::sort(tri.begin(), tri.end());
          tidx.triangles.push_back(tri);
          HCD_CHECK_LT(tidx.triangles.size(),
                       static_cast<size_t>(kInvalidTriangle));
        }
      }
    }
    for (VertexId u : nv) mark[u] = 0;
  }

  // Per-edge membership lists by counting sort over edge ids.
  const EdgeIdx m = eidx.NumEdges();
  const TriIdx num_tris = tidx.NumTriangles();
  tidx.edge_tri_start.assign(static_cast<size_t>(m) + 1, 0);
  auto edge_of = [&](VertexId a, VertexId b) {
    EdgeIdx e = eidx.IdOf(graph, a, b);
    HCD_DCHECK(e != kInvalidEdge);
    return e;
  };
  std::vector<std::array<EdgeIdx, 3>> tri_edges(num_tris);
  for (TriIdx t = 0; t < num_tris; ++t) {
    const auto& [a, b, c] = tidx.triangles[t];
    tri_edges[t] = {edge_of(a, b), edge_of(a, c), edge_of(b, c)};
    for (EdgeIdx e : tri_edges[t]) ++tidx.edge_tri_start[e + 1];
  }
  for (EdgeIdx e = 0; e < m; ++e) {
    tidx.edge_tri_start[e + 1] += tidx.edge_tri_start[e];
  }
  tidx.edge_tri.resize(static_cast<size_t>(num_tris) * 3);
  std::vector<uint64_t> cursor(tidx.edge_tri_start.begin(),
                               tidx.edge_tri_start.end() - 1);
  for (TriIdx t = 0; t < num_tris; ++t) {
    const auto& [a, b, c] = tidx.triangles[t];
    tidx.edge_tri[cursor[tri_edges[t][0]]++] = {c, t};  // edge (a,b) + c
    tidx.edge_tri[cursor[tri_edges[t][1]]++] = {b, t};  // edge (a,c) + b
    tidx.edge_tri[cursor[tri_edges[t][2]]++] = {a, t};  // edge (b,c) + a
  }
  // Sort each edge's slice by third vertex for binary search.
  for (EdgeIdx e = 0; e < m; ++e) {
    std::sort(tidx.edge_tri.begin() + tidx.edge_tri_start[e],
              tidx.edge_tri.begin() + tidx.edge_tri_start[e + 1]);
  }
  return tidx;
}

}  // namespace hcd
