#include "nucleus/nucleus_hierarchy.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "parallel/omp_utils.h"
#include "parallel/wf_union_find.h"

namespace hcd {
namespace {

struct TriangleRank {
  std::vector<TriIdx> rank;
  std::vector<TriIdx> sorted;
  std::vector<TriIdx> shell_start;  // size k_max + 2
};

TriangleRank ComputeTriangleRank(const NucleusDecomposition& nd) {
  const TriIdx num_tris = static_cast<TriIdx>(nd.theta.size());
  TriangleRank tr;
  tr.rank.resize(num_tris);
  tr.sorted.resize(num_tris);
  tr.shell_start.assign(nd.k_max + 2, 0);
  for (TriIdx t = 0; t < num_tris; ++t) ++tr.shell_start[nd.theta[t] + 1];
  for (size_t k = 1; k < tr.shell_start.size(); ++k) {
    tr.shell_start[k] += tr.shell_start[k - 1];
  }
  std::vector<TriIdx> cursor(tr.shell_start.begin(), tr.shell_start.end() - 1);
  for (TriIdx t = 0; t < num_tris; ++t) {
    const TriIdx p = cursor[nd.theta[t]]++;
    tr.sorted[p] = t;
    tr.rank[t] = p;
  }
  return tr;
}

/// fn(x, t1, t2, t3) over every 4-clique of `tri` (duplicated from the
/// decomposition translation unit on purpose: the hierarchy's filter and
/// the peeling's differ, and sharing would couple their hot loops).
template <typename Fn>
void ForEachFourClique(const Graph& graph, const EdgeIndexer& eidx,
                       const TriangleIndexer& tidx, TriIdx tri, Fn&& fn) {
  const auto [a, b, c] = tidx.triangles[tri];
  const EdgeIdx e_ab = eidx.IdOf(graph, a, b);
  const EdgeIdx e_ac = eidx.IdOf(graph, a, c);
  const EdgeIdx e_bc = eidx.IdOf(graph, b, c);
  VertexId p = a;
  VertexId q = b;
  VertexId r = c;
  if (graph.Degree(q) < graph.Degree(p)) std::swap(p, q);
  if (graph.Degree(r) < graph.Degree(p)) std::swap(p, r);
  for (VertexId x : graph.Neighbors(p)) {
    if (x == a || x == b || x == c) continue;
    if (!graph.HasEdge(q, x) || !graph.HasEdge(r, x)) continue;
    fn(x, tidx.IdOf(e_ab, x), tidx.IdOf(e_ac, x), tidx.IdOf(e_bc, x));
  }
}

}  // namespace

NucleusForest BuildNucleusHierarchy(const Graph& graph,
                                    const EdgeIndexer& eidx,
                                    const TriangleIndexer& tidx,
                                    const NucleusDecomposition& nd) {
  const TriIdx num_tris = tidx.NumTriangles();
  NucleusForest forest(num_tris);
  if (num_tris == 0) return forest;

  const TriangleRank tr = ComputeTriangleRank(nd);
  WaitFreeUnionFind uf(num_tris, tr.rank.data());
  const auto& theta = nd.theta;

  std::unique_ptr<std::atomic<bool>[]> in_kpc(new std::atomic<bool>[num_tris]);
  for (TriIdx t = 0; t < num_tris; ++t) {
    in_kpc[t].store(false, std::memory_order_relaxed);
  }

  std::vector<TreeNodeId> parent_of;
  std::vector<TriIdx> kpc_pivot;
  std::vector<TriIdx> pivot_of;
  const int pmax = MaxThreads();
  std::vector<std::vector<TriIdx>> local_kpc(pmax);

  for (int64_t k = nd.k_max; k >= 0; --k) {
    const TriIdx begin = tr.shell_start[k];
    const TriIdx end = tr.shell_start[k + 1];
    if (begin == end) continue;
    const uint32_t ck = static_cast<uint32_t>(k);

    // Step 1: capture pivots of adjacent higher-theta components (through
    // 4-cliques that are valid at level k).
    kpc_pivot.clear();
#pragma omp parallel num_threads(pmax)
    {
      auto& mine = local_kpc[ThreadId()];
      mine.clear();
#pragma omp for schedule(dynamic, 64)
      for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
        const TriIdx t = tr.sorted[i];
        ForEachFourClique(
            graph, eidx, tidx, t,
            [&](VertexId, TriIdx t1, TriIdx t2, TriIdx t3) {
              if (theta[t1] < ck || theta[t2] < ck || theta[t3] < ck) return;
              for (TriIdx other : {t1, t2, t3}) {
                if (theta[other] > ck) {
                  const TriIdx pvt = uf.GetPivot(other);
                  if (!in_kpc[pvt].exchange(true)) mine.push_back(pvt);
                }
              }
            });
      }
    }
    for (auto& mine : local_kpc) {
      kpc_pivot.insert(kpc_pivot.end(), mine.begin(), mine.end());
    }

    // Step 2: union the shell through its valid 4-cliques.
#pragma omp parallel for schedule(dynamic, 64)
    for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
      const TriIdx t = tr.sorted[i];
      ForEachFourClique(graph, eidx, tidx, t,
                        [&](VertexId, TriIdx t1, TriIdx t2, TriIdx t3) {
                          if (theta[t1] < ck || theta[t2] < ck ||
                              theta[t3] < ck) {
                            return;
                          }
                          uf.Union(t, t1);
                          uf.Union(t, t2);
                          uf.Union(t, t3);
                        });
    }

    // Step 3: group the shell by pivot.
    pivot_of.resize(end - begin);
#pragma omp parallel for schedule(static)
    for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
      pivot_of[i - begin] = uf.GetPivot(tr.sorted[i]);
    }
    for (TriIdx i = begin; i < end; ++i) {
      if (pivot_of[i - begin] == tr.sorted[i]) {
        TreeNodeId node = forest.NewNode(ck);
        parent_of.push_back(kInvalidNode);
        forest.AddVertex(node, tr.sorted[i]);
      }
    }
    for (TriIdx i = begin; i < end; ++i) {
      if (pivot_of[i - begin] != tr.sorted[i]) {
        forest.AddVertex(forest.Tid(pivot_of[i - begin]), tr.sorted[i]);
      }
    }

    // Step 4: parents of the captured components.
#pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < static_cast<int64_t>(kpc_pivot.size()); ++i) {
      const TriIdx child_pivot = kpc_pivot[i];
      const TriIdx new_pivot = uf.GetPivot(child_pivot);
      HCD_DCHECK(new_pivot != child_pivot);
      parent_of[forest.Tid(child_pivot)] = forest.Tid(new_pivot);
      in_kpc[child_pivot].store(false, std::memory_order_relaxed);
    }
  }

  for (TreeNodeId node = 0; node < forest.NumNodes(); ++node) {
    if (parent_of[node] != kInvalidNode) {
      forest.SetParent(node, parent_of[node]);
    }
  }
  forest.BuildChildren();
  return forest;
}

NucleusForest NaiveNucleusHierarchy(const Graph& graph,
                                    const EdgeIndexer& eidx,
                                    const TriangleIndexer& tidx,
                                    const NucleusDecomposition& nd) {
  const TriIdx num_tris = tidx.NumTriangles();
  NucleusForest forest(num_tris);
  if (num_tris == 0) return forest;

  const TriangleRank tr = ComputeTriangleRank(nd);

  struct Pending {
    TreeNodeId node;
    TriIdx rep;
  };
  std::vector<Pending> parentless;
  std::vector<int64_t> stamp(num_tris, -1);
  std::vector<TriIdx> comp_id(num_tris, 0);
  std::vector<TriIdx> stack;

  for (int64_t k = nd.k_max; k >= 0; --k) {
    const uint32_t ck = static_cast<uint32_t>(k);
    // Components over triangles with theta >= k, adjacency through
    // 4-cliques valid at level k.
    TriIdx num_comps = 0;
    for (TriIdx i = tr.shell_start[k]; i < num_tris; ++i) {
      const TriIdx src = tr.sorted[i];
      if (stamp[src] == k) continue;
      const TriIdx comp = num_comps++;
      stamp[src] = k;
      comp_id[src] = comp;
      stack.assign(1, src);
      while (!stack.empty()) {
        const TriIdx t = stack.back();
        stack.pop_back();
        ForEachFourClique(graph, eidx, tidx, t,
                          [&](VertexId, TriIdx t1, TriIdx t2, TriIdx t3) {
                            if (nd.theta[t1] < ck || nd.theta[t2] < ck ||
                                nd.theta[t3] < ck) {
                              return;
                            }
                            for (TriIdx other : {t1, t2, t3}) {
                              if (stamp[other] != k) {
                                stamp[other] = k;
                                comp_id[other] = comp;
                                stack.push_back(other);
                              }
                            }
                          });
      }
    }

    std::vector<TreeNodeId> comp_node(num_comps, kInvalidNode);
    for (TriIdx i = tr.shell_start[k]; i < tr.shell_start[k + 1]; ++i) {
      const TriIdx t = tr.sorted[i];
      TreeNodeId& node = comp_node[comp_id[t]];
      if (node == kInvalidNode) node = forest.NewNode(ck);
      forest.AddVertex(node, t);
    }

    std::vector<Pending> still_pending;
    for (const Pending& p : parentless) {
      HCD_DCHECK(stamp[p.rep] == k);
      TreeNodeId node = comp_node[comp_id[p.rep]];
      if (node != kInvalidNode) {
        forest.SetParent(p.node, node);
      } else {
        still_pending.push_back(p);
      }
    }
    parentless = std::move(still_pending);
    for (TriIdx c = 0; c < num_comps; ++c) {
      if (comp_node[c] != kInvalidNode) {
        parentless.push_back(
            {comp_node[c], forest.Vertices(comp_node[c]).front()});
      }
    }
  }

  forest.BuildChildren();
  return forest;
}

FlatHcdIndex FreezeNucleus(const Graph& graph, const TriangleIndexer& tidx,
                           const NucleusForest& forest) {
  HCD_CHECK_EQ(forest.NumVertices(), tidx.NumTriangles())
      << "nucleus forest elements must be the indexer's triangles";
  std::vector<VertexId> members;
  members.reserve(3 * tidx.triangles.size());
  for (const auto& corners : tidx.triangles) {
    members.push_back(corners[0]);
    members.push_back(corners[1]);
    members.push_back(corners[2]);
  }
  return Freeze(forest, HierarchyKind::kNucleus, members, graph.NumVertices());
}

namespace {

NucleusCommunity CommunityFromTriangles(std::span<const VertexId> tris,
                                        auto&& corners_of) {
  NucleusCommunity out;
  out.num_triangles = tris.size();
  out.vertices.reserve(3 * tris.size());
  for (const VertexId tri : tris) {
    for (const VertexId v : corners_of(tri)) out.vertices.push_back(v);
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  out.vertices.erase(std::unique(out.vertices.begin(), out.vertices.end()),
                     out.vertices.end());
  return out;
}

}  // namespace

NucleusCommunity NucleusCommunityOf(const TriangleIndexer& tidx,
                                    const NucleusForest& forest,
                                    TreeNodeId node) {
  const std::vector<VertexId> tris = forest.CoreVertices(node);  // tri ids
  return CommunityFromTriangles(tris, [&](VertexId tri) {
    return std::span<const VertexId>(tidx.triangles[tri]);
  });
}

NucleusCommunity NucleusCommunityOf(const FlatHcdIndex& flat,
                                    TreeNodeId node) {
  HCD_CHECK(flat.kind() == HierarchyKind::kNucleus)
      << "frozen nucleus queries need a nucleus-kind index";
  return CommunityFromTriangles(
      flat.CoreVertices(node),
      [&](VertexId tri) { return flat.ElementMembers(tri); });
}

}  // namespace hcd
