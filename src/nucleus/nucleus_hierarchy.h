#ifndef HCD_NUCLEUS_NUCLEUS_HIERARCHY_H_
#define HCD_NUCLEUS_NUCLEUS_HIERARCHY_H_

#include <vector>

#include "hcd/flat_index.h"
#include "hcd/forest.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/triangle_index.h"
#include "truss/edge_index.h"

namespace hcd {

/// Hierarchical (3,4)-nucleus decomposition. The paper's related work
/// observes that no parallel algorithm existed for nucleus hierarchy
/// construction; this is the PHCD paradigm lifted once more — elements are
/// triangles, connectivity comes from shared 4-cliques, shells are added
/// in descending nucleus number with the pivot union-find, and parents are
/// recovered exactly as in Algorithm 2's Steps 1-4.
///
/// Reuses HcdForest with elements = TriIdx.
using NucleusForest = HcdForest;

/// Parallel nucleus hierarchy construction. O(sum over triangles of
/// 4-clique enumerations * alpha) after the decomposition.
NucleusForest BuildNucleusHierarchy(const Graph& graph,
                                    const EdgeIndexer& eidx,
                                    const TriangleIndexer& tidx,
                                    const NucleusDecomposition& nd);

/// Definition-driven oracle (per-level BFS over the 4-clique adjacency of
/// alive triangles); tests only.
NucleusForest NaiveNucleusHierarchy(const Graph& graph,
                                    const EdgeIndexer& eidx,
                                    const TriangleIndexer& tidx,
                                    const NucleusDecomposition& nd);

// --- frozen (serve-phase) forms --------------------------------------------

/// Kind-tagged freeze of a nucleus forest: HierarchyKind::kNucleus with
/// the triangle -> corner materialization (TriangleIndexer::triangles
/// flattened, corners ascending). Serves every flat-index query and
/// snapshots as the v3 format.
FlatHcdIndex FreezeNucleus(const Graph& graph, const TriangleIndexer& tidx,
                           const NucleusForest& forest);

/// A nucleus community as a vertex set: the distinct corners of the
/// subtree's triangles, plus the triangle count. Density is the triangle
/// analogue of average degree (triangle-slots per distinct vertex).
struct NucleusCommunity {
  std::vector<VertexId> vertices;
  uint64_t num_triangles = 0;
  double Density() const {
    return vertices.empty() ? 0.0
                            : 3.0 * static_cast<double>(num_triangles) /
                                  static_cast<double>(vertices.size());
  }
};

/// Builder-forest community-of (DFS + allocation per call); test oracle
/// for the frozen overload.
NucleusCommunity NucleusCommunityOf(const TriangleIndexer& tidx,
                                    const NucleusForest& forest,
                                    TreeNodeId node);

/// Frozen-index community-of: O(answer) from the subtree's triangle span
/// and the embedded corner materialization.
NucleusCommunity NucleusCommunityOf(const FlatHcdIndex& flat, TreeNodeId node);

}  // namespace hcd

#endif  // HCD_NUCLEUS_NUCLEUS_HIERARCHY_H_
