#ifndef HCD_NUCLEUS_NUCLEUS_HIERARCHY_H_
#define HCD_NUCLEUS_NUCLEUS_HIERARCHY_H_

#include "hcd/forest.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/triangle_index.h"
#include "truss/edge_index.h"

namespace hcd {

/// Hierarchical (3,4)-nucleus decomposition. The paper's related work
/// observes that no parallel algorithm existed for nucleus hierarchy
/// construction; this is the PHCD paradigm lifted once more — elements are
/// triangles, connectivity comes from shared 4-cliques, shells are added
/// in descending nucleus number with the pivot union-find, and parents are
/// recovered exactly as in Algorithm 2's Steps 1-4.
///
/// Reuses HcdForest with elements = TriIdx.
using NucleusForest = HcdForest;

/// Parallel nucleus hierarchy construction. O(sum over triangles of
/// 4-clique enumerations * alpha) after the decomposition.
NucleusForest BuildNucleusHierarchy(const Graph& graph,
                                    const EdgeIndexer& eidx,
                                    const TriangleIndexer& tidx,
                                    const NucleusDecomposition& nd);

/// Definition-driven oracle (per-level BFS over the 4-clique adjacency of
/// alive triangles); tests only.
NucleusForest NaiveNucleusHierarchy(const Graph& graph,
                                    const EdgeIndexer& eidx,
                                    const TriangleIndexer& tidx,
                                    const NucleusDecomposition& nd);

}  // namespace hcd

#endif  // HCD_NUCLEUS_NUCLEUS_HIERARCHY_H_
