#include "nucleus/nucleus_decomposition.h"

#include <algorithm>

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {
namespace {

/// Invokes fn(x, t1, t2, t3) for every 4-clique {a,b,c,x} over triangle
/// tri = (a,b,c), where t1..t3 are the ids of the three other triangles.
template <typename Fn>
void ForEachFourClique(const Graph& graph, const EdgeIndexer& eidx,
                       const TriangleIndexer& tidx, TriIdx tri, Fn&& fn) {
  const auto [a, b, c] = tidx.triangles[tri];
  const EdgeIdx e_ab = eidx.IdOf(graph, a, b);
  const EdgeIdx e_ac = eidx.IdOf(graph, a, c);
  const EdgeIdx e_bc = eidx.IdOf(graph, b, c);
  // Scan the lowest-degree corner's adjacency.
  VertexId p = a;
  VertexId q = b;
  VertexId r = c;
  if (graph.Degree(q) < graph.Degree(p)) std::swap(p, q);
  if (graph.Degree(r) < graph.Degree(p)) std::swap(p, r);
  for (VertexId x : graph.Neighbors(p)) {
    if (x == q || x == r || x == a || x == b || x == c) continue;
    if (!graph.HasEdge(q, x) || !graph.HasEdge(r, x)) continue;
    const TriIdx t1 = tidx.IdOf(e_ab, x);
    const TriIdx t2 = tidx.IdOf(e_ac, x);
    const TriIdx t3 = tidx.IdOf(e_bc, x);
    HCD_DCHECK(t1 != kInvalidTriangle);
    HCD_DCHECK(t2 != kInvalidTriangle);
    HCD_DCHECK(t3 != kInvalidTriangle);
    fn(x, t1, t2, t3);
  }
}

}  // namespace

std::vector<uint32_t> ComputeTriangleSupports(const Graph& graph,
                                              const EdgeIndexer& eidx,
                                              const TriangleIndexer& tidx) {
  (void)eidx;
  const TriIdx num_tris = tidx.NumTriangles();
  std::vector<uint32_t> sup(num_tris, 0);
#pragma omp parallel for schedule(dynamic, 64)
  for (int64_t ti = 0; ti < static_cast<int64_t>(num_tris); ++ti) {
    const auto [a, b, c] = tidx.triangles[static_cast<TriIdx>(ti)];
    VertexId p = a;
    VertexId q = b;
    VertexId r = c;
    if (graph.Degree(q) < graph.Degree(p)) std::swap(p, q);
    if (graph.Degree(r) < graph.Degree(p)) std::swap(p, r);
    uint32_t s = 0;
    for (VertexId x : graph.Neighbors(p)) {
      if (x == a || x == b || x == c) continue;
      s += graph.HasEdge(q, x) && graph.HasEdge(r, x);
    }
    sup[ti] = s;
  }
  return sup;
}

NucleusDecomposition PeelNucleusDecomposition(const Graph& graph,
                                              const EdgeIndexer& eidx,
                                              const TriangleIndexer& tidx) {
  const TriIdx num_tris = tidx.NumTriangles();
  NucleusDecomposition nd;
  nd.theta.assign(num_tris, 0);
  if (num_tris == 0) return nd;

  std::vector<uint32_t> sup = ComputeTriangleSupports(graph, eidx, tidx);
  const uint32_t max_sup = *std::max_element(sup.begin(), sup.end());

  std::vector<TriIdx> bin(max_sup + 2, 0);
  for (TriIdx t = 0; t < num_tris; ++t) ++bin[sup[t] + 1];
  for (size_t s = 1; s < bin.size(); ++s) bin[s] += bin[s - 1];
  std::vector<TriIdx> vert(num_tris);
  std::vector<TriIdx> pos(num_tris);
  {
    std::vector<TriIdx> cursor(bin.begin(), bin.end() - 1);
    for (TriIdx t = 0; t < num_tris; ++t) {
      pos[t] = cursor[sup[t]];
      vert[pos[t]] = t;
      ++cursor[sup[t]];
    }
  }

  auto lower_support = [&](TriIdx t, uint32_t floor_s) {
    if (sup[t] <= floor_s) return;
    const uint32_t st = sup[t];
    const TriIdx pt = pos[t];
    const TriIdx pw = bin[st];
    const TriIdx w = vert[pw];
    if (t != w) {
      std::swap(vert[pt], vert[pw]);
      pos[t] = pw;
      pos[w] = pt;
    }
    ++bin[st];
    --sup[t];
  };

  std::vector<bool> alive(num_tris, true);
  for (TriIdx i = 0; i < num_tris; ++i) {
    const TriIdx t = vert[i];
    const uint32_t s = sup[t];
    nd.theta[t] = s;
    nd.k_max = std::max(nd.k_max, s);
    alive[t] = false;
    ForEachFourClique(graph, eidx, tidx, t,
                      [&](VertexId, TriIdx t1, TriIdx t2, TriIdx t3) {
                        if (alive[t1] && alive[t2] && alive[t3]) {
                          lower_support(t1, s);
                          lower_support(t2, s);
                          lower_support(t3, s);
                        }
                      });
  }
  return nd;
}

NucleusDecomposition NaiveNucleusDecomposition(const Graph& graph,
                                               const EdgeIndexer& eidx,
                                               const TriangleIndexer& tidx) {
  const TriIdx num_tris = tidx.NumTriangles();
  NucleusDecomposition nd;
  nd.theta.assign(num_tris, 0);
  if (num_tris == 0) return nd;

  std::vector<bool> alive(num_tris, true);
  TriIdx remaining = num_tris;

  auto alive_support = [&](TriIdx t) {
    uint32_t s = 0;
    ForEachFourClique(graph, eidx, tidx, t,
                      [&](VertexId, TriIdx t1, TriIdx t2, TriIdx t3) {
                        s += alive[t1] && alive[t2] && alive[t3];
                      });
    return s;
  };

  uint32_t k = 1;
  while (remaining > 0) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (TriIdx t = 0; t < num_tris; ++t) {
        if (alive[t] && alive_support(t) < k) {
          alive[t] = false;
          --remaining;
          removed_any = true;
        }
      }
    }
    for (TriIdx t = 0; t < num_tris; ++t) {
      if (alive[t]) nd.theta[t] = k;
    }
    if (remaining > 0) nd.k_max = k;
    ++k;
  }
  return nd;
}

}  // namespace hcd
