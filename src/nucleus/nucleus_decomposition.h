#ifndef HCD_NUCLEUS_NUCLEUS_DECOMPOSITION_H_
#define HCD_NUCLEUS_NUCLEUS_DECOMPOSITION_H_

#include <vector>

#include "graph/graph.h"
#include "nucleus/triangle_index.h"
#include "truss/edge_index.h"

namespace hcd {

/// (3,4)-nucleus decomposition (Sariyuce & Pinar, cited by the paper's
/// related work): theta[t] is the largest k such that triangle t belongs to
/// a k-(3,4)-nucleus — a maximal set of triangles, connected through
/// common 4-cliques, in which every triangle participates in at least k
/// 4-cliques.
struct NucleusDecomposition {
  std::vector<uint32_t> theta;  ///< per TriIdx
  uint32_t k_max = 0;
};

/// 4-clique count per triangle (its support), computed in parallel;
/// O(sum over triangles of min-degree * log).
std::vector<uint32_t> ComputeTriangleSupports(const Graph& graph,
                                              const EdgeIndexer& eidx,
                                              const TriangleIndexer& tidx);

/// Nucleus decomposition by support peeling (the k-truss algorithm lifted
/// one level: triangles peeled in increasing 4-clique support).
NucleusDecomposition PeelNucleusDecomposition(const Graph& graph,
                                              const EdgeIndexer& eidx,
                                              const TriangleIndexer& tidx);

/// Definition-driven oracle (repeated stripping per k, supports recomputed
/// from scratch); tests only.
NucleusDecomposition NaiveNucleusDecomposition(const Graph& graph,
                                               const EdgeIndexer& eidx,
                                               const TriangleIndexer& tidx);

}  // namespace hcd

#endif  // HCD_NUCLEUS_NUCLEUS_DECOMPOSITION_H_
