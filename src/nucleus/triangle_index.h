#ifndef HCD_NUCLEUS_TRIANGLE_INDEX_H_
#define HCD_NUCLEUS_TRIANGLE_INDEX_H_

#include <array>
#include <vector>

#include "graph/graph.h"
#include "truss/edge_index.h"

namespace hcd {

/// Identifier of a triangle: 0..T-1 in enumeration order.
using TriIdx = uint32_t;
inline constexpr TriIdx kInvalidTriangle = 0xFFFFFFFFu;

/// Enumerates and indexes all triangles of a graph: the substrate for
/// (3,4)-nucleus decomposition, where triangles play the role vertices
/// play for k-core and edges for k-truss.
struct TriangleIndexer {
  /// Vertices of each triangle, ascending.
  std::vector<std::array<VertexId, 3>> triangles;
  /// Per-edge slices of (third vertex, triangle id), sorted by third
  /// vertex; 3 entries per triangle overall.
  std::vector<uint64_t> edge_tri_start;                    // size m+1
  std::vector<std::pair<VertexId, TriIdx>> edge_tri;       // size 3T

  TriIdx NumTriangles() const {
    return static_cast<TriIdx>(triangles.size());
  }

  /// Triangle id completing edge `e` with vertex `w`, or kInvalidTriangle.
  /// O(log #triangles on e).
  TriIdx IdOf(EdgeIdx e, VertexId w) const;
};

/// Builds the indexer; O(m^1.5) enumeration plus a counting sort of the
/// per-edge membership lists. Requires the triangle count to fit uint32.
TriangleIndexer BuildTriangleIndexer(const Graph& graph,
                                     const EdgeIndexer& eidx);

}  // namespace hcd

#endif  // HCD_NUCLEUS_TRIANGLE_INDEX_H_
