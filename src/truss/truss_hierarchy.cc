#include "truss/truss_hierarchy.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "parallel/omp_utils.h"
#include "parallel/union_find.h"
#include "parallel/wf_union_find.h"

namespace hcd {
namespace {

/// Edge rank (the truss analogue of Definition 4): ascending (trussness,
/// edge id). Returns rank positions, the sorted order, and per-trussness
/// shell boundaries.
struct EdgeRank {
  std::vector<EdgeIdx> rank;
  std::vector<EdgeIdx> sorted;
  std::vector<EdgeIdx> shell_start;  // size k_max + 2
};

EdgeRank ComputeEdgeRank(const TrussDecomposition& td) {
  const EdgeIdx m = static_cast<EdgeIdx>(td.trussness.size());
  EdgeRank er;
  er.rank.resize(m);
  er.sorted.resize(m);
  er.shell_start.assign(td.k_max + 2, 0);
  for (EdgeIdx e = 0; e < m; ++e) ++er.shell_start[td.trussness[e] + 1];
  for (size_t k = 1; k < er.shell_start.size(); ++k) {
    er.shell_start[k] += er.shell_start[k - 1];
  }
  std::vector<EdgeIdx> cursor(er.shell_start.begin(), er.shell_start.end() - 1);
  for (EdgeIdx e = 0; e < m; ++e) {
    const EdgeIdx p = cursor[td.trussness[e]]++;
    er.sorted[p] = e;
    er.rank[e] = p;
  }
  return er;
}

}  // namespace

TrussForest BuildTrussHierarchy(const Graph& graph, const EdgeIndexer& index,
                                const TrussDecomposition& td) {
  const EdgeIdx m = index.NumEdges();
  const VertexId n = graph.NumVertices();
  TrussForest forest(m);
  if (m == 0) return forest;

  const EdgeRank er = ComputeEdgeRank(td);
  WaitFreeUnionFind uf(m, er.rank.data());

  // anchor[x]: some already-added edge incident to vertex x (all such edges
  // are mutually connected through x).
  std::unique_ptr<std::atomic<EdgeIdx>[]> anchor(new std::atomic<EdgeIdx>[n]);
  for (VertexId x = 0; x < n; ++x) {
    anchor[x].store(kInvalidEdge, std::memory_order_relaxed);
  }
  std::unique_ptr<std::atomic<bool>[]> in_kpc(new std::atomic<bool>[m]);
  for (EdgeIdx e = 0; e < m; ++e) {
    in_kpc[e].store(false, std::memory_order_relaxed);
  }

  std::vector<TreeNodeId> parent_of;
  std::vector<EdgeIdx> kpc_pivot;
  std::vector<EdgeIdx> pivot_of;
  const int pmax = MaxThreads();
  std::vector<std::vector<EdgeIdx>> local_kpc(pmax);

  for (int64_t k = td.k_max; k >= 2; --k) {
    const EdgeIdx begin = er.shell_start[k];
    const EdgeIdx end = er.shell_start[k + 1];
    if (begin == end) continue;
    const uint32_t ck = static_cast<uint32_t>(k);
    (void)ck;

    // Step 1: capture the pivots of adjacent higher-truss components
    // (anchors are stable: they only change in Step 2).
    kpc_pivot.clear();
#pragma omp parallel num_threads(pmax)
    {
      auto& mine = local_kpc[ThreadId()];
      mine.clear();
#pragma omp for schedule(dynamic, 256)
      for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
        const EdgeIdx e = er.sorted[i];
        const auto [u, v] = index.edges[e];
        for (VertexId x : {u, v}) {
          const EdgeIdx a = anchor[x].load();
          if (a == kInvalidEdge) continue;
          const EdgeIdx pvt = uf.GetPivot(a);
          if (!in_kpc[pvt].exchange(true)) mine.push_back(pvt);
        }
      }
    }
    for (auto& mine : local_kpc) {
      kpc_pivot.insert(kpc_pivot.end(), mine.begin(), mine.end());
    }

    // Step 2: chain each shell edge to its endpoints' anchors.
#pragma omp parallel for schedule(dynamic, 256)
    for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
      const EdgeIdx e = er.sorted[i];
      const auto [u, v] = index.edges[e];
      for (VertexId x : {u, v}) {
        const EdgeIdx old = anchor[x].exchange(e);
        if (old != kInvalidEdge) uf.Union(e, old);
      }
    }

    // Step 3: group the shell into nodes by pivot.
    pivot_of.resize(end - begin);
#pragma omp parallel for schedule(static)
    for (int64_t i = begin; i < static_cast<int64_t>(end); ++i) {
      pivot_of[i - begin] = uf.GetPivot(er.sorted[i]);
    }
    for (EdgeIdx i = begin; i < end; ++i) {
      if (pivot_of[i - begin] == er.sorted[i]) {
        TreeNodeId node = forest.NewNode(static_cast<uint32_t>(k));
        parent_of.push_back(kInvalidNode);
        forest.AddVertex(node, er.sorted[i]);
      }
    }
    for (EdgeIdx i = begin; i < end; ++i) {
      if (pivot_of[i - begin] != er.sorted[i]) {
        forest.AddVertex(forest.Tid(pivot_of[i - begin]), er.sorted[i]);
      }
    }

    // Step 4: parents of the captured components.
#pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < static_cast<int64_t>(kpc_pivot.size()); ++i) {
      const EdgeIdx child_pivot = kpc_pivot[i];
      const EdgeIdx new_pivot = uf.GetPivot(child_pivot);
      HCD_DCHECK(new_pivot != child_pivot);
      parent_of[forest.Tid(child_pivot)] = forest.Tid(new_pivot);
      in_kpc[child_pivot].store(false, std::memory_order_relaxed);
    }
  }

  for (TreeNodeId node = 0; node < forest.NumNodes(); ++node) {
    if (parent_of[node] != kInvalidNode) {
      forest.SetParent(node, parent_of[node]);
    }
  }
  forest.BuildChildren();
  return forest;
}

TrussForest NaiveTrussHierarchy(const Graph& graph, const EdgeIndexer& index,
                                const TrussDecomposition& td) {
  const EdgeIdx m = index.NumEdges();
  const VertexId n = graph.NumVertices();
  TrussForest forest(m);
  if (m == 0) return forest;

  struct Pending {
    TreeNodeId node;
    EdgeIdx rep;
  };
  std::vector<Pending> parentless;

  const EdgeRank er = ComputeEdgeRank(td);
  std::vector<int64_t> anchor_stamp(n, -1);
  std::vector<EdgeIdx> anchor(n, kInvalidEdge);

  for (int64_t k = td.k_max; k >= 2; --k) {
    // Components of E_k from scratch (edges in ascending id within the
    // suffix of the rank order).
    UnionFind uf(m);
    const EdgeIdx begin = er.shell_start[k];
    for (EdgeIdx i = begin; i < m; ++i) {
      const EdgeIdx e = er.sorted[i];
      const auto [u, v] = index.edges[e];
      for (VertexId x : {u, v}) {
        if (anchor_stamp[x] == k) {
          uf.Union(e, anchor[x]);
        } else {
          anchor_stamp[x] = k;
        }
        anchor[x] = e;
      }
    }

    // One node per component with a non-empty k-shell.
    std::vector<TreeNodeId> node_of_root(m, kInvalidNode);
    for (EdgeIdx i = begin; i < er.shell_start[k + 1]; ++i) {
      const EdgeIdx e = er.sorted[i];
      TreeNodeId& node = node_of_root[uf.Find(e)];
      if (node == kInvalidNode) {
        node = forest.NewNode(static_cast<uint32_t>(k));
      }
      forest.AddVertex(node, e);
    }

    std::vector<Pending> still_pending;
    for (const Pending& p : parentless) {
      TreeNodeId node = node_of_root[uf.Find(p.rep)];
      if (node != kInvalidNode) {
        forest.SetParent(p.node, node);
      } else {
        still_pending.push_back(p);
      }
    }
    parentless = std::move(still_pending);
    for (EdgeIdx i = begin; i < er.shell_start[k + 1]; ++i) {
      const EdgeIdx e = er.sorted[i];
      if (forest.Vertices(forest.Tid(e)).front() == e) {
        parentless.push_back({forest.Tid(e), e});
      }
    }
  }

  forest.BuildChildren();
  return forest;
}

TrussCommunity TrussCommunityOf(const Graph& graph, const EdgeIndexer& index,
                                const TrussForest& forest, TreeNodeId node) {
  (void)graph;
  TrussCommunity out;
  std::vector<VertexId> core = forest.CoreVertices(node);  // edge ids
  out.num_edges = core.size();
  out.vertices.reserve(core.size());
  for (VertexId eid : core) {
    const auto [u, v] = index.edges[eid];
    out.vertices.push_back(u);
    out.vertices.push_back(v);
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  out.vertices.erase(std::unique(out.vertices.begin(), out.vertices.end()),
                     out.vertices.end());
  return out;
}

DensestTrussResult DensestTruss(const Graph& graph, const EdgeIndexer& index,
                                const TrussForest& forest) {
  DensestTrussResult best;
  double best_avg = -1.0;
  for (TreeNodeId node = 0; node < forest.NumNodes(); ++node) {
    TrussCommunity community = TrussCommunityOf(graph, index, forest, node);
    const double avg = community.AverageDegree();
    if (avg > best_avg) {
      best_avg = avg;
      best.node = node;
      best.level = forest.Level(node);
      best.community = std::move(community);
    }
  }
  return best;
}

FlatHcdIndex FreezeTruss(const Graph& graph, const EdgeIndexer& index,
                         const TrussForest& forest) {
  HCD_CHECK_EQ(forest.NumVertices(), index.NumEdges())
      << "truss forest elements must be the indexer's edges";
  std::vector<VertexId> members;
  members.reserve(2 * index.edges.size());
  for (const auto& [u, v] : index.edges) {
    members.push_back(u);
    members.push_back(v);
  }
  return Freeze(forest, HierarchyKind::kTruss, members, graph.NumVertices());
}

TrussCommunity TrussCommunityOf(const FlatHcdIndex& flat, TreeNodeId node) {
  HCD_CHECK(flat.kind() == HierarchyKind::kTruss)
      << "frozen truss queries need a truss-kind index";
  TrussCommunity out;
  const std::span<const VertexId> edges = flat.CoreVertices(node);
  out.num_edges = edges.size();
  out.vertices.reserve(2 * edges.size());
  for (const VertexId eid : edges) {
    const std::span<const VertexId> uv = flat.ElementMembers(eid);
    out.vertices.push_back(uv[0]);
    out.vertices.push_back(uv[1]);
  }
  std::sort(out.vertices.begin(), out.vertices.end());
  out.vertices.erase(std::unique(out.vertices.begin(), out.vertices.end()),
                     out.vertices.end());
  return out;
}

DensestTrussResult DensestTruss(const FlatHcdIndex& flat) {
  HCD_CHECK(flat.kind() == HierarchyKind::kTruss)
      << "frozen truss queries need a truss-kind index";
  DensestTrussResult best;
  double best_avg = -1.0;
  // Distinct endpoints per node via node-id stamping: no sort, no per-node
  // allocation, O(sum of community edge counts) overall.
  std::vector<TreeNodeId> stamp(flat.NumGraphVertices(), kInvalidNode);
  for (TreeNodeId node = 0; node < flat.NumNodes(); ++node) {
    const std::span<const VertexId> edges = flat.CoreVertices(node);
    uint64_t distinct = 0;
    for (const VertexId eid : edges) {
      for (const VertexId v : flat.ElementMembers(eid)) {
        if (stamp[v] != node) {
          stamp[v] = node;
          ++distinct;
        }
      }
    }
    const double avg = distinct == 0
                           ? 0.0
                           : 2.0 * static_cast<double>(edges.size()) /
                                 static_cast<double>(distinct);
    if (avg > best_avg) {
      best_avg = avg;
      best.node = node;
      best.level = flat.Level(node);
    }
  }
  if (best.node != kInvalidNode) {
    best.community = TrussCommunityOf(flat, best.node);
  }
  return best;
}

}  // namespace hcd
