#ifndef HCD_TRUSS_TRUSS_DECOMPOSITION_H_
#define HCD_TRUSS_TRUSS_DECOMPOSITION_H_

#include <vector>

#include "graph/graph.h"
#include "truss/edge_index.h"

namespace hcd {

/// Trussness values for one graph: trussness[e] is the largest k such that
/// edge e belongs to a k-truss (a maximal subgraph in which every edge
/// closes at least k-2 triangles). Every edge has trussness >= 2.
struct TrussDecomposition {
  std::vector<uint32_t> trussness;  ///< per EdgeIdx
  /// Largest k with a non-empty k-truss (2 for triangle-free graphs with
  /// edges, 0 for edgeless graphs).
  uint32_t k_max = 0;
};

/// Number of triangles containing each edge (the edge's support), computed
/// in parallel with the rank-ordered triangle enumeration; O(m^1.5) work.
std::vector<uint32_t> ComputeEdgeSupports(const Graph& graph,
                                          const EdgeIndexer& index);

/// Truss decomposition by support peeling (Wang & Cheng): bin-sorted edges
/// peeled in increasing support, decrementing the supports of the two
/// companion edges of each destroyed triangle. O(m^1.5) after the support
/// computation.
TrussDecomposition PeelTrussDecomposition(const Graph& graph,
                                          const EdgeIndexer& index);

/// Definition-driven oracle: for each k, strips edges with in-subgraph
/// support below k-2 to a fixpoint (recomputing supports from scratch each
/// sweep). Exponentially simpler to reason about, much slower; tests only.
TrussDecomposition NaiveTrussDecomposition(const Graph& graph,
                                           const EdgeIndexer& index);

}  // namespace hcd

#endif  // HCD_TRUSS_TRUSS_DECOMPOSITION_H_
