#ifndef HCD_TRUSS_EDGE_INDEX_H_
#define HCD_TRUSS_EDGE_INDEX_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace hcd {

/// Identifier of an undirected edge: 0..m-1 in the canonical (min endpoint,
/// max endpoint) lexicographic order.
using EdgeIdx = uint32_t;
inline constexpr EdgeIdx kInvalidEdge = 0xFFFFFFFFu;

/// Bidirectional mapping between undirected edge ids and CSR adjacency
/// positions, the substrate for all edge-centric (k-truss) algorithms.
struct EdgeIndexer {
  /// eid_at[p]: undirected edge id of adjacency position p (both
  /// directions of an edge map to the same id). Size 2m.
  std::vector<EdgeIdx> eid_at;
  /// edges[e]: endpoints of edge e, first < second. Size m.
  std::vector<Edge> edges;

  EdgeIdx NumEdges() const { return static_cast<EdgeIdx>(edges.size()); }

  /// Edge id at adjacency position `pos` of the owning graph.
  EdgeIdx IdAtPosition(EdgeIndex pos) const { return eid_at[pos]; }

  /// Edge id of {u, v}, or kInvalidEdge when absent. O(log d(u)).
  EdgeIdx IdOf(const Graph& graph, VertexId u, VertexId v) const;
};

/// Builds the indexer in O(m). Requires m < 2^32.
EdgeIndexer BuildEdgeIndexer(const Graph& graph);

}  // namespace hcd

#endif  // HCD_TRUSS_EDGE_INDEX_H_
