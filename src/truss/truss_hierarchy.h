#ifndef HCD_TRUSS_TRUSS_HIERARCHY_H_
#define HCD_TRUSS_TRUSS_HIERARCHY_H_

#include <vector>

#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "hcd/forest.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"

namespace hcd {

/// Hierarchical truss decomposition: the PHCD paradigm (Section VI "other
/// cohesive subgraph models") ported from vertices/k-cores to edges/
/// k-trusses. Tree nodes hold *edge* ids: node at level k stores the edges
/// of trussness k of one k-truss component (components are vertex-
/// connected), and parents record truss containment.
///
/// Reuses HcdForest with elements = EdgeIdx; Tid/Vertices/CoreVertices all
/// operate on edge ids.
using TrussForest = HcdForest;

/// Parallel hierarchical truss construction: adds edge shells in
/// descending trussness; connectivity among added edges is maintained in
/// the pivot union-find, with one *anchor* edge per vertex (all edges
/// incident to a vertex are mutually connected through it, so chaining each
/// arriving edge to the vertex's previous anchor with an atomic exchange
/// yields exact components). Pivot capture / grouping / parent assignment
/// mirror PHCD's Steps 1-4. O(m alpha(m)) after the truss decomposition.
TrussForest BuildTrussHierarchy(const Graph& graph, const EdgeIndexer& index,
                                const TrussDecomposition& td);

/// Definition-driven oracle: per level, components by label propagation
/// over the edge set {e : trussness >= k}; tests only. O(k_max * m alpha).
TrussForest NaiveTrussHierarchy(const Graph& graph, const EdgeIndexer& index,
                                const TrussDecomposition& td);

/// The k-truss component of `node` as a vertex set (distinct endpoints of
/// the subtree's edges), plus its edge count; used by truss search.
struct TrussCommunity {
  std::vector<VertexId> vertices;
  uint64_t num_edges = 0;
  double AverageDegree() const {
    return vertices.empty() ? 0.0
                            : 2.0 * static_cast<double>(num_edges) /
                                  static_cast<double>(vertices.size());
  }
};

/// Builder-forest community-of: a DFS plus an allocation per call. Kept as
/// the test oracle for the frozen-index overload below; serve paths use
/// the FlatHcdIndex form.
TrussCommunity TrussCommunityOf(const Graph& graph, const EdgeIndexer& index,
                                const TrussForest& forest, TreeNodeId node);

/// The k-truss (over all k) with the highest average degree — the truss
/// analogue of PBKS-D. O(sum of community sizes) = O(k_max * m) worst case.
struct DensestTrussResult {
  TreeNodeId node = kInvalidNode;
  uint32_t level = 0;
  TrussCommunity community;
};

/// Builder-forest densest scan; test oracle for the frozen overload.
DensestTrussResult DensestTruss(const Graph& graph, const EdgeIndexer& index,
                                const TrussForest& forest);

// --- frozen (serve-phase) forms --------------------------------------------

/// Kind-tagged freeze of a truss forest: the preorder packing of Freeze
/// plus HierarchyKind::kTruss and the edge -> endpoint materialization
/// (EdgeIndexer::edges flattened, endpoints ascending). The result serves
/// every flat-index query (CoreVertices spans over edge ids, ancestor
/// walks, ElementSearchIndex) and snapshots as the v3 format.
FlatHcdIndex FreezeTruss(const Graph& graph, const EdgeIndexer& index,
                         const TrussForest& forest);

/// Frozen-index community-of: the subtree's edges are one O(1) span and
/// their endpoints come from the embedded element members, so the cost is
/// O(answer) with no tree DFS and no per-node allocation. Bit-identical
/// output (sorted distinct endpoints + edge count) to the builder oracle
/// on the node holding the same edges.
TrussCommunity TrussCommunityOf(const FlatHcdIndex& flat, TreeNodeId node);

/// Frozen-index densest scan: one stamped pass over the preorder nodes
/// (distinct-endpoint counting without sorting), then a single community
/// materialization for the winner. Same maximum average degree as the
/// builder oracle; ties resolve to the first preorder node.
DensestTrussResult DensestTruss(const FlatHcdIndex& flat);

}  // namespace hcd

#endif  // HCD_TRUSS_TRUSS_HIERARCHY_H_
