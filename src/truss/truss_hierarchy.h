#ifndef HCD_TRUSS_TRUSS_HIERARCHY_H_
#define HCD_TRUSS_TRUSS_HIERARCHY_H_

#include <vector>

#include "graph/graph.h"
#include "hcd/forest.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"

namespace hcd {

/// Hierarchical truss decomposition: the PHCD paradigm (Section VI "other
/// cohesive subgraph models") ported from vertices/k-cores to edges/
/// k-trusses. Tree nodes hold *edge* ids: node at level k stores the edges
/// of trussness k of one k-truss component (components are vertex-
/// connected), and parents record truss containment.
///
/// Reuses HcdForest with elements = EdgeIdx; Tid/Vertices/CoreVertices all
/// operate on edge ids.
using TrussForest = HcdForest;

/// Parallel hierarchical truss construction: adds edge shells in
/// descending trussness; connectivity among added edges is maintained in
/// the pivot union-find, with one *anchor* edge per vertex (all edges
/// incident to a vertex are mutually connected through it, so chaining each
/// arriving edge to the vertex's previous anchor with an atomic exchange
/// yields exact components). Pivot capture / grouping / parent assignment
/// mirror PHCD's Steps 1-4. O(m alpha(m)) after the truss decomposition.
TrussForest BuildTrussHierarchy(const Graph& graph, const EdgeIndexer& index,
                                const TrussDecomposition& td);

/// Definition-driven oracle: per level, components by label propagation
/// over the edge set {e : trussness >= k}; tests only. O(k_max * m alpha).
TrussForest NaiveTrussHierarchy(const Graph& graph, const EdgeIndexer& index,
                                const TrussDecomposition& td);

/// The k-truss component of `node` as a vertex set (distinct endpoints of
/// the subtree's edges), plus its edge count; used by truss search.
struct TrussCommunity {
  std::vector<VertexId> vertices;
  uint64_t num_edges = 0;
  double AverageDegree() const {
    return vertices.empty() ? 0.0
                            : 2.0 * static_cast<double>(num_edges) /
                                  static_cast<double>(vertices.size());
  }
};

TrussCommunity TrussCommunityOf(const Graph& graph, const EdgeIndexer& index,
                                const TrussForest& forest, TreeNodeId node);

/// The k-truss (over all k) with the highest average degree — the truss
/// analogue of PBKS-D. O(sum of community sizes) = O(k_max * m) worst case.
struct DensestTrussResult {
  TreeNodeId node = kInvalidNode;
  uint32_t level = 0;
  TrussCommunity community;
};
DensestTrussResult DensestTruss(const Graph& graph, const EdgeIndexer& index,
                                const TrussForest& forest);

}  // namespace hcd

#endif  // HCD_TRUSS_TRUSS_HIERARCHY_H_
