#include "truss/truss_decomposition.h"

#include <algorithm>

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {
namespace {

/// Degree order used to enumerate every triangle exactly once.
inline bool DegreeLess(const Graph& g, VertexId a, VertexId b) {
  const VertexId da = g.Degree(a);
  const VertexId db = g.Degree(b);
  return da < db || (da == db && a < b);
}

}  // namespace

std::vector<uint32_t> ComputeEdgeSupports(const Graph& graph,
                                          const EdgeIndexer& index) {
  const VertexId n = graph.NumVertices();
  std::vector<uint32_t> sup(index.NumEdges(), 0);

#pragma omp parallel
  {
    // mark[w] = 1 + position of w in the current vertex's adjacency.
    std::vector<EdgeIndex> mark(n, 0);
#pragma omp for schedule(dynamic, 64)
    for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
      const VertexId v = static_cast<VertexId>(vi);
      const auto nv = graph.Neighbors(v);
      const EdgeIndex base_v = graph.AdjOffset(v);
      for (size_t i = 0; i < nv.size(); ++i) mark[nv[i]] = i + 1;
      for (size_t i = 0; i < nv.size(); ++i) {
        const VertexId u = nv[i];
        if (!DegreeLess(graph, u, v)) continue;
        const auto nu = graph.Neighbors(u);
        const EdgeIndex base_u = graph.AdjOffset(u);
        for (size_t j = 0; j < nu.size(); ++j) {
          const VertexId w = nu[j];
          if (mark[w] == 0 || !DegreeLess(graph, w, u)) continue;
          // Triangle (v, u, w), enumerated once (w < u < v in degree
          // order); bump all three edges.
          const EdgeIdx e_vu = index.eid_at[base_v + i];
          const EdgeIdx e_uw = index.eid_at[base_u + j];
          const EdgeIdx e_vw = index.eid_at[base_v + mark[w] - 1];
#pragma omp atomic
          ++sup[e_vu];
#pragma omp atomic
          ++sup[e_uw];
#pragma omp atomic
          ++sup[e_vw];
        }
      }
      for (VertexId u : nv) mark[u] = 0;
    }
  }
  return sup;
}

TrussDecomposition PeelTrussDecomposition(const Graph& graph,
                                          const EdgeIndexer& index) {
  const EdgeIdx m = index.NumEdges();
  TrussDecomposition td;
  td.trussness.assign(m, 2);
  if (m == 0) return td;

  std::vector<uint32_t> sup = ComputeEdgeSupports(graph, index);
  const uint32_t max_sup = *std::max_element(sup.begin(), sup.end());

  // Bucket all edges by support (BZ-style bins over edges).
  std::vector<EdgeIdx> bin(max_sup + 2, 0);
  for (EdgeIdx e = 0; e < m; ++e) ++bin[sup[e] + 1];
  for (size_t s = 1; s < bin.size(); ++s) bin[s] += bin[s - 1];
  std::vector<EdgeIdx> vert(m);
  std::vector<EdgeIdx> pos(m);
  {
    std::vector<EdgeIdx> cursor(bin.begin(), bin.end() - 1);
    for (EdgeIdx e = 0; e < m; ++e) {
      pos[e] = cursor[sup[e]];
      vert[pos[e]] = e;
      ++cursor[sup[e]];
    }
  }

  auto lower_support = [&](EdgeIdx e, uint32_t floor_s) {
    if (sup[e] <= floor_s) return;
    const uint32_t se = sup[e];
    const EdgeIdx pe = pos[e];
    const EdgeIdx pw = bin[se];
    const EdgeIdx w = vert[pw];
    if (e != w) {
      std::swap(vert[pe], vert[pw]);
      pos[e] = pw;
      pos[w] = pe;
    }
    ++bin[se];
    --sup[e];
  };

  std::vector<bool> alive(m, true);
  uint32_t k_max = 2;
  for (EdgeIdx i = 0; i < m; ++i) {
    const EdgeIdx e = vert[i];
    const uint32_t s = sup[e];
    td.trussness[e] = s + 2;
    k_max = std::max(k_max, s + 2);
    alive[e] = false;
    auto [u, v] = index.edges[e];
    // Enumerate surviving triangles through the smaller endpoint.
    if (graph.Degree(u) > graph.Degree(v)) std::swap(u, v);
    const EdgeIndex base_u = graph.AdjOffset(u);
    const auto nu = graph.Neighbors(u);
    for (size_t j = 0; j < nu.size(); ++j) {
      const VertexId w = nu[j];
      if (w == v) continue;
      const EdgeIdx e_uw = index.eid_at[base_u + j];
      if (!alive[e_uw]) continue;
      const EdgeIdx e_vw = index.IdOf(graph, v, w);
      if (e_vw == kInvalidEdge || !alive[e_vw]) continue;
      lower_support(e_uw, s);
      lower_support(e_vw, s);
    }
  }
  td.k_max = k_max;
  return td;
}

TrussDecomposition NaiveTrussDecomposition(const Graph& graph,
                                           const EdgeIndexer& index) {
  const EdgeIdx m = index.NumEdges();
  TrussDecomposition td;
  td.trussness.assign(m, 2);
  if (m == 0) return td;

  std::vector<bool> alive(m, true);
  EdgeIdx remaining = m;

  auto alive_support = [&](EdgeIdx e) {
    const auto [u, v] = index.edges[e];
    uint32_t s = 0;
    VertexId a = u;
    VertexId b = v;
    if (graph.Degree(a) > graph.Degree(b)) std::swap(a, b);
    const EdgeIndex base_a = graph.AdjOffset(a);
    const auto na = graph.Neighbors(a);
    for (size_t j = 0; j < na.size(); ++j) {
      const VertexId w = na[j];
      if (w == b || !alive[index.eid_at[base_a + j]]) continue;
      const EdgeIdx other = index.IdOf(graph, b, w);
      if (other != kInvalidEdge && alive[other]) ++s;
    }
    return s;
  };

  uint32_t k = 3;
  while (remaining > 0) {
    // Strip to the (k)-truss fixpoint.
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (EdgeIdx e = 0; e < m; ++e) {
        if (alive[e] && alive_support(e) < k - 2) {
          alive[e] = false;
          --remaining;
          removed_any = true;
        }
      }
    }
    for (EdgeIdx e = 0; e < m; ++e) {
      if (alive[e]) td.trussness[e] = k;
    }
    if (remaining > 0) td.k_max = k;
    ++k;
  }
  if (td.k_max == 0) td.k_max = 2;  // edges exist; trivial trussness 2
  return td;
}

}  // namespace hcd
