#include "truss/edge_index.h"

#include <algorithm>

#include "common/check.h"

namespace hcd {

EdgeIdx EdgeIndexer::IdOf(const Graph& graph, VertexId u, VertexId v) const {
  auto nbrs = graph.Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return eid_at[graph.AdjOffset(u) + (it - nbrs.begin())];
}

EdgeIndexer BuildEdgeIndexer(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  HCD_CHECK_LT(graph.NumEdges(), static_cast<EdgeIndex>(kInvalidEdge));
  EdgeIndexer index;
  index.eid_at.resize(graph.AdjArray().size());
  index.edges.reserve(graph.NumEdges());

  // Assign ids in (v, u) v<u lexicographic order. For the reverse
  // direction: edges (v, u) with v < u arrive at u in increasing v, and the
  // smaller neighbors of u form the sorted prefix of u's adjacency, so a
  // per-vertex cursor fills the reverse positions in one pass.
  std::vector<EdgeIndex> cursor(n);
  for (VertexId v = 0; v < n; ++v) cursor[v] = graph.AdjOffset(v);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = graph.Neighbors(v);
    const EdgeIndex base = graph.AdjOffset(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u < v) continue;
      const EdgeIdx id = static_cast<EdgeIdx>(index.edges.size());
      index.edges.emplace_back(v, u);
      index.eid_at[base + i] = id;
      HCD_DCHECK(graph.AdjArray()[cursor[u]] == v);
      index.eid_at[cursor[u]++] = id;
    }
  }
  return index;
}

}  // namespace hcd
