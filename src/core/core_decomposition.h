#ifndef HCD_CORE_CORE_DECOMPOSITION_H_
#define HCD_CORE_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "common/telemetry.h"
#include "graph/graph.h"

namespace hcd {

/// Coreness values for one graph (Section II-A): coreness[v] is the largest
/// k such that v belongs to a k-core.
struct CoreDecomposition {
  std::vector<uint32_t> coreness;
  /// Graph degeneracy: the largest k with a non-empty k-core.
  uint32_t k_max = 0;

  uint32_t operator[](VertexId v) const { return coreness[v]; }
};

/// Sizes of the k-shells H_0..H_kmax (|result| == k_max + 1).
std::vector<VertexId> KShellSizes(const CoreDecomposition& cd);

/// Serial Batagelj-Zaversnik peeling, O(m) (reference serial algorithm,
/// "CD" in the paper's Figure 10). With a sink, records a "decomposition"
/// stage (counters: k_max).
CoreDecomposition BzCoreDecomposition(const Graph& graph,
                                      TelemetrySink* sink = nullptr);

/// Parallel PKC-style core decomposition (Kabir & Madduri): level-
/// synchronous peeling with thread-local worklists and atomic degree
/// decrements, O(n * k_max + m) work. Uses the current OpenMP thread count.
/// With a sink, records a "decomposition" stage (counters: levels, k_max).
CoreDecomposition PkcCoreDecomposition(const Graph& graph,
                                       TelemetrySink* sink = nullptr);

}  // namespace hcd

#endif  // HCD_CORE_CORE_DECOMPOSITION_H_
