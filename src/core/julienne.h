#ifndef HCD_CORE_JULIENNE_H_
#define HCD_CORE_JULIENNE_H_

#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// Bucket-based parallel core decomposition in the style of Julienne/GBBS
/// (the paper's second state-of-the-art baseline: its experiments report
/// the smaller runtime of PKC and GBBS). Vertices live in lazy buckets
/// keyed by current degree; each level-k round pops the k-bucket frontier,
/// peels it in parallel, and re-buckets the decremented neighbors. Unlike
/// PKC's level-synchronous full scans this does O(m) total bucket work
/// instead of O(n * k_max) scanning, which wins when k_max is large.
CoreDecomposition JulienneCoreDecomposition(const Graph& graph);

/// Approximate core decomposition in the spirit of the paper's reference
/// [25] (Liu et al.'s (2+delta) scheme), simplified to geometric peeling:
/// thresholds grow by a factor (1 + delta), and each round strips the
/// complement of the T-core, assigning the previous threshold as the
/// estimate. The reported value c~(v) satisfies
///     c~(v) <= c(v) < (1 + delta) * c~(v) + 1,
/// using only O(log_{1+delta} k_max) peeling rounds instead of k_max.
CoreDecomposition ApproxCoreDecomposition(const Graph& graph, double delta);

}  // namespace hcd

#endif  // HCD_CORE_JULIENNE_H_
