#include "core/julienne.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {

CoreDecomposition JulienneCoreDecomposition(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition cd;
  cd.coreness.assign(n, 0);
  if (n == 0) return cd;

  std::unique_ptr<std::atomic<uint32_t>[]> deg(new std::atomic<uint32_t>[n]);
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v].store(graph.Degree(v), std::memory_order_relaxed);
    max_deg = std::max(max_deg, graph.Degree(v));
  }

  // Lazy buckets: entries may be stale; the pop validates against the
  // current degree and the processed flag. Total pushes <= 2m + n.
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[graph.Degree(v)].push_back(v);
  std::vector<bool> processed(n, false);

  const int pmax = MaxThreads();
  // Per-thread re-bucketing buffers: (new degree, vertex).
  std::vector<std::vector<std::pair<uint32_t, VertexId>>> buffers(pmax);
  std::vector<VertexId> frontier;
  std::vector<VertexId> stale;

  for (uint32_t k = 0; k <= max_deg; ++k) {
    while (true) {
      // Pop the valid k-frontier (entries with current degree above k are
      // impossible: degrees only decrease below their push key).
      frontier.clear();
      stale.swap(buckets[k]);
      for (VertexId v : stale) {
        if (!processed[v]) {
          HCD_DCHECK(deg[v].load(std::memory_order_relaxed) <= k);
          processed[v] = true;
          cd.coreness[v] = k;
          cd.k_max = k;
          frontier.push_back(v);
        }
      }
      stale.clear();
      if (frontier.empty()) break;

#pragma omp parallel num_threads(pmax)
      {
        auto& mine = buffers[ThreadId()];
#pragma omp for schedule(dynamic, 128)
        for (int64_t i = 0; i < static_cast<int64_t>(frontier.size()); ++i) {
          for (VertexId u : graph.Neighbors(frontier[i])) {
            if (deg[u].load(std::memory_order_relaxed) > k) {
              const uint32_t prev = deg[u].fetch_sub(1);
              if (prev > k) {
                mine.emplace_back(std::max(prev - 1, k), u);
              } else {
                deg[u].fetch_add(1);  // racing decrement below the level
              }
            }
          }
        }
      }
      for (auto& mine : buffers) {
        for (const auto& [b, u] : mine) buckets[b].push_back(u);
        mine.clear();
      }
    }
  }
  return cd;
}

CoreDecomposition ApproxCoreDecomposition(const Graph& graph, double delta) {
  HCD_CHECK_GT(delta, 0.0);
  const VertexId n = graph.NumVertices();
  CoreDecomposition cd;
  cd.coreness.assign(n, 0);
  if (n == 0) return cd;

  std::vector<VertexId> deg(n);
  VertexId remaining = n;
  for (VertexId v = 0; v < n; ++v) deg[v] = graph.Degree(v);
  std::vector<bool> alive(n, true);
  std::vector<VertexId> queue;

  uint32_t level = 0;      // estimate assigned to this round's strips
  uint32_t threshold = 1;  // strip everything below the T-core
  while (remaining > 0) {
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < threshold) queue.push_back(v);
    }
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      if (!alive[v]) continue;
      alive[v] = false;
      --remaining;
      cd.coreness[v] = level;
      cd.k_max = std::max(cd.k_max, level);
      for (VertexId u : graph.Neighbors(v)) {
        if (alive[u] && deg[u]-- == threshold) queue.push_back(u);
      }
    }
    level = threshold;
    threshold = std::max<uint32_t>(
        threshold + 1,
        static_cast<uint32_t>(std::ceil(threshold * (1.0 + delta))));
  }
  return cd;
}

}  // namespace hcd
