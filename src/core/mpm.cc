#include "core/mpm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {
namespace {

/// h-index of `values`: the largest h such that at least h entries are
/// >= h. Counting-based, O(|values| + cap).
uint32_t HIndex(const std::vector<uint32_t>& values, uint32_t cap,
                std::vector<uint32_t>* scratch) {
  scratch->assign(cap + 1, 0);
  for (uint32_t x : values) ++(*scratch)[std::min(x, cap)];
  uint32_t at_least = 0;
  for (uint32_t h = cap; h > 0; --h) {
    at_least += (*scratch)[h];
    if (at_least >= h) return h;
  }
  return 0;
}

}  // namespace

CoreDecomposition MpmCoreDecomposition(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition cd;
  cd.coreness.assign(n, 0);
  if (n == 0) return cd;

  std::vector<uint32_t> cur(n);
  for (VertexId v = 0; v < n; ++v) cur[v] = graph.Degree(v);
  std::vector<uint32_t> next(n);

  bool changed = true;
  uint64_t rounds = 0;
  while (changed) {
    changed = false;
    ++rounds;
    HCD_CHECK_LE(rounds, static_cast<uint64_t>(n) + 1) << "MPM diverged";
#pragma omp parallel
    {
      std::vector<uint32_t> vals;
      std::vector<uint32_t> scratch;
      bool local_changed = false;
#pragma omp for schedule(dynamic, 512)
      for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        vals.clear();
        for (VertexId u : graph.Neighbors(v)) vals.push_back(cur[u]);
        const uint32_t h = HIndex(vals, cur[v], &scratch);
        next[v] = h;
        local_changed |= h != cur[v];
      }
      if (local_changed) {
#pragma omp atomic write
        changed = true;
      }
    }
    std::swap(cur, next);
  }

  cd.coreness = std::move(cur);
  cd.k_max = *std::max_element(cd.coreness.begin(), cd.coreness.end());
  return cd;
}

}  // namespace hcd
