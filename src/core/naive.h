#ifndef HCD_CORE_NAIVE_H_
#define HCD_CORE_NAIVE_H_

#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// Definition-driven coreness oracle: for each k, strips vertices of degree
/// below k until a fixpoint, marking survivors with coreness >= k.
/// O(k_max * m); independent of the bucket-based BZ implementation, so the
/// two cross-validate each other in tests.
CoreDecomposition NaiveCoreDecomposition(const Graph& graph);

/// True iff `cd` equals the naive oracle's answer for `graph`.
bool VerifyCoreDecomposition(const Graph& graph, const CoreDecomposition& cd);

}  // namespace hcd

#endif  // HCD_CORE_NAIVE_H_
