#ifndef HCD_CORE_DYNAMIC_H_
#define HCD_CORE_DYNAMIC_H_

#include <vector>

#include "common/status.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// Incrementally maintained core decomposition under single-edge updates
/// (the traversal/subcore algorithm of the streaming literature the paper
/// builds on; the substrate of hierarchical core maintenance [15]).
///
/// Theory used: inserting or deleting one edge changes any coreness by at
/// most 1, and the only candidates are vertices with coreness K =
/// min(c(u), c(v)) reachable from the updated edge through vertices of
/// coreness exactly K (the *subcore*). Each update therefore:
///  1. collects the subcore by BFS,
///  2. computes each member's candidate degree (neighbors of coreness >= K
///     for deletions, or > K plus subcore members for insertions),
///  3. peels members below the threshold; the survivors (insert) or the
///     peeled (delete) change coreness by one.
/// Cost per update: O(size of the touched subcore + its adjacency), far
/// below recomputation on large graphs.
class DynamicCoreIndex {
 public:
  /// Copies the graph into a mutable adjacency structure and computes the
  /// initial decomposition with BZ.
  explicit DynamicCoreIndex(const Graph& graph);

  VertexId NumVertices() const { return static_cast<VertexId>(adj_.size()); }
  EdgeIndex NumEdges() const { return num_edges_; }

  /// Current coreness of v.
  uint32_t Coreness(VertexId v) const { return coreness_[v]; }

  /// Largest current coreness.
  uint32_t KMax() const;

  bool HasEdge(VertexId u, VertexId v) const;

  /// Inserts edge {u,v} and updates corenesses. InvalidArgument on
  /// self-loops, out-of-range ids, or existing edges.
  Status InsertEdge(VertexId u, VertexId v);

  /// Removes edge {u,v} and updates corenesses. NotFound if absent.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Materializes the current graph as an immutable CSR Graph (e.g. to
  /// rebuild the HCD with PhcdBuild after a batch of updates).
  Graph ToGraph() const;

 private:
  /// BFS over vertices of coreness exactly `k` starting from `roots`;
  /// returns the subcore (marks members in scratch_in_sub_).
  std::vector<VertexId> CollectSubcore(const std::vector<VertexId>& roots,
                                       uint32_t k);

  std::vector<std::vector<VertexId>> adj_;  // sorted adjacency lists
  std::vector<uint32_t> coreness_;
  EdgeIndex num_edges_ = 0;

  // Reusable scratch (cleared after every update).
  std::vector<bool> scratch_in_sub_;
  std::vector<uint32_t> scratch_cd_;
};

}  // namespace hcd

#endif  // HCD_CORE_DYNAMIC_H_
