#ifndef HCD_CORE_DYNAMIC_H_
#define HCD_CORE_DYNAMIC_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// One edge mutation in a batch: insert or remove the undirected edge
/// {u, v}. Endpoint order does not matter.
enum class EdgeOp : uint8_t { kInsert = 0, kRemove = 1 };
struct EdgeUpdate {
  VertexId u = 0;
  VertexId v = 0;
  EdgeOp op = EdgeOp::kInsert;
};

/// Per-batch report of ApplyBatch. `subcores_touched` counts the
/// independent subcore clusters the batch decomposed into (the units the
/// parallel path runs concurrently); `rounds` counts the coreness strata
/// the scheduler peeled through.
struct BatchStats {
  size_t requested = 0;   ///< updates handed in
  size_t applied = 0;     ///< net edge mutations actually performed
  size_t deduped = 0;     ///< dropped because a later op canceled/repeated it
  size_t redundant = 0;   ///< insert-of-present / remove-of-absent, skipped
  size_t rounds = 0;
  size_t subcores_touched = 0;
  size_t parallel_rounds = 0;  ///< rounds that ran clusters under OpenMP
  size_t coreness_changed = 0;
  /// Vertices whose coreness differs from before the batch (ascending).
  std::vector<VertexId> changed_vertices;
  /// The net edge set actually mutated, as (min, max) endpoint pairs.
  std::vector<std::pair<VertexId, VertexId>> applied_edges;
};

struct ApplyBatchOptions {
  /// Process independent subcore clusters under OpenMP. The sequential
  /// fallback (false, or whenever a round has one cluster / one thread)
  /// applies the same net updates one by one — results are identical.
  bool parallel = true;
  /// After applying, recompute coreness from scratch with BZ and return
  /// Internal if any vertex disagrees. Debug/cross-check only: costs a
  /// full recomputation per batch.
  bool verify_with_bz = false;
};

/// Incrementally maintained core decomposition under edge updates (the
/// traversal/subcore algorithm of the streaming literature the paper
/// builds on; the substrate of hierarchical core maintenance [15]).
///
/// Theory used: inserting or deleting one edge changes any coreness by at
/// most 1, and the only candidates are vertices with coreness K =
/// min(c(u), c(v)) reachable from the updated edge through vertices of
/// coreness exactly K (the *subcore*). Each update therefore:
///  1. collects the subcore by BFS,
///  2. computes each member's candidate degree (neighbors of coreness >= K
///     for deletions, or > K plus subcore members for insertions),
///  3. peels members below the threshold; the survivors (insert) or the
///     peeled (delete) change coreness by one.
/// Cost per update: O(size of the touched subcore + its adjacency), far
/// below recomputation on large graphs.
///
/// ApplyBatch extends this to batches (after the parallel batch-dynamic
/// k-core line of work, arXiv 2106.03824): it validates and dedups the
/// batch to a net edge set, then repeatedly takes the stratum of pending
/// updates whose current root coreness K = min(c(u), c(v)) is smallest,
/// partitions that stratum into clusters by connected component of the
/// coreness-K subgraph (plus shared endpoints), and applies the clusters
/// in parallel. Within a round only values K+-1 are written and no vertex
/// ever *enters* coreness K, so distinct K-components stay disjoint for
/// the whole round — each cluster touches private state, which is what
/// makes the parallel schedule exact (equal to some sequential order of
/// the same single-edge updates, each of which is exact). An update whose
/// root coreness drifts off K mid-round (an earlier cluster member moved
/// an endpoint) is deferred to a later round rather than applied.
///
/// Adjacency is kept sorted per vertex for binary-search membership until
/// a vertex's degree crosses `hash_degree_threshold`; beyond that the
/// vertex flips to a hashed index over an unordered list, making
/// HasEdge / insert / erase O(1) instead of O(degree) on hubs. ToGraph
/// re-sorts, so the CSR invariants are unaffected.
class DynamicCoreIndex {
 public:
  static constexpr uint32_t kDefaultHashDegreeThreshold = 128;

  /// Copies the graph into a mutable adjacency structure and computes the
  /// initial decomposition with BZ.
  explicit DynamicCoreIndex(
      const Graph& graph,
      uint32_t hash_degree_threshold = kDefaultHashDegreeThreshold);

  VertexId NumVertices() const { return static_cast<VertexId>(adj_.size()); }
  EdgeIndex NumEdges() const { return num_edges_; }

  /// Current coreness of v.
  uint32_t Coreness(VertexId v) const { return coreness_[v]; }

  /// The whole coreness array (e.g. to stamp a CoreDecomposition for a
  /// rebuild without touching per-vertex accessors n times).
  const std::vector<uint32_t>& CorenessValues() const { return coreness_; }

  /// Largest current coreness.
  uint32_t KMax() const;

  bool HasEdge(VertexId u, VertexId v) const;

  /// Inserts edge {u,v} and updates corenesses. InvalidArgument on
  /// self-loops, out-of-range ids, or existing edges.
  Status InsertEdge(VertexId u, VertexId v);

  /// Removes edge {u,v} and updates corenesses. NotFound if absent.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Applies a whole batch of updates (see the class comment for the
  /// schedule). The batch is validated first — InvalidArgument on any
  /// self-loop or out-of-range id, with nothing applied. Updates that the
  /// batch itself cancels (insert then remove of the same edge) or that
  /// are no-ops against the current graph (insert of a present edge,
  /// remove of an absent one) are skipped and counted in `stats`.
  /// Afterwards every coreness equals the from-scratch value on the
  /// updated graph, bit-identically.
  Status ApplyBatch(std::span<const EdgeUpdate> updates,
                    BatchStats* stats = nullptr,
                    const ApplyBatchOptions& options = {});

  /// Materializes the current graph as an immutable CSR Graph (e.g. to
  /// rebuild the HCD with PhcdBuild after a batch of updates). Adjacency
  /// lists are emitted sorted regardless of the hashed representation.
  Graph ToGraph() const;

 private:
  /// Per-vertex adjacency: a sorted vector until the degree crosses the
  /// hash threshold, then an unordered vector plus a position map with
  /// O(1) membership and swap-with-back erase.
  class AdjacencyList {
   public:
    size_t Size() const { return list_.size(); }
    /// Neighbors in unspecified order (sorted while un-hashed).
    std::span<const VertexId> Neighbors() const { return list_; }
    bool Contains(VertexId v) const;
    void Insert(VertexId v, uint32_t hash_threshold);  ///< v must be absent
    void Erase(VertexId v);                            ///< v must be present
    void AssignSorted(std::span<const VertexId> sorted_neighbors,
                      uint32_t hash_threshold);
    std::vector<VertexId> SortedCopy() const;

   private:
    std::vector<VertexId> list_;
    std::unordered_map<VertexId, uint32_t> pos_;  ///< used iff hashed_
    bool hashed_ = false;
  };

  /// Reusable per-thread scratch for one single-edge update.
  struct Scratch {
    std::vector<uint8_t> in_sub;
    std::vector<uint32_t> cd;
    std::vector<VertexId> stack;
    void EnsureSize(size_t n) {
      if (in_sub.size() < n) {
        in_sub.assign(n, 0);
        cd.assign(n, 0);
      }
    }
  };

  /// The subcore algorithms, post-validation. The edge mutation itself
  /// happens inside (insert before the BFS, remove before the peel), as
  /// the single-edge routines require.
  void InsertEdgeImpl(VertexId u, VertexId v, Scratch& scratch);
  void RemoveEdgeImpl(VertexId u, VertexId v, Scratch& scratch);

  std::vector<AdjacencyList> adj_;
  std::vector<uint32_t> coreness_;
  uint32_t hash_degree_threshold_;
  EdgeIndex num_edges_ = 0;
  Scratch scratch_;  ///< serial-path scratch (parallel rounds use a pool)
};

}  // namespace hcd

#endif  // HCD_CORE_DYNAMIC_H_
