#include "core/dynamic.h"

#include <algorithm>

#include "common/check.h"

namespace hcd {

DynamicCoreIndex::DynamicCoreIndex(const Graph& graph)
    : adj_(graph.NumVertices()),
      num_edges_(graph.NumEdges()),
      scratch_in_sub_(graph.NumVertices(), false),
      scratch_cd_(graph.NumVertices(), 0) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    auto nbrs = graph.Neighbors(v);
    adj_[v].assign(nbrs.begin(), nbrs.end());
  }
  coreness_ = BzCoreDecomposition(graph).coreness;
}

uint32_t DynamicCoreIndex::KMax() const {
  uint32_t k = 0;
  for (uint32_t c : coreness_) k = std::max(k, c);
  return k;
}

bool DynamicCoreIndex::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

Graph DynamicCoreIndex::ToGraph() const {
  std::vector<EdgeIndex> offsets(NumVertices() + 1, 0);
  for (VertexId v = 0; v < NumVertices(); ++v) {
    offsets[v + 1] = offsets[v] + adj_[v].size();
  }
  std::vector<VertexId> flat;
  flat.reserve(offsets.back());
  for (const auto& list : adj_) flat.insert(flat.end(), list.begin(), list.end());
  return Graph(std::move(offsets), std::move(flat));
}

std::vector<VertexId> DynamicCoreIndex::CollectSubcore(
    const std::vector<VertexId>& roots, uint32_t k) {
  std::vector<VertexId> sub;
  std::vector<VertexId> stack;
  for (VertexId r : roots) {
    if (coreness_[r] == k && !scratch_in_sub_[r]) {
      scratch_in_sub_[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    sub.push_back(v);
    for (VertexId u : adj_[v]) {
      if (coreness_[u] == k && !scratch_in_sub_[u]) {
        scratch_in_sub_[u] = true;
        stack.push_back(u);
      }
    }
  }
  return sub;
}

Status DynamicCoreIndex::InsertEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop");
  if (HasEdge(u, v)) return Status::InvalidArgument("edge already present");

  adj_[u].insert(std::lower_bound(adj_[u].begin(), adj_[u].end(), v), v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;

  const uint32_t k = std::min(coreness_[u], coreness_[v]);

  // Purecore pruning: a vertex can only rise to k+1 if more than k of its
  // neighbors sit at coreness >= k (its MCD), and the risen set is
  // connected to the new edge through such vertices; BFS only through
  // them.
  auto mcd_above_k = [&](VertexId w) {
    uint32_t mcd = 0;
    for (VertexId x : adj_[w]) {
      if (coreness_[x] >= k && ++mcd > k) return true;
    }
    return false;
  };
  std::vector<VertexId> sub;
  std::vector<VertexId> stack_bfs;
  for (VertexId r : {u, v}) {
    if (coreness_[r] == k && !scratch_in_sub_[r] && mcd_above_k(r)) {
      scratch_in_sub_[r] = true;
      stack_bfs.push_back(r);
    }
  }
  while (!stack_bfs.empty()) {
    VertexId w = stack_bfs.back();
    stack_bfs.pop_back();
    sub.push_back(w);
    for (VertexId x : adj_[w]) {
      if (coreness_[x] == k && !scratch_in_sub_[x] && mcd_above_k(x)) {
        scratch_in_sub_[x] = true;
        stack_bfs.push_back(x);
      }
    }
  }

  // Candidate degree toward level k+1: neighbors already above k plus
  // candidate subcore members (pruned equal-coreness neighbors stay at k
  // and cannot support level k+1).
  for (VertexId w : sub) {
    uint32_t cd = 0;
    for (VertexId x : adj_[w]) {
      cd += coreness_[x] > k || scratch_in_sub_[x];
    }
    scratch_cd_[w] = cd;
  }
  // Peel members that cannot reach degree k+1.
  std::vector<VertexId> stack;
  for (VertexId w : sub) {
    if (scratch_cd_[w] <= k) stack.push_back(w);
  }
  while (!stack.empty()) {
    VertexId w = stack.back();
    stack.pop_back();
    if (!scratch_in_sub_[w]) continue;
    scratch_in_sub_[w] = false;  // peeled out of the candidate set
    for (VertexId x : adj_[w]) {
      if (scratch_in_sub_[x] && scratch_cd_[x]-- == k + 1) stack.push_back(x);
    }
  }
  for (VertexId w : sub) {
    if (scratch_in_sub_[w]) {
      coreness_[w] = k + 1;
      scratch_in_sub_[w] = false;
    }
  }
  return Status::Ok();
}

Status DynamicCoreIndex::RemoveEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices() || u == v || !HasEdge(u, v)) {
    return Status::NotFound("edge not present");
  }
  adj_[u].erase(std::lower_bound(adj_[u].begin(), adj_[u].end(), v));
  adj_[v].erase(std::lower_bound(adj_[v].begin(), adj_[v].end(), u));
  --num_edges_;

  const uint32_t k = std::min(coreness_[u], coreness_[v]);
  if (k == 0) return Status::Ok();
  std::vector<VertexId> roots;
  if (coreness_[u] == k) roots.push_back(u);
  if (coreness_[v] == k) roots.push_back(v);
  std::vector<VertexId> sub = CollectSubcore(roots, k);

  // Support at level k: neighbors of coreness >= k.
  for (VertexId w : sub) {
    uint32_t cd = 0;
    for (VertexId x : adj_[w]) cd += coreness_[x] >= k;
    scratch_cd_[w] = cd;
  }
  std::vector<VertexId> stack;
  for (VertexId w : sub) {
    if (scratch_cd_[w] < k) stack.push_back(w);
  }
  while (!stack.empty()) {
    VertexId w = stack.back();
    stack.pop_back();
    if (!scratch_in_sub_[w]) continue;
    scratch_in_sub_[w] = false;
    coreness_[w] = k - 1;
    for (VertexId x : adj_[w]) {
      // x loses w's support at level k whether x is in the subcore or has
      // higher coreness; only subcore members track cd.
      if (scratch_in_sub_[x] && scratch_cd_[x]-- == k) stack.push_back(x);
    }
  }
  for (VertexId w : sub) scratch_in_sub_[w] = false;
  return Status::Ok();
}

}  // namespace hcd
