#include "core/dynamic.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/trace.h"
#include "parallel/omp_utils.h"

namespace hcd {

// ---------------------------------------------------------------------------
// AdjacencyList: sorted vector below the hash threshold, unordered vector +
// position map above it. The hashed shape trades ordered iteration (which
// no algorithm here needs) for O(1) membership, insert and erase on hubs.
// ---------------------------------------------------------------------------

bool DynamicCoreIndex::AdjacencyList::Contains(VertexId v) const {
  if (hashed_) return pos_.find(v) != pos_.end();
  return std::binary_search(list_.begin(), list_.end(), v);
}

void DynamicCoreIndex::AdjacencyList::Insert(VertexId v,
                                             uint32_t hash_threshold) {
  HCD_DCHECK(!Contains(v));
  if (!hashed_ && list_.size() >= hash_threshold) {
    pos_.reserve(list_.size() * 2);
    for (uint32_t i = 0; i < list_.size(); ++i) pos_.emplace(list_[i], i);
    hashed_ = true;
  }
  if (hashed_) {
    pos_.emplace(v, static_cast<uint32_t>(list_.size()));
    list_.push_back(v);
  } else {
    list_.insert(std::lower_bound(list_.begin(), list_.end(), v), v);
  }
}

void DynamicCoreIndex::AdjacencyList::Erase(VertexId v) {
  if (hashed_) {
    auto it = pos_.find(v);
    HCD_DCHECK(it != pos_.end());
    const uint32_t i = it->second;
    const VertexId last = list_.back();
    list_[i] = last;
    pos_[last] = i;  // no-op rebind when v is the last element itself
    pos_.erase(v);
    list_.pop_back();
  } else {
    list_.erase(std::lower_bound(list_.begin(), list_.end(), v));
  }
}

void DynamicCoreIndex::AdjacencyList::AssignSorted(
    std::span<const VertexId> sorted_neighbors, uint32_t hash_threshold) {
  list_.assign(sorted_neighbors.begin(), sorted_neighbors.end());
  if (list_.size() > hash_threshold) {
    pos_.reserve(list_.size() * 2);
    for (uint32_t i = 0; i < list_.size(); ++i) pos_.emplace(list_[i], i);
    hashed_ = true;
  }
}

std::vector<VertexId> DynamicCoreIndex::AdjacencyList::SortedCopy() const {
  std::vector<VertexId> copy(list_.begin(), list_.end());
  if (hashed_) std::sort(copy.begin(), copy.end());
  return copy;
}

// ---------------------------------------------------------------------------
// DynamicCoreIndex
// ---------------------------------------------------------------------------

DynamicCoreIndex::DynamicCoreIndex(const Graph& graph,
                                   uint32_t hash_degree_threshold)
    : adj_(graph.NumVertices()),
      hash_degree_threshold_(hash_degree_threshold),
      num_edges_(graph.NumEdges()) {
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    adj_[v].AssignSorted(graph.Neighbors(v), hash_degree_threshold_);
  }
  coreness_ = BzCoreDecomposition(graph).coreness;
  scratch_.EnsureSize(graph.NumVertices());
}

uint32_t DynamicCoreIndex::KMax() const {
  uint32_t k = 0;
  for (uint32_t c : coreness_) k = std::max(k, c);
  return k;
}

bool DynamicCoreIndex::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  return adj_[u].Contains(v);
}

Graph DynamicCoreIndex::ToGraph() const {
  std::vector<EdgeIndex> offsets(NumVertices() + 1, 0);
  for (VertexId v = 0; v < NumVertices(); ++v) {
    offsets[v + 1] = offsets[v] + adj_[v].Size();
  }
  std::vector<VertexId> flat;
  flat.reserve(offsets.back());
  for (const AdjacencyList& list : adj_) {
    const std::vector<VertexId> sorted = list.SortedCopy();
    flat.insert(flat.end(), sorted.begin(), sorted.end());
  }
  return Graph(std::move(offsets), std::move(flat));
}

void DynamicCoreIndex::InsertEdgeImpl(VertexId u, VertexId v,
                                      Scratch& scratch) {
  adj_[u].Insert(v, hash_degree_threshold_);
  adj_[v].Insert(u, hash_degree_threshold_);

  const uint32_t k = std::min(coreness_[u], coreness_[v]);

  // Purecore pruning: a vertex can only rise to k+1 if more than k of its
  // neighbors sit at coreness >= k (its MCD), and the risen set is
  // connected to the new edge through such vertices; BFS only through
  // them.
  auto mcd_above_k = [&](VertexId w) {
    uint32_t mcd = 0;
    for (VertexId x : adj_[w].Neighbors()) {
      if (coreness_[x] >= k && ++mcd > k) return true;
    }
    return false;
  };
  std::vector<VertexId> sub;
  std::vector<VertexId>& stack = scratch.stack;
  stack.clear();
  for (VertexId r : {u, v}) {
    if (coreness_[r] == k && !scratch.in_sub[r] && mcd_above_k(r)) {
      scratch.in_sub[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    VertexId w = stack.back();
    stack.pop_back();
    sub.push_back(w);
    for (VertexId x : adj_[w].Neighbors()) {
      if (coreness_[x] == k && !scratch.in_sub[x] && mcd_above_k(x)) {
        scratch.in_sub[x] = 1;
        stack.push_back(x);
      }
    }
  }

  // Candidate degree toward level k+1: neighbors already above k plus
  // candidate subcore members (pruned equal-coreness neighbors stay at k
  // and cannot support level k+1).
  for (VertexId w : sub) {
    uint32_t cd = 0;
    for (VertexId x : adj_[w].Neighbors()) {
      cd += coreness_[x] > k || scratch.in_sub[x];
    }
    scratch.cd[w] = cd;
  }
  // Peel members that cannot reach degree k+1.
  for (VertexId w : sub) {
    if (scratch.cd[w] <= k) stack.push_back(w);
  }
  while (!stack.empty()) {
    VertexId w = stack.back();
    stack.pop_back();
    if (!scratch.in_sub[w]) continue;
    scratch.in_sub[w] = 0;  // peeled out of the candidate set
    for (VertexId x : adj_[w].Neighbors()) {
      if (scratch.in_sub[x] && scratch.cd[x]-- == k + 1) stack.push_back(x);
    }
  }
  for (VertexId w : sub) {
    if (scratch.in_sub[w]) {
      coreness_[w] = k + 1;
      scratch.in_sub[w] = 0;
    }
  }
}

void DynamicCoreIndex::RemoveEdgeImpl(VertexId u, VertexId v,
                                      Scratch& scratch) {
  adj_[u].Erase(v);
  adj_[v].Erase(u);

  const uint32_t k = std::min(coreness_[u], coreness_[v]);
  if (k == 0) return;

  // The subcore: vertices of coreness exactly k reachable from the lost
  // edge through coreness-k vertices.
  std::vector<VertexId> sub;
  std::vector<VertexId>& stack = scratch.stack;
  stack.clear();
  for (VertexId r : {u, v}) {
    if (coreness_[r] == k && !scratch.in_sub[r]) {
      scratch.in_sub[r] = 1;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    VertexId w = stack.back();
    stack.pop_back();
    sub.push_back(w);
    for (VertexId x : adj_[w].Neighbors()) {
      if (coreness_[x] == k && !scratch.in_sub[x]) {
        scratch.in_sub[x] = 1;
        stack.push_back(x);
      }
    }
  }

  // Support at level k: neighbors of coreness >= k.
  for (VertexId w : sub) {
    uint32_t cd = 0;
    for (VertexId x : adj_[w].Neighbors()) cd += coreness_[x] >= k;
    scratch.cd[w] = cd;
  }
  for (VertexId w : sub) {
    if (scratch.cd[w] < k) stack.push_back(w);
  }
  while (!stack.empty()) {
    VertexId w = stack.back();
    stack.pop_back();
    if (!scratch.in_sub[w]) continue;
    scratch.in_sub[w] = 0;
    coreness_[w] = k - 1;
    for (VertexId x : adj_[w].Neighbors()) {
      // x loses w's support at level k whether x is in the subcore or has
      // higher coreness; only subcore members track cd.
      if (scratch.in_sub[x] && scratch.cd[x]-- == k) stack.push_back(x);
    }
  }
  for (VertexId w : sub) scratch.in_sub[w] = 0;
}

Status DynamicCoreIndex::InsertEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices()) {
    return Status::InvalidArgument("vertex out of range");
  }
  if (u == v) return Status::InvalidArgument("self-loop");
  if (HasEdge(u, v)) return Status::InvalidArgument("edge already present");
  scratch_.EnsureSize(NumVertices());
  InsertEdgeImpl(u, v, scratch_);
  ++num_edges_;
  return Status::Ok();
}

Status DynamicCoreIndex::RemoveEdge(VertexId u, VertexId v) {
  if (u >= NumVertices() || v >= NumVertices() || u == v || !HasEdge(u, v)) {
    return Status::NotFound("edge not present");
  }
  scratch_.EnsureSize(NumVertices());
  RemoveEdgeImpl(u, v, scratch_);
  --num_edges_;
  return Status::Ok();
}

Status DynamicCoreIndex::ApplyBatch(std::span<const EdgeUpdate> updates,
                                    BatchStats* stats,
                                    const ApplyBatchOptions& options) {
  ScopedSpan span("dynamic.apply_batch");
  span.AddArg("updates", updates.size());
  const VertexId n = NumVertices();
  BatchStats local;
  BatchStats& st = stats != nullptr ? *stats : local;
  st = BatchStats{};
  st.requested = updates.size();

  // Validate before mutating anything: a bad batch is rejected whole.
  for (const EdgeUpdate& up : updates) {
    if (up.u >= n || up.v >= n) {
      return Status::InvalidArgument("vertex out of range in batch");
    }
    if (up.u == up.v) return Status::InvalidArgument("self-loop in batch");
  }

  // Dedup to the batch's net effect: replay the ops per edge against the
  // current graph, so insert-then-remove cancels, repeats are redundant,
  // and every surviving edge appears exactly once as a toggle.
  struct NetUpdate {
    VertexId u, v;
    EdgeOp op;
  };
  auto key_of = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (uint64_t{a} << 32) | b;
  };
  std::unordered_map<uint64_t, std::pair<bool, bool>> sim;  // initial, now
  std::vector<uint64_t> first_seen;
  sim.reserve(updates.size() * 2);
  size_t toggles = 0;
  for (const EdgeUpdate& up : updates) {
    const uint64_t key = key_of(up.u, up.v);
    auto it = sim.find(key);
    if (it == sim.end()) {
      const bool present = HasEdge(up.u, up.v);
      it = sim.emplace(key, std::make_pair(present, present)).first;
      first_seen.push_back(key);
    }
    const bool want_present = up.op == EdgeOp::kInsert;
    if (want_present == it->second.second) {
      ++st.redundant;
      continue;
    }
    it->second.second = want_present;
    ++toggles;
  }
  std::vector<NetUpdate> pending;
  pending.reserve(first_seen.size());
  int64_t edge_delta = 0;
  for (uint64_t key : first_seen) {
    const auto [initial, now] = sim[key];
    if (initial == now) continue;
    const VertexId u = static_cast<VertexId>(key >> 32);
    const VertexId v = static_cast<VertexId>(key & 0xffffffffu);
    pending.push_back({u, v, now ? EdgeOp::kInsert : EdgeOp::kRemove});
    edge_delta += now ? 1 : -1;
    st.applied_edges.emplace_back(u, v);
  }
  st.applied = pending.size();
  st.deduped = toggles - pending.size();

  std::vector<uint32_t> before;
  if (stats != nullptr) before = coreness_;

  scratch_.EnsureSize(n);
  const bool run_parallel =
      options.parallel && pending.size() > 1 && MaxThreads() > 1;
  if (!run_parallel) {
    // Sequential fallback: the plain single-edge schedule, exact at every
    // step, one subcore per update.
    st.rounds = pending.empty() ? 0 : 1;
    st.subcores_touched = pending.size();
    for (const NetUpdate& nu : pending) {
      if (nu.op == EdgeOp::kInsert) {
        InsertEdgeImpl(nu.u, nu.v, scratch_);
      } else {
        RemoveEdgeImpl(nu.u, nu.v, scratch_);
      }
    }
  } else {
    // Round-based parallel schedule (see header): per round, take the
    // stratum of pending updates at the minimal current root coreness K,
    // split it into clusters by connected component of the coreness-K
    // subgraph (merging clusters that share any endpoint vertex), and run
    // the clusters concurrently. Every applied update re-checks that its
    // root coreness still equals K at application time and is deferred to
    // a later round otherwise — during a round coreness values only leave
    // K (to K+1 on inserts, K-1 on deletes), never enter it, so the
    // K-components can only shrink and distinct clusters stay disjoint
    // for the round's whole lifetime.
    std::vector<Scratch> pool(static_cast<size_t>(MaxThreads()));
    std::vector<NetUpdate> work = std::move(pending);
    while (!work.empty()) {
      ++st.rounds;
      uint32_t kmin = std::numeric_limits<uint32_t>::max();
      for (const NetUpdate& nu : work) {
        kmin = std::min(kmin, std::min(coreness_[nu.u], coreness_[nu.v]));
      }
      std::vector<size_t> stratum;
      std::vector<NetUpdate> rest;
      for (size_t i = 0; i < work.size(); ++i) {
        const NetUpdate& nu = work[i];
        if (std::min(coreness_[nu.u], coreness_[nu.v]) == kmin) {
          stratum.push_back(i);
        } else {
          rest.push_back(nu);
        }
      }

      // Union-find over stratum positions; vertices claim their owning
      // update, collisions merge clusters.
      std::vector<size_t> parent(stratum.size());
      std::iota(parent.begin(), parent.end(), size_t{0});
      auto find = [&parent](size_t x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
      auto unite = [&](size_t a, size_t b) {
        a = find(a);
        b = find(b);
        if (a != b) parent[std::max(a, b)] = std::min(a, b);
      };
      std::unordered_map<VertexId, size_t> owner;
      auto claim = [&](VertexId x, size_t pos) {
        auto [it, inserted] = owner.emplace(x, pos);
        if (!inserted) {
          unite(pos, it->second);
          return false;
        }
        return true;
      };
      std::vector<VertexId> bfs;
      for (size_t p = 0; p < stratum.size(); ++p) {
        const NetUpdate& nu = work[stratum[p]];
        for (VertexId e : {nu.u, nu.v}) {
          if (!claim(e, p)) continue;
          if (coreness_[e] != kmin) continue;  // endpoint above K: claimed
                                               // only to detect sharing
          bfs.assign(1, e);
          while (!bfs.empty()) {
            const VertexId w = bfs.back();
            bfs.pop_back();
            for (VertexId x : adj_[w].Neighbors()) {
              if (coreness_[x] == kmin && claim(x, p)) bfs.push_back(x);
            }
          }
        }
      }

      std::vector<std::vector<size_t>> clusters;
      std::unordered_map<size_t, size_t> slot_of_root;
      for (size_t p = 0; p < stratum.size(); ++p) {
        const size_t root = find(p);
        auto [it, inserted] = slot_of_root.emplace(root, clusters.size());
        if (inserted) clusters.emplace_back();
        clusters[it->second].push_back(p);
      }
      st.subcores_touched += clusters.size();

      std::vector<std::vector<NetUpdate>> deferred(clusters.size());
      if (clusters.size() == 1) {
        for (size_t p : clusters[0]) {
          const NetUpdate& nu = work[stratum[p]];
          if (std::min(coreness_[nu.u], coreness_[nu.v]) != kmin) {
            deferred[0].push_back(nu);
            continue;
          }
          if (nu.op == EdgeOp::kInsert) {
            InsertEdgeImpl(nu.u, nu.v, scratch_);
          } else {
            RemoveEdgeImpl(nu.u, nu.v, scratch_);
          }
        }
      } else {
        ++st.parallel_rounds;
#pragma omp parallel for schedule(dynamic, 1)
        for (int64_t c = 0; c < static_cast<int64_t>(clusters.size()); ++c) {
          Scratch& scratch = pool[static_cast<size_t>(ThreadId())];
          scratch.EnsureSize(n);
          for (size_t p : clusters[static_cast<size_t>(c)]) {
            const NetUpdate& nu = work[stratum[p]];
            if (std::min(coreness_[nu.u], coreness_[nu.v]) != kmin) {
              deferred[static_cast<size_t>(c)].push_back(nu);
              continue;
            }
            if (nu.op == EdgeOp::kInsert) {
              InsertEdgeImpl(nu.u, nu.v, scratch);
            } else {
              RemoveEdgeImpl(nu.u, nu.v, scratch);
            }
          }
        }
      }
      for (const auto& d : deferred) {
        rest.insert(rest.end(), d.begin(), d.end());
      }
      work = std::move(rest);
    }
  }
  num_edges_ = static_cast<EdgeIndex>(static_cast<int64_t>(num_edges_) +
                                      edge_delta);

  if (stats != nullptr) {
    for (VertexId v = 0; v < n; ++v) {
      if (coreness_[v] != before[v]) st.changed_vertices.push_back(v);
    }
    st.coreness_changed = st.changed_vertices.size();
  }
  span.AddArg("applied", st.applied);
  span.AddArg("rounds", st.rounds);
  span.AddArg("subcores", st.subcores_touched);

  if (options.verify_with_bz) {
    const CoreDecomposition fresh = BzCoreDecomposition(ToGraph());
    if (fresh.coreness != coreness_) {
      return Status::Internal(
          "batch-dynamic coreness diverged from BZ recomputation");
    }
  }
  return Status::Ok();
}

}  // namespace hcd
