#include "core/core_decomposition.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "common/trace.h"
#include "parallel/omp_utils.h"

namespace hcd {

std::vector<VertexId> KShellSizes(const CoreDecomposition& cd) {
  std::vector<VertexId> sizes(cd.k_max + 1, 0);
  for (uint32_t c : cd.coreness) {
    HCD_DCHECK(c <= cd.k_max);
    ++sizes[c];
  }
  return sizes;
}

CoreDecomposition BzCoreDecomposition(const Graph& graph, TelemetrySink* sink) {
  ScopedStage stage(sink, "decomposition");
  const VertexId n = graph.NumVertices();
  CoreDecomposition cd;
  cd.coreness.assign(n, 0);
  if (n == 0) return cd;

  std::vector<VertexId> deg(n);
  VertexId max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = graph.Degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket all vertices by degree: vert is sorted by degree, pos[v] is v's
  // index in vert, bin[d] is the start of degree-d vertices.
  std::vector<VertexId> bin(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<VertexId> vert(n);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]];
      vert[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }

  for (VertexId i = 0; i < n; ++i) {
    VertexId v = vert[i];
    cd.coreness[v] = deg[v];
    for (VertexId u : graph.Neighbors(v)) {
      if (deg[u] > deg[v]) {
        // Move u to the front of its bucket, then shrink it into the
        // (deg[u]-1)-bucket.
        VertexId du = deg[u];
        VertexId pu = pos[u];
        VertexId pw = bin[du];
        VertexId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }
  cd.k_max = n > 0 ? *std::max_element(cd.coreness.begin(), cd.coreness.end())
                   : 0;
  stage.AddCounter("k_max", cd.k_max);
  return cd;
}

CoreDecomposition PkcCoreDecomposition(const Graph& graph, TelemetrySink* sink) {
  ScopedStage stage(sink, "decomposition");
  const VertexId n = graph.NumVertices();
  CoreDecomposition cd;
  cd.coreness.assign(n, 0);
  if (n == 0) return cd;

  std::unique_ptr<std::atomic<uint32_t>[]> deg(new std::atomic<uint32_t>[n]);
  ParallelFor<VertexId>(0, n, [&](VertexId v) {
    deg[v].store(graph.Degree(v), std::memory_order_relaxed);
  });

  uint64_t visited = 0;
  uint32_t level = 0;
  uint32_t observed_kmax = 0;
  const uint32_t max_deg = graph.MaxDegree();
  while (visited < n) {
    uint64_t round = 0;
    // One span per peeling round (orchestrating thread) plus one per worker
    // inside the region: the per-worker spans expose the round's load
    // balance, which a flat per-stage time cannot show.
    ScopedSpan round_span("pkc.round");
    round_span.AddArg("level", level);
#pragma omp parallel reduction(+ : round)
    {
      ScopedSpan worker_span("pkc.round.worker");
      worker_span.AddArg("level", level);
      std::vector<VertexId> buff;
#pragma omp for schedule(static)
      for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
        VertexId v = static_cast<VertexId>(vi);
        if (deg[v].load(std::memory_order_relaxed) == level) buff.push_back(v);
      }
      while (!buff.empty()) {
        VertexId v = buff.back();
        buff.pop_back();
        cd.coreness[v] = level;
        ++round;
        for (VertexId u : graph.Neighbors(v)) {
          if (deg[u].load(std::memory_order_relaxed) > level) {
            uint32_t prev = deg[u].fetch_sub(1);
            if (prev == level + 1) {
              // Exactly one decrementer sees the transition to `level`.
              buff.push_back(u);
            } else if (prev <= level) {
              // Racing decrement of a vertex already at/below the current
              // level: undo so its degree never sinks under `level` and
              // gets re-scanned at a later level.
              deg[u].fetch_add(1);
            }
          }
        }
      }
    }
    round_span.AddArg("peeled", round);
    if (round > 0) observed_kmax = level;
    visited += round;
    ++level;
    HCD_CHECK(level <= max_deg + 1) << "PKC failed to converge";
  }
  cd.k_max = observed_kmax;
  stage.AddCounter("levels", level);
  stage.AddCounter("k_max", cd.k_max);
  return cd;
}

}  // namespace hcd
