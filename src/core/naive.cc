#include "core/naive.h"

#include <algorithm>
#include <vector>

namespace hcd {

CoreDecomposition NaiveCoreDecomposition(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  CoreDecomposition cd;
  cd.coreness.assign(n, 0);
  if (n == 0) return cd;

  std::vector<bool> alive(n, true);
  std::vector<VertexId> deg(n);
  for (VertexId v = 0; v < n; ++v) deg[v] = graph.Degree(v);

  uint32_t k = 1;
  VertexId remaining = n;
  while (remaining > 0) {
    // Strip everything with degree < k; survivors have coreness >= k.
    std::vector<VertexId> to_remove;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < k) to_remove.push_back(v);
    }
    while (!to_remove.empty()) {
      VertexId v = to_remove.back();
      to_remove.pop_back();
      if (!alive[v]) continue;
      alive[v] = false;
      --remaining;
      for (VertexId u : graph.Neighbors(v)) {
        if (alive[u] && deg[u]-- == k) to_remove.push_back(u);
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) cd.coreness[v] = k;
    }
    ++k;
  }
  cd.k_max = *std::max_element(cd.coreness.begin(), cd.coreness.end());
  return cd;
}

bool VerifyCoreDecomposition(const Graph& graph, const CoreDecomposition& cd) {
  CoreDecomposition oracle = NaiveCoreDecomposition(graph);
  return oracle.coreness == cd.coreness && oracle.k_max == cd.k_max;
}

}  // namespace hcd
