#ifndef HCD_CORE_MPM_H_
#define HCD_CORE_MPM_H_

#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// Core decomposition by iterated h-index (the locality property behind the
/// distributed MPM algorithm, Montresor et al., cited as [21] by the
/// paper): start from c_0(v) = d(v) and repeatedly set c_{t+1}(v) to the
/// h-index of its neighbors' current values; the fixpoint is the coreness.
/// Converges in at most k_max rounds in practice; each round is an
/// embarrassingly parallel scan. O(m * rounds) work — slower than PKC in
/// the worst case but a useful independent parallel implementation (and a
/// third cross-check of BZ/PKC in tests).
CoreDecomposition MpmCoreDecomposition(const Graph& graph);

}  // namespace hcd

#endif  // HCD_CORE_MPM_H_
