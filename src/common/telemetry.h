#ifndef HCD_COMMON_TELEMETRY_H_
#define HCD_COMMON_TELEMETRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace hcd {

/// One named counter attached to a pipeline stage (e.g. peeling levels,
/// union-find shells, tree nodes created).
struct StageCounter {
  std::string name;
  uint64_t value = 0;
};

/// One completed pipeline stage: a label, its wall time, and any cheap
/// counters the stage chose to report.
struct StageRecord {
  std::string stage;
  double seconds = 0.0;
  std::vector<StageCounter> counters;
};

/// Receiver for per-stage telemetry. Library entry points take an optional
/// `TelemetrySink*` defaulted to null; passing null keeps the call free of
/// any instrumentation cost beyond a pointer test.
///
/// Thread-safety contract: build-phase stages (load, decomposition,
/// construction, search index building) are reported from the orchestrating
/// thread — never from inside a parallel region — so a plain sink such as
/// `StageTelemetry` suffices there. Serve-phase stages (`search.score` from
/// `QuerySnapshot::Search`) may be reported by many query threads at once;
/// those callers must hand the library a thread-safe sink — wrap any plain
/// sink in `ConcurrentTelemetrySink` below.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void RecordStage(const StageRecord& record) = 0;
};

/// Concrete sink that accumulates stage records in order and can render
/// them as a machine-readable JSON report (used by `hcd_cli --json`).
class StageTelemetry : public TelemetrySink {
 public:
  void RecordStage(const StageRecord& record) override {
    records_.push_back(record);
  }

  const std::vector<StageRecord>& records() const { return records_; }

  /// Sum of all recorded stage times.
  double TotalSeconds() const;

  /// Label of the longest recorded stage, or "" when empty.
  const std::string& PeakStage() const;

  /// Number of records whose label equals `stage`.
  size_t CountStage(const std::string& stage) const;

  /// Total seconds across records whose label equals `stage`.
  double StageSeconds(const std::string& stage) const;

  /// `{"stages":[{"name":...,"seconds":...,"counters":{...}},...],
  ///   "total_seconds":...,"peak_stage":...}`.
  std::string ToJson() const;

  void Clear() { records_.clear(); }

 private:
  std::vector<StageRecord> records_;
};

/// Thread-safe decorator: serializes RecordStage calls onto an inner sink
/// with a mutex, making any single-threaded sink usable from concurrent
/// query threads. Record order across threads is the mutex acquisition
/// order (per-stage counts and totals are exact; inter-thread ordering is
/// not meaningful). The inner sink must outlive the decorator, and must not
/// be written through any other path while the decorator is in use.
class ConcurrentTelemetrySink : public TelemetrySink {
 public:
  explicit ConcurrentTelemetrySink(TelemetrySink* inner) : inner_(inner) {}

  void RecordStage(const StageRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->RecordStage(record);
  }

 private:
  std::mutex mu_;
  TelemetrySink* inner_;
};

/// RAII stage timer: starts on construction and reports the stage to the
/// sink on destruction.
///
/// The stage also bridges into the process-wide observability layer when
/// one is installed: with a Tracer::Current() it records a span (counters
/// become span args), and with a MetricsRegistry::Current() it observes the
/// stage's wall time in the `hcd_stage_seconds{stage=...}` histogram family
/// and bumps `hcd_stage_runs_total` / `hcd_stage_counter_total`. With a
/// null sink and neither installed, every operation reduces to pointer
/// tests (two relaxed atomic loads at construction) — no clock read, no
/// allocation — which is how un-instrumented library calls stay free.
class ScopedStage {
 public:
  ScopedStage(TelemetrySink* sink, std::string stage)
      : sink_(sink),
        tracer_(Tracer::Current()),
        registry_(MetricsRegistry::Current()) {
    if (!Active()) return;
    record_.stage = std::move(stage);
    if (tracer_ != nullptr) start_ns_ = tracer_->NowNs();
  }
  ~ScopedStage() {
    if (!Active()) return;
    Finish();
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  /// Attaches a counter to the stage record (no-op when inactive).
  void AddCounter(std::string name, uint64_t value) {
    if (Active()) record_.counters.push_back({std::move(name), value});
  }

 private:
  bool Active() const {
    return sink_ != nullptr || tracer_ != nullptr || registry_ != nullptr;
  }

  /// Out-of-line slow path: reports to the sink, the tracer and the metrics
  /// registry (whichever are present).
  void Finish();

  TelemetrySink* sink_;
  Tracer* tracer_;
  MetricsRegistry* registry_;
  StageRecord record_;
  Timer timer_;
  uint64_t start_ns_ = 0;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslashes
/// and control characters).
std::string JsonEscape(const std::string& s);

/// `value` if it is a finite number, else 0.0. Every ratio printed into a
/// JSON report must pass through this: a zero-duration or zero-read run
/// otherwise divides by zero and emits `inf`/`nan`, which no strict JSON
/// parser accepts (json.loads, the test parser in tests/test_util.h, most
/// dashboards).
inline double FiniteOrZero(double value) {
  return __builtin_isfinite(value) ? value : 0.0;
}

}  // namespace hcd

#endif  // HCD_COMMON_TELEMETRY_H_
