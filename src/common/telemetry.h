#ifndef HCD_COMMON_TELEMETRY_H_
#define HCD_COMMON_TELEMETRY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace hcd {

/// One named counter attached to a pipeline stage (e.g. peeling levels,
/// union-find shells, tree nodes created).
struct StageCounter {
  std::string name;
  uint64_t value = 0;
};

/// One completed pipeline stage: a label, its wall time, and any cheap
/// counters the stage chose to report.
struct StageRecord {
  std::string stage;
  double seconds = 0.0;
  std::vector<StageCounter> counters;
};

/// Receiver for per-stage telemetry. Library entry points take an optional
/// `TelemetrySink*` defaulted to null; passing null keeps the call free of
/// any instrumentation cost beyond a pointer test.
///
/// Thread-safety contract: build-phase stages (load, decomposition,
/// construction, search index building) are reported from the orchestrating
/// thread — never from inside a parallel region — so a plain sink such as
/// `StageTelemetry` suffices there. Serve-phase stages (`search.score` from
/// `QuerySnapshot::Search`) may be reported by many query threads at once;
/// those callers must hand the library a thread-safe sink — wrap any plain
/// sink in `ConcurrentTelemetrySink` below.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void RecordStage(const StageRecord& record) = 0;
};

/// Concrete sink that accumulates stage records in order and can render
/// them as a machine-readable JSON report (used by `hcd_cli --json`).
class StageTelemetry : public TelemetrySink {
 public:
  void RecordStage(const StageRecord& record) override {
    records_.push_back(record);
  }

  const std::vector<StageRecord>& records() const { return records_; }

  /// Sum of all recorded stage times.
  double TotalSeconds() const;

  /// Label of the longest recorded stage, or "" when empty.
  const std::string& PeakStage() const;

  /// Number of records whose label equals `stage`.
  size_t CountStage(const std::string& stage) const;

  /// Total seconds across records whose label equals `stage`.
  double StageSeconds(const std::string& stage) const;

  /// `{"stages":[{"name":...,"seconds":...,"counters":{...}},...],
  ///   "total_seconds":...,"peak_stage":...}`.
  std::string ToJson() const;

  void Clear() { records_.clear(); }

 private:
  std::vector<StageRecord> records_;
};

/// Thread-safe decorator: serializes RecordStage calls onto an inner sink
/// with a mutex, making any single-threaded sink usable from concurrent
/// query threads. Record order across threads is the mutex acquisition
/// order (per-stage counts and totals are exact; inter-thread ordering is
/// not meaningful). The inner sink must outlive the decorator, and must not
/// be written through any other path while the decorator is in use.
class ConcurrentTelemetrySink : public TelemetrySink {
 public:
  explicit ConcurrentTelemetrySink(TelemetrySink* inner) : inner_(inner) {}

  void RecordStage(const StageRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->RecordStage(record);
  }

 private:
  std::mutex mu_;
  TelemetrySink* inner_;
};

/// RAII stage timer: starts on construction and reports the stage to the
/// sink on destruction. A null sink makes every operation a no-op, which is
/// how un-instrumented library calls stay free.
class ScopedStage {
 public:
  ScopedStage(TelemetrySink* sink, std::string stage) : sink_(sink) {
    if (sink_ != nullptr) record_.stage = std::move(stage);
  }
  ~ScopedStage() {
    if (sink_ == nullptr) return;
    record_.seconds = timer_.Seconds();
    sink_->RecordStage(record_);
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  /// Attaches a counter to the stage record (no-op without a sink).
  void AddCounter(std::string name, uint64_t value) {
    if (sink_ != nullptr) record_.counters.push_back({std::move(name), value});
  }

 private:
  TelemetrySink* sink_;
  StageRecord record_;
  Timer timer_;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslashes
/// and control characters).
std::string JsonEscape(const std::string& s);

}  // namespace hcd

#endif  // HCD_COMMON_TELEMETRY_H_
