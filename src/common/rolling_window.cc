#include "common/rolling_window.h"

#include <algorithm>
#include <utility>

namespace hcd {

HistogramSample SampleHistogram(const Histogram& histogram) {
  HistogramSample sample;
  for (size_t i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
    sample.buckets[i] = histogram.BucketCount(i);
  }
  sample.sum_seconds = histogram.Sum();
  return sample;
}

HistogramSample SubtractSample(const HistogramSample& newer,
                               const HistogramSample& older) {
  HistogramSample delta;
  for (size_t i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
    delta.buckets[i] = newer.buckets[i] >= older.buckets[i]
                           ? newer.buckets[i] - older.buckets[i]
                           : 0;
  }
  delta.sum_seconds = std::max(newer.sum_seconds - older.sum_seconds, 0.0);
  return delta;
}

double SampleQuantile(const HistogramSample& sample, double q) {
  return HistogramBucketQuantile(sample.buckets, q);
}

RollingWindow::RollingWindow(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 2)) {}

void RollingWindow::Push(WindowSample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t RollingWindow::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

bool RollingWindow::Delta(size_t ticks_back, WindowSample* delta) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return false;
  ticks_back = std::max<size_t>(ticks_back, 1);
  const WindowSample& newest = ring_.back();
  const size_t oldest_index =
      ring_.size() - 1 >= ticks_back ? ring_.size() - 1 - ticks_back : 0;
  const WindowSample& base = ring_[oldest_index];

  delta->at_seconds = std::max(newest.at_seconds - base.at_seconds, 0.0);
  delta->counters.assign(newest.counters.size(), 0);
  for (size_t i = 0; i < newest.counters.size(); ++i) {
    const uint64_t before = i < base.counters.size() ? base.counters[i] : 0;
    delta->counters[i] =
        newest.counters[i] >= before ? newest.counters[i] - before : 0;
  }
  delta->histograms.clear();
  delta->histograms.reserve(newest.histograms.size());
  static const HistogramSample kEmpty;
  for (size_t i = 0; i < newest.histograms.size(); ++i) {
    const HistogramSample& before =
        i < base.histograms.size() ? base.histograms[i] : kEmpty;
    delta->histograms.push_back(SubtractSample(newest.histograms[i], before));
  }
  return true;
}

}  // namespace hcd
