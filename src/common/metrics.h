#ifndef HCD_COMMON_METRICS_H_
#define HCD_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hcd {

/// Label set attached to one instrument, e.g. {{"stage", "load"}}. Order is
/// preserved in the rendered output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. All operations are lock-free relaxed atomics; safe
/// from any number of threads.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge (stored as a bit pattern so the atomic is
/// always lock-free).
class Gauge {
 public:
  void Set(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double value;
    __builtin_memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Log-bucketed latency histogram: bucket i counts observations at most
/// `1e-6 * 2^i` seconds (1 us, 2 us, 4 us, ... ~17.9 min), plus a final
/// overflow (+Inf) bucket. Observe is lock-free (one fetch_add on the
/// bucket, one on the nanosecond sum), so concurrent serve threads can
/// record latencies with no coordination; reads are monotonic snapshots.
class Histogram {
 public:
  static constexpr size_t kNumFiniteBuckets = 31;

  /// Upper bound of finite bucket `i` in seconds.
  static double BucketBound(size_t i) {
    return 1e-6 * static_cast<double>(uint64_t{1} << i);
  }

  void Observe(double seconds);

  uint64_t TotalCount() const;
  /// Sum of observations in seconds (accumulated at nanosecond resolution).
  double Sum() const;
  /// Count in bucket `i` (not cumulative); index kNumFiniteBuckets is the
  /// overflow bucket.
  uint64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile in seconds (q in (0, 1]): the nearest-rank
  /// observation's bucket is located by a cumulative walk, then the value
  /// is linearly interpolated between the bucket's bounds by the rank's
  /// position inside it. The estimate always lands inside the bucket that
  /// holds the exact nearest-rank sample, so it is within one log bucket
  /// (a factor of two) of the true value; ranks falling in the overflow
  /// bucket report the largest finite bound. Returns 0 when empty.
  double Quantile(double q) const;

 private:
  std::atomic<uint64_t> counts_[kNumFiniteBuckets + 1] = {};
  std::atomic<uint64_t> sum_ns_{0};
};

/// The quantile estimator behind Histogram::Quantile, over a raw
/// non-cumulative bucket-count array laid out exactly like Histogram's
/// (kNumFiniteBuckets finite buckets, then one overflow slot). Shared with
/// rolling-window samples so a windowed bucket *delta* yields the same
/// estimate the live histogram would have given over just that window.
double HistogramBucketQuantile(
    const uint64_t (&buckets)[Histogram::kNumFiniteBuckets + 1], double q);

/// Process-wide registry of named instruments with Prometheus text
/// exposition and JSON rendering. Instruments are created on first Get*
/// (mutex-protected lookup; keep the returned pointer for the hot path) and
/// live as long as the registry. A (name, labels) pair always maps to the
/// same instrument; requesting an existing name with a different type
/// aborts — the exposition would be self-contradictory otherwise.
///
/// Like Tracer, a registry can be published process-wide with Install() so
/// the `ScopedStage` bridge (telemetry.h) records every stage's wall time
/// into the `hcd_stage_seconds` histogram family without any caller wiring;
/// with no registry installed that bridge is a single pointer test.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry, or null when none is installed.
  static MetricsRegistry* Current() {
    return current_.load(std::memory_order_relaxed);
  }
  void Install();
  void Uninstall();

  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const MetricLabels& labels = {});

  /// Prometheus text exposition format: one `# HELP` / `# TYPE` pair per
  /// family, histograms as cumulative `_bucket{le=...}` series (ending in
  /// le="+Inf") plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  /// `{"metrics":[{"name":...,"type":...,"labels":{...},...}]}`; counters
  /// and gauges carry "value", histograms carry "count", "sum" and the
  /// non-empty buckets as [upper_bound_seconds, count] pairs ("+Inf" bound
  /// rendered as null).
  std::string RenderJson() const;

  /// Number of Get{Counter,Gauge,Histogram} resolutions ever performed on
  /// this registry. Each resolution takes the registry mutex and walks two
  /// maps, so hot paths must resolve once up front and reuse the returned
  /// pointer; tests and microbenchmarks assert a serve loop performs zero
  /// lookups per request by sampling this before and after.
  uint64_t lookup_count() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    /// Children keyed by their rendered label string (stable identity).
    std::map<std::string, Instrument> children;
  };

  Instrument* GetInstrument(const std::string& name, const std::string& help,
                            const MetricLabels& labels, Kind kind);

  static std::atomic<MetricsRegistry*> current_;

  std::atomic<uint64_t> lookups_{0};
  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace hcd

#endif  // HCD_COMMON_METRICS_H_
