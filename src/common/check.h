#ifndef HCD_COMMON_CHECK_H_
#define HCD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hcd::internal {

[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& extra);

/// Stream sink used by the CHECK macros so callers can append context with
/// `<<`. Aborts in the destructor.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

  [[noreturn]] ~CheckFailStream() { CheckFail(file_, line_, expr_, oss_.str()); }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream oss_;
};

}  // namespace hcd::internal

/// Aborts with a diagnostic when `cond` is false. Enabled in all build
/// modes: these guard internal invariants whose violation would otherwise
/// corrupt results silently.
#define HCD_CHECK(cond)                                                   \
  if (cond) {                                                             \
  } else /* NOLINT */                                                     \
    ::hcd::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define HCD_CHECK_EQ(a, b) HCD_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define HCD_CHECK_NE(a, b) HCD_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define HCD_CHECK_LT(a, b) HCD_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define HCD_CHECK_LE(a, b) HCD_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define HCD_CHECK_GT(a, b) HCD_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define HCD_CHECK_GE(a, b) HCD_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

/// Like HCD_CHECK but compiled out in release builds; use on hot paths.
#ifndef NDEBUG
#define HCD_DCHECK(cond) HCD_CHECK(cond)
#else
#define HCD_DCHECK(cond) \
  if (true) {            \
  } else /* NOLINT */    \
    ::hcd::internal::CheckFailStream(__FILE__, __LINE__, #cond)
#endif

#endif  // HCD_COMMON_CHECK_H_
