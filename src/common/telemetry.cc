#include "common/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace hcd {
namespace {

std::string DoubleToJson(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

const std::string kEmpty;

}  // namespace

void ScopedStage::Finish() {
  record_.seconds = timer_.Seconds();
  if (tracer_ != nullptr) {
    TraceSpan span;
    span.name = record_.stage;
    span.ts_ns = start_ns_;
    span.dur_ns = tracer_->NowNs() - start_ns_;
    span.args.reserve(record_.counters.size());
    for (const StageCounter& c : record_.counters) {
      span.args.push_back({c.name, c.value, "", false});
    }
    tracer_->RecordSpan(std::move(span));
  }
  if (registry_ != nullptr) {
    const MetricLabels stage_label = {{"stage", record_.stage}};
    registry_
        ->GetHistogram("hcd_stage_seconds",
                       "Wall time of pipeline stages by stage name",
                       stage_label)
        ->Observe(record_.seconds);
    registry_
        ->GetCounter("hcd_stage_runs_total",
                     "Completed pipeline stage executions", stage_label)
        ->Increment();
    for (const StageCounter& c : record_.counters) {
      registry_
          ->GetCounter("hcd_stage_counter_total",
                       "Accumulated per-stage detail counters",
                       {{"stage", record_.stage}, {"counter", c.name}})
          ->Increment(c.value);
    }
  }
  if (sink_ != nullptr) sink_->RecordStage(record_);
}

double StageTelemetry::TotalSeconds() const {
  double total = 0.0;
  for (const StageRecord& r : records_) total += r.seconds;
  return total;
}

const std::string& StageTelemetry::PeakStage() const {
  const StageRecord* peak = nullptr;
  for (const StageRecord& r : records_) {
    if (peak == nullptr || r.seconds > peak->seconds) peak = &r;
  }
  return peak != nullptr ? peak->stage : kEmpty;
}

size_t StageTelemetry::CountStage(const std::string& stage) const {
  size_t count = 0;
  for (const StageRecord& r : records_) {
    if (r.stage == stage) ++count;
  }
  return count;
}

double StageTelemetry::StageSeconds(const std::string& stage) const {
  double total = 0.0;
  for (const StageRecord& r : records_) {
    if (r.stage == stage) total += r.seconds;
  }
  return total;
}

std::string StageTelemetry::ToJson() const {
  std::string out = "{\"stages\":[";
  for (size_t i = 0; i < records_.size(); ++i) {
    const StageRecord& r = records_[i];
    if (i > 0) out += ',';
    out.append("{\"name\":\"");
    out.append(JsonEscape(r.stage));
    out.append("\",\"seconds\":");
    out.append(DoubleToJson(r.seconds));
    if (!r.counters.empty()) {
      out.append(",\"counters\":{");
      for (size_t c = 0; c < r.counters.size(); ++c) {
        if (c > 0) out += ',';
        out += '"';
        out.append(JsonEscape(r.counters[c].name));
        out.append("\":");
        out.append(std::to_string(r.counters[c].value));
      }
      out += '}';
    }
    out += '}';
  }
  out.append("],\"total_seconds\":");
  out.append(DoubleToJson(TotalSeconds()));
  out.append(",\"peak_stage\":\"");
  out.append(JsonEscape(PeakStage()));
  out.append("\"}");
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace hcd
