#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/telemetry.h"

namespace hcd {
namespace {

std::string DoubleToText(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote and newline.
std::string PromEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += ch;
    }
  }
  return out;
}

/// `{key="value",...}` or "" for no labels; also the child identity key.
std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += PromEscape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

/// Labels with one extra pair appended (for histogram `le` series).
std::string RenderLabelsWith(const MetricLabels& labels,
                             const std::string& key,
                             const std::string& value) {
  MetricLabels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

void Histogram::Observe(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // negatives and NaN clamp to zero
  size_t bucket = kNumFiniteBuckets;     // overflow unless a bound fits
  for (size_t i = 0; i < kNumFiniteBuckets; ++i) {
    if (seconds <= BucketBound(i)) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  const uint64_t add =
      ns >= 1.8e19 ? uint64_t{1} << 62 : static_cast<uint64_t>(ns);
  sum_ns_.fetch_add(add, std::memory_order_relaxed);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= kNumFiniteBuckets; ++i) total += BucketCount(i);
  return total;
}

double Histogram::Sum() const {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double HistogramBucketQuantile(
    const uint64_t (&buckets)[Histogram::kNumFiniteBuckets + 1], double q) {
  uint64_t total = 0;
  for (size_t i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
    total += buckets[i];
  }
  if (total == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;  // NaN and negatives clamp to the minimum rank
  if (q > 1.0) q = 1.0;
  // Nearest-rank definition: the smallest value with at least ceil(q * N)
  // observations at or below it, matching LatencyRecorder::Quantile.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::min(std::max<uint64_t>(rank, 1), total);
  uint64_t below = 0;  // observations in buckets before the current one
  for (size_t i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
    const uint64_t count = buckets[i];
    if (below + count < rank) {
      below += count;
      continue;
    }
    if (i == Histogram::kNumFiniteBuckets) {
      // Overflow has no upper bound; the largest finite bound is the best
      // conservative answer.
      return Histogram::BucketBound(Histogram::kNumFiniteBuckets - 1);
    }
    const double lower = i == 0 ? 0.0 : Histogram::BucketBound(i - 1);
    const double upper = Histogram::BucketBound(i);
    const double frac =
        static_cast<double>(rank - below) / static_cast<double>(count);
    return lower + (upper - lower) * frac;
  }
  return Histogram::BucketBound(Histogram::kNumFiniteBuckets - 1);
}

double Histogram::Quantile(double q) const {
  uint64_t buckets[kNumFiniteBuckets + 1];
  for (size_t i = 0; i <= kNumFiniteBuckets; ++i) buckets[i] = BucketCount(i);
  return HistogramBucketQuantile(buckets, q);
}

std::atomic<MetricsRegistry*> MetricsRegistry::current_{nullptr};

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() {
  HCD_CHECK(current_.load(std::memory_order_relaxed) != this)
      << "destroying the installed registry; Uninstall() first";
}

void MetricsRegistry::Install() {
  MetricsRegistry* expected = nullptr;
  HCD_CHECK(current_.compare_exchange_strong(expected, this,
                                             std::memory_order_release))
      << "another metrics registry is already installed";
}

void MetricsRegistry::Uninstall() {
  MetricsRegistry* expected = this;
  HCD_CHECK(current_.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_release))
      << "this registry is not the installed one";
}

MetricsRegistry::Instrument* MetricsRegistry::GetInstrument(
    const std::string& name, const std::string& help,
    const MetricLabels& labels, Kind kind) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.children.empty()) {
    family.kind = kind;
    family.help = help;
  } else {
    HCD_CHECK(family.kind == kind)
        << "metric '" << name << "' re-registered as a different type";
  }
  if (family.help.empty() && !help.empty()) family.help = help;
  Instrument& child = family.children[RenderLabels(labels)];
  if (child.labels.empty() && !labels.empty()) child.labels = labels;
  switch (kind) {
    case Kind::kCounter:
      if (!child.counter) child.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      if (!child.gauge) child.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      if (!child.histogram) child.histogram = std::make_unique<Histogram>();
      break;
  }
  return &child;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  return GetInstrument(name, help, labels, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  return GetInstrument(name, help, labels, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const MetricLabels& labels) {
  return GetInstrument(name, help, labels, Kind::kHistogram)->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " " +
           KindName(static_cast<int>(family.kind)) + "\n";
    for (const auto& [label_str, child] : family.children) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + label_str + " " +
                 std::to_string(child.counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + label_str + " " + DoubleToText(child.gauge->Value()) +
                 "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *child.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
            cumulative += h.BucketCount(i);
            out += name + "_bucket" +
                   RenderLabelsWith(child.labels, "le",
                                    DoubleToText(Histogram::BucketBound(i))) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += h.BucketCount(Histogram::kNumFiniteBuckets);
          out += name + "_bucket" +
                 RenderLabelsWith(child.labels, "le", "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + label_str + " " + DoubleToText(h.Sum()) +
                 "\n";
          out += name + "_count" + label_str + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_str, child] : family.children) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += JsonEscape(name);
      out += "\",\"type\":\"";
      out += KindName(static_cast<int>(family.kind));
      out += "\",\"labels\":{";
      for (size_t i = 0; i < child.labels.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += JsonEscape(child.labels[i].first);
        out += "\":\"";
        out += JsonEscape(child.labels[i].second);
        out += '"';
      }
      out += "}";
      switch (family.kind) {
        case Kind::kCounter:
          out += ",\"value\":";
          out += std::to_string(child.counter->Value());
          break;
        case Kind::kGauge:
          out += ",\"value\":";
          out += DoubleToText(child.gauge->Value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *child.histogram;
          out += ",\"count\":";
          out += std::to_string(h.TotalCount());
          out += ",\"sum\":";
          out += DoubleToText(h.Sum());
          out += ",\"buckets\":[";
          bool first_bucket = true;
          for (size_t i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
            const uint64_t count = h.BucketCount(i);
            if (count == 0) continue;
            if (!first_bucket) out += ',';
            first_bucket = false;
            out += "[";
            out += i < Histogram::kNumFiniteBuckets
                       ? DoubleToText(Histogram::BucketBound(i))
                       : std::string("null");
            out += ',';
            out += std::to_string(count);
            out += ']';
          }
          out += "]";
          break;
        }
      }
      out += "}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace hcd
