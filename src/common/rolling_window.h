#ifndef HCD_COMMON_ROLLING_WINDOW_H_
#define HCD_COMMON_ROLLING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/metrics.h"

namespace hcd {

/// A point-in-time copy of one Histogram's buckets and sum. Samples of a
/// live (still being observed) histogram are monotonic snapshots: each
/// bucket is at least its value in any earlier sample, so the element-wise
/// difference of two samples is itself a valid histogram — the
/// observations that landed between the two sampling instants.
struct HistogramSample {
  uint64_t buckets[Histogram::kNumFiniteBuckets + 1] = {};
  double sum_seconds = 0.0;

  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (size_t i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
      total += buckets[i];
    }
    return total;
  }
};

HistogramSample SampleHistogram(const Histogram& histogram);

/// Element-wise `newer - older`, clamped at zero per bucket so a reader
/// handed samples out of order degrades to an empty window instead of
/// wrapping around.
HistogramSample SubtractSample(const HistogramSample& newer,
                               const HistogramSample& older);

/// Same estimator as Histogram::Quantile, over a sample (typically a
/// windowed delta).
double SampleQuantile(const HistogramSample& sample, double q);

/// One cumulative observation of a set of counters and histograms, stamped
/// with the capture time. The meaning of each slot is the pusher's
/// convention; RollingWindow only subtracts positionally.
struct WindowSample {
  double at_seconds = 0.0;  ///< monotonic capture time
  std::vector<uint64_t> counters;
  std::vector<HistogramSample> histograms;
};

/// Fixed-capacity ring of cumulative samples pushed at a steady cadence by
/// one ticker thread; readers derive rate/quantile windows as the delta
/// between the newest sample and one a fixed number of ticks back. Keeping
/// cumulative samples (rather than per-tick increments) makes any window
/// size up to the capacity a single subtraction, and makes a missed tick
/// harmless — the next delta simply spans slightly longer, and the
/// reported `at_seconds` span stays truthful. Thread-safe; pushes are rare
/// (one per tick) so a plain mutex suffices.
class RollingWindow {
 public:
  /// `capacity` bounds retained samples; 61 one-second ticks covers a 60 s
  /// window with the endpoint sample included.
  explicit RollingWindow(size_t capacity = 61);

  void Push(WindowSample sample);
  size_t Size() const;

  /// The delta between the newest sample and the one `ticks_back` before
  /// it (clamped to the oldest retained). `delta->at_seconds` is the real
  /// time spanned. False (and `*delta` untouched) with fewer than two
  /// samples. Counter/histogram vectors shorter in the older sample are
  /// treated as zero-filled, so instruments added between ticks start
  /// counting from their first full window.
  bool Delta(size_t ticks_back, WindowSample* delta) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<WindowSample> ring_;
};

}  // namespace hcd

#endif  // HCD_COMMON_ROLLING_WINDOW_H_
