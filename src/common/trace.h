#ifndef HCD_COMMON_TRACE_H_
#define HCD_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hcd {

/// One key/value annotation on a span; either a small integer or a short
/// string (rendered into the Chrome trace event's "args" object).
struct TraceArg {
  std::string key;
  uint64_t value = 0;
  std::string text;     ///< used instead of `value` when `is_text`
  bool is_text = false;
};

/// One completed span: a name, its start offset from the tracer epoch, and
/// its duration, both in nanoseconds. The owning thread's trace id is kept
/// per buffer, not per span.
struct TraceSpan {
  std::string name;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  std::vector<TraceArg> args;
};

/// A span with the recording thread's trace id attached, as returned by
/// Tracer::CollectSpans.
struct TraceSpanRecord {
  uint32_t tid = 0;
  TraceSpan span;
};

/// Low-overhead span tracer. Each recording thread appends completed spans
/// to its own buffer (registered once under a mutex, then written without
/// any locking), so instrumenting the inside of parallel regions costs one
/// clock read per span edge plus the append. Export renders every buffer as
/// Chrome trace-event JSON loadable in Perfetto / chrome://tracing.
///
/// Enabling is process-wide: Install() publishes the tracer so that
/// `ScopedSpan` (and the `ScopedStage` bridge in telemetry.h) pick it up
/// anywhere in the library. With no tracer installed the instrumentation
/// compiles down to one relaxed atomic load and a null test per span — no
/// allocation, no clock read (asserted by tests/trace_test.cc and measured
/// by bench_micro).
///
/// Thread-safety contract: RecordSpan may be called from any number of
/// threads concurrently (each writes only its own buffer). The read side —
/// CollectSpans / ToChromeJson / WriteChromeJson / Drain / NumSpans — must
/// run at a quiescent point: after every recording thread has been joined,
/// or past the implicit barrier of the OpenMP region that recorded. The
/// per-buffer published-size counter uses release/acquire so a reader that
/// is ordered after the writers (join / barrier) sees fully written spans.
class Tracer {
 public:
  /// `max_spans_per_thread` bounds memory for long-lived processes: once a
  /// thread's buffer is full, further spans on that thread are counted in
  /// TotalDropped() and discarded.
  explicit Tracer(size_t max_spans_per_thread = size_t{1} << 20);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer, or null when tracing is disabled (the
  /// default). One relaxed atomic load.
  static Tracer* Current() {
    return current_.load(std::memory_order_relaxed);
  }

  /// Publishes this tracer as Current(). Checks that no other tracer is
  /// installed; Uninstall() before installing another.
  void Install();

  /// Clears Current() (checks this tracer was the one installed). Spans
  /// already recorded stay readable until the tracer is destroyed.
  void Uninstall();

  /// Nanoseconds since this tracer's construction (steady clock).
  uint64_t NowNs() const;

  /// Appends one completed span to the calling thread's buffer. First call
  /// on a thread registers a buffer (mutex); later calls are lock-free.
  void RecordSpan(TraceSpan span);

  /// All spans recorded so far, buffer by buffer in thread-registration
  /// order (spans within a buffer are in completion order). Quiescent-only.
  std::vector<TraceSpanRecord> CollectSpans() const;

  /// Collects every span and resets all buffers (registered threads keep
  /// their buffers and trace ids). Quiescent-only; lets a long-lived server
  /// ship trace chunks periodically without unbounded growth. Also
  /// publishes drop counts (see PublishDroppedSpans).
  std::vector<TraceSpanRecord> Drain();

  /// Publishes the spans dropped by full buffers since the last publish
  /// into the installed metrics registry's `hcd_trace_dropped_spans_total`
  /// counter (no-op without a registry; TotalDropped() keeps the lifetime
  /// figure either way). Drain() calls this; export paths that keep their
  /// spans (WriteChromeJson at CLI exit) call it directly so a metrics
  /// dump accounts for overflow even when nothing drained. Quiescent-only.
  void PublishDroppedSpans();

  /// `{"displayTimeUnit":"ns","traceEvents":[...]}` with one complete
  /// ("ph":"X") event per span: ts/dur in fractional microseconds, tid the
  /// buffer's trace id. Quiescent-only.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`. Quiescent-only.
  Status WriteChromeJson(const std::string& path) const;

  size_t NumSpans() const;          ///< total spans held. Quiescent-only.
  size_t NumThreadsSeen() const;    ///< buffers registered so far.
  uint64_t TotalDropped() const;    ///< spans discarded by full buffers.

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceSpan> spans;
    /// Count of fully written spans; release-stored by the owning thread
    /// after each append so a quiescent reader's acquire load covers the
    /// span contents (and the vector's storage across reallocation).
    std::atomic<size_t> published{0};
    uint64_t dropped = 0;  ///< owner-written; read at quiescence
  };

  ThreadBuffer* BufferForThisThread();

  static std::atomic<Tracer*> current_;

  const size_t max_spans_per_thread_;
  const uint64_t id_;            ///< process-unique, for the TLS cache
  const uint64_t epoch_ns_;      ///< steady-clock origin of ts_ns
  mutable std::mutex register_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  uint64_t published_dropped_ = 0;  ///< drops already sent to the registry
};

/// "0x<hex>" rendering for request trace ids in span args and structured
/// logs. A string survives JSON round trips exactly; a u64 above 2^53
/// would lose bits as a JSON number in Perfetto and friends.
std::string TraceIdHex(uint64_t id);

/// RAII span: captures the start time on construction and records a
/// completed span on destruction. With a null tracer every member is a
/// pointer test — safe and free on un-instrumented paths.
class ScopedSpan {
 public:
  /// Records into the process-wide tracer (no-op when none is installed).
  explicit ScopedSpan(const char* name) : ScopedSpan(Tracer::Current(), name) {}

  ScopedSpan(Tracer* tracer, const char* name) : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    span_.name = name;
    span_.ts_ns = tracer_->NowNs();
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    span_.dur_ns = tracer_->NowNs() - span_.ts_ns;
    tracer_->RecordSpan(std::move(span_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument (no-op without a tracer).
  void AddArg(const char* key, uint64_t value) {
    if (tracer_ != nullptr) span_.args.push_back({key, value, "", false});
  }

  /// Attaches a string argument (no-op without a tracer).
  void AddArg(const char* key, std::string text) {
    if (tracer_ != nullptr) {
      span_.args.push_back({key, 0, std::move(text), true});
    }
  }

 private:
  Tracer* tracer_;
  TraceSpan span_;
};

}  // namespace hcd

#endif  // HCD_COMMON_TRACE_H_
