#ifndef HCD_COMMON_STATUS_H_
#define HCD_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hcd {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight result of a fallible operation (the library does not use
/// exceptions). A default-constructed Status is OK. Non-OK statuses carry a
/// code and a message describing what failed.
///
/// Usage:
///   Status s = LoadEdgeList(path, &edges);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define HCD_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::hcd::Status _hcd_status = (expr);          \
    if (!_hcd_status.ok()) return _hcd_status;   \
  } while (false)

}  // namespace hcd

#endif  // HCD_COMMON_STATUS_H_
