#include "common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/metrics.h"

namespace hcd {
namespace {

std::atomic<uint64_t> g_total_mapped_bytes{0};

/// Publishes the current process-wide mapped-bytes total, when a metrics
/// registry is installed. Mapping lifecycle is a cold path, so the
/// per-event registry lookup is fine.
void PublishMappedBytesGauge() {
  if (MetricsRegistry* registry = MetricsRegistry::Current()) {
    registry
        ->GetGauge("hcd_snapshot_mapped_bytes",
                   "Bytes of snapshot files currently mmapped into the "
                   "process")
        ->Set(static_cast<double>(
            g_total_mapped_bytes.load(std::memory_order_relaxed)));
  }
}

}  // namespace

Status MappedFile::Open(const std::string& path,
                        std::shared_ptr<const MappedFile>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + std::strerror(err));
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->size_ = static_cast<uint64_t>(st.st_size);
  file->path_ = path;
  if (file->size_ > 0) {
    void* addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      file->size_ = 0;  // nothing to munmap in the dtor
      return Status::IoError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file->data_ = addr;
  }
  // The mapping holds its own reference to the pages; the descriptor is
  // no longer needed.
  ::close(fd);
  g_total_mapped_bytes.fetch_add(file->size_, std::memory_order_relaxed);
  PublishMappedBytesGauge();
  *out = std::move(file);
  return Status::Ok();
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (size_ > 0) {
    g_total_mapped_bytes.fetch_sub(size_, std::memory_order_relaxed);
    PublishMappedBytesGauge();
  }
}

uint64_t MappedFile::TotalMappedBytes() {
  return g_total_mapped_bytes.load(std::memory_order_relaxed);
}

}  // namespace hcd
