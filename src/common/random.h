#ifndef HCD_COMMON_RANDOM_H_
#define HCD_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

namespace hcd {

/// Deterministic, fast pseudo-random generator (splitmix64 core). Used by the
/// graph generators and tests so every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    HCD_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free mapping is fine here: the tiny
    // modulo bias of a plain remainder is irrelevant for graph generation,
    // but the 128-bit multiply is also faster than '%'.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace hcd

#endif  // HCD_COMMON_RANDOM_H_
