#include "common/check.h"

namespace hcd::internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& extra) {
  std::fprintf(stderr, "HCD_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace hcd::internal
