#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "common/telemetry.h"

namespace hcd {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Fractional microseconds with nanosecond resolution, the unit Chrome
/// trace events use for ts / dur.
std::string NsToMicrosJson(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

std::string TraceIdHex(uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::atomic<Tracer*> Tracer::current_{nullptr};

Tracer::Tracer(size_t max_spans_per_thread)
    : max_spans_per_thread_(max_spans_per_thread),
      id_(NextTracerId()),
      epoch_ns_(SteadyNowNs()) {}

Tracer::~Tracer() {
  HCD_CHECK(current_.load(std::memory_order_relaxed) != this)
      << "destroying the installed tracer; Uninstall() first";
}

void Tracer::Install() {
  Tracer* expected = nullptr;
  HCD_CHECK(current_.compare_exchange_strong(expected, this,
                                             std::memory_order_release))
      << "another tracer is already installed";
}

void Tracer::Uninstall() {
  Tracer* expected = this;
  HCD_CHECK(current_.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_release))
      << "this tracer is not the installed one";
}

uint64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  // Cache keyed by the tracer's process-unique id, not its address, so a
  // new tracer reusing a freed tracer's address can never hit a stale
  // buffer pointer.
  struct TlsSlot {
    uint64_t tracer_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local TlsSlot slot;
  if (slot.tracer_id == id_) return slot.buffer;

  std::lock_guard<std::mutex> lock(register_mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  buffer->spans.reserve(std::min(max_spans_per_thread_, size_t{256}));
  slot = {id_, buffer};
  return buffer;
}

void Tracer::RecordSpan(TraceSpan span) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer->spans.size() >= max_spans_per_thread_) {
    ++buffer->dropped;
    return;
  }
  buffer->spans.push_back(std::move(span));
  buffer->published.store(buffer->spans.size(), std::memory_order_release);
}

std::vector<TraceSpanRecord> Tracer::CollectSpans() const {
  std::vector<TraceSpanRecord> out;
  std::lock_guard<std::mutex> lock(register_mu_);
  for (const auto& buffer : buffers_) {
    const size_t n = buffer->published.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      out.push_back({buffer->tid, buffer->spans[i]});
    }
  }
  return out;
}

std::vector<TraceSpanRecord> Tracer::Drain() {
  std::vector<TraceSpanRecord> out = CollectSpans();
  PublishDroppedSpans();
  std::lock_guard<std::mutex> lock(register_mu_);
  for (auto& buffer : buffers_) {
    buffer->spans.clear();
    buffer->published.store(0, std::memory_order_release);
  }
  return out;
}

void Tracer::PublishDroppedSpans() {
  std::lock_guard<std::mutex> lock(register_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  const uint64_t delta = total - published_dropped_;
  if (delta == 0) return;
  if (MetricsRegistry* registry = MetricsRegistry::Current()) {
    registry
        ->GetCounter("hcd_trace_dropped_spans_total",
                     "Trace spans discarded by full per-thread buffers.")
        ->Increment(delta);
    published_dropped_ = total;
  }
}

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpanRecord& r : CollectSpans()) {
    if (!first) out += ',';
    first = false;
    out.append("{\"name\":\"");
    out.append(JsonEscape(r.span.name));
    out.append("\",\"cat\":\"hcd\",\"ph\":\"X\",\"pid\":0,\"tid\":");
    out.append(std::to_string(r.tid));
    out.append(",\"ts\":");
    out.append(NsToMicrosJson(r.span.ts_ns));
    out.append(",\"dur\":");
    out.append(NsToMicrosJson(r.span.dur_ns));
    if (!r.span.args.empty()) {
      out.append(",\"args\":{");
      for (size_t a = 0; a < r.span.args.size(); ++a) {
        const TraceArg& arg = r.span.args[a];
        if (a > 0) out += ',';
        out += '"';
        out.append(JsonEscape(arg.key));
        out.append("\":");
        if (arg.is_text) {
          out += '"';
          out.append(JsonEscape(arg.text));
          out += '"';
        } else {
          out.append(std::to_string(arg.value));
        }
      }
      out += '}';
    }
    out += '}';
  }
  out.append("]}");
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write " + path);
  out << ToChromeJson() << '\n';
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::Ok();
}

size_t Tracer::NumSpans() const {
  std::lock_guard<std::mutex> lock(register_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->published.load(std::memory_order_acquire);
  }
  return total;
}

size_t Tracer::NumThreadsSeen() const {
  std::lock_guard<std::mutex> lock(register_mu_);
  return buffers_.size();
}

uint64_t Tracer::TotalDropped() const {
  std::lock_guard<std::mutex> lock(register_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

}  // namespace hcd
