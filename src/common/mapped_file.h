#ifndef HCD_COMMON_MAPPED_FILE_H_
#define HCD_COMMON_MAPPED_FILE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace hcd {

/// Read-only RAII memory mapping of a whole file. Opened via the factory so
/// the mapping is always held behind a shared_ptr: views into the mapping
/// (ArrayRef below) co-own the MappedFile, so the region outlives every
/// reader no matter which handle is dropped first.
///
/// The process-wide total of currently mapped bytes is published to the
/// metrics registry (gauge `hcd_snapshot_mapped_bytes`) whenever a mapping
/// is created or destroyed, so a serving process can be monitored for
/// snapshot residency.
class MappedFile {
 public:
  /// Maps `path` PROT_READ and returns a shared handle. An empty file maps
  /// to a valid zero-length handle (data() == nullptr). Open / stat / mmap
  /// failures return IoError.
  static Status Open(const std::string& path,
                     std::shared_ptr<const MappedFile>* out);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Total bytes currently mapped by live MappedFile instances in this
  /// process (the value the hcd_snapshot_mapped_bytes gauge tracks).
  static uint64_t TotalMappedBytes();

 private:
  MappedFile() = default;

  void* data_ = nullptr;
  uint64_t size_ = 0;
  std::string path_;
};

/// A section of a FlatHcdIndex: either owns its elements (a plain vector)
/// or aliases a range inside a shared MappedFile. The storage seam is
/// invisible to readers — data()/size()/operator[] are branch-free in both
/// modes because `ptr_`/`size_` always track the active storage.
///
/// Semantics:
///   - Owned mode behaves like std::vector<T>: copies are deep, mutation
///     (resize / push_back / pop_back / operator[] writes) is supported.
///   - Aliased mode shares the mapping: copies are cheap views that co-own
///     the MappedFile. Growth/shrink mutators HCD_CHECK; assignment of a
///     whole new value (operator=, assign) re-seats the ref to owned mode.
///     The non-const element accessors still *read* correctly from a
///     mapped ref (validation code walks non-const Data), but writing
///     through them into a PROT_READ page faults — by design, mapped
///     sections are immutable.
template <typename T>
class ArrayRef {
 public:
  using value_type = T;
  using const_iterator = const T*;

  ArrayRef() = default;
  ArrayRef(std::initializer_list<T> init) : own_(init) { Sync(); }
  explicit ArrayRef(std::vector<T> v) : own_(std::move(v)) { Sync(); }

  /// Aliasing constructor: a view of `size` elements at `data`, which must
  /// lie inside `backing`'s mapping. Shares ownership of the mapping.
  ArrayRef(const T* data, size_t size,
           std::shared_ptr<const MappedFile> backing)
      : ptr_(data), size_(size), backing_(std::move(backing)) {}

  ArrayRef(const ArrayRef& other) { *this = other; }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this == &other) return *this;
    if (other.backing_ != nullptr) {
      own_.clear();
      backing_ = other.backing_;
      ptr_ = other.ptr_;
      size_ = other.size_;
    } else {
      backing_ = nullptr;
      own_ = other.own_;
      Sync();
    }
    return *this;
  }

  ArrayRef(ArrayRef&& other) noexcept { *this = std::move(other); }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this == &other) return *this;
    backing_ = std::move(other.backing_);
    if (backing_ != nullptr) {
      own_.clear();
      ptr_ = other.ptr_;
      size_ = other.size_;
    } else {
      own_ = std::move(other.own_);
      Sync();
    }
    other.backing_ = nullptr;
    other.own_.clear();
    other.Sync();
    return *this;
  }

  ArrayRef& operator=(std::initializer_list<T> init) {
    backing_ = nullptr;
    own_.assign(init);
    Sync();
    return *this;
  }
  ArrayRef& operator=(std::vector<T> v) {
    backing_ = nullptr;
    own_ = std::move(v);
    Sync();
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool mapped() const { return backing_ != nullptr; }

  const T* data() const { return ptr_; }
  const T& operator[](size_t i) const { return ptr_[i]; }
  const T& front() const { return ptr_[0]; }
  const T& back() const { return ptr_[size_ - 1]; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }

  // Non-const element access reads from either storage (the mapped bytes
  // are not const objects, so the cast is well-defined for reads); writes
  // are only meaningful in owned mode.
  T* data() { return const_cast<T*>(ptr_); }
  T& operator[](size_t i) { return const_cast<T*>(ptr_)[i]; }
  T& front() { return const_cast<T*>(ptr_)[0]; }
  T& back() { return const_cast<T*>(ptr_)[size_ - 1]; }

  operator std::span<const T>() const { return {ptr_, size_}; }

  // Growth / shrink: owned mode only. `assign` is a whole-value
  // replacement, so (like operator=) it re-seats a mapped ref to owned.
  void resize(size_t n) {
    HCD_CHECK(!mapped()) << "cannot resize a mapped section";
    own_.resize(n);
    Sync();
  }
  void assign(size_t n, const T& value) {
    backing_ = nullptr;
    own_.assign(n, value);
    Sync();
  }
  void push_back(const T& value) {
    HCD_CHECK(!mapped()) << "cannot grow a mapped section";
    own_.push_back(value);
    Sync();
  }
  void pop_back() {
    HCD_CHECK(!mapped()) << "cannot shrink a mapped section";
    own_.pop_back();
    Sync();
  }

  friend bool operator==(const ArrayRef& a, const ArrayRef& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const ArrayRef& a, const ArrayRef& b) {
    return !(a == b);
  }

 private:
  /// Re-points the view at the owned vector. Every mutation of `own_`
  /// ends with this, so the branch-free read accessors stay valid.
  void Sync() {
    ptr_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;            ///< owned storage (empty when aliased)
  const T* ptr_ = nullptr;        ///< active storage, either mode
  size_t size_ = 0;
  std::shared_ptr<const MappedFile> backing_;  ///< null in owned mode
};

}  // namespace hcd

#endif  // HCD_COMMON_MAPPED_FILE_H_
