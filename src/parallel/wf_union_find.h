#ifndef HCD_PARALLEL_WF_UNION_FIND_H_
#define HCD_PARALLEL_WF_UNION_FIND_H_

#include <atomic>
#include <memory>

#include "common/check.h"
#include "graph/types.h"

namespace hcd {

/// Lock-free concurrent union-find with the paper's pivot extension
/// (Section III-B, after Anderson & Woll's wait-free union-find).
///
/// Concurrency contract, matching how PHCD uses the structure:
///  - Union() may be called concurrently from any number of threads;
///  - Find() / SameSet() may be called concurrently with Union();
///  - GetPivot() returns the exact lowest-vertex-rank member of the
///    component once all concurrent Union() calls have completed (PHCD's
///    steps are separated by parallel-for barriers, so pivot reads always
///    happen in quiescent phases). During concurrent unions a pivot read
///    may transiently miss an in-flight merge.
///
/// Pivot maintenance: the pivot lives at the component root and is updated
/// with an atomic rank-min. A propagating thread that discovers its target
/// was linked away re-propagates to the new root, so no update is lost
/// (see PropagatePivot).
class WaitFreeUnionFind {
 public:
  /// `vertex_rank` maps element -> rank position (lower = lower rank), or
  /// nullptr to order pivots by element id. Must outlive the structure.
  explicit WaitFreeUnionFind(VertexId n, const VertexId* vertex_rank = nullptr);

  WaitFreeUnionFind(const WaitFreeUnionFind&) = delete;
  WaitFreeUnionFind& operator=(const WaitFreeUnionFind&) = delete;

  VertexId Size() const { return n_; }

  /// Representative of v's component. Lock-free; applies path halving.
  VertexId Find(VertexId v);

  /// Merges the components of u and v. Lock-free.
  void Union(VertexId u, VertexId v);

  /// True iff u and v are in the same component. Exact in quiescent phases.
  bool SameSet(VertexId u, VertexId v);

  /// Lowest-vertex-rank member of v's component (see concurrency contract).
  VertexId GetPivot(VertexId v);

 private:
  bool RankLess(VertexId a, VertexId b) const {
    if (vertex_rank_ == nullptr) return a < b;
    return vertex_rank_[a] < vertex_rank_[b];
  }

  /// Delivers candidate pivot `cand` to the root of x's component, chasing
  /// root changes caused by concurrent links.
  void PropagatePivot(VertexId x, VertexId cand);

  VertexId n_;
  std::unique_ptr<std::atomic<VertexId>[]> parent_;
  std::unique_ptr<std::atomic<uint32_t>[]> uf_rank_;
  std::unique_ptr<std::atomic<VertexId>[]> pivot_;
  const VertexId* vertex_rank_;
};

}  // namespace hcd

#endif  // HCD_PARALLEL_WF_UNION_FIND_H_
