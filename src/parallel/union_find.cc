#include "parallel/union_find.h"

namespace hcd {

UnionFind::UnionFind(VertexId n, const VertexId* vertex_rank)
    : nodes_(n), vertex_rank_(vertex_rank) {
  for (VertexId v = 0; v < n; ++v) {
    nodes_[v] = Node{v, v, 0};
  }
}

VertexId UnionFind::LinkRoots(VertexId ru, VertexId rv) {
  HCD_DCHECK(nodes_[ru].parent == ru);
  HCD_DCHECK(nodes_[rv].parent == rv);
  if (ru == rv) return ru;
  if (nodes_[ru].uf_rank < nodes_[rv].uf_rank) std::swap(ru, rv);
  nodes_[rv].parent = ru;
  if (nodes_[ru].uf_rank == nodes_[rv].uf_rank) ++nodes_[ru].uf_rank;
  if (RankLess(nodes_[rv].pivot, nodes_[ru].pivot)) {
    nodes_[ru].pivot = nodes_[rv].pivot;
  }
  return ru;
}

}  // namespace hcd
