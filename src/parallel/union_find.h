#ifndef HCD_PARALLEL_UNION_FIND_H_
#define HCD_PARALLEL_UNION_FIND_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "graph/types.h"

namespace hcd {

/// Sequential union-find with the paper's pivot extension (Section III-B):
/// every component tracks the member with the lowest vertex rank. Union by
/// rank with path halving. Parent, UF-rank and pivot are packed per element
/// so a find touches one cache line per hop.
class UnionFind {
 public:
  /// `vertex_rank` maps each element to its rank position (Definition 4);
  /// lower value = lower rank. Must outlive the structure. Pass nullptr to
  /// compare pivots by element id.
  explicit UnionFind(VertexId n, const VertexId* vertex_rank = nullptr);

  VertexId Size() const { return static_cast<VertexId>(nodes_.size()); }

  /// Representative of v's component.
  VertexId Find(VertexId v) {
    HCD_DCHECK(v < Size());
    while (nodes_[v].parent != v) {
      nodes_[v].parent = nodes_[nodes_[v].parent].parent;  // path halving
      v = nodes_[v].parent;
    }
    return v;
  }

  /// Merges the components of u and v.
  void Union(VertexId u, VertexId v) { LinkRoots(Find(u), Find(v)); }

  bool SameSet(VertexId u, VertexId v) { return Find(u) == Find(v); }

  /// Lowest-vertex-rank member of v's component (get_pivot in the paper).
  VertexId GetPivot(VertexId v) { return nodes_[Find(v)].pivot; }

  // Root-level primitives for performance-sensitive callers (e.g. the
  // serial PHCD inner loop, which keeps the running root of the current
  // vertex and pays one Find per edge instead of three).

  /// Pivot stored at `root`; `root` must be a representative.
  VertexId PivotAtRoot(VertexId root) const {
    HCD_DCHECK(nodes_[root].parent == root);
    return nodes_[root].pivot;
  }

  /// Merges the components of two representatives; returns the surviving
  /// root. Both arguments must be roots (may be equal).
  VertexId LinkRoots(VertexId ra, VertexId rb);

 private:
  struct Node {
    VertexId parent;
    VertexId pivot;
    uint8_t uf_rank;
  };

  bool RankLess(VertexId a, VertexId b) const {
    if (vertex_rank_ == nullptr) return a < b;
    return vertex_rank_[a] < vertex_rank_[b];
  }

  std::vector<Node> nodes_;
  const VertexId* vertex_rank_;
};

}  // namespace hcd

#endif  // HCD_PARALLEL_UNION_FIND_H_
