#ifndef HCD_PARALLEL_PRIMITIVES_H_
#define HCD_PARALLEL_PRIMITIVES_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/omp_utils.h"

namespace hcd {

/// Sorts `v` in parallel: the range is split into P blocks (P = thread
/// count rounded up to a power of two), each block is std::sort-ed
/// concurrently, then blocks are pairwise std::inplace_merge-d in log2(P)
/// parallel rounds. The result equals std::sort for every thread count
/// (the comparator induces a total order on distinct values and equal
/// values are indistinguishable), which is what lets the ingest path
/// promise thread-count-independent output.
template <typename T, typename Cmp = std::less<T>>
void ParallelSort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  const size_t n = v.size();
  const size_t threads = static_cast<size_t>(std::max(1, MaxThreads()));
  // Below ~16k elements the merge machinery costs more than it saves.
  if (threads <= 1 || n < (size_t{1} << 14)) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  size_t p = 1;
  while (p < threads) p <<= 1;
  // Keep blocks large enough that per-block std::sort dominates.
  while (p > 1 && n / p < (size_t{1} << 12)) p >>= 1;

  std::vector<size_t> bounds(p + 1);
  for (size_t i = 0; i <= p; ++i) bounds[i] = i * n / p;

  // schedule(static) spreads the p (or fewer) chunky iterations one per
  // thread; the dynamic wrapper's chunk size would serialize them.
  ParallelFor(size_t{0}, p, [&](size_t b) {
    std::sort(v.begin() + bounds[b], v.begin() + bounds[b + 1], cmp);
  });
  for (size_t width = 1; width < p; width <<= 1) {
    const size_t stride = width << 1;
    const size_t pairs = (p + stride - 1) / stride;
    ParallelFor(size_t{0}, pairs, [&](size_t i) {
      const size_t lo = i * stride;
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + stride, p);
      if (mid < hi) {
        std::inplace_merge(v.begin() + bounds[lo], v.begin() + bounds[mid],
                           v.begin() + bounds[hi], cmp);
      }
    });
  }
}

}  // namespace hcd

#endif  // HCD_PARALLEL_PRIMITIVES_H_
