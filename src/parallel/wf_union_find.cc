#include "parallel/wf_union_find.h"

namespace hcd {

WaitFreeUnionFind::WaitFreeUnionFind(VertexId n, const VertexId* vertex_rank)
    : n_(n),
      parent_(new std::atomic<VertexId>[n]),
      uf_rank_(new std::atomic<uint32_t>[n]),
      pivot_(new std::atomic<VertexId>[n]),
      vertex_rank_(vertex_rank) {
  // Relaxed initialization is fine: the structure is published to worker
  // threads through the synchronization of whatever shares it (e.g. an
  // OpenMP parallel region entry).
  for (VertexId v = 0; v < n; ++v) {
    parent_[v].store(v, std::memory_order_relaxed);
    uf_rank_[v].store(0, std::memory_order_relaxed);
    pivot_[v].store(v, std::memory_order_relaxed);
  }
}

VertexId WaitFreeUnionFind::Find(VertexId v) {
  HCD_DCHECK(v < n_);
  while (true) {
    VertexId p = parent_[v].load(std::memory_order_acquire);
    if (p == v) return v;
    VertexId gp = parent_[p].load(std::memory_order_acquire);
    if (p == gp) return p;
    // Path halving with a plain store: gp is an ancestor of v at read time
    // and links only ever move roots under other roots, so ancestors stay
    // ancestors — any interleaving of such stores preserves the forest
    // invariant (no CAS needed).
    parent_[v].store(gp, std::memory_order_release);
    v = gp;
  }
}

void WaitFreeUnionFind::PropagatePivot(VertexId x, VertexId cand) {
  while (true) {
    VertexId r = Find(x);
    VertexId cur = pivot_[r].load();
    while (RankLess(cand, cur)) {
      if (pivot_[r].compare_exchange_weak(cur, cand)) break;
    }
    // If r is still a root, every later linker of r will read pivot_[r]
    // after our update (their pivot read follows their parent CAS). If r
    // was linked away before our update became visible to the linker, we
    // observe parent_[r] != r here and push the candidate to the new root
    // ourselves.
    if (parent_[r].load() == r) return;
    x = r;
  }
}

void WaitFreeUnionFind::Union(VertexId u, VertexId v) {
  HCD_DCHECK(u < n_);
  HCD_DCHECK(v < n_);
  while (true) {
    VertexId ru = Find(u);
    VertexId rv = Find(v);
    if (ru == rv) return;
    uint32_t rank_u = uf_rank_[ru].load();
    uint32_t rank_v = uf_rank_[rv].load();
    if (rank_u < rank_v || (rank_u == rank_v && ru < rv)) {
      std::swap(ru, rv);
      std::swap(rank_u, rank_v);
    }
    // Link the lower-UF-rank root rv under ru.
    VertexId expected = rv;
    if (!parent_[rv].compare_exchange_strong(expected, ru)) continue;
    if (rank_u == rank_v) uf_rank_[ru].fetch_add(1);
    // rv is no longer a root; its pivot value is final. Deliver it to the
    // (current) root. Concurrent updaters of pivot_[rv] that lose the race
    // with our load re-propagate on their own (see PropagatePivot).
    PropagatePivot(ru, pivot_[rv].load());
    return;
  }
}

bool WaitFreeUnionFind::SameSet(VertexId u, VertexId v) {
  while (true) {
    VertexId ru = Find(u);
    VertexId rv = Find(v);
    if (ru == rv) return true;
    // ru may have stopped being a root because of a concurrent union; only
    // then can the answer have changed under us.
    if (parent_[ru].load() == ru) return false;
  }
}

VertexId WaitFreeUnionFind::GetPivot(VertexId v) { return pivot_[Find(v)].load(); }

}  // namespace hcd
