#ifndef HCD_PARALLEL_OMP_UTILS_H_
#define HCD_PARALLEL_OMP_UTILS_H_

#include <omp.h>

#include <cstdint>

namespace hcd {

/// Number of threads OpenMP parallel regions will use.
inline int MaxThreads() { return omp_get_max_threads(); }

/// Sets the OpenMP thread count for subsequent parallel regions. The
/// benchmark harness sweeps this to reproduce the papers' thread-scaling
/// figures.
inline void SetNumThreads(int n) { omp_set_num_threads(n); }

/// Caller's thread index inside a parallel region (0 outside).
inline int ThreadId() { return omp_get_thread_num(); }

/// Hardware concurrency reported to OpenMP.
inline int HardwareThreads() { return omp_get_num_procs(); }

/// RAII guard that sets the OpenMP thread count and restores the previous
/// value on scope exit; used by benchmarks sweeping thread counts.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(n);
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }

  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

/// Parallel for over [begin, end) with static scheduling. `fn` is invoked
/// as fn(i). Falls back to a serial loop when OpenMP runs one thread.
template <typename Index, typename Fn>
void ParallelFor(Index begin, Index end, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (int64_t i = static_cast<int64_t>(begin); i < static_cast<int64_t>(end);
       ++i) {
    fn(static_cast<Index>(i));
  }
}

/// Parallel for with dynamic scheduling for skewed per-iteration cost (e.g.
/// per-vertex work proportional to degree).
template <typename Index, typename Fn>
void ParallelForDynamic(Index begin, Index end, Fn&& fn) {
#pragma omp parallel for schedule(dynamic, 512)
  for (int64_t i = static_cast<int64_t>(begin); i < static_cast<int64_t>(end);
       ++i) {
    fn(static_cast<Index>(i));
  }
}

}  // namespace hcd

#endif  // HCD_PARALLEL_OMP_UTILS_H_
