#include "search/pbks.h"

#include <algorithm>

#include "common/check.h"
#include "parallel/omp_utils.h"

namespace hcd {
namespace {

/// Unaccumulated per-node tallies. Signed: a single node's boundary
/// contribution (lt - gt summed over its vertices) can be negative before
/// children are folded in.
struct NodeTallies {
  std::vector<int64_t> n_s;
  std::vector<int64_t> edges2;
  std::vector<int64_t> boundary;
  std::vector<int64_t> triangles;
  std::vector<int64_t> triplets;

  explicit NodeTallies(TreeNodeId num_nodes)
      : n_s(num_nodes, 0),
        edges2(num_nodes, 0),
        boundary(num_nodes, 0),
        triangles(num_nodes, 0),
        triplets(num_nodes, 0) {}
};

/// Parallel bottom-up tree accumulation (Algorithm 3 lines 6-9): processes
/// the index's precomputed level groups in descending order; nodes inside a
/// group accumulate into their parents concurrently (atomics: two
/// same-level nodes may share a parent). When a node's group is reached,
/// all its children (strictly higher levels) are final. No sort and no
/// group-boundary scan — the frozen index ships both.
void AccumulateUp(const FlatHcdIndex& index, NodeTallies* t) {
  for (size_t g = 0; g < index.NumLevelGroups(); ++g) {
    const std::span<const TreeNodeId> group = index.LevelGroup(g);
#pragma omp parallel for schedule(static)
    for (int64_t idx = 0; idx < static_cast<int64_t>(group.size()); ++idx) {
      const TreeNodeId node = group[idx];
      const TreeNodeId pa = index.Parent(node);
      if (pa == kInvalidNode) continue;
#pragma omp atomic
      t->n_s[pa] += t->n_s[node];
#pragma omp atomic
      t->edges2[pa] += t->edges2[node];
#pragma omp atomic
      t->boundary[pa] += t->boundary[node];
#pragma omp atomic
      t->triangles[pa] += t->triangles[node];
#pragma omp atomic
      t->triplets[pa] += t->triplets[node];
    }
  }
}

std::vector<PrimaryValues> ToPrimaryValues(const NodeTallies& t) {
  std::vector<PrimaryValues> out(t.n_s.size());
  for (size_t i = 0; i < out.size(); ++i) {
    HCD_DCHECK(t.n_s[i] >= 0);
    HCD_DCHECK(t.edges2[i] >= 0);
    HCD_DCHECK(t.boundary[i] >= 0);
    out[i].n_s = static_cast<uint64_t>(t.n_s[i]);
    out[i].edges2 = static_cast<uint64_t>(t.edges2[i]);
    out[i].boundary = static_cast<uint64_t>(t.boundary[i]);
    out[i].triangles = static_cast<uint64_t>(t.triangles[i]);
    out[i].triplets = static_cast<uint64_t>(t.triplets[i]);
  }
  return out;
}

inline int64_t Choose2(int64_t x) { return x * (x - 1) / 2; }

}  // namespace

std::vector<PrimaryValues> PbksTypeAPrimary(
    const Graph& graph, const CoreDecomposition& /*cd*/,
    const FlatHcdIndex& index, const CorenessNeighborCounts& pre) {
  const VertexId n = graph.NumVertices();
  NodeTallies t(index.NumNodes());

  // Algorithm 4 lines 2-9: per-vertex contributions. Each vertex counts the
  // edges whose lowest-rank endpoint it is: all edges to greater coreness,
  // and half of the equal-coreness edges (each such edge is charged by both
  // endpoints, hence the doubled-edge bookkeeping).
#pragma omp parallel for schedule(static)
  for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
    const VertexId v = static_cast<VertexId>(vi);
    const int64_t gt = pre.greater[v];
    const int64_t eq = pre.equal[v];
    const int64_t lt = static_cast<int64_t>(graph.Degree(v)) - gt - eq;
    const TreeNodeId i = index.Tid(v);
#pragma omp atomic
    t.n_s[i] += 1;
#pragma omp atomic
    t.edges2[i] += 2 * gt + eq;
#pragma omp atomic
    t.boundary[i] += lt - gt;
  }

  AccumulateUp(index, &t);
  return ToPrimaryValues(t);
}

std::vector<PrimaryValues> PbksTypeBPrimary(
    const Graph& graph, const CoreDecomposition& cd, const FlatHcdIndex& index,
    const VertexRank& vr, const CorenessNeighborCounts& pre) {
  const VertexId n = graph.NumVertices();
  NodeTallies t(index.NumNodes());
  const std::vector<VertexId>& rank = vr.rank;

  // Ordering of Algorithm 5 line 4: enumerate each edge once, from the
  // higher-degree endpoint.
  auto degree_less = [&graph](VertexId a, VertexId b) {
    const VertexId da = graph.Degree(a);
    const VertexId db = graph.Degree(b);
    return da < db || (da == db && a < b);
  };

#pragma omp parallel
  {
    std::vector<uint8_t> mark(n, 0);
    std::vector<VertexId> cnt(cd.k_max + 1, 0);
    std::vector<VertexId> rep(cd.k_max + 1, 0);

#pragma omp for schedule(dynamic, 64)
    for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
      const VertexId v = static_cast<VertexId>(vi);
      const auto nv = graph.Neighbors(v);

      // --- Triangles (lines 2-7): (v, u, w) with u the lower-degree
      // neighbor and w their common neighbor; counted once, at the corner
      // with the lowest vertex rank.
      for (VertexId u : nv) mark[u] = 1;
      for (VertexId u : nv) {
        if (!degree_less(u, v)) continue;
        for (VertexId w : graph.Neighbors(u)) {
          if (mark[w] && rank[w] < rank[u] && rank[w] < rank[v]) {
            const TreeNodeId i = index.Tid(w);
#pragma omp atomic
            t.triangles[i] += 1;
          }
        }
      }
      for (VertexId u : nv) mark[u] = 0;

      // --- Triplets centered at v (lines 8-15). Wedges whose two arms both
      // reach coreness >= c(v) appear with v (the lowest-rank member);
      // wedges whose lowest arm has coreness k < c(v) appear at any
      // neighbor w of coreness k.
      const uint32_t cv = cd.coreness[v];
      int64_t gt_k = static_cast<int64_t>(pre.greater[v]) + pre.equal[v];
      {
        const TreeNodeId i = index.Tid(v);
        const int64_t add = Choose2(gt_k);
        if (add != 0) {
#pragma omp atomic
          t.triplets[i] += add;
        }
      }
      if (cv > 0) {
        for (VertexId u : nv) {
          const uint32_t cu = cd.coreness[u];
          if (cu < cv) {
            ++cnt[cu];
            rep[cu] = u;
          }
        }
        for (int64_t k = static_cast<int64_t>(cv) - 1; k >= 0; --k) {
          const int64_t c = cnt[k];
          if (c > 0) {
            const TreeNodeId i = index.Tid(rep[k]);
            const int64_t add = Choose2(c) + gt_k * c;
#pragma omp atomic
            t.triplets[i] += add;
            gt_k += c;
            cnt[k] = 0;
          }
        }
      }
    }
  }

  AccumulateUp(index, &t);
  return ToPrimaryValues(t);
}

SearchResult ScoreNodes(const FlatHcdIndex& index, Metric metric,
                        const std::vector<PrimaryValues>& accumulated,
                        const GraphGlobals& globals) {
  SearchResult result;
  result.scores.resize(index.NumNodes());
#pragma omp parallel for schedule(static)
  for (int64_t i = 0; i < static_cast<int64_t>(index.NumNodes()); ++i) {
    result.scores[i] = EvaluateMetric(metric, accumulated[i], globals);
  }
  for (TreeNodeId i = 0; i < index.NumNodes(); ++i) {
    if (result.best_node == kInvalidNode ||
        result.scores[i] > result.best_score) {
      result.best_node = i;
      result.best_score = result.scores[i];
    }
  }
  return result;
}

SearchResult PbksSearch(const Graph& graph, const CoreDecomposition& cd,
                        const FlatHcdIndex& index, Metric metric) {
  const CorenessNeighborCounts pre = PreprocessCorenessCounts(graph, cd);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  if (IsTypeB(metric)) {
    const VertexRank vr = ComputeVertexRank(cd);
    return ScoreNodes(index, metric,
                      PbksTypeBPrimary(graph, cd, index, vr, pre), globals);
  }
  return ScoreNodes(index, metric, PbksTypeAPrimary(graph, cd, index, pre),
                    globals);
}

}  // namespace hcd
