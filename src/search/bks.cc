#include "search/bks.h"

#include <algorithm>

#include "common/check.h"

namespace hcd {
namespace {

struct SerialTallies {
  std::vector<int64_t> n_s;
  std::vector<int64_t> edges2;
  std::vector<int64_t> boundary;
  std::vector<int64_t> triangles;
  std::vector<int64_t> triplets;

  explicit SerialTallies(TreeNodeId num_nodes)
      : n_s(num_nodes, 0),
        edges2(num_nodes, 0),
        boundary(num_nodes, 0),
        triangles(num_nodes, 0),
        triplets(num_nodes, 0) {}
};

/// Serial bottom-up accumulation. In the frozen index children always
/// follow their parent (preorder), so a single descending-id sweep is a
/// valid bottom-up schedule — no level order needed.
void AccumulateUpSerial(const FlatHcdIndex& index, SerialTallies* t) {
  for (TreeNodeId node = index.NumNodes(); node-- > 1;) {
    const TreeNodeId pa = index.Parent(node);
    if (pa == kInvalidNode) continue;
    t->n_s[pa] += t->n_s[node];
    t->edges2[pa] += t->edges2[node];
    t->boundary[pa] += t->boundary[node];
    t->triangles[pa] += t->triangles[node];
    t->triplets[pa] += t->triplets[node];
  }
}

std::vector<PrimaryValues> ToPrimaryValues(const SerialTallies& t) {
  std::vector<PrimaryValues> out(t.n_s.size());
  for (size_t i = 0; i < out.size(); ++i) {
    HCD_DCHECK(t.boundary[i] >= 0);
    out[i].n_s = static_cast<uint64_t>(t.n_s[i]);
    out[i].edges2 = static_cast<uint64_t>(t.edges2[i]);
    out[i].boundary = static_cast<uint64_t>(t.boundary[i]);
    out[i].triangles = static_cast<uint64_t>(t.triangles[i]);
    out[i].triplets = static_cast<uint64_t>(t.triplets[i]);
  }
  return out;
}

inline int64_t Choose2(int64_t x) { return x * (x - 1) / 2; }

std::span<const VertexId> SortedNeighbors(const Graph& graph,
                                          const BksIndex& index, VertexId v) {
  return {index.sorted_adj.data() + graph.AdjOffset(v),
          static_cast<size_t>(graph.Degree(v))};
}

}  // namespace

BksIndex BuildBksIndex(const Graph& graph, const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  BksIndex index;
  index.sorted_adj.resize(graph.AdjArray().size());

  // Bucket the vertices by coreness (serial bin sort).
  std::vector<VertexId> shell_start(cd.k_max + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++shell_start[cd.coreness[v] + 1];
  for (size_t k = 1; k < shell_start.size(); ++k) {
    shell_start[k] += shell_start[k - 1];
  }
  std::vector<VertexId> by_coreness(n);
  {
    std::vector<VertexId> cursor(shell_start.begin(), shell_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) by_coreness[cursor[cd.coreness[v]]++] = v;
  }

  // Emit each vertex into its neighbors' lists in descending coreness
  // order, so every sorted adjacency list ends up coreness-descending.
  std::vector<EdgeIndex> cursor(n);
  for (VertexId v = 0; v < n; ++v) cursor[v] = graph.AdjOffset(v);
  for (VertexId i = n; i-- > 0;) {
    const VertexId u = by_coreness[i];
    for (VertexId v : graph.Neighbors(u)) {
      index.sorted_adj[cursor[v]++] = u;
    }
  }
  return index;
}

std::vector<PrimaryValues> BksTypeAPrimary(const Graph& graph,
                                           const CoreDecomposition& cd,
                                           const FlatHcdIndex& hcd_index,
                                           const BksIndex& index,
                                           const VertexRank& vr) {
  SerialTallies t(hcd_index.NumNodes());
  // Descending coreness, the incremental order of BKS.
  for (VertexId i = static_cast<VertexId>(vr.sorted.size()); i-- > 0;) {
    const VertexId v = vr.sorted[i];
    const uint32_t cv = cd.coreness[v];
    const auto nbrs = SortedNeighbors(graph, index, v);
    int64_t gt = 0;
    int64_t eq = 0;
    size_t j = 0;
    while (j < nbrs.size() && cd.coreness[nbrs[j]] > cv) {
      ++gt;
      ++j;
    }
    while (j < nbrs.size() && cd.coreness[nbrs[j]] == cv) {
      ++eq;
      ++j;
    }
    const int64_t lt = static_cast<int64_t>(nbrs.size()) - gt - eq;
    const TreeNodeId node = hcd_index.Tid(v);
    t.n_s[node] += 1;
    t.edges2[node] += 2 * gt + eq;
    t.boundary[node] += lt - gt;
  }
  AccumulateUpSerial(hcd_index, &t);
  return ToPrimaryValues(t);
}

std::vector<PrimaryValues> BksTypeBPrimary(const Graph& graph,
                                           const CoreDecomposition& cd,
                                           const FlatHcdIndex& hcd_index,
                                           const BksIndex& index,
                                           const VertexRank& vr) {
  const VertexId n = graph.NumVertices();
  SerialTallies t(hcd_index.NumNodes());
  const std::vector<VertexId>& rank = vr.rank;

  auto degree_less = [&graph](VertexId a, VertexId b) {
    const VertexId da = graph.Degree(a);
    const VertexId db = graph.Degree(b);
    return da < db || (da == db && a < b);
  };

  std::vector<uint8_t> mark(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const auto nv = graph.Neighbors(v);

    // Triangles, attributed to the lowest-rank corner.
    for (VertexId u : nv) mark[u] = 1;
    for (VertexId u : nv) {
      if (!degree_less(u, v)) continue;
      for (VertexId w : graph.Neighbors(u)) {
        if (mark[w] && rank[w] < rank[u] && rank[w] < rank[v]) {
          t.triangles[hcd_index.Tid(w)] += 1;
        }
      }
    }
    for (VertexId u : nv) mark[u] = 0;

    // Triplets centered at v: the coreness-sorted adjacency delivers the
    // >=c(v) prefix and then each lower-coreness group contiguously.
    const uint32_t cv = cd.coreness[v];
    const auto snbrs = SortedNeighbors(graph, index, v);
    size_t j = 0;
    int64_t gt_k = 0;
    while (j < snbrs.size() && cd.coreness[snbrs[j]] >= cv) {
      ++gt_k;
      ++j;
    }
    t.triplets[hcd_index.Tid(v)] += Choose2(gt_k);
    while (j < snbrs.size()) {
      const uint32_t k = cd.coreness[snbrs[j]];
      const VertexId rep = snbrs[j];
      int64_t cnt = 0;
      while (j < snbrs.size() && cd.coreness[snbrs[j]] == k) {
        ++cnt;
        ++j;
      }
      t.triplets[hcd_index.Tid(rep)] += Choose2(cnt) + gt_k * cnt;
      gt_k += cnt;
    }
  }
  AccumulateUpSerial(hcd_index, &t);
  return ToPrimaryValues(t);
}

SearchResult BksSearch(const Graph& graph, const CoreDecomposition& cd,
                       const FlatHcdIndex& hcd_index, Metric metric) {
  const BksIndex index = BuildBksIndex(graph, cd);
  const VertexRank vr = ComputeVertexRank(cd);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  std::vector<PrimaryValues> primary =
      IsTypeB(metric) ? BksTypeBPrimary(graph, cd, hcd_index, index, vr)
                      : BksTypeAPrimary(graph, cd, hcd_index, index, vr);

  SearchResult result;
  result.scores.resize(hcd_index.NumNodes());
  for (TreeNodeId i = 0; i < hcd_index.NumNodes(); ++i) {
    result.scores[i] = EvaluateMetric(metric, primary[i], globals);
    if (result.best_node == kInvalidNode ||
        result.scores[i] > result.best_score) {
      result.best_node = i;
      result.best_score = result.scores[i];
    }
  }
  return result;
}

}  // namespace hcd
