#ifndef HCD_SEARCH_METRICS_H_
#define HCD_SEARCH_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace hcd {

/// Community scoring metrics (Section II-D), normalized so that higher is
/// better. Type-A metrics depend on n(S), m(S), b(S); type-B metrics depend
/// on triangle and triplet counts.
enum class Metric {
  kAverageDegree,
  kInternalDensity,
  kCutRatio,
  kConductance,
  kModularity,
  kClusteringCoefficient,
  /// 1 / (1 + b(S)/n(S)): inverse of the expansion (boundary edges per
  /// member), normalized into (0, 1].
  kExpansion,
  /// m(S) / (m(S) + b(S)): fraction of the community's edge mass that stays
  /// inside (a bounded form of separability m_in/m_out).
  kSeparability,
  /// Delta(S) / C(n(S), 3): fraction of vertex triples that close.
  kTriangleDensity,
};

/// All metrics, for iteration in tests and benchmarks.
inline constexpr Metric kAllMetrics[] = {
    Metric::kAverageDegree,  Metric::kInternalDensity,
    Metric::kCutRatio,       Metric::kConductance,
    Metric::kModularity,     Metric::kClusteringCoefficient,
    Metric::kExpansion,      Metric::kSeparability,
    Metric::kTriangleDensity,
};

/// True for metrics defined on high-order motifs (Section II-D's type-B);
/// false for the n/m/b-based type-A metrics.
bool IsTypeB(Metric metric);

const char* MetricName(Metric metric);

/// Parses a metric by its MetricName (e.g. "conductance"); returns false
/// (and leaves `*metric` untouched) on an unknown name. Shared by the CLI,
/// the examples and the benchmarks, so the accepted spellings are exactly
/// the names MetricName prints.
bool ParseMetric(std::string_view name, Metric* metric);

/// Whole-graph quantities some metrics need (cut ratio, modularity).
struct GraphGlobals {
  uint64_t n = 0;
  uint64_t m = 0;
};

/// Primary values of one subgraph S (Section II-D). Edge counts are stored
/// doubled (2*m(S)) so per-vertex contributions stay integral.
struct PrimaryValues {
  uint64_t n_s = 0;        ///< n(S): vertices
  uint64_t edges2 = 0;     ///< 2*m(S): twice the internal edge count
  uint64_t boundary = 0;   ///< b(S): boundary edges
  uint64_t triangles = 0;  ///< Delta(S)
  uint64_t triplets = 0;   ///< t(S): paths of length 2
};

/// Evaluates `metric` on primary values `pv` (uses `globals` where the
/// definition needs n or m of the whole graph). Degenerate denominators
/// (empty subgraph, whole graph for cut ratio, triplet-free subgraph)
/// evaluate to 0 except cut ratio on the whole graph, which is 1 (no
/// boundary edge can exist).
double EvaluateMetric(Metric metric, const PrimaryValues& pv,
                      const GraphGlobals& globals);

}  // namespace hcd

#endif  // HCD_SEARCH_METRICS_H_
