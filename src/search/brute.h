#ifndef HCD_SEARCH_BRUTE_H_
#define HCD_SEARCH_BRUTE_H_

#include <span>
#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "search/metrics.h"

namespace hcd {

/// Brute-force oracle: primary values of one vertex set computed directly
/// from the graph (explicit edge, boundary, triangle and wedge counting).
/// O(sum of d(v)^2) over the set; for tests.
PrimaryValues BrutePrimaryValues(const Graph& graph,
                                 std::span<const VertexId> vertices);

/// Primary values of every tree node's original k-core via
/// BrutePrimaryValues; the ground truth for PBKS/BKS in tests.
std::vector<PrimaryValues> BruteNodePrimaryValues(const Graph& graph,
                                                  const FlatHcdIndex& index);

}  // namespace hcd

#endif  // HCD_SEARCH_BRUTE_H_
