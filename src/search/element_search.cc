#include "search/element_search.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/trace.h"
#include "parallel/omp_utils.h"

namespace hcd {

ElementSearchIndex::ElementSearchIndex(std::shared_ptr<const FlatHcdIndex> flat,
                                       TelemetrySink* sink)
    : flat_(std::move(flat)) {
  HCD_CHECK(flat_ != nullptr);
  HCD_CHECK(flat_->kind() != HierarchyKind::kCore)
      << "ElementSearchIndex serves element hierarchies; core hierarchies "
         "score through SearchIndex";
  ScopedStage stage(sink, "search.element");
  const FlatHcdIndex& f = *flat_;
  const TreeNodeId num_nodes = f.NumNodes();
  const VertexId num_graph = f.NumGraphVertices();
  community_vertices_.resize(num_nodes);
  density_.resize(num_nodes);

  // Distinct member vertices per node. Nodes are independent, so the loop
  // is parallel with one stamp array per worker; stamping with t+1 makes
  // every node's pass see a clean array without clearing (0 is never a
  // stamp, t+1 is unique per node).
  {
    ScopedSpan span("search.element.community_sizes");
    span.AddArg("nodes", num_nodes);
#pragma omp parallel
    {
      std::vector<uint32_t> stamp(num_graph, 0);
#pragma omp for schedule(dynamic, 64)
      for (int64_t t = 0; t < static_cast<int64_t>(num_nodes); ++t) {
        const TreeNodeId node = static_cast<TreeNodeId>(t);
        const uint32_t mark = node + 1;
        uint64_t distinct = 0;
        for (const VertexId element : f.CoreVertices(node)) {
          for (const VertexId v : f.ElementMembers(element)) {
            if (stamp[v] != mark) {
              stamp[v] = mark;
              ++distinct;
            }
          }
        }
        community_vertices_[node] = distinct;
      }
    }
  }

  const double arity = static_cast<double>(f.arity());
  double best = -1.0;
  for (TreeNodeId t = 0; t < num_nodes; ++t) {
    const uint64_t verts = community_vertices_[t];
    density_[t] = verts == 0
                      ? 0.0
                      : arity * static_cast<double>(f.CoreSize(t)) /
                            static_cast<double>(verts);
    if (density_[t] > best) {
      best = density_[t];
      densest_node_ = t;
    }
  }
  stage.AddCounter("nodes", num_nodes);
  stage.AddCounter("elements", f.NumElements());
}

ElementHit ElementSearchIndex::HitFor(TreeNodeId t) const {
  ElementHit hit;
  if (t == kInvalidNode) return hit;
  hit.found = true;
  hit.node = t;
  hit.level = flat_->Level(t);
  hit.elements = flat_->CoreSize(t);
  hit.vertices = community_vertices_[t];
  hit.score = density_[t];
  return hit;
}

ElementHit ElementSearchIndex::Densest() const { return HitFor(densest_node_); }

ElementHit ElementSearchIndex::DensestAtLeast(uint32_t k) const {
  if (k == 0) return Densest();
  const FlatHcdIndex& f = *flat_;
  TreeNodeId best = kInvalidNode;
  double best_score = 0.0;
  for (TreeNodeId t = 0; t < f.NumNodes(); ++t) {
    if (f.Level(t) < k) continue;
    if (best == kInvalidNode || density_[t] > best_score) {
      best = t;
      best_score = density_[t];
    }
  }
  return HitFor(best);
}

ElementHit ElementSearchIndex::CommunityOf(TreeNodeId t, ElementWorkspace* ws,
                                           std::vector<VertexId>* out) const {
  const ElementHit hit = HitFor(t);
  if (!hit.found) return hit;
  const FlatHcdIndex& f = *flat_;
  if (ws->stamp.size() != f.NumGraphVertices()) {
    ws->stamp.assign(f.NumGraphVertices(), 0);
    ws->epoch = 0;
  }
  if (++ws->epoch == 0) {  // epoch wrap: one full clear every 2^32 queries
    std::fill(ws->stamp.begin(), ws->stamp.end(), 0);
    ws->epoch = 1;
  }
  const uint32_t mark = ws->epoch;
  const size_t first = out->size();
  for (const VertexId element : f.CoreVertices(t)) {
    for (const VertexId v : f.ElementMembers(element)) {
      if (ws->stamp[v] != mark) {
        ws->stamp[v] = mark;
        out->push_back(v);
      }
    }
  }
  std::sort(out->begin() + first, out->end());
  return hit;
}

}  // namespace hcd
