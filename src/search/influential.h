#ifndef HCD_SEARCH_INFLUENTIAL_H_
#define HCD_SEARCH_INFLUENTIAL_H_

#include <vector>

#include "graph/graph.h"

namespace hcd {

/// A k-influential community (Li et al., the paper's Section VI index
/// application): a connected subgraph with minimum internal degree >= k,
/// whose *influence* is the smallest member weight; communities are emitted
/// in the maximal, non-contained form produced by ascending-weight peeling.
struct InfluentialCommunity {
  double influence = 0.0;
  std::vector<VertexId> vertices;
};

/// Top-r k-influential communities of `graph` under per-vertex `weights`,
/// in descending influence.
///
/// Peeling semantics: restrict to the k-core; repeatedly emit the connected
/// component of the minimum-weight remaining vertex (its influence is that
/// weight), then delete the vertex and cascade the min-degree-k constraint.
/// Two passes keep the cost at O(m) peeling plus the size of the r reported
/// communities.
std::vector<InfluentialCommunity> TopInfluentialCommunities(
    const Graph& graph, const std::vector<double>& weights, uint32_t k,
    uint32_t r);

}  // namespace hcd

#endif  // HCD_SEARCH_INFLUENTIAL_H_
