#ifndef HCD_SEARCH_ELEMENT_SEARCH_H_
#define HCD_SEARCH_ELEMENT_SEARCH_H_

#include <memory>
#include <vector>

#include "common/telemetry.h"
#include "hcd/flat_index.h"

namespace hcd {

/// Caller-owned scratch for element-community materialization. One
/// workspace per query thread; the stamp array is grown once to the graph
/// vertex count and then reused epoch-style, so the hot path never clears
/// it and allocates only into the caller's output vector.
struct ElementWorkspace {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;
};

/// Best community of one element-hierarchy query.
struct ElementHit {
  bool found = false;
  TreeNodeId node = kInvalidNode;
  uint32_t level = 0;
  uint64_t elements = 0;  ///< edges (truss) / triangles (nucleus)
  uint64_t vertices = 0;  ///< distinct member vertices
  double score = 0.0;     ///< density: arity * elements / vertices
};

/// Serve-phase product for element hierarchies (truss / nucleus): the
/// SearchIndex analogue over a kind-tagged FlatHcdIndex. The constructor
/// eagerly computes, per tree node, the distinct-member-vertex count of
/// its community (parallel over nodes with per-thread stamp arrays) and
/// the density score
///
///     density(t) = arity * |elements(t)| / |vertices(t)|
///
/// which for a truss community is exactly its average degree (2m/n), so
/// DensestNode() reproduces DensestTruss bit-identically. The object is
/// deeply const after construction: any number of threads may run the
/// query methods concurrently, each with its own ElementWorkspace — the
/// QuerySnapshot-grade contract the socket server and query-bench rely on.
///
/// With a sink, construction records the "search.element" stage.
class ElementSearchIndex {
 public:
  /// The index must be non-core (a core hierarchy scores through the
  /// metric machinery of SearchIndex instead). Shares ownership of the
  /// flat index so the search object can outlive its builder.
  explicit ElementSearchIndex(std::shared_ptr<const FlatHcdIndex> flat,
                              TelemetrySink* sink = nullptr);

  ElementSearchIndex(const ElementSearchIndex&) = delete;
  ElementSearchIndex& operator=(const ElementSearchIndex&) = delete;

  const FlatHcdIndex& flat() const { return *flat_; }
  HierarchyKind kind() const { return flat_->kind(); }

  /// Distinct member vertices of node t's community. O(1).
  uint64_t CommunityVertices(TreeNodeId t) const {
    return community_vertices_[t];
  }
  /// Elements (edges / triangles) of node t's community. O(1).
  uint64_t CommunityElements(TreeNodeId t) const { return flat_->CoreSize(t); }
  /// Density of node t's community. O(1).
  double Density(TreeNodeId t) const { return density_[t]; }

  /// The globally densest community. O(1): precomputed at construction
  /// (first preorder node wins ties, matching the DensestAtLeast scan).
  ElementHit Densest() const;

  /// The densest community among nodes of level >= k; k == 0 is Densest.
  /// O(N) scan over the precomputed densities, first-node-wins ties.
  ElementHit DensestAtLeast(uint32_t k) const;

  /// Community of tree node t (its k-truss / k-nucleus): the element count
  /// is returned via the hit, and the distinct member vertices are
  /// appended to `*out` in ascending order. O(answer).
  ElementHit CommunityOf(TreeNodeId t, ElementWorkspace* ws,
                         std::vector<VertexId>* out) const;

 private:
  ElementHit HitFor(TreeNodeId t) const;

  std::shared_ptr<const FlatHcdIndex> flat_;
  std::vector<uint64_t> community_vertices_;  ///< per node, distinct
  std::vector<double> density_;               ///< per node
  TreeNodeId densest_node_ = kInvalidNode;
};

}  // namespace hcd

#endif  // HCD_SEARCH_ELEMENT_SEARCH_H_
