#include "search/searcher.h"

namespace hcd {
namespace {

CorenessNeighborCounts TimedPreprocess(const Graph& graph,
                                       const CoreDecomposition& cd,
                                       TelemetrySink* sink) {
  ScopedStage stage(sink, "search.preprocess");
  return PreprocessCorenessCounts(graph, cd);
}

}  // namespace

SubgraphSearcher::SubgraphSearcher(const Graph& graph,
                                   const CoreDecomposition& cd,
                                   const FlatHcdIndex& index,
                                   TelemetrySink* sink)
    : graph_(graph),
      cd_(cd),
      index_(index),
      sink_(sink),
      pre_(TimedPreprocess(graph, cd, sink)),
      globals_{graph.NumVertices(), graph.NumEdges()} {}

const std::vector<PrimaryValues>& SubgraphSearcher::TypeAPrimary() {
  if (!type_a_) {
    ScopedStage stage(sink_, "search.primary_a");
    type_a_ = PbksTypeAPrimary(graph_, cd_, index_, pre_);
  }
  return *type_a_;
}

const std::vector<PrimaryValues>& SubgraphSearcher::TypeBPrimary() {
  if (!type_b_) {
    ScopedStage stage(sink_, "search.primary_b");
    if (!vr_) vr_ = ComputeVertexRank(cd_);
    type_b_ = PbksTypeBPrimary(graph_, cd_, index_, *vr_, pre_);
  }
  return *type_b_;
}

SearchResult SubgraphSearcher::Search(Metric metric) {
  const std::vector<PrimaryValues>& primary =
      IsTypeB(metric) ? TypeBPrimary() : TypeAPrimary();
  ScopedStage stage(sink_, "search.score");
  SearchResult result = ScoreNodes(index_, metric, primary, globals_);
  stage.AddCounter("nodes", index_.NumNodes());
  return result;
}

std::span<const VertexId> SubgraphSearcher::CoreVertices(
    const SearchResult& result) const {
  if (result.best_node == kInvalidNode) return {};
  return index_.CoreVertices(result.best_node);
}

}  // namespace hcd
