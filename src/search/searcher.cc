#include "search/searcher.h"

namespace hcd {

SubgraphSearcher::SubgraphSearcher(const Graph& graph,
                                   const CoreDecomposition& cd,
                                   const HcdForest& forest)
    : graph_(graph),
      cd_(cd),
      forest_(forest),
      pre_(PreprocessCorenessCounts(graph, cd)),
      globals_{graph.NumVertices(), graph.NumEdges()} {}

const std::vector<PrimaryValues>& SubgraphSearcher::TypeAPrimary() {
  if (!type_a_) {
    type_a_ = PbksTypeAPrimary(graph_, cd_, forest_, pre_);
  }
  return *type_a_;
}

const std::vector<PrimaryValues>& SubgraphSearcher::TypeBPrimary() {
  if (!type_b_) {
    if (!vr_) vr_ = ComputeVertexRank(cd_);
    type_b_ = PbksTypeBPrimary(graph_, cd_, forest_, *vr_, pre_);
  }
  return *type_b_;
}

SearchResult SubgraphSearcher::Search(Metric metric) {
  const std::vector<PrimaryValues>& primary =
      IsTypeB(metric) ? TypeBPrimary() : TypeAPrimary();
  return ScoreNodes(forest_, metric, primary, globals_);
}

std::vector<VertexId> SubgraphSearcher::CoreVertices(
    const SearchResult& result) const {
  if (result.best_node == kInvalidNode) return {};
  return forest_.CoreVertices(result.best_node);
}

}  // namespace hcd
