#ifndef HCD_SEARCH_DENSEST_H_
#define HCD_SEARCH_DENSEST_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"

namespace hcd {

/// A subgraph returned by a densest-subgraph routine.
struct DenseSubgraph {
  std::vector<VertexId> vertices;
  /// 2*m(S)/n(S) of the returned subgraph.
  double average_degree = 0.0;
};

/// PBKS-D (Section V-C): the k-core with the highest average degree, found
/// on the HCD with PBKS. 0.5-approximation for the densest subgraph (it
/// never scores below the k_max-core). Parallel.
DenseSubgraph PbksDensest(const Graph& graph, const CoreDecomposition& cd,
                          const FlatHcdIndex& index);

/// Core-based approximate densest subgraph in the style of CoreApp
/// (Fang et al., the paper's Table IV baseline): returns the best connected
/// component of the k_max-core, the classic 0.5-approximation. Its average
/// degree can only be <= PBKS-D's, which optimizes over every k-core.
DenseSubgraph CoreAppDensest(const Graph& graph, const CoreDecomposition& cd);

/// Charikar's greedy peeling 0.5-approximation (peel minimum-degree
/// vertices, keep the best prefix). Not connectivity-constrained; included
/// as an additional quality reference for Table IV.
DenseSubgraph CharikarPeelingDensest(const Graph& graph);

/// Greedy++ (Boob et al.): `iterations` rounds of load-weighted peeling
/// (each round peels by current degree plus the loads accumulated in
/// earlier rounds), keeping the densest suffix seen. Converges toward the
/// exact densest subgraph as iterations grow; iteration 1 is Charikar's
/// peeling. O(iterations * m log n).
DenseSubgraph GreedyPlusPlusDensest(const Graph& graph, int iterations);

}  // namespace hcd

#endif  // HCD_SEARCH_DENSEST_H_
