#ifndef HCD_SEARCH_SEARCHER_H_
#define HCD_SEARCH_SEARCHER_H_

#include <optional>
#include <vector>

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "hcd/vertex_rank.h"
#include "search/metrics.h"
#include "search/pbks.h"
#include "search/preprocess.h"

namespace hcd {

/// Facade over PBKS (Section IV-D): runs the coreness-count preprocessing
/// once at construction and lazily computes + caches the type-A and type-B
/// primary values, so scoring several metrics over the same HCD costs one
/// primary-value pass per type plus O(|T|) per metric.
///
/// The referenced graph, decomposition and frozen index must outlive the
/// searcher; so must the sink, when one is given. With a sink, the
/// constructor records a "search.preprocess" stage, the primary-value
/// passes record "search.primary_a" / "search.primary_b" on first use, and
/// each Search records a "search.score" stage.
class SubgraphSearcher {
 public:
  SubgraphSearcher(const Graph& graph, const CoreDecomposition& cd,
                   const FlatHcdIndex& index, TelemetrySink* sink = nullptr);

  SubgraphSearcher(const SubgraphSearcher&) = delete;
  SubgraphSearcher& operator=(const SubgraphSearcher&) = delete;

  /// Best k-core and all scores under `metric` (parallel).
  SearchResult Search(Metric metric);

  /// Vertices of the best k-core found by a search: an O(1) view into the
  /// frozen index's preorder vertex array (empty if nothing was found).
  std::span<const VertexId> CoreVertices(const SearchResult& result) const;

  /// Accumulated primary values per tree node (computes on first use).
  const std::vector<PrimaryValues>& TypeAPrimary();
  const std::vector<PrimaryValues>& TypeBPrimary();

 private:
  const Graph& graph_;
  const CoreDecomposition& cd_;
  const FlatHcdIndex& index_;
  TelemetrySink* sink_;
  CorenessNeighborCounts pre_;
  GraphGlobals globals_;
  std::optional<VertexRank> vr_;
  std::optional<std::vector<PrimaryValues>> type_a_;
  std::optional<std::vector<PrimaryValues>> type_b_;
};

}  // namespace hcd

#endif  // HCD_SEARCH_SEARCHER_H_
