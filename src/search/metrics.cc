#include "search/metrics.h"

#include "common/check.h"

namespace hcd {

bool IsTypeB(Metric metric) {
  return metric == Metric::kClusteringCoefficient ||
         metric == Metric::kTriangleDensity;
}

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kAverageDegree:
      return "average-degree";
    case Metric::kInternalDensity:
      return "internal-density";
    case Metric::kCutRatio:
      return "cut-ratio";
    case Metric::kConductance:
      return "conductance";
    case Metric::kModularity:
      return "modularity";
    case Metric::kClusteringCoefficient:
      return "clustering-coefficient";
    case Metric::kExpansion:
      return "expansion";
    case Metric::kSeparability:
      return "separability";
    case Metric::kTriangleDensity:
      return "triangle-density";
  }
  return "unknown";
}

bool ParseMetric(std::string_view name, Metric* metric) {
  for (Metric m : kAllMetrics) {
    if (name == MetricName(m)) {
      *metric = m;
      return true;
    }
  }
  return false;
}

double EvaluateMetric(Metric metric, const PrimaryValues& pv,
                      const GraphGlobals& globals) {
  const double n_s = static_cast<double>(pv.n_s);
  const double m2 = static_cast<double>(pv.edges2);
  const double b = static_cast<double>(pv.boundary);
  switch (metric) {
    case Metric::kAverageDegree:
      return pv.n_s == 0 ? 0.0 : m2 / n_s;
    case Metric::kInternalDensity:
      return pv.n_s <= 1 ? 0.0 : m2 / (n_s * (n_s - 1.0));
    case Metric::kCutRatio: {
      if (pv.n_s == 0) return 0.0;
      const double outside = static_cast<double>(globals.n) - n_s;
      if (outside <= 0.0) return 1.0;  // whole graph: no boundary possible
      return 1.0 - b / (n_s * outside);
    }
    case Metric::kConductance: {
      const double denom = m2 + b;
      return denom <= 0.0 ? 0.0 : 1.0 - b / denom;
    }
    case Metric::kModularity: {
      // Two-community partition {S, V \ S} (Section II-D, Newman-Girvan).
      if (globals.m == 0) return 0.0;  // modularity is undefined; score 0
      const double m = static_cast<double>(globals.m);
      const double m_in = m2 / 2.0;
      const double m_out = m - m_in - b;
      const double deg_in = (m2 + b) / (2.0 * m);
      const double deg_out = (2.0 * m_out + b) / (2.0 * m);
      return m_in / m - deg_in * deg_in + m_out / m - deg_out * deg_out;
    }
    case Metric::kClusteringCoefficient:
      return pv.triplets == 0
                 ? 0.0
                 : 3.0 * static_cast<double>(pv.triangles) /
                       static_cast<double>(pv.triplets);
    case Metric::kExpansion:
      return pv.n_s == 0 ? 0.0 : 1.0 / (1.0 + b / n_s);
    case Metric::kSeparability: {
      const double m_in = m2 / 2.0;
      return m_in + b <= 0.0 ? 0.0 : m_in / (m_in + b);
    }
    case Metric::kTriangleDensity: {
      if (pv.n_s < 3) return 0.0;
      const double triples = n_s * (n_s - 1.0) * (n_s - 2.0) / 6.0;
      return static_cast<double>(pv.triangles) / triples;
    }
  }
  return 0.0;
}

}  // namespace hcd
