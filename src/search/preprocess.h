#ifndef HCD_SEARCH_PREPROCESS_H_
#define HCD_SEARCH_PREPROCESS_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// PBKS preprocessing (Section IV-A): for every vertex, the number of
/// neighbors with coreness greater than / equal to its own. Together with
/// the degree this answers all "neighbors with less / equal / greater
/// coreness" queries in O(1). Executed once, reused by every metric.
struct CorenessNeighborCounts {
  std::vector<VertexId> greater;  ///< |{u in N(v) : c(u) > c(v)}|
  std::vector<VertexId> equal;    ///< |{u in N(v) : c(u) = c(v)}|

  VertexId Less(const Graph& graph, VertexId v) const {
    return graph.Degree(v) - greater[v] - equal[v];
  }
};

/// Computes the counts with a parallel scan of all adjacency lists; O(m)
/// work over the current OpenMP threads.
CorenessNeighborCounts PreprocessCorenessCounts(const Graph& graph,
                                                const CoreDecomposition& cd);

}  // namespace hcd

#endif  // HCD_SEARCH_PREPROCESS_H_
