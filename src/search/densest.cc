#include "search/densest.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "graph/subgraph.h"
#include "search/pbks.h"

namespace hcd {
namespace {

double AverageDegreeOf(const Graph& graph,
                       const std::vector<VertexId>& vertices) {
  if (vertices.empty()) return 0.0;
  const EdgeIndex m = CountInducedEdges(graph, vertices);
  return 2.0 * static_cast<double>(m) / static_cast<double>(vertices.size());
}

}  // namespace

DenseSubgraph PbksDensest(const Graph& graph, const CoreDecomposition& cd,
                          const FlatHcdIndex& index) {
  // One-shot PBKS: only the type-A pass this metric needs (an eager
  // SearchIndex would also pay the O(m^1.5) type-B pass).
  const SearchResult result =
      PbksSearch(graph, cd, index, Metric::kAverageDegree);
  DenseSubgraph out;
  if (result.best_node == kInvalidNode) return out;
  const std::span<const VertexId> verts = index.CoreVertices(result.best_node);
  out.vertices.assign(verts.begin(), verts.end());
  out.average_degree = result.best_score;
  return out;
}

DenseSubgraph CoreAppDensest(const Graph& graph, const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  DenseSubgraph out;
  if (n == 0) return out;

  // Connected components of {v : c(v) == k_max} under coreness >= k_max
  // reachability: the k_max-cores.
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (cd.coreness[s] != cd.k_max || seen[s]) continue;
    std::vector<VertexId> comp;
    stack.assign(1, s);
    seen[s] = true;
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (VertexId u : graph.Neighbors(v)) {
        if (!seen[u] && cd.coreness[u] >= cd.k_max) {
          seen[u] = true;
          stack.push_back(u);
        }
      }
    }
    const double avg = AverageDegreeOf(graph, comp);
    if (avg > out.average_degree || out.vertices.empty()) {
      out.vertices = std::move(comp);
      out.average_degree = avg;
    }
  }
  return out;
}

DenseSubgraph CharikarPeelingDensest(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  DenseSubgraph out;
  if (n == 0) return out;

  // Peel minimum-degree vertices (bucket queue), tracking the density of
  // every suffix; return the best one.
  std::vector<VertexId> deg(n);
  VertexId max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = graph.Degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<VertexId> bin(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v] + 1];
  for (size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<VertexId> vert(n);
  std::vector<VertexId> pos(n);
  {
    std::vector<VertexId> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]];
      vert[pos[v]] = v;
      ++cursor[deg[v]];
    }
  }

  uint64_t edges_left = graph.NumEdges();
  double best_density = -1.0;
  VertexId best_peeled = 0;  // best subgraph = vertices peeled at index >= this
  for (VertexId i = 0; i < n; ++i) {
    const double density = static_cast<double>(2 * edges_left) /
                           static_cast<double>(n - i);
    if (density > best_density) {
      best_density = density;
      best_peeled = i;
    }
    VertexId v = vert[i];
    // Edges removed with v = its neighbors still in the suffix. (deg[v]
    // itself can overcount: the bucket updates freeze equal-degree
    // neighbors, BZ-style.)
    for (VertexId u : graph.Neighbors(v)) {
      if (pos[u] > i) --edges_left;
    }
    for (VertexId u : graph.Neighbors(v)) {
      if (deg[u] > deg[v]) {
        VertexId du = deg[u];
        VertexId pu = pos[u];
        VertexId pw = bin[du];
        VertexId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }
  out.vertices.assign(vert.begin() + best_peeled, vert.end());
  out.average_degree = best_density;
  return out;
}

DenseSubgraph GreedyPlusPlusDensest(const Graph& graph, int iterations) {
  const VertexId n = graph.NumVertices();
  DenseSubgraph out;
  if (n == 0 || graph.NumEdges() == 0) return out;
  HCD_CHECK_GE(iterations, 1);

  std::vector<double> load(n, 0.0);
  std::vector<VertexId> deg(n);
  std::vector<bool> removed(n);
  std::vector<VertexId> order(n);
  double best_density = -1.0;

  for (int it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) deg[v] = graph.Degree(v);
    std::fill(removed.begin(), removed.end(), false);

    // Lazy min-heap keyed by load + current degree; stale entries are
    // skipped when their recorded key no longer matches.
    using Entry = std::pair<double, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (VertexId v = 0; v < n; ++v) heap.emplace(load[v] + deg[v], v);

    uint64_t edges_left = graph.NumEdges();
    double round_best = -1.0;
    VertexId round_cut = 0;
    for (VertexId i = 0; i < n; ++i) {
      VertexId v = kInvalidVertex;
      while (true) {
        auto [key, cand] = heap.top();
        heap.pop();
        if (!removed[cand] && key == load[cand] + deg[cand]) {
          v = cand;
          break;
        }
      }
      const double density =
          static_cast<double>(2 * edges_left) / static_cast<double>(n - i);
      if (density > round_best) {
        round_best = density;
        round_cut = i;
      }
      order[i] = v;
      removed[v] = true;
      load[v] += deg[v];
      edges_left -= deg[v];
      for (VertexId u : graph.Neighbors(v)) {
        if (!removed[u]) {
          --deg[u];
          heap.emplace(load[u] + deg[u], u);
        }
      }
    }
    if (round_best > best_density) {
      best_density = round_best;
      out.vertices.assign(order.begin() + round_cut, order.end());
    }
  }
  out.average_degree = best_density;
  return out;
}

}  // namespace hcd
