#ifndef HCD_SEARCH_BEST_K_H_
#define HCD_SEARCH_BEST_K_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "search/metrics.h"

namespace hcd {

/// Result of the "finding the best k" extension (Section VI): the score of
/// the whole k-core set K_k (all k-cores together) for every k, and the k
/// maximizing it.
struct BestKResult {
  uint32_t best_k = 0;
  double best_score = 0.0;
  /// scores[k]: score of K_k, 0 <= k <= k_max.
  std::vector<double> scores;
  /// per_k[k]: primary values of K_k.
  std::vector<PrimaryValues> per_k;
};

/// Computes the primary values of every k-core set with the PBKS paradigm —
/// vertex-centric contributions keyed by coreness level instead of tree
/// node, followed by a suffix sum over descending k — and scores them with
/// `metric`. Parallel; O(n) work for type-A metrics and O(m^1.5) for
/// type-B, after O(m) preprocessing.
BestKResult FindBestK(const Graph& graph, const CoreDecomposition& cd,
                      Metric metric);

}  // namespace hcd

#endif  // HCD_SEARCH_BEST_K_H_
