#ifndef HCD_SEARCH_PBKS_H_
#define HCD_SEARCH_PBKS_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "hcd/vertex_rank.h"
#include "search/metrics.h"
#include "search/preprocess.h"

namespace hcd {

/// Result of a subgraph search: the best k-core (as a tree node of the HCD)
/// plus the score of every k-core. Node ids are FlatHcdIndex preorder ids —
/// the whole search layer runs on the frozen index, never on the builder
/// forest.
struct SearchResult {
  TreeNodeId best_node = kInvalidNode;
  double best_score = 0.0;
  /// scores[i]: score of node i's original k-core.
  std::vector<double> scores;
};

/// Type-A primary values of every k-core (Algorithm 4 without the metric
/// evaluation): vertex-centric parallel counting (each vertex/edge counted
/// once, at its lowest-vertex-rank endpoint's tree node) followed by a
/// parallel bottom-up tree accumulation. Entry i holds the fully
/// accumulated n(S), 2*m(S), b(S) of node i's original k-core. O(n) work
/// after preprocessing.
std::vector<PrimaryValues> PbksTypeAPrimary(const Graph& graph,
                                            const CoreDecomposition& cd,
                                            const FlatHcdIndex& index,
                                            const CorenessNeighborCounts& pre);

/// Type-B primary values of every k-core (Algorithm 5): parallel triangle
/// counting (each triangle attributed to its lowest-vertex-rank corner) and
/// triplet counting (each open wedge attributed to its lowest-rank member),
/// then parallel bottom-up accumulation. Entry i holds Delta(S) and t(S) of
/// node i's original k-core. O(m^1.5) work.
std::vector<PrimaryValues> PbksTypeBPrimary(const Graph& graph,
                                            const CoreDecomposition& cd,
                                            const FlatHcdIndex& index,
                                            const VertexRank& vr,
                                            const CorenessNeighborCounts& pre);

/// Evaluates `metric` on every node's accumulated primary values and
/// returns all scores plus the best k-core (Algorithm 3's final step).
SearchResult ScoreNodes(const FlatHcdIndex& index, Metric metric,
                        const std::vector<PrimaryValues>& accumulated,
                        const GraphGlobals& globals);

/// One-call parallel subgraph search (PBKS, Section IV-D): preprocessing,
/// the right primary-value computation for `metric`, and scoring. Callers
/// evaluating several metrics should build a SearchIndex (search_index.h)
/// once and score against it, reusing the preprocessing and primary values.
SearchResult PbksSearch(const Graph& graph, const CoreDecomposition& cd,
                        const FlatHcdIndex& index, Metric metric);

}  // namespace hcd

#endif  // HCD_SEARCH_PBKS_H_
