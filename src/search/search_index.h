#ifndef HCD_SEARCH_SEARCH_INDEX_H_
#define HCD_SEARCH_SEARCH_INDEX_H_

#include <vector>

#include "common/telemetry.h"
#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "search/metrics.h"
#include "search/pbks.h"
#include "search/preprocess.h"

namespace hcd {

/// Build-phase product of PBKS (Section IV-D), replacing the old lazy
/// SubgraphSearcher: the constructor runs the coreness-count preprocessing
/// and *eagerly* computes both the type-A and the type-B primary values, so
/// the object is deeply const afterwards — no mutable caches, no
/// first-caller races. Any number of threads may score metrics against one
/// SearchIndex concurrently (see SearchInto below); that is the serve-phase
/// seam QuerySnapshot (engine/snapshot.h) is built on.
///
/// The constructor only reads its arguments; it keeps no references, so the
/// index stays valid even if the graph is destroyed (scoring needs only the
/// frozen FlatHcdIndex alongside it). With a sink, construction records the
/// "search.preprocess", "search.primary_a" and "search.primary_b" stages.
class SearchIndex {
 public:
  SearchIndex(const Graph& graph, const CoreDecomposition& cd,
              const FlatHcdIndex& index, TelemetrySink* sink = nullptr);

  SearchIndex(const SearchIndex&) = delete;
  SearchIndex& operator=(const SearchIndex&) = delete;

  /// Whole-graph n and m, captured at construction for the metrics that
  /// need them (cut ratio, modularity).
  const GraphGlobals& globals() const { return globals_; }

  /// Accumulated primary values per tree node: n(S), 2*m(S), b(S) for
  /// type-A; additionally Delta(S), t(S) filled in for type-B.
  const std::vector<PrimaryValues>& TypeAPrimary() const { return type_a_; }
  const std::vector<PrimaryValues>& TypeBPrimary() const { return type_b_; }

  /// The primary-value table `metric` scores against.
  const std::vector<PrimaryValues>& PrimaryFor(Metric metric) const {
    return IsTypeB(metric) ? type_b_ : type_a_;
  }

 private:
  GraphGlobals globals_;
  std::vector<PrimaryValues> type_a_;
  std::vector<PrimaryValues> type_b_;
};

/// Caller-owned scratch for the serve-phase scoring path. One workspace per
/// query thread; reusing it across queries keeps the hot path free of
/// allocation (the scores vector is grown once to the node count and then
/// only overwritten).
struct SearchWorkspace {
  std::vector<double> scores;  ///< per-node scores of the last query
};

/// Best node of one serve-phase query; the full score table lives in the
/// caller's SearchWorkspace.
struct SearchHit {
  TreeNodeId best_node = kInvalidNode;
  double best_score = 0.0;
};

/// Serve-phase scoring: evaluates `metric` on every tree node into
/// `ws->scores` and returns the best node. Reads only const state, so any
/// number of threads may call it on one (index, sidx) pair concurrently,
/// each with its own workspace. Runs serially on the calling thread — the
/// serve phase takes its parallelism from concurrent queries, not from
/// OpenMP inside one query — and produces scores bit-identical to
/// ScoreNodes (pbks.h), whose parallel loop evaluates the same per-node
/// expression.
SearchHit SearchInto(const FlatHcdIndex& index, const SearchIndex& sidx,
                     Metric metric, SearchWorkspace* ws);

}  // namespace hcd

#endif  // HCD_SEARCH_SEARCH_INDEX_H_
