#ifndef HCD_SEARCH_BKS_H_
#define HCD_SEARCH_BKS_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"
#include "hcd/flat_index.h"
#include "hcd/vertex_rank.h"
#include "search/metrics.h"
#include "search/pbks.h"

namespace hcd {

/// BKS's vertex-ordering preprocessing: every adjacency list re-ordered by
/// descending neighbor coreness (bin-sort over coreness, O(m)). This is the
/// heavier ordering step PBKS replaces with the O(1)-query coreness counts
/// (Section IV-A discussion).
struct BksIndex {
  /// Flat re-ordered adjacency, using the graph's own offsets.
  std::vector<VertexId> sorted_adj;
};

BksIndex BuildBksIndex(const Graph& graph, const CoreDecomposition& cd);

/// Serial type-A primary values: vertices processed in descending coreness
/// order; each scans only the prefix of its sorted adjacency with coreness
/// >= its own, then a serial bottom-up accumulation. Mirrors BKS's
/// descending-k incremental score computation.
std::vector<PrimaryValues> BksTypeAPrimary(const Graph& graph,
                                           const CoreDecomposition& cd,
                                           const FlatHcdIndex& hcd_index,
                                           const BksIndex& index,
                                           const VertexRank& vr);

/// Serial type-B primary values: triangle counting by adjacency
/// intersection from the higher-degree endpoint and triplet counting by
/// scanning the coreness-sorted adjacency (the sorted order yields the
/// per-coreness neighbor groups without scratch arrays). O(m^1.5).
std::vector<PrimaryValues> BksTypeBPrimary(const Graph& graph,
                                           const CoreDecomposition& cd,
                                           const FlatHcdIndex& hcd_index,
                                           const BksIndex& index,
                                           const VertexRank& vr);

/// One-call serial subgraph search (BKS; Opt-D in Table IV when used with
/// the average-degree metric).
SearchResult BksSearch(const Graph& graph, const CoreDecomposition& cd,
                       const FlatHcdIndex& hcd_index, Metric metric);

}  // namespace hcd

#endif  // HCD_SEARCH_BKS_H_
