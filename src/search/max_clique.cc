#include "search/max_clique.h"

#include <algorithm>

#include "common/check.h"

namespace hcd {
namespace {

class CliqueSolver {
 public:
  CliqueSolver(const Graph& graph, const CoreDecomposition& cd)
      : graph_(graph), cd_(cd) {}

  std::vector<VertexId> Solve() {
    const VertexId n = graph_.NumVertices();
    if (n == 0) return {};

    // Degeneracy order = ascending coreness (ties by id) works for the
    // outer expansion: when v is processed, only later vertices remain as
    // candidates, and |later neighbors| <= 2 * c(v) style bounds apply.
    std::vector<VertexId> order(n);
    std::vector<VertexId> position(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(),
                     [this](VertexId a, VertexId b) {
                       return cd_.coreness[a] < cd_.coreness[b];
                     });
    for (VertexId i = 0; i < n; ++i) position[order[i]] = i;

    best_.clear();
    std::vector<VertexId> r;
    std::vector<VertexId> p;
    for (VertexId i = 0; i < n; ++i) {
      const VertexId v = order[i];
      if (cd_.coreness[v] + 1 <= best_.size()) continue;
      p.clear();
      for (VertexId u : graph_.Neighbors(v)) {
        if (position[u] > i && cd_.coreness[u] + 1 > best_.size()) {
          p.push_back(u);
        }
      }
      r.assign(1, v);
      Expand(&r, p);
    }
    return best_;
  }

 private:
  void Expand(std::vector<VertexId>* r, std::vector<VertexId> p) {
    if (p.empty()) {
      if (r->size() > best_.size()) best_ = *r;
      return;
    }
    // Greedy coloring bound (Tomita): candidates reordered by color class;
    // expanding in reverse color order lets us cut as soon as
    // |R| + color <= |best|.
    std::vector<VertexId> colored;
    std::vector<uint32_t> color_of;
    ColorSort(p, &colored, &color_of);

    for (size_t i = colored.size(); i-- > 0;) {
      if (r->size() + color_of[i] <= best_.size()) return;
      const VertexId v = colored[i];
      std::vector<VertexId> next;
      for (size_t j = 0; j < i; ++j) {
        if (graph_.HasEdge(v, colored[j])) next.push_back(colored[j]);
      }
      r->push_back(v);
      Expand(r, std::move(next));
      r->pop_back();
    }
  }

  /// Partitions `p` into independent color classes; emits the candidates
  /// class by class with 1-based class numbers.
  void ColorSort(const std::vector<VertexId>& p, std::vector<VertexId>* out,
                 std::vector<uint32_t>* colors) {
    std::vector<std::vector<VertexId>> classes;
    for (VertexId v : p) {
      bool placed = false;
      for (auto& cls : classes) {
        bool conflict = false;
        for (VertexId u : cls) {
          if (graph_.HasEdge(v, u)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) {
          cls.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) classes.push_back({v});
    }
    out->clear();
    colors->clear();
    for (uint32_t c = 0; c < classes.size(); ++c) {
      for (VertexId v : classes[c]) {
        out->push_back(v);
        colors->push_back(c + 1);
      }
    }
  }

  const Graph& graph_;
  const CoreDecomposition& cd_;
  std::vector<VertexId> best_;
};

}  // namespace

std::vector<VertexId> MaxClique(const Graph& graph,
                                const CoreDecomposition& cd) {
  HCD_CHECK_EQ(cd.coreness.size(), graph.NumVertices());
  return CliqueSolver(graph, cd).Solve();
}

bool IsClique(const Graph& graph, const std::vector<VertexId>& vertices) {
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      if (!graph.HasEdge(vertices[i], vertices[j])) return false;
    }
  }
  return true;
}

}  // namespace hcd
