#include "search/brute.h"

#include <vector>

namespace hcd {

PrimaryValues BrutePrimaryValues(const Graph& graph,
                                 std::span<const VertexId> vertices) {
  std::vector<bool> in(graph.NumVertices(), false);
  for (VertexId v : vertices) in[v] = true;

  PrimaryValues pv;
  pv.n_s = vertices.size();
  for (VertexId v : vertices) {
    uint64_t internal = 0;
    for (VertexId u : graph.Neighbors(v)) {
      if (in[u]) {
        ++internal;
      } else {
        ++pv.boundary;
      }
    }
    pv.edges2 += internal;           // every internal edge counted twice
    pv.triplets += internal * (internal - 1) / 2;  // wedges centered at v
    // Triangles: ordered corner counting (v smallest id inside the set).
    for (VertexId u : graph.Neighbors(v)) {
      if (!in[u] || u <= v) continue;
      for (VertexId w : graph.Neighbors(u)) {
        if (in[w] && w > u && graph.HasEdge(v, w)) ++pv.triangles;
      }
    }
  }
  return pv;
}

std::vector<PrimaryValues> BruteNodePrimaryValues(const Graph& graph,
                                                  const FlatHcdIndex& index) {
  std::vector<PrimaryValues> out(index.NumNodes());
  for (TreeNodeId t = 0; t < index.NumNodes(); ++t) {
    out[t] = BrutePrimaryValues(graph, index.CoreVertices(t));
  }
  return out;
}

}  // namespace hcd
