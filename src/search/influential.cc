#include "search/influential.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace hcd {
namespace {

/// Runs the ascending-weight peeling once. Emits the component of each
/// processed vertex for steps >= record_from into `out` (pass a huge
/// record_from to only count steps). Returns the number of steps.
uint64_t PeelPass(const Graph& graph, const std::vector<double>& weights,
                  uint32_t k, const std::vector<VertexId>& by_weight,
                  uint64_t record_from,
                  std::vector<InfluentialCommunity>* out) {
  const VertexId n = graph.NumVertices();
  std::vector<bool> alive(n, true);
  std::vector<VertexId> deg(n);
  std::vector<VertexId> queue;

  // Restrict to the k-core.
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = graph.Degree(v);
    if (deg[v] < k) queue.push_back(v);
  }
  auto cascade = [&] {
    while (!queue.empty()) {
      VertexId v = queue.back();
      queue.pop_back();
      if (!alive[v]) continue;
      alive[v] = false;
      for (VertexId u : graph.Neighbors(v)) {
        if (alive[u] && deg[u]-- == k) queue.push_back(u);
      }
    }
  };
  cascade();

  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack;
  uint64_t step = 0;
  for (VertexId v : by_weight) {
    if (!alive[v]) continue;
    if (step >= record_from && out != nullptr) {
      InfluentialCommunity community;
      community.influence = weights[v];
      stack.assign(1, v);
      seen[v] = true;
      while (!stack.empty()) {
        VertexId x = stack.back();
        stack.pop_back();
        community.vertices.push_back(x);
        for (VertexId u : graph.Neighbors(x)) {
          if (alive[u] && !seen[u]) {
            seen[u] = true;
            stack.push_back(u);
          }
        }
      }
      for (VertexId x : community.vertices) seen[x] = false;
      out->push_back(std::move(community));
    }
    ++step;
    // Delete v and restore the min-degree-k invariant.
    alive[v] = false;
    for (VertexId u : graph.Neighbors(v)) {
      if (alive[u] && deg[u]-- == k) queue.push_back(u);
    }
    cascade();
  }
  return step;
}

}  // namespace

std::vector<InfluentialCommunity> TopInfluentialCommunities(
    const Graph& graph, const std::vector<double>& weights, uint32_t k,
    uint32_t r) {
  const VertexId n = graph.NumVertices();
  HCD_CHECK_EQ(weights.size(), n);
  std::vector<VertexId> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::stable_sort(by_weight.begin(), by_weight.end(),
                   [&weights](VertexId a, VertexId b) {
                     return weights[a] < weights[b];
                   });

  const uint64_t total =
      PeelPass(graph, weights, k, by_weight, ~0ull, nullptr);
  const uint64_t record_from = total > r ? total - r : 0;
  std::vector<InfluentialCommunity> result;
  PeelPass(graph, weights, k, by_weight, record_from, &result);
  // Emission order is ascending influence; report descending.
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace hcd
