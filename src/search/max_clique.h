#ifndef HCD_SEARCH_MAX_CLIQUE_H_
#define HCD_SEARCH_MAX_CLIQUE_H_

#include <vector>

#include "core/core_decomposition.h"
#include "graph/graph.h"

namespace hcd {

/// Exact maximum clique via branch-and-bound with greedy-coloring bounds
/// over a degeneracy-ordered candidate expansion, with coreness pruning
/// (a vertex of coreness c cannot be in a clique larger than c+1).
/// Exponential worst case; practical on the benchmark-suite graphs. Used to
/// verify Table IV's "MC ⊆ S*" column.
std::vector<VertexId> MaxClique(const Graph& graph,
                                const CoreDecomposition& cd);

/// True iff `vertices` is a clique in `graph`.
bool IsClique(const Graph& graph, const std::vector<VertexId>& vertices);

}  // namespace hcd

#endif  // HCD_SEARCH_MAX_CLIQUE_H_
