#include "search/preprocess.h"

#include "parallel/omp_utils.h"

namespace hcd {

CorenessNeighborCounts PreprocessCorenessCounts(const Graph& graph,
                                                const CoreDecomposition& cd) {
  const VertexId n = graph.NumVertices();
  CorenessNeighborCounts counts;
  counts.greater.assign(n, 0);
  counts.equal.assign(n, 0);
  ParallelForDynamic<VertexId>(0, n, [&](VertexId v) {
    const uint32_t cv = cd.coreness[v];
    VertexId gt = 0;
    VertexId eq = 0;
    for (VertexId u : graph.Neighbors(v)) {
      const uint32_t cu = cd.coreness[u];
      gt += cu > cv;
      eq += cu == cv;
    }
    counts.greater[v] = gt;
    counts.equal[v] = eq;
  });
  return counts;
}

}  // namespace hcd
