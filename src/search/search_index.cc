#include "search/search_index.h"

#include "hcd/vertex_rank.h"

namespace hcd {

SearchIndex::SearchIndex(const Graph& graph, const CoreDecomposition& cd,
                         const FlatHcdIndex& index, TelemetrySink* sink)
    : globals_{graph.NumVertices(), graph.NumEdges()} {
  CorenessNeighborCounts pre;
  {
    ScopedStage stage(sink, "search.preprocess");
    pre = PreprocessCorenessCounts(graph, cd);
  }
  {
    ScopedStage stage(sink, "search.primary_a");
    type_a_ = PbksTypeAPrimary(graph, cd, index, pre);
  }
  {
    ScopedStage stage(sink, "search.primary_b");
    const VertexRank vr = ComputeVertexRank(cd);
    type_b_ = PbksTypeBPrimary(graph, cd, index, vr, pre);
  }
}

SearchHit SearchInto(const FlatHcdIndex& index, const SearchIndex& sidx,
                     Metric metric, SearchWorkspace* ws) {
  const std::vector<PrimaryValues>& primary = sidx.PrimaryFor(metric);
  const TreeNodeId num_nodes = index.NumNodes();
  if (ws->scores.size() != primary.size()) ws->scores.resize(primary.size());
  SearchHit hit;
  for (TreeNodeId i = 0; i < num_nodes; ++i) {
    ws->scores[i] = EvaluateMetric(metric, primary[i], sidx.globals());
    if (hit.best_node == kInvalidNode || ws->scores[i] > hit.best_score) {
      hit.best_node = i;
      hit.best_score = ws->scores[i];
    }
  }
  return hit;
}

}  // namespace hcd
