#include "search/best_k.h"

#include <vector>

#include "hcd/vertex_rank.h"
#include "parallel/omp_utils.h"
#include "search/preprocess.h"

namespace hcd {
namespace {

inline int64_t Choose2(int64_t x) { return x * (x - 1) / 2; }

}  // namespace

BestKResult FindBestK(const Graph& graph, const CoreDecomposition& cd,
                      Metric metric) {
  const VertexId n = graph.NumVertices();
  const uint32_t num_levels = cd.k_max + 1;
  BestKResult result;
  result.scores.assign(num_levels, 0.0);
  result.per_k.assign(num_levels, {});
  if (n == 0) return result;

  const CorenessNeighborCounts pre = PreprocessCorenessCounts(graph, cd);

  // Per-level contributions (index = coreness at which the motif appears).
  std::vector<int64_t> n_s(num_levels, 0);
  std::vector<int64_t> edges2(num_levels, 0);
  std::vector<int64_t> boundary(num_levels, 0);
  std::vector<int64_t> triangles(num_levels, 0);
  std::vector<int64_t> triplets(num_levels, 0);

#pragma omp parallel for schedule(static)
  for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
    const VertexId v = static_cast<VertexId>(vi);
    const int64_t gt = pre.greater[v];
    const int64_t eq = pre.equal[v];
    const int64_t lt = static_cast<int64_t>(graph.Degree(v)) - gt - eq;
    const uint32_t c = cd.coreness[v];
#pragma omp atomic
    n_s[c] += 1;
#pragma omp atomic
    edges2[c] += 2 * gt + eq;
#pragma omp atomic
    boundary[c] += lt - gt;
  }

  if (IsTypeB(metric)) {
    const VertexRank vr = ComputeVertexRank(cd);
    const std::vector<VertexId>& rank = vr.rank;
    auto degree_less = [&graph](VertexId a, VertexId b) {
      const VertexId da = graph.Degree(a);
      const VertexId db = graph.Degree(b);
      return da < db || (da == db && a < b);
    };
#pragma omp parallel
    {
      std::vector<uint8_t> mark(n, 0);
      std::vector<VertexId> cnt(num_levels, 0);
#pragma omp for schedule(dynamic, 64)
      for (int64_t vi = 0; vi < static_cast<int64_t>(n); ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const auto nv = graph.Neighbors(v);
        for (VertexId u : nv) mark[u] = 1;
        for (VertexId u : nv) {
          if (!degree_less(u, v)) continue;
          for (VertexId w : graph.Neighbors(u)) {
            if (mark[w] && rank[w] < rank[u] && rank[w] < rank[v]) {
#pragma omp atomic
              triangles[cd.coreness[w]] += 1;
            }
          }
        }
        for (VertexId u : nv) mark[u] = 0;

        const uint32_t cv = cd.coreness[v];
        int64_t gt_k = static_cast<int64_t>(pre.greater[v]) + pre.equal[v];
        const int64_t own = Choose2(gt_k);
        if (own != 0) {
#pragma omp atomic
          triplets[cv] += own;
        }
        if (cv > 0) {
          for (VertexId u : nv) {
            const uint32_t cu = cd.coreness[u];
            if (cu < cv) ++cnt[cu];
          }
          for (int64_t k = static_cast<int64_t>(cv) - 1; k >= 0; --k) {
            const int64_t c = cnt[k];
            if (c > 0) {
              const int64_t add = Choose2(c) + gt_k * c;
#pragma omp atomic
              triplets[k] += add;
              gt_k += c;
              cnt[k] = 0;
            }
          }
        }
      }
    }
  }

  // Suffix sums: K_k = union of shells with coreness >= k.
  for (int64_t k = static_cast<int64_t>(num_levels) - 2; k >= 0; --k) {
    n_s[k] += n_s[k + 1];
    edges2[k] += edges2[k + 1];
    boundary[k] += boundary[k + 1];
    triangles[k] += triangles[k + 1];
    triplets[k] += triplets[k + 1];
  }

  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  bool first = true;
  for (uint32_t k = 0; k < num_levels; ++k) {
    PrimaryValues& pv = result.per_k[k];
    pv.n_s = static_cast<uint64_t>(n_s[k]);
    pv.edges2 = static_cast<uint64_t>(edges2[k]);
    pv.boundary = static_cast<uint64_t>(boundary[k]);
    pv.triangles = static_cast<uint64_t>(triangles[k]);
    pv.triplets = static_cast<uint64_t>(triplets[k]);
    result.scores[k] = EvaluateMetric(metric, pv, globals);
    if (first || result.scores[k] > result.best_score) {
      result.best_k = k;
      result.best_score = result.scores[k];
      first = false;
    }
  }
  return result;
}

}  // namespace hcd
