// Figure 6: PBKS's speedup to BKS on type-A score computation
// (conductance), preprocessing excluded on both sides.

#include "bench/bench_search_figures.h"

int main() {
  return hcd::bench::RunSearchSpeedupFigure(
      "Figure 6: PBKS's speedup to BKS (type-A score computation)",
      /*type_b=*/false, /*include_input=*/false);
}
