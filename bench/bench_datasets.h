#ifndef HCD_BENCH_BENCH_DATASETS_H_
#define HCD_BENCH_BENCH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace hcd::bench {

/// One benchmark dataset. The suite mirrors the *roles* of the paper's
/// Table II graphs (the offline environment cannot download SNAP/LAW data;
/// see DESIGN.md "Substitutions"): skewed social-style graphs, heavy web-
/// crawl-style hierarchies with large k_max and |T|, and near-uniform
/// giant-component graphs, in ascending edge count.
struct BenchDataset {
  std::string name;    ///< short tag, mirrors the paper's abbreviations
  std::string role;    ///< which Table II row this stands in for
  Graph graph;
};

/// Generates (or reloads from the on-disk cache "bench_data/") the full
/// suite. `small` shrinks every dataset ~16x for smoke runs
/// (HCD_BENCH_SMALL=1 in the environment has the same effect).
std::vector<BenchDataset> LoadBenchSuite(bool small = false);

/// True when HCD_BENCH_SMALL is set in the environment.
bool SmallBenchRequested();

}  // namespace hcd::bench

#endif  // HCD_BENCH_BENCH_DATASETS_H_
