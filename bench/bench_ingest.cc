// End-to-end graph ingest benchmark: writes a large synthetic edge-list
// text file, then sweeps the parallel ingest path (read -> chunked parse
// -> deterministic remap -> parallel CSR build) over thread counts, plus
// the validated binary loader over the converted snapshot.
//
// The acceptance target for the ingest layer is >= 2x end-to-end text-load
// speedup at 8 threads vs 1 thread on a >= 10M-edge list (hardware
// permitting; this container may expose a single core — the hardware
// banner says what the numbers mean).
//
// Flags / env:
//   --json            machine-readable report with per-stage telemetry
//   HCD_BENCH_SMALL=1 200k edges instead of 10M (CI smoke)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/random.h"
#include "common/telemetry.h"
#include "graph/ingest.h"
#include "graph/io.h"

namespace {

struct Run {
  const char* format;
  int threads;
  double seconds;
  std::string telemetry_json;
};

/// Writes `edges` random "u v" lines over ~edges/16 distinct raw ids
/// (skewed toward low ids so duplicates and self-loops occur, exercising
/// the normalization path). Returns bytes written.
uint64_t WriteRandomEdgeList(const std::string& path, uint64_t edges,
                             uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HCD_CHECK(f != nullptr) << "cannot write " << path;
  hcd::Rng rng(seed);
  const uint64_t id_space = std::max<uint64_t>(16, edges / 16);
  std::string buf;
  buf.reserve(1 << 22);
  char line[64];
  std::fputs("# synthetic ingest benchmark graph\n", f);
  for (uint64_t i = 0; i < edges; ++i) {
    const uint64_t u = rng.Uniform(id_space);
    const uint64_t v = rng.Uniform(id_space);
    const int len = std::snprintf(line, sizeof(line), "%llu %llu\n",
                                  static_cast<unsigned long long>(u),
                                  static_cast<unsigned long long>(v));
    buf.append(line, static_cast<size_t>(len));
    if (buf.size() > (1 << 22) - 64) {
      std::fwrite(buf.data(), 1, buf.size(), f);
      buf.clear();
    }
  }
  std::fwrite(buf.data(), 1, buf.size(), f);
  const long bytes = std::ftell(f);
  std::fclose(f);
  return static_cast<uint64_t>(bytes);
}

Run TimeIngest(const char* format, const std::string& path, int threads,
               int reps) {
  Run run{format, threads, 0.0, ""};
  for (int r = 0; r < reps; ++r) {
    hcd::StageTelemetry telemetry;
    hcd::IngestOptions options;
    options.io_threads = threads;
    options.sink = &telemetry;
    hcd::Graph g;
    hcd::Timer timer;
    const hcd::Status s =
        std::strcmp(format, "text") == 0
            ? hcd::IngestEdgeListText(path, options, &g)
            : hcd::IngestBinary(path, options, &g);
    const double seconds = timer.Seconds();
    HCD_CHECK(s.ok()) << s.ToString();
    if (r == 0 || seconds < run.seconds) {
      run.seconds = seconds;
      run.telemetry_json = telemetry.ToJson();
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const bool small = std::getenv("HCD_BENCH_SMALL") != nullptr;
  const uint64_t edges = small ? 200'000 : 10'000'000;
  const std::string text_path =
      "/tmp/hcd_bench_ingest_" + std::to_string(::getpid()) + ".txt";
  const std::string bin_path =
      "/tmp/hcd_bench_ingest_" + std::to_string(::getpid()) + ".bin";

  if (!json) {
    hcd::bench::PrintHardwareBanner("Graph ingest: parallel load scaling");
    std::printf("generating %llu-edge text file...\n",
                static_cast<unsigned long long>(edges));
  }
  const uint64_t bytes = WriteRandomEdgeList(text_path, edges, 7);
  {
    hcd::Graph g;
    hcd::IngestOptions options;
    HCD_CHECK(hcd::IngestEdgeListText(text_path, options, &g).ok());
    HCD_CHECK(hcd::SaveBinary(g, bin_path).ok());
  }

  const int reps = 2;
  std::vector<Run> runs;
  for (int t : hcd::bench::ThreadSweep()) {
    runs.push_back(TimeIngest("text", text_path, t, reps));
  }
  for (int t : hcd::bench::ThreadSweep()) {
    runs.push_back(TimeIngest("binary", bin_path, t, reps));
  }

  double text1 = 0.0;
  double text_max = 0.0;
  for (const Run& r : runs) {
    if (std::strcmp(r.format, "text") != 0) continue;
    if (r.threads == 1) text1 = r.seconds;
    text_max = r.seconds;  // last sweep entry = max thread count
  }

  if (json) {
    std::string out = "{\"bench\":\"ingest\",\"edges\":" +
                      std::to_string(edges) +
                      ",\"bytes\":" + std::to_string(bytes) +
                      ",\"hardware_threads\":" +
                      std::to_string(hcd::HardwareThreads()) + ",\"runs\":[";
    for (size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) out += ',';
      char head[128];
      std::snprintf(head, sizeof(head),
                    "{\"format\":\"%s\",\"threads\":%d,\"seconds\":%.6f,"
                    "\"telemetry\":",
                    runs[i].format, runs[i].threads, runs[i].seconds);
      out += head;
      out += runs[i].telemetry_json;
      out += '}';
    }
    char tail[64];
    std::snprintf(tail, sizeof(tail), "],\"text_speedup_max_vs_1\":%.3f}\n",
                  text_max > 0 ? text1 / text_max : 0.0);
    out += tail;
    std::fputs(out.c_str(), stdout);
  } else {
    std::printf("\n%-8s %-8s %10s %9s\n", "format", "threads", "seconds",
                "speedup");
    for (const Run& r : runs) {
      double base = r.seconds;
      for (const Run& b : runs) {
        if (b.threads == 1 && std::strcmp(b.format, r.format) == 0) {
          base = b.seconds;
        }
      }
      std::printf("%-8s %-8d %10.3f %8.2fx\n", r.format, r.threads, r.seconds,
                  base / r.seconds);
    }
    std::printf("\ntext load at max threads: %.2fx over 1 thread "
                "(file: %.1f MB, %llu edge lines)\n",
                text_max > 0 ? text1 / text_max : 0.0, bytes / 1048576.0,
                static_cast<unsigned long long>(edges));
  }

  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  return 0;
}
