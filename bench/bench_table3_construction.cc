// Table III: time cost of HCD construction.
//
// Per dataset: PHCD serial seconds with the relative position of the
// union-find lower bound LB (LB/PHCD, "x") and the serial LCPS
// (LCPS/PHCD, "x"); then PHCD at the maximum swept thread count with LB and
// the local-k-core-search experiment RC at the same thread count.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "hcd/lcps.h"
#include "hcd/local_core_search.h"
#include "hcd/lower_bound.h"
#include "hcd/phcd.h"

int main() {
  hcd::bench::PrintHardwareBanner("Table III: time cost of HCD construction");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %10s %7s %7s | %10s %7s %8s\n", "ds", "PHCD(1) s",
              "LB", "LCPS", "PHCD(p) s", "LB", "RC");
  std::printf("     |  (serial)  (x)     (x)  |  (p=%-2d)     (x)     (x)\n\n",
              pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(g);

    hcd::HcdForest forest;
    const double phcd1 = hcd::bench::TimeWithThreads(
        1, [&] { forest = hcd::PhcdBuild(g, cd); }, 3);
    const double lb1 =
        hcd::bench::TimeWithThreads(1, [&] { hcd::UnionFindLowerBound(g, cd); }, 3);
    const double lcps =
        hcd::bench::TimeWithThreads(1, [&] { hcd::LcpsBuild(g, cd); }, 3);

    const double phcdp =
        hcd::bench::TimeWithThreads(pmax, [&] { hcd::PhcdBuild(g, cd); }, 3);
    const double lbp = hcd::bench::TimeWithThreads(
        pmax, [&] { hcd::UnionFindLowerBound(g, cd); }, 3);
    const double rcp = hcd::bench::TimeWithThreads(
        pmax, [&] { hcd::RcComputeParents(g, cd, forest); });

    std::printf("%-4s | %10.3f %6.2fx %6.2fx | %10.3f %6.2fx %7.2fx\n",
                ds.name.c_str(), phcd1, lb1 / phcd1, lcps / phcd1, phcdp,
                lbp / phcdp, rcp / phcdp);
  }
  std::printf(
      "\nLB = pivot union-find over every edge (lower bound for the\n"
      "paradigm); LCPS = serial state of the art; RC = local k-core search\n"
      "(the divide-and-conquer primitive). Columns are ratios to PHCD of\n"
      "the same thread count, matching the paper's Table III layout.\n");
  return 0;
}
