// Table III: time cost of HCD construction.
//
// Per dataset: PHCD serial seconds with the relative position of the
// union-find lower bound LB (LB/PHCD, "x") and the serial LCPS
// (LCPS/PHCD, "x"); then PHCD at the maximum swept thread count with LB and
// the local-k-core-search experiment RC at the same thread count.
//
// Construction times come from the engine's per-stage telemetry: each
// configuration runs on a fresh HcdEngine (borrowing the shared dataset)
// and reports its "construction" stage, so the timing isolates the build
// from decomposition exactly like the paper's measurement.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "hcd/local_core_search.h"
#include "hcd/lower_bound.h"

namespace {

/// Best-of-`reps` seconds of the "construction" stage for one engine
/// configuration over a borrowed graph.
double ConstructionSeconds(const hcd::Graph& g, hcd::EngineAlgo algo,
                           int threads, int reps = 3) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    hcd::HcdEngine engine(&g, {.algo = algo, .threads = threads});
    engine.Forest();
    const double s = engine.telemetry().StageSeconds("construction");
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Best-of-`reps` seconds of the "construction.freeze" stage (forest ->
/// flat query index) at the given thread count; the forest build itself is
/// excluded because Flat() times only the freeze.
double FreezeSeconds(const hcd::Graph& g, int threads, int reps = 3) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    hcd::HcdEngine engine(&g,
                          {.algo = hcd::EngineAlgo::kPhcd, .threads = threads});
    engine.Flat();
    const double s = engine.telemetry().StageSeconds("construction.freeze");
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner("Table III: time cost of HCD construction");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %10s %7s %7s | %10s %7s %8s | %8s\n", "ds", "PHCD(1) s",
              "LB", "LCPS", "PHCD(p) s", "LB", "RC", "Frz(p) s");
  std::printf("     |  (serial)  (x)     (x)  |  (p=%-2d)     (x)     (x)\n\n",
              pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    // One shared engine provides the decomposition and a forest for the
    // LB / RC baselines, which are not engine stages.
    hcd::HcdEngine engine(&g, {.algo = hcd::EngineAlgo::kPhcd});
    const hcd::CoreDecomposition& cd = engine.Coreness();
    const hcd::HcdForest& forest = engine.Forest();

    const double phcd1 = ConstructionSeconds(g, hcd::EngineAlgo::kPhcd, 1);
    const double lcps = ConstructionSeconds(g, hcd::EngineAlgo::kLcps, 1);
    const double lb1 =
        hcd::bench::TimeWithThreads(1, [&] { hcd::UnionFindLowerBound(g, cd); }, 3);

    const double phcdp = ConstructionSeconds(g, hcd::EngineAlgo::kPhcd, pmax);
    const double lbp = hcd::bench::TimeWithThreads(
        pmax, [&] { hcd::UnionFindLowerBound(g, cd); }, 3);
    const double rcp = hcd::bench::TimeWithThreads(
        pmax, [&] { hcd::RcComputeParents(g, cd, forest); });
    const double frzp = FreezeSeconds(g, pmax);

    hcd::bench::ReportBaseline("table3_phcd", ds.name, 1, phcd1);
    hcd::bench::ReportBaseline("table3_lcps", ds.name, 1, lcps);
    hcd::bench::ReportBaseline("table3_phcd", ds.name, pmax, phcdp);
    hcd::bench::ReportBaseline("table3_freeze", ds.name, pmax, frzp);

    std::printf("%-4s | %10.3f %6.2fx %6.2fx | %10.3f %6.2fx %7.2fx | %8.3f\n",
                ds.name.c_str(), phcd1, lb1 / phcd1, lcps / phcd1, phcdp,
                lbp / phcdp, rcp / phcdp, frzp);
  }
  std::printf(
      "\nLB = pivot union-find over every edge (lower bound for the\n"
      "paradigm); LCPS = serial state of the art; RC = local k-core search\n"
      "(the divide-and-conquer primitive). Columns are ratios to PHCD of\n"
      "the same thread count, matching the paper's Table III layout.\n"
      "Frz = parallel freeze of the forest into the flat query index\n"
      "(absolute seconds; one-time cost paid before the search stage).\n");
  return 0;
}
