// Figure 10: per-component speedup of the parallel pipeline at the maximum
// swept thread count, relative to the serial counterpart of each stage:
//   CD   = PKC(p)      vs BZ(1)         (core decomposition)
//   HCD  = PHCD(p)     vs LCPS(1)       (hierarchy construction)
//   SC-A = PBKS-A(p)   vs BKS-A(1)      (type-A scores, no preprocessing)
//   SC-B = PBKS-B(p)   vs BKS-B(1)      (type-B scores)

#include <algorithm>
#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "core/julienne.h"
#include "hcd/flat_index.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"
#include "hcd/vertex_rank.h"
#include "search/bks.h"
#include "search/pbks.h"
#include "search/preprocess.h"

int main() {
  hcd::bench::PrintHardwareBanner(
      "Figure 10: speedup by component (max threads)");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s |  %8s %8s %8s %8s   (p=%d)\n", "ds", "CD", "HCD",
              "SC-A", "SC-B", pmax);
  std::printf("\n");

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(g);
    const hcd::FlatHcdIndex flat = hcd::Freeze(hcd::PhcdBuild(g, cd));
    const hcd::GraphGlobals globals{g.NumVertices(), g.NumEdges()};

    const double bz =
        hcd::bench::TimeWithThreads(1, [&] { hcd::BzCoreDecomposition(g); });
    // The paper reports the smaller of PKC and GBBS; our GBBS stand-in is
    // the Julienne-style bucketed peeling.
    const double pkc = std::min(
        hcd::bench::TimeWithThreads(pmax, [&] { hcd::PkcCoreDecomposition(g); }),
        hcd::bench::TimeWithThreads(pmax,
                                    [&] { hcd::JulienneCoreDecomposition(g); }));

    const double lcps =
        hcd::bench::TimeWithThreads(1, [&] { hcd::LcpsBuild(g, cd); });
    const double phcd =
        hcd::bench::TimeWithThreads(pmax, [&] { hcd::PhcdBuild(g, cd); });

    const hcd::BksIndex index = hcd::BuildBksIndex(g, cd);
    const hcd::VertexRank vr = hcd::ComputeVertexRank(cd);
    const hcd::CorenessNeighborCounts pre =
        hcd::PreprocessCorenessCounts(g, cd);

    const double bks_a = hcd::bench::TimeWithThreads(1, [&] {
      ScoreNodes(flat, hcd::Metric::kConductance,
                 BksTypeAPrimary(g, cd, flat, index, vr), globals);
    });
    const double pbks_a = hcd::bench::TimeWithThreads(pmax, [&] {
      ScoreNodes(flat, hcd::Metric::kConductance,
                 PbksTypeAPrimary(g, cd, flat, pre), globals);
    });
    const double bks_b = hcd::bench::TimeWithThreads(1, [&] {
      ScoreNodes(flat, hcd::Metric::kClusteringCoefficient,
                 BksTypeBPrimary(g, cd, flat, index, vr), globals);
    });
    const double pbks_b = hcd::bench::TimeWithThreads(pmax, [&] {
      ScoreNodes(flat, hcd::Metric::kClusteringCoefficient,
                 PbksTypeBPrimary(g, cd, flat, vr, pre), globals);
    });

    std::printf("%-4s |  %7.2fx %7.2fx %7.2fx %7.2fx\n", ds.name.c_str(),
                bz / pkc, lcps / phcd, bks_a / pbks_a, bks_b / pbks_b);
  }
  return 0;
}
