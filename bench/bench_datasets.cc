#include "bench/bench_datasets.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sys/stat.h>

#include "common/timer.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace hcd::bench {
namespace {

struct Spec {
  const char* name;
  const char* role;
  std::function<Graph(bool small)> make;
};

/// The ten-dataset suite. Construction parameters are chosen so the suite
/// spans the regimes of Table II: skewed degree (BA/RMAT), very high k_max
/// (deep onion), huge |T| (broad planted hierarchy), and near-uniform giant
/// components (Gnm), in ascending edge count.
const Spec kSpecs[] = {
    {"AS", "as-skitter: sparse skewed internet topology",
     [](bool s) { return RMatGraph500(s ? 12 : 16, s ? 16000 : 250000, 11); }},
    {"LJ", "livejournal: social network, preferential attachment",
     [](bool s) {
       return BarabasiAlbertVarying(s ? 8000 : 120000, 1, 20, 12);
     }},
    {"H", "hollywood: very high k_max collaboration core",
     [](bool s) {
       return PlantedHierarchy(OnionSpec(s ? 40 : 120, s ? 50 : 150), 13);
     }},
    {"O", "orkut: dense near-uniform social graph",
     [](bool s) {
       return ErdosRenyiGnm(s ? 20000 : 80000, s ? 100000 : 1600000, 14);
     }},
    {"HJ", "human-jung: very dense connectome",
     [](bool s) {
       return ErdosRenyiGnm(s ? 4000 : 15000, s ? 75000 : 1200000, 15);
     }},
    {"A", "arabic-2005: web crawl with many tree nodes",
     [](bool s) {
       return PlantedHierarchy(BranchingSpec(3, s ? 27 : 51, 6, 2, s ? 20 : 60),
                               16);
     }},
    {"IT", "it-2004: larger skewed web crawl",
     [](bool s) { return RMatGraph500(s ? 13 : 17, s ? 90000 : 1400000, 17); }},
    {"FS", "friendster: giant near-uniform component, few tree nodes",
     [](bool s) {
       return ErdosRenyiGnm(s ? 25000 : 400000, s ? 112000 : 1800000, 18);
     }},
    {"SK", "sk-2005: dense skewed web crawl",
     [](bool s) {
       return BarabasiAlbertVarying(s ? 6000 : 90000, 2, 44, 19);
     }},
    {"UK", "uk-2007: largest crawl, deep and broad hierarchy",
     [](bool s) {
       return PlantedHierarchy(
           BranchingSpec(3, s ? 21 : 45, 6, 3, s ? 12 : 25), 20);
     }},
};

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

bool SmallBenchRequested() {
  const char* env = std::getenv("HCD_BENCH_SMALL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::vector<BenchDataset> LoadBenchSuite(bool small) {
  small = small || SmallBenchRequested();
  ::mkdir("bench_data", 0755);
  std::vector<BenchDataset> suite;
  for (const Spec& spec : kSpecs) {
    BenchDataset ds;
    ds.name = spec.name;
    ds.role = spec.role;
    const std::string cache = std::string("bench_data/") + spec.name +
                              (small ? "_small" : "") + ".bin";
    if (FileExists(cache) && LoadBinary(cache, &ds.graph).ok()) {
      suite.push_back(std::move(ds));
      continue;
    }
    Timer timer;
    ds.graph = spec.make(small);
    std::fprintf(stderr, "[bench_data] generated %s (n=%u m=%llu) in %.1fs\n",
                 spec.name, ds.graph.NumVertices(),
                 static_cast<unsigned long long>(ds.graph.NumEdges()),
                 timer.Seconds());
    Status s = SaveBinary(ds.graph, cache);
    if (!s.ok()) {
      std::fprintf(stderr, "[bench_data] cache write failed: %s\n",
                   s.ToString().c_str());
    }
    suite.push_back(std::move(ds));
  }
  return suite;
}

}  // namespace hcd::bench
