// Table II: statistics of the benchmark datasets (n, m, d_avg, k_max, |T|).

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/core_decomposition.h"
#include "hcd/phcd.h"

int main() {
  hcd::bench::PrintHardwareBanner("Table II: statistics of datasets");
  std::printf("%-4s %10s %12s %8s %7s %7s  %s\n", "ds", "n", "m", "d_avg",
              "k_max", "|T|", "role");
  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    hcd::Timer timer;
    hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(ds.graph);
    hcd::HcdForest forest = hcd::PhcdBuild(ds.graph, cd);
    hcd::bench::ReportBaseline("table2_decomp_build", ds.name,
                               hcd::MaxThreads(), timer.Seconds());
    std::printf("%-4s %10u %12llu %8.1f %7u %7u  %s\n", ds.name.c_str(),
                ds.graph.NumVertices(),
                static_cast<unsigned long long>(ds.graph.NumEdges()),
                ds.graph.AverageDegree(), cd.k_max, forest.NumNodes(),
                ds.role.c_str());
  }
  return 0;
}
