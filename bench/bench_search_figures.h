#ifndef HCD_BENCH_BENCH_SEARCH_FIGURES_H_
#define HCD_BENCH_BENCH_SEARCH_FIGURES_H_

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "hcd/flat_index.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"
#include "hcd/vertex_rank.h"
#include "search/bks.h"
#include "search/pbks.h"
#include "search/preprocess.h"

namespace hcd::bench {

/// Shared driver for Figures 6-9: prints, per dataset and per thread count,
/// the speedup of the parallel pipeline over the serial one.
///
/// include_input == false (Figures 6, 8): score computation only — PBKS's
/// primary-value pass + scoring versus BKS's, with each side's own
/// preprocessing (coreness counts / adjacency ordering) excluded, matching
/// the paper's SC-A / SC-B measurements.
/// include_input == true (Figures 7, 9): whole pipeline — PKC + PHCD +
/// Freeze + PBKS (p threads) versus PKC(1) + LCPS + Freeze + BKS (both
/// sides pay for freezing their forest into the query index).
inline int RunSearchSpeedupFigure(const char* title, bool type_b,
                                  bool include_input) {
  PrintHardwareBanner(title);
  const Metric metric =
      type_b ? Metric::kClusteringCoefficient : Metric::kConductance;
  const auto threads = ThreadSweep();
  std::printf("%-4s | %12s |", "ds", "serial (s)");
  for (int p : threads) std::printf("  p=%-5d", p);
  std::printf("\n\n");

  for (auto& ds : LoadBenchSuite()) {
    const Graph& g = ds.graph;
    CoreDecomposition cd = PkcCoreDecomposition(g);
    const FlatHcdIndex index = Freeze(PhcdBuild(g, cd));
    const GraphGlobals globals{g.NumVertices(), g.NumEdges()};

    double serial = 0.0;
    if (include_input) {
      serial = TimeWithThreads(1, [&] {
        CoreDecomposition scd = PkcCoreDecomposition(g);
        const FlatHcdIndex si = Freeze(LcpsBuild(g, scd));
        BksSearch(g, scd, si, metric);
      });
    } else {
      const BksIndex bks = BuildBksIndex(g, cd);
      const VertexRank vr = ComputeVertexRank(cd);
      serial = TimeWithThreads(1, [&] {
        auto primary = type_b ? BksTypeBPrimary(g, cd, index, bks, vr)
                              : BksTypeAPrimary(g, cd, index, bks, vr);
        ScoreNodes(index, metric, primary, globals);
      });
    }

    std::printf("%-4s | %12.4f |", ds.name.c_str(), serial);
    for (int p : threads) {
      double t = 0.0;
      if (include_input) {
        t = TimeWithThreads(p, [&] {
          CoreDecomposition pcd = PkcCoreDecomposition(g);
          const FlatHcdIndex pi = Freeze(PhcdBuild(g, pcd));
          PbksSearch(g, pcd, pi, metric);
        });
      } else {
        const CorenessNeighborCounts pre = PreprocessCorenessCounts(g, cd);
        const VertexRank vr = ComputeVertexRank(cd);
        t = TimeWithThreads(p, [&] {
          auto primary = type_b ? PbksTypeBPrimary(g, cd, index, vr, pre)
                                : PbksTypeAPrimary(g, cd, index, pre);
          ScoreNodes(index, metric, primary, globals);
        });
      }
      std::printf(" %7.2fx", serial / t);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace hcd::bench

#endif  // HCD_BENCH_BENCH_SEARCH_FIGURES_H_
