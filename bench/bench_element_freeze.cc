// Serve-phase cost of the element hierarchies: freezing a built truss /
// nucleus forest into the kind-tagged flat index (FreezeTruss /
// FreezeNucleus) and standing up the eager ElementSearchIndex on top.
// These are the two steps between "hierarchy constructed" and "queries
// answered" for the non-core families, the element analogue of
// table3_freeze. Emits truss_freeze / nucleus_freeze baseline rows.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/nucleus_hierarchy.h"
#include "nucleus/triangle_index.h"
#include "search/element_search.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

namespace {

// Cheap triangle census (no materialization): decides the nucleus skips
// the same way bench_nucleus_extension does, since triangles are
// materialized objects in the indexer.
uint64_t CountTriangles(const hcd::Graph& g) {
  uint64_t count = 0;
  std::vector<uint8_t> mark(g.NumVertices(), 0);
  for (hcd::VertexId v = 0; v < g.NumVertices(); ++v) {
    for (hcd::VertexId u : g.Neighbors(v)) mark[u] = 1;
    for (hcd::VertexId u : g.Neighbors(v)) {
      if (g.Degree(u) < g.Degree(v) || (g.Degree(u) == g.Degree(v) && u < v)) {
        for (hcd::VertexId w : g.Neighbors(u)) {
          if (mark[w] && (g.Degree(w) < g.Degree(u) ||
                          (g.Degree(w) == g.Degree(u) && w < u))) {
            ++count;
          }
        }
      }
    }
    for (hcd::VertexId u : g.Neighbors(v)) mark[u] = 0;
  }
  return count;
}

constexpr uint64_t kTriangleCap = 8000000;
constexpr uint64_t kTriangleCapSmall = 300000;

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Element freeze: truss / nucleus forest -> flat index -> search");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %-7s | %8s | %10s %10s | %8s\n", "ds", "kind",
              "|elems|", "freeze(s)", "search(s)", "|T|");
  std::printf("     |         |          |    (p=%d)\n\n", pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;

    {
      hcd::EdgeIndexer eidx = hcd::BuildEdgeIndexer(g);
      const hcd::TrussDecomposition td = hcd::PeelTrussDecomposition(g, eidx);
      const hcd::TrussForest forest = hcd::BuildTrussHierarchy(g, eidx, td);

      std::shared_ptr<const hcd::FlatHcdIndex> flat;
      const double freeze_t = hcd::bench::TimeWithThreads(pmax, [&] {
        flat = std::make_shared<const hcd::FlatHcdIndex>(
            hcd::FreezeTruss(g, eidx, forest));
      }, 2);
      const double search_t = hcd::bench::TimeWithThreads(
          pmax, [&] { hcd::ElementSearchIndex index(flat); }, 2);

      hcd::bench::ReportBaseline(
          "truss_freeze", ds.name, pmax, freeze_t,
          {{"search_seconds", search_t},
           {"nodes", static_cast<double>(flat->NumNodes())},
           {"elements", static_cast<double>(flat->NumElements())}});
      std::printf("%-4s | truss   | %8u | %10.3f %10.3f | %8u\n",
                  ds.name.c_str(), flat->NumElements(), freeze_t, search_t,
                  flat->NumNodes());
    }

    const uint64_t cap =
        hcd::bench::SmallBenchRequested() ? kTriangleCapSmall : kTriangleCap;
    const uint64_t tris = CountTriangles(g);
    if (tris > cap) {
      std::printf("%-4s | nucleus | (skipped: %llu triangles above cap)\n",
                  ds.name.c_str(), static_cast<unsigned long long>(tris));
      continue;
    }
    {
      hcd::EdgeIndexer eidx = hcd::BuildEdgeIndexer(g);
      hcd::TriangleIndexer tidx = hcd::BuildTriangleIndexer(g, eidx);
      const hcd::NucleusDecomposition nd =
          hcd::PeelNucleusDecomposition(g, eidx, tidx);
      const hcd::NucleusForest forest =
          hcd::BuildNucleusHierarchy(g, eidx, tidx, nd);

      std::shared_ptr<const hcd::FlatHcdIndex> flat;
      const double freeze_t = hcd::bench::TimeWithThreads(pmax, [&] {
        flat = std::make_shared<const hcd::FlatHcdIndex>(
            hcd::FreezeNucleus(g, tidx, forest));
      }, 2);
      const double search_t = hcd::bench::TimeWithThreads(
          pmax, [&] { hcd::ElementSearchIndex index(flat); }, 2);

      hcd::bench::ReportBaseline(
          "nucleus_freeze", ds.name, pmax, freeze_t,
          {{"search_seconds", search_t},
           {"nodes", static_cast<double>(flat->NumNodes())},
           {"elements", static_cast<double>(flat->NumElements())}});
      std::printf("%-4s | nucleus | %8u | %10.3f %10.3f | %8u\n",
                  ds.name.c_str(), flat->NumElements(), freeze_t, search_t,
                  flat->NumNodes());
    }
  }
  return 0;
}
