// Ablations for the design choices DESIGN.md calls out:
//  (1) preprocessing reuse — scoring all five type-A metrics with one
//      shared coreness-count pass vs recomputing it per metric;
//  (2) preprocessing weight — BKS's adjacency re-ordering (bin sort) vs
//      PBKS's coreness counts, the "lighter preprocessing" claim of
//      Section IV-A;
//  (3) serial scaling — serial PHCD vs LCPS across growing RMAT graphs,
//      the paper's observation that the gap widens with graph size;
//  (4) divide and conquer — the Section III-E paradigm (partition, partial
//      nodes, RC-based merge) against PHCD, the paper's feasibility
//      argument;
//  (5) hierarchy-depth sweep — PHCD/LCPS/LB on onion graphs of growing
//      k_max at roughly constant edge count (per-level round overhead).

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/divide_conquer.h"
#include "hcd/flat_index.h"
#include "hcd/lcps.h"
#include "hcd/lower_bound.h"
#include "hcd/phcd.h"
#include "search/bks.h"
#include "search/pbks.h"
#include "search/preprocess.h"

int main() {
  hcd::bench::PrintHardwareBanner("Ablations");
  auto suite = hcd::bench::LoadBenchSuite();

  std::printf("-- (1) preprocessing reuse across the 5 type-A metrics --\n");
  std::printf("%-4s | %12s %12s %8s\n", "ds", "shared (s)", "per-call (s)",
              "saving");
  const hcd::Metric type_a[] = {
      hcd::Metric::kAverageDegree, hcd::Metric::kInternalDensity,
      hcd::Metric::kCutRatio, hcd::Metric::kConductance,
      hcd::Metric::kModularity};
  for (auto& ds : suite) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
    const hcd::FlatHcdIndex flat = hcd::Freeze(hcd::PhcdBuild(g, cd));
    const double shared = hcd::bench::TimeIt([&] {
      const auto pre = hcd::PreprocessCorenessCounts(g, cd);
      const auto primary = hcd::PbksTypeAPrimary(g, cd, flat, pre);
      const hcd::GraphGlobals globals{g.NumVertices(), g.NumEdges()};
      for (hcd::Metric m : type_a) hcd::ScoreNodes(flat, m, primary, globals);
    });
    const double per_call = hcd::bench::TimeIt([&] {
      for (hcd::Metric m : type_a) hcd::PbksSearch(g, cd, flat, m);
    });
    std::printf("%-4s | %12.4f %12.4f %7.2fx\n", ds.name.c_str(), shared,
                per_call, per_call / shared);
  }

  std::printf("\n-- (2) preprocessing weight: BKS ordering vs PBKS counts --\n");
  std::printf("%-4s | %14s %14s %8s\n", "ds", "BKS index (s)",
              "PBKS pre (s)", "ratio");
  for (auto& ds : suite) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
    const double bks_index =
        hcd::bench::TimeWithThreads(1, [&] { hcd::BuildBksIndex(g, cd); });
    const double pbks_pre = hcd::bench::TimeWithThreads(
        1, [&] { hcd::PreprocessCorenessCounts(g, cd); });
    std::printf("%-4s | %14.4f %14.4f %7.2fx\n", ds.name.c_str(), bks_index,
                pbks_pre, bks_index / pbks_pre);
  }

  std::printf("\n-- (3) serial PHCD vs LCPS as graphs grow (RMAT) --\n");
  std::printf("%-8s %12s | %10s %10s %8s\n", "scale", "m", "LCPS (s)",
              "PHCD (s)", "ratio");
  const bool small = hcd::bench::SmallBenchRequested();
  for (uint32_t scale = 12; scale <= (small ? 14u : 17u); ++scale) {
    hcd::Graph g = hcd::RMatGraph500(scale, 12ull << scale, 1000 + scale);
    hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(g);
    const double lcps =
        hcd::bench::TimeWithThreads(1, [&] { hcd::LcpsBuild(g, cd); }, 2);
    const double phcd =
        hcd::bench::TimeWithThreads(1, [&] { hcd::PhcdBuild(g, cd); }, 2);
    std::printf("%-8u %12llu | %10.3f %10.3f %7.2fx\n", scale,
                static_cast<unsigned long long>(g.NumEdges()), lcps, phcd,
                lcps / phcd);
  }

  std::printf("\n-- (4) divide-and-conquer (Section III-E) vs PHCD --\n");
  std::printf("%-4s | %10s %14s %8s\n", "ds", "PHCD (s)", "D&C(8 parts)",
              "slower");
  for (auto& ds : suite) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
    const double phcd =
        hcd::bench::TimeWithThreads(1, [&] { hcd::PhcdBuild(g, cd); }, 2);
    const double dnc = hcd::bench::TimeWithThreads(
        1, [&] { hcd::DivideAndConquerHcd(g, cd, 8); });
    std::printf("%-4s | %10.3f %14.3f %7.2fx\n", ds.name.c_str(), phcd, dnc,
                dnc / phcd);
  }

  std::printf("\n-- (5) hierarchy-depth sweep (onion, ~constant m) --\n");
  std::printf("%-8s %10s %8s | %10s %10s %8s\n", "k_max", "m", "|T|",
              "LCPS (s)", "PHCD (s)", "LB (s)");
  for (uint32_t k_max : {20u, 40u, 80u, 160u}) {
    // Shell size chosen so total edges ~ shell * k_max^2 / 2 stays put.
    const hcd::VertexId shell =
        static_cast<hcd::VertexId>(4000000ull / (k_max * k_max));
    hcd::Graph g = hcd::PlantedHierarchy(hcd::OnionSpec(k_max, shell), 7);
    hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(g);
    const double lcps =
        hcd::bench::TimeWithThreads(1, [&] { hcd::LcpsBuild(g, cd); }, 2);
    const double phcd =
        hcd::bench::TimeWithThreads(1, [&] { hcd::PhcdBuild(g, cd); }, 2);
    const double lb = hcd::bench::TimeWithThreads(
        1, [&] { hcd::UnionFindLowerBound(g, cd); }, 2);
    std::printf("%-8u %10llu %8u | %10.3f %10.3f %8.3f\n", k_max,
                static_cast<unsigned long long>(g.NumEdges()), k_max, lcps,
                phcd, lb);
  }
  return 0;
}
