// Micro-benchmarks (google-benchmark) for the primitive operations: union-
// find variants, vertex rank, the two preprocessing flavors, primary-value
// passes, and the construction algorithms, on a fixed mid-size graph.

#include <benchmark/benchmark.h>

#include "core/core_decomposition.h"
#include "core/julienne.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"
#include "hcd/vertex_rank.h"
#include "parallel/union_find.h"
#include "parallel/wf_union_find.h"
#include "search/bks.h"
#include "search/pbks.h"
#include "search/preprocess.h"

namespace {

struct Fixture {
  hcd::Graph graph = hcd::BarabasiAlbert(50000, 8, 77);
  hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(graph);
  hcd::VertexRank vr = hcd::ComputeVertexRank(cd);
  hcd::HcdForest forest = hcd::PhcdBuild(graph, cd);
  hcd::FlatHcdIndex flat = hcd::Freeze(forest);
  hcd::CorenessNeighborCounts pre = hcd::PreprocessCorenessCounts(graph, cd);
};

const Fixture& GetFixture() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_SequentialUnionFind(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    hcd::UnionFind uf(f.graph.NumVertices(), f.vr.rank.data());
    for (hcd::VertexId v = 0; v < f.graph.NumVertices(); ++v) {
      for (hcd::VertexId u : f.graph.Neighbors(v)) {
        if (u > v) uf.Union(u, v);
      }
    }
    benchmark::DoNotOptimize(uf.GetPivot(0));
  }
  state.SetItemsProcessed(state.iterations() * f.graph.NumEdges());
}
BENCHMARK(BM_SequentialUnionFind);

void BM_WaitFreeUnionFind(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    hcd::WaitFreeUnionFind uf(f.graph.NumVertices(), f.vr.rank.data());
    for (hcd::VertexId v = 0; v < f.graph.NumVertices(); ++v) {
      for (hcd::VertexId u : f.graph.Neighbors(v)) {
        if (u > v) uf.Union(u, v);
      }
    }
    benchmark::DoNotOptimize(uf.GetPivot(0));
  }
  state.SetItemsProcessed(state.iterations() * f.graph.NumEdges());
}
BENCHMARK(BM_WaitFreeUnionFind);

void BM_BzCoreDecomposition(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::BzCoreDecomposition(f.graph));
  }
}
BENCHMARK(BM_BzCoreDecomposition);

void BM_JulienneCoreDecomposition(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::JulienneCoreDecomposition(f.graph));
  }
}
BENCHMARK(BM_JulienneCoreDecomposition);

void BM_PkcCoreDecomposition(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::PkcCoreDecomposition(f.graph));
  }
}
BENCHMARK(BM_PkcCoreDecomposition);

void BM_VertexRank(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::ComputeVertexRank(f.cd));
  }
}
BENCHMARK(BM_VertexRank);

void BM_PbksPreprocess(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::PreprocessCorenessCounts(f.graph, f.cd));
  }
}
BENCHMARK(BM_PbksPreprocess);

void BM_BksIndex(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::BuildBksIndex(f.graph, f.cd));
  }
}
BENCHMARK(BM_BksIndex);

void BM_LcpsBuild(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::LcpsBuild(f.graph, f.cd));
  }
}
BENCHMARK(BM_LcpsBuild);

void BM_PhcdBuild(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::PhcdBuild(f.graph, f.cd));
  }
}
BENCHMARK(BM_PhcdBuild);

void BM_Freeze(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::Freeze(f.forest));
  }
  state.SetItemsProcessed(state.iterations() * f.flat.NumNodes());
}
BENCHMARK(BM_Freeze);

void BM_TypeAPrimary(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcd::PbksTypeAPrimary(f.graph, f.cd, f.flat, f.pre));
  }
}
BENCHMARK(BM_TypeAPrimary);

void BM_TypeBPrimary(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcd::PbksTypeBPrimary(f.graph, f.cd, f.flat, f.vr, f.pre));
  }
}
BENCHMARK(BM_TypeBPrimary);

}  // namespace

BENCHMARK_MAIN();
