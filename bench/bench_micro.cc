// Micro-benchmarks (google-benchmark) for the primitive operations: union-
// find variants, vertex rank, the two preprocessing flavors, primary-value
// passes, and the construction algorithms, on a fixed mid-size graph.

#include <benchmark/benchmark.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/core_decomposition.h"
#include "core/julienne.h"
#include "engine/live.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"
#include "hcd/vertex_rank.h"
#include "parallel/union_find.h"
#include "parallel/wf_union_find.h"
#include "search/bks.h"
#include "search/pbks.h"
#include "search/preprocess.h"
#include "server/client.h"
#include "server/server.h"

namespace {

struct Fixture {
  hcd::Graph graph = hcd::BarabasiAlbert(50000, 8, 77);
  hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(graph);
  hcd::VertexRank vr = hcd::ComputeVertexRank(cd);
  hcd::HcdForest forest = hcd::PhcdBuild(graph, cd);
  hcd::FlatHcdIndex flat = hcd::Freeze(forest);
  hcd::CorenessNeighborCounts pre = hcd::PreprocessCorenessCounts(graph, cd);
};

const Fixture& GetFixture() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_SequentialUnionFind(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    hcd::UnionFind uf(f.graph.NumVertices(), f.vr.rank.data());
    for (hcd::VertexId v = 0; v < f.graph.NumVertices(); ++v) {
      for (hcd::VertexId u : f.graph.Neighbors(v)) {
        if (u > v) uf.Union(u, v);
      }
    }
    benchmark::DoNotOptimize(uf.GetPivot(0));
  }
  state.SetItemsProcessed(state.iterations() * f.graph.NumEdges());
}
BENCHMARK(BM_SequentialUnionFind);

void BM_WaitFreeUnionFind(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    hcd::WaitFreeUnionFind uf(f.graph.NumVertices(), f.vr.rank.data());
    for (hcd::VertexId v = 0; v < f.graph.NumVertices(); ++v) {
      for (hcd::VertexId u : f.graph.Neighbors(v)) {
        if (u > v) uf.Union(u, v);
      }
    }
    benchmark::DoNotOptimize(uf.GetPivot(0));
  }
  state.SetItemsProcessed(state.iterations() * f.graph.NumEdges());
}
BENCHMARK(BM_WaitFreeUnionFind);

void BM_BzCoreDecomposition(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::BzCoreDecomposition(f.graph));
  }
}
BENCHMARK(BM_BzCoreDecomposition);

void BM_JulienneCoreDecomposition(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::JulienneCoreDecomposition(f.graph));
  }
}
BENCHMARK(BM_JulienneCoreDecomposition);

void BM_PkcCoreDecomposition(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::PkcCoreDecomposition(f.graph));
  }
}
BENCHMARK(BM_PkcCoreDecomposition);

void BM_VertexRank(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::ComputeVertexRank(f.cd));
  }
}
BENCHMARK(BM_VertexRank);

void BM_PbksPreprocess(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::PreprocessCorenessCounts(f.graph, f.cd));
  }
}
BENCHMARK(BM_PbksPreprocess);

void BM_BksIndex(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::BuildBksIndex(f.graph, f.cd));
  }
}
BENCHMARK(BM_BksIndex);

void BM_LcpsBuild(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::LcpsBuild(f.graph, f.cd));
  }
}
BENCHMARK(BM_LcpsBuild);

void BM_PhcdBuild(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::PhcdBuild(f.graph, f.cd));
  }
}
BENCHMARK(BM_PhcdBuild);

void BM_Freeze(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hcd::Freeze(f.forest));
  }
  state.SetItemsProcessed(state.iterations() * f.flat.NumNodes());
}
BENCHMARK(BM_Freeze);

void BM_TypeAPrimary(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcd::PbksTypeAPrimary(f.graph, f.cd, f.flat, f.pre));
  }
}
BENCHMARK(BM_TypeAPrimary);

// Tracer overhead, disabled path: no tracer installed, so the ScopedSpan
// pair is one relaxed atomic load plus a null test. This is the cost every
// instrumented call site pays in a normal (untraced) run.
void BM_ScopedSpanDisabled(benchmark::State& state) {
  if (hcd::Tracer::Current() != nullptr) {
    state.SkipWithError("a tracer is unexpectedly installed");
    return;
  }
  for (auto _ : state) {
    hcd::ScopedSpan span("bench.disabled");
    span.AddArg("i", 1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanDisabled);

// Tracer overhead, enabled path: two clock reads plus one buffer append per
// span. Drained periodically so iteration count, not memory, bounds the
// run; the drain runs outside the timing window.
void BM_ScopedSpanEnabled(benchmark::State& state) {
  hcd::Tracer tracer;
  tracer.Install();
  size_t since_drain = 0;
  for (auto _ : state) {
    {
      hcd::ScopedSpan span("bench.enabled");
      span.AddArg("i", 1);
      benchmark::ClobberMemory();
    }
    if (++since_drain >= (size_t{1} << 16)) {
      state.PauseTiming();
      since_drain = 0;
      tracer.Drain();
      state.ResumeTiming();
    }
  }
  tracer.Uninstall();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_TypeBPrimary(benchmark::State& state) {
  const auto& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hcd::PbksTypeBPrimary(f.graph, f.cd, f.flat, f.vr, f.pre));
  }
}
BENCHMARK(BM_TypeBPrimary);

// One served query over the loopback socket protocol, instruments live.
// The server resolves every counter/histogram once at Start, so the
// per-request path must perform ZERO registry lookups — each lookup takes
// the registry mutex and two map walks, which would serialize the worker
// pool. The reported `registry_lookups_per_request` counter is asserted
// to be exactly 0 (the row errors otherwise, so a regression fails the
// smoke run, not just shifts a number).
void BM_ServedQuery(benchmark::State& state) {
  hcd::Graph graph = hcd::BarabasiAlbert(5000, 8, 78);
  hcd::LiveEngine live(std::move(graph));
  hcd::MetricsRegistry registry;
  registry.Install();
  {
    hcd::server::ServerOptions options;
    options.workers = 1;
    hcd::server::QueryServer server(&live.manager(), options);
    hcd::server::QueryClient client;
    if (!server.Start().ok() ||
        !client.Connect("127.0.0.1", server.port()).ok()) {
      registry.Uninstall();
      state.SkipWithError("could not start the loopback server");
      return;
    }
    const uint64_t lookups_before = registry.lookup_count();
    hcd::server::QueryRequest request;
    hcd::server::QueryResponse response;
    uint64_t requests = 0;
    for (auto _ : state) {
      request.metric = hcd::kAllMetrics[requests % std::size(hcd::kAllMetrics)];
      request.k = static_cast<uint32_t>(requests % 4);
      ++requests;
      if (!client.Query(request, &response).ok()) {
        state.SkipWithError("query failed");
        break;
      }
      benchmark::DoNotOptimize(response.score);
    }
    const uint64_t lookups = registry.lookup_count() - lookups_before;
    state.counters["registry_lookups_per_request"] = benchmark::Counter(
        requests == 0 ? 0.0
                      : static_cast<double>(lookups) /
                            static_cast<double>(requests));
    if (lookups != 0) {
      state.SkipWithError("the per-request serve path hit the registry");
    }
    server.Stop();
  }
  registry.Uninstall();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServedQuery);

}  // namespace

BENCHMARK_MAIN();
