// Live-update path: batch-dynamic coreness maintenance plus incremental
// re-freeze versus rebuilding the hierarchy from scratch, and the hybrid
// adjacency representation underneath it.
//
// Two timed comparisons:
//
//  1. Batch refresh. For batches of 0.1% / 0.5% / 1% of |E| on a
//     many-community graph, time DynamicCoreIndex::ApplyBatch +
//     PlanRebuild + ApplyRebuild against the from-scratch
//     BzCoreDecomposition + PhcdBuild + Freeze an engine without the live
//     path would have to run per batch. Updates are localized to a few
//     communities: tree-granularity splicing (like any incremental
//     rebuild) pays off exactly when churn is concentrated, and a batch
//     spread uniformly over every component dirties every tree by
//     construction. The acceptance target is >= 5x on sub-1% batches.
//
//  2. Adjacency micro. Single-edge inserts of fresh leaves into a large
//     hub under the three hash_degree_threshold regimes: always-sorted
//     (threshold on the far side of the max degree), the hybrid default,
//     and always-hashed (threshold 0). The incoming leaves are isolated
//     (coreness 0), so the coreness maintenance around each insert is
//     O(1) and the measured cost is the hub-side adjacency mutation —
//     an O(degree) vector shift when sorted, O(1) when hashed. The
//     hybrid run should track the hashed one: a hub this size promoted
//     itself to the hash map long before the timed loop.
//
// Both datasets are deliberately modest (the whole binary runs in about
// a second), so HCD_BENCH_SMALL=1 shrinks only the adjacency micro; the
// batch-refresh section always runs at full size (see the note there).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/core_decomposition.h"
#include "core/dynamic.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/phcd.h"
#include "hcd/rebuild.h"

namespace {

/// `communities` disjoint G(n, m) blocks in one graph: every block is its
/// own hierarchy root, so touching a few blocks leaves the rest of the
/// forest spliceable.
hcd::Graph CommunityGraph(hcd::VertexId communities, hcd::VertexId block_n,
                          uint64_t block_m, uint64_t seed) {
  hcd::GraphBuilder builder;
  for (hcd::VertexId c = 0; c < communities; ++c) {
    const hcd::Graph block = hcd::ErdosRenyiGnm(block_n, block_m, seed + c);
    const hcd::VertexId base = c * block_n;
    for (hcd::VertexId u = 0; u < block_n; ++u) {
      for (const hcd::VertexId v : block.Neighbors(u)) {
        if (u < v) builder.AddEdge(base + u, base + v);
      }
    }
  }
  return std::move(builder).Build(communities * block_n);
}

/// A batch of toggles confined to the first `hot_communities` blocks —
/// concentrated churn, the workload incremental rebuild exists for.
std::vector<hcd::EdgeUpdate> LocalizedBatch(const hcd::DynamicCoreIndex& index,
                                            hcd::Rng& rng, size_t size,
                                            hcd::VertexId hot_communities,
                                            hcd::VertexId block_n) {
  const hcd::VertexId span = hot_communities * block_n;
  std::vector<hcd::EdgeUpdate> batch;
  while (batch.size() < size) {
    const auto c = static_cast<hcd::VertexId>(rng.Uniform(hot_communities));
    const auto u = c * block_n + static_cast<hcd::VertexId>(
                                     rng.Uniform(block_n));
    const auto v = c * block_n + static_cast<hcd::VertexId>(
                                     rng.Uniform(block_n));
    if (u == v || u >= span || v >= span) continue;
    batch.push_back({u, v,
                     index.HasEdge(u, v) ? hcd::EdgeOp::kRemove
                                         : hcd::EdgeOp::kInsert});
  }
  return batch;
}

hcd::CoreDecomposition CdOf(const hcd::DynamicCoreIndex& index) {
  hcd::CoreDecomposition cd;
  cd.coreness = index.CorenessValues();
  cd.k_max = index.KMax();
  return cd;
}

void BenchBatchRefresh() {
  // Not shrunk under HCD_BENCH_SMALL: the whole section runs in under a
  // second, and on a 16x-smaller graph a full rebuild costs ~1ms — less
  // than maintaining any batch against it — which would make the
  // incremental-vs-full rows meaningless for regression tracking.
  const hcd::VertexId communities = 800;
  const hcd::VertexId block_n = 250;
  const uint64_t block_m = 700;
  const hcd::Graph g = CommunityGraph(communities, block_n, block_m, 77);
  std::printf("batch refresh on %u communities (n=%u m=%llu):\n",
              static_cast<unsigned>(communities),
              static_cast<unsigned>(g.NumVertices()),
              static_cast<unsigned long long>(g.NumEdges()));
  std::printf("%-12s | %10s %11s %11s %11s | %8s %8s\n", "batch", "dirty",
              "apply (ms)", "freeze (ms)", "full (ms)", "speedup",
              "spliced");

  // One fixed-size row (the steady-drip case the live path is for) plus
  // two |E|-relative rows. Apply cost scales with the batch; the full
  // rebuild scales with the graph.
  const size_t batch_sizes[] = {
      100, static_cast<size_t>(g.NumEdges() / 1000),
      static_cast<size_t>(g.NumEdges() / 100)};
  uint64_t run = 0;
  for (const size_t batch_size : batch_sizes) {
    // Fresh writer state per batch size so runs are independent.
    hcd::DynamicCoreIndex index(g);
    hcd::FlatHcdIndex flat = Freeze(PhcdBuild(g, CdOf(index)));
    hcd::Rng rng(1001 + run++);
    // Concentrate the batch in ~1 community per 64 updates (at least 2).
    const auto hot = std::max<hcd::VertexId>(
        2, static_cast<hcd::VertexId>(batch_size / 64));
    const std::vector<hcd::EdgeUpdate> batch =
        LocalizedBatch(index, rng, batch_size, std::min(hot, communities),
                       block_n);

    hcd::Timer apply_timer;
    hcd::BatchStats stats;
    const hcd::Status applied = index.ApplyBatch(batch, &stats);
    HCD_CHECK(applied.ok());
    const double apply_seconds = apply_timer.Seconds();
    std::vector<hcd::VertexId> touched = stats.changed_vertices;
    for (const auto& [u, v] : stats.applied_edges) {
      touched.push_back(u);
      touched.push_back(v);
    }
    // Materializing the updated CSR is common ground: the from-scratch
    // pipeline starts from the same graph, so it sits outside both timers.
    const hcd::Graph updated = index.ToGraph();
    const hcd::CoreDecomposition cd = CdOf(index);

    hcd::Timer freeze_timer;
    hcd::RebuildOptions options;
    options.full_rebuild_threshold = 1.1;  // measure the splice itself
    const hcd::RebuildPlan plan = PlanRebuild(flat, touched, options);
    hcd::FlatHcdIndex spliced;
    HCD_CHECK(ApplyRebuild(plan, flat, updated, cd, nullptr, &spliced).ok());
    const double freeze_seconds = freeze_timer.Seconds();
    const double incr_seconds = apply_seconds + freeze_seconds;

    const double full_seconds = hcd::bench::TimeIt([&] {
      const hcd::CoreDecomposition from_scratch =
          hcd::BzCoreDecomposition(updated);
      hcd::FlatHcdIndex full = Freeze(PhcdBuild(updated, from_scratch));
    });

    char tag[32];
    std::snprintf(tag, sizeof(tag), "%zu (%.2f%%)", batch_size,
                  100.0 * static_cast<double>(batch_size) /
                      static_cast<double>(g.NumEdges()));
    std::printf("%-12s | %9.1f%% %11.2f %11.2f %11.2f | %7.1fx %8s\n", tag,
                plan.dirty_fraction * 100.0, apply_seconds * 1e3,
                freeze_seconds * 1e3, full_seconds * 1e3,
                full_seconds / incr_seconds,
                plan.full_rebuild ? "no" : "yes");
    hcd::bench::ReportBaseline("live_update_incremental",
                               "communities/" + std::to_string(batch_size),
                               1, incr_seconds);
    hcd::bench::ReportBaseline("live_update_full",
                               "communities/" + std::to_string(batch_size),
                               1, full_seconds);
  }
  std::printf("\n");
}

void BenchAdjacency(bool small) {
  // A star over the even vertex ids; the odd ids are isolated and get
  // attached to the hub one edge at a time inside the timed loop. Odd ids
  // interleave with the existing even neighbors, so every sorted insert
  // lands mid-vector and pays the O(degree) shift (ascending fresh ids
  // would all append at the tail for free).
  const hcd::VertexId star_n = small ? 25000 : 100000;
  const size_t inserts = small ? 5000 : 20000;
  hcd::GraphBuilder builder;
  for (hcd::VertexId v = 1; v < star_n; ++v) builder.AddEdge(0, 2 * v);
  const hcd::Graph g = std::move(builder).Build(2 * star_n);
  std::printf("adjacency micro: %zu fresh-leaf inserts into a degree-%u "
              "hub:\n",
              inserts, static_cast<unsigned>(g.MaxDegree()));
  std::printf("%-8s | %12s %14s\n", "mode", "total (ms)", "per-edge (us)");

  struct Mode {
    const char* name;
    uint32_t threshold;
  };
  const Mode modes[] = {{"sorted", 1u << 30},
                        {"hybrid", hcd::DynamicCoreIndex::
                                       kDefaultHashDegreeThreshold},
                        {"hashed", 0}};
  for (const Mode& mode : modes) {
    hcd::DynamicCoreIndex index(g, mode.threshold);
    const auto stride = static_cast<hcd::VertexId>(star_n / inserts);
    const double seconds = hcd::bench::TimeIt([&] {
      for (size_t i = 0; i < inserts; ++i) {
        const auto leaf =
            2 * (static_cast<hcd::VertexId>(i) * stride) + 1;
        HCD_CHECK(index.InsertEdge(0, leaf).ok());
      }
    });
    std::printf("%-8s | %12.2f %14.3f\n", mode.name, seconds * 1e3,
                seconds / static_cast<double>(inserts) * 1e6);
    hcd::bench::ReportBaseline("live_adjacency", mode.name, 1, seconds);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Live update: batch-dynamic maintenance vs from-scratch rebuild");
  BenchBatchRefresh();
  BenchAdjacency(hcd::bench::SmallBenchRequested());
  return 0;
}
