// Figure 7: (PKC + PHCD + PBKS)'s speedup to (PKC + LCPS + BKS) for a
// type-A metric — subgraph search including the cost of computing the
// inputs (core decomposition, HCD construction, preprocessing).

#include "bench/bench_search_figures.h"

int main() {
  return hcd::bench::RunSearchSpeedupFigure(
      "Figure 7: PKC+PHCD+PBKS's speedup to PKC+LCPS+BKS (type-A)",
      /*type_b=*/false, /*include_input=*/true);
}
