// Snapshot load-path benchmark: the copying loader (LoadFlatIndex, fread
// into owned sections) against the zero-copy mapping loader (MapFlatIndex,
// sections aliasing one mmap). For each suite dataset the core hierarchy
// is frozen, saved once, then loaded through both paths:
//
//   - cold: page cache for the snapshot dropped (posix_fadvise DONTNEED)
//     before the load, modeling serve-process startup after a deploy;
//   - warm: snapshot resident in the page cache, modeling a restart;
//   - first query: one Tid + CoreVertices-span scan immediately after the
//     load, so mmap's deferred page-fault cost is visible rather than
//     hidden behind a fast Open.
//
// Both loaders run full Adopt validation, so the delta is purely
// bytes-copied vs pages-aliased. Emits `snapshot_load` baseline rows (one
// per dataset x mode) when HCD_BENCH_BASELINE is set; honors
// HCD_BENCH_SMALL=1.

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/core_decomposition.h"
#include "hcd/flat_index.h"
#include "hcd/phcd.h"
#include "hcd/serialize.h"

namespace {

uint64_t g_sink = 0;  // defeats dead-code elimination across timed bodies

/// Asks the kernel to evict the snapshot's cached pages so the next load
/// pays real I/O. Best effort: on failure the "cold" numbers degrade to
/// warm ones rather than aborting the bench.
void DropPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

/// The first query a serving process would answer: resolve one vertex's
/// node and scan that node's core span. After MapFlatIndex this is what
/// actually faults the vertex sections in.
double FirstQuerySeconds(const hcd::FlatHcdIndex& index) {
  hcd::Timer timer;
  uint64_t sum = 0;
  if (index.NumVertices() > 0) {
    const hcd::TreeNodeId node = index.Tid(index.NumVertices() / 2);
    for (const hcd::VertexId v : index.CoreVertices(node)) sum += v;
  }
  g_sink += sum;
  return timer.Seconds();
}

struct LoadSample {
  double cold_s = 0.0;
  double warm_s = 0.0;
  double first_query_s = 0.0;  ///< after the cold load
};

template <typename LoadFn>
LoadSample MeasureLoader(const std::string& path, const LoadFn& load) {
  LoadSample sample;
  {
    DropPageCache(path);
    hcd::Timer timer;
    hcd::FlatHcdIndex index;
    const hcd::Status s = load(path, &index);
    sample.cold_s = timer.Seconds();
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    sample.first_query_s = FirstQuerySeconds(index);
  }
  // The cold pass left the file cached; the warm number is best-of to
  // suppress allocator noise.
  sample.warm_s = hcd::bench::TimeIt([&] {
    hcd::FlatHcdIndex index;
    if (!load(path, &index).ok()) std::exit(1);
    g_sink += index.NumNodes();
  }, 3);
  return sample;
}

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Snapshot load: copying LoadFlatIndex vs zero-copy MapFlatIndex");
  const bool small = hcd::bench::SmallBenchRequested();
  std::vector<hcd::bench::BenchDataset> suite = hcd::bench::LoadBenchSuite(small);

  std::printf("%-4s | %12s | %9s | mode | %9s | %9s | %11s\n", "ds",
              "bytes", "nodes", "cold", "warm", "first query");
  std::printf("-----+--------------+-----------+------+-----------+-----------"
              "+------------\n");

  for (const hcd::bench::BenchDataset& ds : suite) {
    hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(ds.graph);
    const hcd::FlatHcdIndex flat = hcd::Freeze(hcd::PhcdBuild(ds.graph, cd));
    const std::string path = "bench_data/snapshot_" + ds.name + ".bin";
    if (!hcd::SaveFlatIndex(flat, path).ok()) {
      std::fprintf(stderr, "save failed for %s\n", ds.name.c_str());
      return 1;
    }
    uint64_t bytes = 0;
    if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
      std::fseek(f, 0, SEEK_END);
      bytes = static_cast<uint64_t>(std::ftell(f));
      std::fclose(f);
    }

    const LoadSample read_sample = MeasureLoader(
        path, [](const std::string& p, hcd::FlatHcdIndex* out) {
          return hcd::LoadFlatIndex(p, out);
        });
    const LoadSample map_sample = MeasureLoader(
        path, [](const std::string& p, hcd::FlatHcdIndex* out) {
          return hcd::MapFlatIndex(p, out);
        });

    for (const auto& [mode, sample] :
         {std::pair<const char*, const LoadSample&>{"read", read_sample},
          std::pair<const char*, const LoadSample&>{"mmap", map_sample}}) {
      std::printf("%-4s | %12llu | %9u | %s | %8.2fms | %8.2fms | %9.2fus\n",
                  ds.name.c_str(), static_cast<unsigned long long>(bytes),
                  flat.NumNodes(), mode, sample.cold_s * 1e3,
                  sample.warm_s * 1e3, sample.first_query_s * 1e6);
      // The headline seconds is the warm load: deterministic (best-of-3,
      // snapshot resident) where the cold number depends on whether the
      // kernel honored the eviction hint, which varies by filesystem.
      hcd::bench::ReportBaseline(
          "snapshot_load", ds.name, 1, sample.warm_s,
          {{"mmap", std::string(mode) == "mmap" ? 1.0 : 0.0},
           {"cold_s", sample.cold_s},
           {"first_query_us", sample.first_query_s * 1e6},
           {"bytes", static_cast<double>(bytes)}});
    }
    std::remove(path.c_str());
  }

  std::printf("\n(sink %llu)\n", static_cast<unsigned long long>(g_sink));
  return 0;
}
