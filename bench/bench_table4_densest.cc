// Table IV: PBKS-D on densest subgraph and maximum clique.
//
// Columns, as in the paper: CoreApp's output quality (average degree) and
// time; Opt-D's (BKS with the average-degree metric) time; PBKS-D's quality
// and time; whether the exact maximum clique is contained in PBKS-D's
// output S*; and |S*|/n.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "hcd/flat_index.h"
#include "hcd/phcd.h"
#include "search/bks.h"
#include "search/densest.h"
#include "search/max_clique.h"

namespace {

// Exact max clique is only attempted below this degeneracy; above it the
// branch-and-bound may not terminate quickly on adversarial structures.
constexpr uint32_t kMaxCliqueDegeneracyCap = 64;

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Table IV: PBKS-D on densest subgraph & maximum clique");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %10s %8s | %8s | %10s %8s | %7s %9s\n", "ds",
              "CoreApp", "time(s)", "Opt-D(s)", "PBKS-D", "time(s)",
              "MC⊆S*", "|S*|/n");
  std::printf("     |   (d_avg)          | (serial) |   (d_avg)  (p=%d)\n\n",
              pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
    const hcd::FlatHcdIndex flat = hcd::Freeze(hcd::PhcdBuild(g, cd));

    hcd::DenseSubgraph coreapp;
    const double coreapp_t = hcd::bench::TimeWithThreads(
        1, [&] { coreapp = hcd::CoreAppDensest(g, cd); });

    const double optd_t = hcd::bench::TimeWithThreads(1, [&] {
      hcd::BksSearch(g, cd, flat, hcd::Metric::kAverageDegree);
    });

    hcd::DenseSubgraph pbksd;
    const double pbksd_t = hcd::bench::TimeWithThreads(
        pmax, [&] { pbksd = hcd::PbksDensest(g, cd, flat); });

    char mc_col[16] = "   -";
    if (cd.k_max <= kMaxCliqueDegeneracyCap) {
      std::vector<hcd::VertexId> mc = hcd::MaxClique(g, cd);
      std::vector<hcd::VertexId> sorted = pbksd.vertices;
      std::sort(sorted.begin(), sorted.end());
      bool contained = true;
      for (hcd::VertexId v : mc) {
        contained &= std::binary_search(sorted.begin(), sorted.end(), v);
      }
      std::snprintf(mc_col, sizeof(mc_col), "%s", contained ? "yes" : "no");
    }

    std::printf("%-4s | %10.2f %8.3f | %8.3f | %10.2f %8.3f | %7s %8.3f%%\n",
                ds.name.c_str(), coreapp.average_degree, coreapp_t, optd_t,
                pbksd.average_degree, pbksd_t, mc_col,
                100.0 * static_cast<double>(pbksd.vertices.size()) /
                    g.NumVertices());
  }
  std::printf("\n('-' in MC⊆S*: exact max clique skipped, degeneracy above "
              "%u.)\n", kMaxCliqueDegeneracyCap);
  return 0;
}
