// Serve-phase throughput: QPS scaling of concurrent metric queries against
// one immutable QuerySnapshot. The build phase (decomposition, PHCD,
// freeze, eager search index) runs once per dataset outside the timed
// region; the timed region is N std::thread workers each scoring a mixed
// metric workload with a private reusable SearchWorkspace — the shape a
// query server's worker pool has. Reports QPS, speedup over one worker,
// and nearest-rank latency quantiles (p50/p95/p99).
//
// HCD_BENCH_SMALL=1 shrinks the datasets and the query count (CI smoke).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "engine/snapshot.h"

namespace {

constexpr int kMetricCount =
    static_cast<int>(sizeof(hcd::kAllMetrics) / sizeof(hcd::kAllMetrics[0]));

struct ThroughputPoint {
  double qps = 0.0;
  hcd::bench::LatencyRecorder latencies;
};

/// Runs `queries` mixed-metric queries over `snapshot` with `workers`
/// threads (worker t serves query ids t, t+workers, ... so every worker
/// sees every metric) and returns QPS plus merged per-query latencies.
ThroughputPoint RunWorkload(const hcd::QuerySnapshot& snapshot, int workers,
                            int queries) {
  std::vector<hcd::bench::LatencyRecorder> recorders(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  hcd::Timer wall;
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back([&snapshot, &recorders, t, workers, queries] {
      hcd::SearchWorkspace ws;
      for (int q = t; q < queries; q += workers) {
        const hcd::Metric metric = hcd::kAllMetrics[q % kMetricCount];
        hcd::Timer timer;
        snapshot.Search(metric, &ws);
        recorders[t].Record(timer.Seconds());
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  ThroughputPoint point;
  // Clock granularity on a tiny run can hand back zero wall seconds; a
  // guarded 0 keeps the table and the baseline rows strictly finite.
  point.qps = hcd::FiniteOrZero(static_cast<double>(queries) / wall.Seconds());
  for (const auto& r : recorders) point.latencies.Merge(r);
  return point;
}

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Query throughput: concurrent Search over one QuerySnapshot");
  const int queries = hcd::bench::SmallBenchRequested() ? 400 : 20000;
  std::printf("(%d mixed-metric queries per point; latencies are "
              "nearest-rank quantiles)\n\n",
              queries);
  std::printf("%-4s %8s | %8s %10s %8s | %10s %10s %10s\n", "ds", "|T|",
              "workers", "QPS", "speedup", "p50 (us)", "p95 (us)",
              "p99 (us)");

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    hcd::HcdEngine engine(&ds.graph, {.telemetry = false});
    const hcd::QuerySnapshot snapshot = engine.Snapshot();
    double base_qps = 0.0;
    for (int workers : hcd::bench::ThreadSweep()) {
      const ThroughputPoint point = RunWorkload(snapshot, workers, queries);
      if (workers == 1) base_qps = point.qps;
      // Baseline row carries the wall seconds of the whole workload (QPS is
      // recoverable as queries/seconds).
      hcd::bench::ReportBaseline(
          "query_throughput", ds.name, workers,
          hcd::FiniteOrZero(static_cast<double>(queries) / point.qps),
          {{"qps", point.qps}});
      std::printf("%-4s %8u | %8d %10.0f %7.2fx | %10.1f %10.1f %10.1f\n",
                  ds.name.c_str(), snapshot.flat().NumNodes(), workers,
                  point.qps, hcd::FiniteOrZero(point.qps / base_qps),
                  point.latencies.P50() * 1e6, point.latencies.P95() * 1e6,
                  point.latencies.P99() * 1e6);
    }
  }
  return 0;
}
