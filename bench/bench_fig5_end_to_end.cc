// Figure 5: (PKC + PHCD)'s speedup to (PKC + LCPS) — HCD construction
// including the cost of computing its input (the core decomposition).

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"

int main() {
  hcd::bench::PrintHardwareBanner(
      "Figure 5: PKC + PHCD's speedup to PKC + LCPS");
  const auto threads = hcd::bench::ThreadSweep();
  std::printf("%-4s | %14s |", "ds", "PKC+LCPS (s)");
  for (int p : threads) std::printf("  p=%-5d", p);
  std::printf("\n\n");

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    const double baseline = hcd::bench::TimeWithThreads(1, [&] {
      hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
      hcd::LcpsBuild(g, cd);
    });
    std::printf("%-4s | %14.3f |", ds.name.c_str(), baseline);
    for (int p : threads) {
      const double t = hcd::bench::TimeWithThreads(p, [&] {
        hcd::CoreDecomposition cd = hcd::PkcCoreDecomposition(g);
        hcd::PhcdBuild(g, cd);
      });
      std::printf(" %7.2fx", baseline / t);
    }
    std::printf("\n");
  }
  std::printf("\n(The ratio at p=1 reflects PHCD's serial advantage over\n"
              "LCPS; scaling beyond 1 is bounded by the hardware threads.)\n");
  return 0;
}
