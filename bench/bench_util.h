#ifndef HCD_BENCH_BENCH_UTIL_H_
#define HCD_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "common/timer.h"
#include "parallel/omp_utils.h"

namespace hcd::bench {

/// Collects per-query latencies and reports nearest-rank quantiles
/// (p50/p95/p99), the shared report shape of `hcd_cli query-bench` and
/// bench_query_throughput. Not thread-safe: give each worker thread its own
/// recorder and Merge them afterwards.
///
/// The sample vector is sorted at most once per batch of insertions: the
/// first Quantile call after a Record/Merge sorts in place and memoizes,
/// so a P50/P95/P99 report costs one O(N log N) sort instead of three
/// (each with its own full copy). Record and Merge stay valid after a
/// report — they just mark the order dirty again.
class LatencyRecorder {
 public:
  void Record(double seconds) {
    samples_.push_back(seconds);
    sorted_ = false;
  }

  void Merge(const LatencyRecorder& other) {
    if (other.samples_.empty()) return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  size_t Count() const { return samples_.size(); }

  /// Sorts the samples now (idempotent). Quantile calls this lazily, so
  /// finalizing explicitly is only useful to move the sort off a measured
  /// region.
  void Finalize() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }

  /// Nearest-rank quantile: the ceil(q*N)-th smallest sample (so P50 of
  /// two samples is the lower one, and one sample answers every q). 0.0
  /// with no samples. `q` in [0, 1]; q=0 is the minimum, q=1 the maximum.
  double Quantile(double q) const {
    if (samples_.empty()) return 0.0;
    Finalize();
    const double rank = std::ceil(q * static_cast<double>(samples_.size()));
    const size_t index =
        rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return samples_[std::min(index, samples_.size() - 1)];
  }

  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

 private:
  /// Sorted in place by Finalize; recorder order is not observable.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Wall-clock seconds of `fn` (best of `reps` runs; best-of suppresses
/// one-off allocator / page-fault noise, the usual convention for
/// single-shot algorithm timings).
inline double TimeIt(const std::function<void()>& fn, int reps = 1) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    const double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Times `fn` under a fixed OpenMP thread count.
inline double TimeWithThreads(int threads, const std::function<void()>& fn,
                              int reps = 1) {
  ThreadCountGuard guard(threads);
  return TimeIt(fn, reps);
}

/// Thread counts swept by the scaling figures. The paper sweeps 1..40 on a
/// 40-core box; this machine's hardware concurrency is reported alongside
/// so readers can interpret >hardware counts as oversubscription.
inline std::vector<int> ThreadSweep() { return {1, 2, 4, 8}; }

/// Appends one machine-readable measurement row to the file named by the
/// HCD_BENCH_BASELINE environment variable (JSON Lines: one object per
/// row with bench / dataset / threads / seconds, plus any extra
/// measurement-specific fields passed as (key, value) pairs). A no-op when
/// the variable is unset, so interactive runs stay table-only;
/// scripts/run_benchmarks.sh sets it and folds the rows into
/// BENCH_baseline.json for regression tracking across commits. Values are
/// sanitized through FiniteOrZero so a degenerate run (zero duration, zero
/// reads) can never write `inf`/`nan` into the baseline.
inline void ReportBaseline(
    const std::string& bench, const std::string& dataset, int threads,
    double seconds,
    const std::vector<std::pair<std::string, double>>& extra = {}) {
  const char* path = std::getenv("HCD_BENCH_BASELINE");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\":\"%s\",\"dataset\":\"%s\",\"threads\":%d,"
               "\"seconds\":%.9g",
               JsonEscape(bench).c_str(), JsonEscape(dataset).c_str(),
               threads, FiniteOrZero(seconds));
  for (const auto& [key, value] : extra) {
    std::fprintf(f, ",\"%s\":%.9g", JsonEscape(key).c_str(),
                 FiniteOrZero(value));
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Dataset label of a graph path for baseline rows: the basename with its
/// extension dropped ("data/web-Google.bin" -> "web-Google").
inline std::string DatasetNameFromPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name.empty() ? "unnamed" : name;
}

inline void PrintHardwareBanner(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("(hardware threads available: %d; thread counts beyond this "
              "are oversubscribed)\n\n",
              HardwareThreads());
}

}  // namespace hcd::bench

#endif  // HCD_BENCH_BENCH_UTIL_H_
