#ifndef HCD_BENCH_BENCH_UTIL_H_
#define HCD_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "common/timer.h"
#include "parallel/omp_utils.h"

namespace hcd::bench {

/// Collects per-query latencies and reports nearest-rank quantiles
/// (p50/p95/p99), the shared report shape of `hcd_cli query-bench` and
/// bench_query_throughput. Not thread-safe: give each worker thread its own
/// recorder and Merge them afterwards.
class LatencyRecorder {
 public:
  void Record(double seconds) { samples_.push_back(seconds); }

  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  size_t Count() const { return samples_.size(); }

  /// Nearest-rank quantile: the ceil(q*N)-th smallest sample (so P50 of
  /// two samples is the lower one, and one sample answers every q). 0.0
  /// with no samples. `q` in [0, 1]; q=0 is the minimum, q=1 the maximum.
  double Quantile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const size_t index =
        rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return sorted[std::min(index, sorted.size() - 1)];
  }

  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

 private:
  std::vector<double> samples_;
};

/// Wall-clock seconds of `fn` (best of `reps` runs; best-of suppresses
/// one-off allocator / page-fault noise, the usual convention for
/// single-shot algorithm timings).
inline double TimeIt(const std::function<void()>& fn, int reps = 1) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    const double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Times `fn` under a fixed OpenMP thread count.
inline double TimeWithThreads(int threads, const std::function<void()>& fn,
                              int reps = 1) {
  ThreadCountGuard guard(threads);
  return TimeIt(fn, reps);
}

/// Thread counts swept by the scaling figures. The paper sweeps 1..40 on a
/// 40-core box; this machine's hardware concurrency is reported alongside
/// so readers can interpret >hardware counts as oversubscription.
inline std::vector<int> ThreadSweep() { return {1, 2, 4, 8}; }

/// Appends one machine-readable measurement row to the file named by the
/// HCD_BENCH_BASELINE environment variable (JSON Lines: one object per
/// row with bench / dataset / threads / seconds). A no-op when the
/// variable is unset, so interactive runs stay table-only;
/// scripts/run_benchmarks.sh sets it and folds the rows into
/// BENCH_baseline.json for regression tracking across commits.
inline void ReportBaseline(const std::string& bench,
                           const std::string& dataset, int threads,
                           double seconds) {
  const char* path = std::getenv("HCD_BENCH_BASELINE");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"bench\":\"%s\",\"dataset\":\"%s\",\"threads\":%d,"
               "\"seconds\":%.9g}\n",
               JsonEscape(bench).c_str(), JsonEscape(dataset).c_str(),
               threads, seconds);
  std::fclose(f);
}

inline void PrintHardwareBanner(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("(hardware threads available: %d; thread counts beyond this "
              "are oversubscribed)\n\n",
              HardwareThreads());
}

}  // namespace hcd::bench

#endif  // HCD_BENCH_BENCH_UTIL_H_
