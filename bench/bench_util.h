#ifndef HCD_BENCH_BENCH_UTIL_H_
#define HCD_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/timer.h"
#include "parallel/omp_utils.h"

namespace hcd::bench {

/// Wall-clock seconds of `fn` (best of `reps` runs; best-of suppresses
/// one-off allocator / page-fault noise, the usual convention for
/// single-shot algorithm timings).
inline double TimeIt(const std::function<void()>& fn, int reps = 1) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    const double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Times `fn` under a fixed OpenMP thread count.
inline double TimeWithThreads(int threads, const std::function<void()>& fn,
                              int reps = 1) {
  ThreadCountGuard guard(threads);
  return TimeIt(fn, reps);
}

/// Thread counts swept by the scaling figures. The paper sweeps 1..40 on a
/// 40-core box; this machine's hardware concurrency is reported alongside
/// so readers can interpret >hardware counts as oversubscription.
inline std::vector<int> ThreadSweep() { return {1, 2, 4, 8}; }

inline void PrintHardwareBanner(const char* title) {
  std::printf("== %s ==\n", title);
  std::printf("(hardware threads available: %d; thread counts beyond this "
              "are oversubscribed)\n\n",
              HardwareThreads());
}

}  // namespace hcd::bench

#endif  // HCD_BENCH_BENCH_UTIL_H_
