// Figure 9: (PKC + PHCD + PBKS)'s speedup to (PKC + LCPS + BKS) for a
// type-B metric — subgraph search including the cost of computing the
// inputs.

#include "bench/bench_search_figures.h"

int main() {
  return hcd::bench::RunSearchSpeedupFigure(
      "Figure 9: PKC+PHCD+PBKS's speedup to PKC+LCPS+BKS (type-B)",
      /*type_b=*/true, /*include_input=*/true);
}
