// Micro-benchmark for the two hierarchy representations: the builder
// HcdForest (ragged per-node vectors, DFS CoreVertices) against the frozen
// FlatHcdIndex (preorder CSR, O(1) core spans). Four comparisons:
//
//   (1) CoreVertices sweep — summing every node's original k-core, the
//       per-query cost the flat layout was built to remove;
//   (2) bottom-up accumulation — folding per-node tallies into parents,
//       ragged order-array walk vs a single reverse-preorder loop;
//   (3) Freeze — the one-time cost of producing the flat index;
//   (4) snapshot I/O — v1 builder-shaped save/load vs v2 bulk-array
//       save/load (load includes full Adopt validation).
//
// Honors HCD_BENCH_SMALL=1 (smoke mode, used by CI) by shrinking the graph.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "hcd/flat_index.h"
#include "hcd/phcd.h"
#include "hcd/serialize.h"

namespace {

uint64_t g_sink = 0;  // defeats dead-code elimination across timed bodies

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Forest layout: builder HcdForest vs frozen FlatHcdIndex");
  const bool small = hcd::bench::SmallBenchRequested();
  // RMAT: skewed coreness, so the hierarchy has many nodes (a BA graph
  // collapses to one tree node per component and benchmarks nothing).
  const uint32_t scale = small ? 14 : 18;
  const uint64_t edges = small ? 120000 : 2000000;
  hcd::Graph graph = hcd::RMatGraph500(scale, edges, 77);
  const hcd::VertexId n = graph.NumVertices();
  hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(graph);
  hcd::HcdForest forest = hcd::PhcdBuild(graph, cd);
  const hcd::FlatHcdIndex flat = hcd::Freeze(forest);
  const int reps = small ? 2 : 5;
  std::printf("graph: n=%u m=%llu, %u tree nodes, k_max=%u\n\n", n,
              static_cast<unsigned long long>(graph.NumEdges()),
              flat.NumNodes(), cd.k_max);

  // (1) CoreVertices sweep: every node's original k-core, summed.
  const double ragged_core = hcd::bench::TimeIt([&] {
    uint64_t sum = 0;
    for (hcd::TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
      for (hcd::VertexId v : forest.CoreVertices(t)) sum += v;
    }
    g_sink += sum;
  }, reps);
  const double flat_core = hcd::bench::TimeIt([&] {
    uint64_t sum = 0;
    for (hcd::TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
      for (hcd::VertexId v : flat.CoreVertices(t)) sum += v;
    }
    g_sink += sum;
  }, reps);
  std::printf("CoreVertices sweep   | forest %10.4fs | flat %10.4fs | %7.2fx\n",
              ragged_core, flat_core, ragged_core / flat_core);

  // (2) Bottom-up accumulation: per-node vertex counts folded into parents.
  const double ragged_acc = hcd::bench::TimeIt([&] {
    std::vector<uint64_t> tally(forest.NumNodes());
    for (hcd::TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
      tally[t] = forest.Vertices(t).size();
    }
    for (hcd::TreeNodeId t : forest.NodesByDescendingLevel()) {
      const hcd::TreeNodeId pa = forest.Parent(t);
      if (pa != hcd::kInvalidNode) tally[pa] += tally[t];
    }
    g_sink += tally[0];
  }, reps);
  const double flat_acc = hcd::bench::TimeIt([&] {
    std::vector<uint64_t> tally(flat.NumNodes());
    for (hcd::TreeNodeId t = 0; t < flat.NumNodes(); ++t) {
      tally[t] = flat.Vertices(t).size();
    }
    // Reverse preorder: children always follow parents, so a descending id
    // loop is a valid serial schedule — no order array, no indirection.
    for (hcd::TreeNodeId t = flat.NumNodes(); t-- > 1;) {
      const hcd::TreeNodeId pa = flat.Parent(t);
      if (pa != hcd::kInvalidNode) tally[pa] += tally[t];
    }
    g_sink += tally[0];
  }, reps);
  std::printf("bottom-up accumulate | forest %10.4fs | flat %10.4fs | %7.2fx\n",
              ragged_acc, flat_acc, ragged_acc / flat_acc);

  // (3) One-time freeze cost, for scale against the wins above.
  const double freeze = hcd::bench::TimeIt(
      [&] { g_sink += hcd::Freeze(forest).NumNodes(); }, reps);
  std::printf("Freeze (one-time)    | %10.4fs\n", freeze);

  // (4) Snapshot save/load, v1 builder stream vs v2 bulk arrays.
  const std::string v1_path = "bench_layout.v1.forest";
  const std::string v2_path = "bench_layout.v2.forest";
  const double v1_save = hcd::bench::TimeIt(
      [&] { hcd::SaveForest(forest, v1_path).ok(); }, reps);
  const double v2_save = hcd::bench::TimeIt(
      [&] { hcd::SaveFlatIndex(flat, v2_path).ok(); }, reps);
  const double v1_load = hcd::bench::TimeIt([&] {
    hcd::FlatHcdIndex loaded;
    if (hcd::LoadFlatIndex(v1_path, &loaded).ok()) g_sink += loaded.NumNodes();
  }, reps);
  const double v2_load = hcd::bench::TimeIt([&] {
    hcd::FlatHcdIndex loaded;
    if (hcd::LoadFlatIndex(v2_path, &loaded).ok()) g_sink += loaded.NumNodes();
  }, reps);
  std::printf("snapshot save        | v1     %10.4fs | v2   %10.4fs | %7.2fx\n",
              v1_save, v2_save, v1_save / v2_save);
  std::printf("snapshot load        | v1     %10.4fs | v2   %10.4fs | %7.2fx\n",
              v1_load, v2_load, v1_load / v2_load);
  std::printf("(v1 load includes the Freeze migration; v2 load includes "
              "Adopt validation.)\n");
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());

  return g_sink == 0xdeadbeef ? 1 : 0;  // g_sink is always consumed
}
