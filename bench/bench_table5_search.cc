// Table V: runtime of subgraph search — PBKS at the maximum swept thread
// count (seconds) and its speedup over the serial BKS, for a type-A metric
// (conductance) and a type-B metric (clustering coefficient).
//
// The decomposition and flat index every search runs on come from one shared
// engine per dataset (computed once, memoized); the searches themselves are
// timed with a fresh run per rep so each algorithm pays for its own
// preprocessing, as in the paper.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "engine/engine.h"
#include "search/bks.h"
#include "search/pbks.h"

int main() {
  hcd::bench::PrintHardwareBanner("Table V: runtime of subgraph search");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %12s %9s | %12s %9s\n", "ds", "Type-A (s)", "vs BKS",
              "Type-B (s)", "vs BKS");
  std::printf("     |   (p=%-2d)              |   (p=%-2d)\n\n", pmax, pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    hcd::HcdEngine engine(&g, {.algo = hcd::EngineAlgo::kPhcd});
    const hcd::CoreDecomposition& cd = engine.Coreness();
    const hcd::FlatHcdIndex& flat = engine.Flat();

    const double pbks_a = hcd::bench::TimeWithThreads(pmax, [&] {
      hcd::PbksSearch(g, cd, flat, hcd::Metric::kConductance);
    });
    const double bks_a = hcd::bench::TimeWithThreads(1, [&] {
      hcd::BksSearch(g, cd, flat, hcd::Metric::kConductance);
    });
    const double pbks_b = hcd::bench::TimeWithThreads(pmax, [&] {
      hcd::PbksSearch(g, cd, flat, hcd::Metric::kClusteringCoefficient);
    });
    const double bks_b = hcd::bench::TimeWithThreads(1, [&] {
      hcd::BksSearch(g, cd, flat, hcd::Metric::kClusteringCoefficient);
    });

    std::printf("%-4s | %12.4f %8.2fx | %12.4f %8.2fx\n", ds.name.c_str(),
                pbks_a, bks_a / pbks_a, pbks_b, bks_b / pbks_b);
  }
  std::printf("\n(Type-A = conductance; type-B = clustering coefficient.\n"
              "Times include each algorithm's own preprocessing.)\n");
  return 0;
}
