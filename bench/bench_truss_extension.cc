// Section VI extension: hierarchical k-truss decomposition with the PHCD
// paradigm over edges. Reports, per dataset: the truss decomposition cost,
// the hierarchy construction cost at 1 thread and at the maximum swept
// thread count, truss k_max and node count, and the densest truss.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

int main() {
  hcd::bench::PrintHardwareBanner(
      "Extension: hierarchical k-truss decomposition");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %10s %10s %10s | %6s %7s | %14s\n", "ds", "decomp(s)",
              "tree(1) s", "tree(p) s", "k_max", "|T|", "densest truss");
  std::printf("     |                                  |      (p=%d)\n\n",
              pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    hcd::EdgeIndexer index = hcd::BuildEdgeIndexer(g);

    hcd::TrussDecomposition td;
    const double decomp_t = hcd::bench::TimeIt(
        [&] { td = hcd::PeelTrussDecomposition(g, index); });

    hcd::TrussForest forest;
    const double tree1 = hcd::bench::TimeWithThreads(
        1, [&] { forest = hcd::BuildTrussHierarchy(g, index, td); }, 2);
    const double treep = hcd::bench::TimeWithThreads(
        pmax, [&] { hcd::BuildTrussHierarchy(g, index, td); }, 2);

    hcd::DensestTrussResult best = hcd::DensestTruss(g, index, forest);
    std::printf("%-4s | %10.3f %10.3f %10.3f | %6u %7u | k=%-3u d=%.1f\n",
                ds.name.c_str(), decomp_t, tree1, treep, td.k_max,
                forest.NumNodes(), best.level,
                best.community.AverageDegree());
  }
  return 0;
}
