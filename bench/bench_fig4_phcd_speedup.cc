// Figure 4: PHCD's speedup over serial LCPS as the thread count grows.

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "core/core_decomposition.h"
#include "hcd/lcps.h"
#include "hcd/phcd.h"

int main() {
  hcd::bench::PrintHardwareBanner("Figure 4: PHCD's speedup to LCPS");
  const auto threads = hcd::bench::ThreadSweep();
  std::printf("%-4s | %9s |", "ds", "LCPS (s)");
  for (int p : threads) std::printf("  p=%-5d", p);
  std::printf("   (speedup ratio = LCPS / PHCD(p))\n\n");

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    hcd::CoreDecomposition cd = hcd::BzCoreDecomposition(g);
    const double lcps =
        hcd::bench::TimeWithThreads(1, [&] { hcd::LcpsBuild(g, cd); }, 3);
    std::printf("%-4s | %9.3f |", ds.name.c_str(), lcps);
    for (int p : threads) {
      const double t =
          hcd::bench::TimeWithThreads(p, [&] { hcd::PhcdBuild(g, cd); }, 3);
      std::printf(" %7.2fx", lcps / t);
    }
    std::printf("\n");
  }
  return 0;
}
