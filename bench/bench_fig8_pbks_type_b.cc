// Figure 8: PBKS's speedup to BKS on type-B score computation (clustering
// coefficient), preprocessing excluded on both sides.

#include "bench/bench_search_figures.h"

int main() {
  return hcd::bench::RunSearchSpeedupFigure(
      "Figure 8: PBKS's speedup to BKS (type-B score computation)",
      /*type_b=*/true, /*include_input=*/false);
}
