// Second Section VI / related-work extension: hierarchical (3,4)-nucleus
// decomposition. The paper notes no parallel algorithm existed for nucleus
// hierarchy construction; this measures our pivot-union-find construction
// on the benchmark suite (datasets with too many triangles are skipped to
// bound memory: triangles are materialized objects here).

#include <cstdio>

#include "bench/bench_datasets.h"
#include "bench/bench_util.h"
#include "nucleus/nucleus_decomposition.h"
#include "nucleus/nucleus_hierarchy.h"
#include "nucleus/triangle_index.h"

namespace {

// Cheap triangle census (no materialization) to decide skips: the count
// bounds memory, and the sum of per-triangle minimum corner degrees bounds
// the 4-clique enumeration work of the decomposition and the hierarchy.
struct TriangleCensus {
  uint64_t count = 0;
  uint64_t clique_work = 0;
};

TriangleCensus CountTriangles(const hcd::Graph& g) {
  TriangleCensus census;
  std::vector<uint8_t> mark(g.NumVertices(), 0);
  for (hcd::VertexId v = 0; v < g.NumVertices(); ++v) {
    for (hcd::VertexId u : g.Neighbors(v)) mark[u] = 1;
    for (hcd::VertexId u : g.Neighbors(v)) {
      if (g.Degree(u) < g.Degree(v) || (g.Degree(u) == g.Degree(v) && u < v)) {
        for (hcd::VertexId w : g.Neighbors(u)) {
          if (mark[w] && (g.Degree(w) < g.Degree(u) ||
                          (g.Degree(w) == g.Degree(u) && w < u))) {
            ++census.count;
            census.clique_work += g.Degree(w);
          }
        }
      }
    }
    for (hcd::VertexId u : g.Neighbors(v)) mark[u] = 0;
  }
  return census;
}

constexpr uint64_t kTriangleCap = 8000000;
constexpr uint64_t kTriangleCapSmall = 300000;
constexpr uint64_t kCliqueWorkCap = 200000000;

}  // namespace

int main() {
  hcd::bench::PrintHardwareBanner(
      "Extension: hierarchical (3,4)-nucleus decomposition");
  const int pmax = hcd::bench::ThreadSweep().back();
  std::printf("%-4s | %12s | %10s %10s %10s | %6s %8s\n", "ds", "#triangles",
              "decomp(s)", "tree(1) s", "tree(p) s", "k_max", "|T|");
  std::printf("     |              |                                  |"
              "  (p=%d)\n\n", pmax);

  for (auto& ds : hcd::bench::LoadBenchSuite()) {
    const hcd::Graph& g = ds.graph;
    const uint64_t cap =
        hcd::bench::SmallBenchRequested() ? kTriangleCapSmall : kTriangleCap;
    const TriangleCensus census = CountTriangles(g);
    const uint64_t tris = census.count;
    if (tris > cap || census.clique_work > kCliqueWorkCap) {
      std::printf("%-4s | %12llu | (skipped: %llu triangles / %llu est. "
                  "4-clique work above caps)\n",
                  ds.name.c_str(), static_cast<unsigned long long>(tris),
                  static_cast<unsigned long long>(tris),
                  static_cast<unsigned long long>(census.clique_work));
      continue;
    }
    hcd::EdgeIndexer eidx = hcd::BuildEdgeIndexer(g);
    hcd::TriangleIndexer tidx = hcd::BuildTriangleIndexer(g, eidx);

    hcd::NucleusDecomposition nd;
    const double decomp_t = hcd::bench::TimeIt(
        [&] { nd = hcd::PeelNucleusDecomposition(g, eidx, tidx); });
    hcd::NucleusForest forest;
    const double tree1 = hcd::bench::TimeWithThreads(1, [&] {
      forest = hcd::BuildNucleusHierarchy(g, eidx, tidx, nd);
    });
    const double treep = hcd::bench::TimeWithThreads(
        pmax, [&] { hcd::BuildNucleusHierarchy(g, eidx, tidx, nd); });

    std::printf("%-4s | %12llu | %10.3f %10.3f %10.3f | %6u %8u\n",
                ds.name.c_str(), static_cast<unsigned long long>(tris),
                decomp_t, tree1, treep, nd.k_max, forest.NumNodes());
  }
  return 0;
}
