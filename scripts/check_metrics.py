#!/usr/bin/env python3
"""Validates a metrics file written by hcd_cli --metrics-out.

For Prometheus text exposition (the default format): checks the HELP/TYPE
structure, that histogram bucket series are cumulative and end in an +Inf
bucket equal to the _count series, and optionally that a named histogram's
total count matches an expected value (e.g. query-bench's --queries), that
a named gauge carries an expected value (e.g. live-bench's
hcd_snapshot_epoch, which must equal --batches since every batch of
distinct toggles publishes exactly one epoch), or that a named counter
carries an expected value (e.g. the serve smoke's
hcd_server_requests_total, which must equal serve-bench's --queries).

For .json files: checks the document parses and has the metrics envelope.

A labeled histogram series (e.g. the per-phase
hcd_server_phase_seconds{phase="search"} family the query server exports)
can be asserted present-and-populated with --expect-histogram.

Usage:
  check_metrics.py METRICS_FILE [--expect-histogram-count=NAME=N ...]
                                [--expect-histogram=NAME{label=value} ...]
                                [--expect-gauge=NAME[=VALUE] ...]
                                [--expect-counter=NAME=N ...]

Exits non-zero with a diagnostic on the first violated check.
"""

import argparse
import json
import re
import sys


def check_json(path: str) -> int:
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        print("metrics array missing")
        return 1
    for m in metrics:
        if "name" not in m or "type" not in m:
            print(f"metric missing name/type: {m}")
            return 1
    print(f"OK: {len(metrics)} metrics (JSON)")
    return 0


SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)


HISTOGRAM_SPEC_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[A-Za-z0-9_]+=[^,{}]+(?:,[A-Za-z0-9_]+=[^,{}]+)*)\})?$"
)


def parse_histogram_spec(spec: str):
    """NAME{label=value,...} -> (name, {label: value}); labels optional."""
    match = HISTOGRAM_SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"malformed --expect-histogram spec: {spec!r}")
    labels = {}
    if match.group("labels"):
        for pair in match.group("labels").split(","):
            key, _, value = pair.partition("=")
            labels[key] = value.strip('"')
    return match.group("name"), labels


def check_prometheus(
    path: str, expectations: dict, histograms: list, gauges: dict,
    counters: dict
) -> int:
    with open(path) as f:
        lines = f.read().splitlines()

    types: dict = {}
    # (family, non-le labels) -> list of (le, cumulative count), counts
    buckets: dict = {}
    counts: dict = {}
    samples: dict = {}  # (name, labels) -> float, for gauge/counter samples

    for i, line in enumerate(lines):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[2]:
                print(f"line {i + 1}: malformed comment: {line!r}")
                return 1
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram"):
                    print(f"line {i + 1}: unknown type {parts[3]!r}")
                    return 1
                types[parts[2]] = parts[3]
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            print(f"line {i + 1}: malformed sample: {line!r}")
            return 1
        name, labels, value = (
            match.group("name"),
            match.group("labels") or "",
            match.group("value"),
        )
        if name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            le_match = re.search(r'le="([^"]*)"\}?$', labels)
            if not le_match:
                print(f"line {i + 1}: bucket sample without le: {line!r}")
                return 1
            rest = re.sub(r',?le="[^"]*"', "", labels)
            if rest == "{}":  # le was the only label
                rest = ""
            buckets.setdefault((family, rest), []).append(
                (le_match.group(1), int(value))
            )
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], labels)] = int(value)
        else:
            samples[(name, labels)] = float(value)  # must at least be numeric

    for (family, labels), series in buckets.items():
        if types.get(family) != "histogram":
            print(f"{family}: bucket series but TYPE is {types.get(family)!r}")
            return 1
        values = [count for _, count in series]
        if values != sorted(values):
            print(f"{family}{labels}: bucket series is not cumulative: {values}")
            return 1
        if series[-1][0] != "+Inf":
            print(f"{family}{labels}: last bucket is {series[-1][0]!r}, want +Inf")
            return 1
        if (family, labels) not in counts:
            print(f"{family}{labels}: no _count sample")
            return 1
        if counts[(family, labels)] != series[-1][1]:
            print(
                f"{family}{labels}: _count {counts[(family, labels)]} != "
                f"+Inf bucket {series[-1][1]}"
            )
            return 1

    for family, expected in expectations.items():
        total = counts.get((family, ""))
        if total is None:
            print(f"{family}: expected histogram not found (unlabeled series)")
            return 1
        if total != expected:
            print(f"{family}: count {total} != expected {expected}")
            return 1

    for name, want_labels in histograms:
        if types.get(name) != "histogram":
            print(f"{name}: expected a histogram, TYPE is {types.get(name)!r}")
            return 1
        # Any series of the family whose labels include every wanted pair
        # satisfies the spec; it must also have observations.
        matched = None
        for (family, labels), total in counts.items():
            if family != name:
                continue
            if all(f'{k}="{v}"' in labels for k, v in want_labels.items()):
                matched = ((family, labels), total)
                break
        if matched is None:
            rendered = ",".join(f"{k}={v}" for k, v in want_labels.items())
            print(f"{name}{{{rendered}}}: histogram series not found")
            return 1
        if matched[1] == 0:
            print(f"{matched[0][0]}{matched[0][1]}: histogram has no "
                  "observations")
            return 1

    for name, expected in gauges.items():
        if types.get(name) != "gauge":
            print(f"{name}: expected a gauge, TYPE is {types.get(name)!r}")
            return 1
        value = samples.get((name, ""))
        if value is None:
            print(f"{name}: expected gauge not found (unlabeled series)")
            return 1
        if expected is not None and value != expected:
            print(f"{name}: gauge value {value} != expected {expected}")
            return 1

    for name, expected in counters.items():
        if types.get(name) != "counter":
            print(f"{name}: expected a counter, TYPE is {types.get(name)!r}")
            return 1
        value = samples.get((name, ""))
        if value is None:
            print(f"{name}: expected counter not found (unlabeled series)")
            return 1
        if value != expected:
            print(f"{name}: counter value {value} != expected {expected}")
            return 1

    print(f"OK: {len(types)} families, {len(buckets)} histogram series")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="path to the metrics file")
    parser.add_argument(
        "--expect-histogram-count",
        action="append",
        default=[],
        metavar="NAME=N",
        help="unlabeled histogram NAME must have _count == N (repeatable)",
    )
    parser.add_argument(
        "--expect-histogram",
        action="append",
        default=[],
        metavar="NAME{label=value}",
        help="histogram series with (at least) the given labels must exist "
        "and have a nonzero _count; bare NAME matches any series of the "
        "family (repeatable)",
    )
    parser.add_argument(
        "--expect-gauge",
        action="append",
        default=[],
        metavar="NAME[=VALUE]",
        help="unlabeled gauge NAME must exist; with =VALUE it must also "
        "equal VALUE (repeatable)",
    )
    parser.add_argument(
        "--expect-counter",
        action="append",
        default=[],
        metavar="NAME=N",
        help="unlabeled counter NAME must equal N (repeatable)",
    )
    args = parser.parse_args()

    expectations = {}
    for spec in args.expect_histogram_count:
        name, _, value = spec.partition("=")
        expectations[name] = int(value)
    histograms = []
    for spec in args.expect_histogram:
        histograms.append(parse_histogram_spec(spec))
    gauges = {}
    for spec in args.expect_gauge:
        name, sep, value = spec.partition("=")
        # Bare NAME asserts presence only (value checks need a "=VALUE").
        gauges[name] = float(value) if sep else None
    counters = {}
    for spec in args.expect_counter:
        name, _, value = spec.partition("=")
        counters[name] = int(value)

    if args.metrics.endswith(".json"):
        if expectations or histograms or gauges or counters:
            print("--expect-* checks only apply to Prometheus files")
            return 2
        return check_json(args.metrics)
    return check_prometheus(
        args.metrics, expectations, histograms, gauges, counters
    )


if __name__ == "__main__":
    sys.exit(main())
