#!/usr/bin/env python3
"""Validates a slow-query log written by hcd_cli serve --slow-log.

The log is JSONL: one JSON object per line, appended by the server's
flusher thread for every request that crossed --slow-query-ms (reason
"slow") or hit the 1-in-N sample (reason "sampled"). Each record carries
the wire trace id, the request shape, and a per-phase nanosecond
breakdown whose sum must account for the recorded total latency.

Checks, per record:
  - the line parses as a JSON object with every required key;
  - reason is "slow" or "sampled", trace_id looks like "0x<hex>";
  - total_ns is a positive integer and the five phase_ns entries
    (queue, decode, cache, search, encode) are non-negative integers;
  - |sum(phase_ns) - total_ns| / total_ns <= --max-phase-skew.

Whole-file checks:
  - at least --min-records records;
  - with --expect-reason=R, at least one record has that reason.

Usage:
  check_slowlog.py SLOW_LOG.jsonl [--min-records=N]
                   [--max-phase-skew=FRACTION] [--expect-reason=R ...]

Exits non-zero with a diagnostic on the first violated check.
"""

import argparse
import json
import re
import sys

REQUIRED_KEYS = (
    "ts_unix_ms",
    "reason",
    "trace_id",
    "sampled",
    "regime",
    "hierarchy",
    "metric",
    "k",
    "cache_hit",
    "found",
    "overloaded",
    "epoch",
    "queue_depth",
    "total_ns",
    "phase_ns",
)

PHASES = ("queue", "decode", "cache", "search", "encode")

TRACE_ID_RE = re.compile(r"^0x[0-9a-f]{1,16}$")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", help="path to the slow-query JSONL file")
    parser.add_argument("--min-records", type=int, default=1)
    parser.add_argument(
        "--max-phase-skew",
        type=float,
        default=0.05,
        help="largest tolerated |sum(phase_ns) - total_ns| / total_ns",
    )
    parser.add_argument(
        "--expect-reason",
        action="append",
        default=[],
        choices=["slow", "sampled"],
        help="at least one record must have this reason (repeatable)",
    )
    args = parser.parse_args()

    records = 0
    reasons_seen = set()
    worst_skew = 0.0
    with open(args.log) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"line {lineno}: not JSON ({err}): {line[:120]!r}")
                return 1
            if not isinstance(record, dict):
                print(f"line {lineno}: not a JSON object")
                return 1
            for key in REQUIRED_KEYS:
                if key not in record:
                    print(f"line {lineno}: missing key {key!r}")
                    return 1
            if record["reason"] not in ("slow", "sampled"):
                print(f"line {lineno}: unknown reason {record['reason']!r}")
                return 1
            if not TRACE_ID_RE.match(record["trace_id"]):
                print(f"line {lineno}: malformed trace_id "
                      f"{record['trace_id']!r}")
                return 1
            total = record["total_ns"]
            if not isinstance(total, int) or total <= 0:
                print(f"line {lineno}: total_ns {total!r} is not a positive "
                      "integer")
                return 1
            phases = record["phase_ns"]
            if not isinstance(phases, dict):
                print(f"line {lineno}: phase_ns is not an object")
                return 1
            for phase in PHASES:
                value = phases.get(phase)
                if not isinstance(value, int) or value < 0:
                    print(f"line {lineno}: phase_ns.{phase} {value!r} is not "
                          "a non-negative integer")
                    return 1
            phase_sum = sum(phases[p] for p in PHASES)
            skew = abs(phase_sum - total) / total
            worst_skew = max(worst_skew, skew)
            if skew > args.max_phase_skew:
                print(
                    f"line {lineno}: phase sum {phase_sum} vs total_ns "
                    f"{total} skews by {skew:.4f} "
                    f"(> {args.max_phase_skew})"
                )
                return 1
            reasons_seen.add(record["reason"])
            records += 1

    if records < args.min_records:
        print(f"only {records} records, want >= {args.min_records}")
        return 1
    for reason in args.expect_reason:
        if reason not in reasons_seen:
            print(f"no record with reason {reason!r} "
                  f"(saw {sorted(reasons_seen)})")
            return 1

    print(f"OK: {records} records, reasons {sorted(reasons_seen)}, "
          f"worst phase skew {worst_skew:.6f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
