#!/usr/bin/env bash
# Runs every benchmark binary in order, teeing combined output, and folds
# the per-bench measurement rows into a machine-readable baseline file.
#
#   scripts/run_benchmarks.sh [build_dir] [out_file] [baseline_json]
#
# Benchmarks emit one JSON Lines row per measurement (bench, dataset,
# threads, seconds) into HCD_BENCH_BASELINE; this script converts the rows
# to one JSON array (BENCH_baseline.json by default) so successive commits
# can be diffed mechanically.
#
# HCD_BENCH_SMALL=1 in the environment shrinks all datasets ~16x.
set -u

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"
BASELINE="${3:-BENCH_baseline.json}"

ROWS="$(mktemp)"
trap 'rm -f "$ROWS"' EXIT
export HCD_BENCH_BASELINE="$ROWS"

: > "$OUT"
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$OUT"
  "$b" 2>/dev/null | tee -a "$OUT"
  echo | tee -a "$OUT"
done

# End-to-end serving rows: drive the socket server over the same cached
# suite graphs the query-throughput bench used, with a deep pipeline
# window so the row measures sustained server QPS (not loopback RTT).
# The repeated (metric, k) workload keeps the result cache hot, which is
# the configuration the serve_bench baseline rows are meant to track.
CLI="$BUILD_DIR/tools/hcd_cli"
if [ -x "$CLI" ]; then
  for g in bench_data/*.bin; do
    [ -f "$g" ] || continue
    echo "===== serve-bench $(basename "$g") =====" | tee -a "$OUT"
    "$CLI" serve-bench "$g" --connections=8 --server-workers=8 \
      --queries=40000 --pipeline=32 2>/dev/null | tee -a "$OUT"
    echo | tee -a "$OUT"
  done

  # Element-hierarchy serving rows: the same cached graphs through the
  # truss regime of query-bench (build + freeze + ElementSearchIndex +
  # concurrent DensestAtLeast/CommunityOf workload). Emits
  # truss_query_bench_cli rows next to the core serving baselines.
  for g in bench_data/*.bin; do
    [ -f "$g" ] || continue
    echo "===== query-bench --hierarchy=truss $(basename "$g") =====" \
      | tee -a "$OUT"
    "$CLI" query-bench "$g" --hierarchy=truss --query-threads=8 \
      --queries=20000 2>/dev/null | tee -a "$OUT"
    echo | tee -a "$OUT"
  done
fi
echo "wrote $OUT"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$ROWS" "$BASELINE" <<'EOF'
import json, sys

rows = []
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if line:
            rows.append(json.loads(line))
with open(sys.argv[2], "w") as f:
    json.dump(rows, f, indent=1)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(rows)} measurements)")
EOF
else
  cp "$ROWS" "$BASELINE.jsonl"
  echo "python3 not found; wrote raw rows to $BASELINE.jsonl"
fi
