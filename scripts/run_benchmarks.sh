#!/usr/bin/env bash
# Runs every benchmark binary in order, teeing combined output.
#
#   scripts/run_benchmarks.sh [build_dir] [out_file]
#
# HCD_BENCH_SMALL=1 in the environment shrinks all datasets ~16x.
set -u

BUILD_DIR="${1:-build}"
OUT="${2:-bench_output.txt}"

: > "$OUT"
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$OUT"
  "$b" 2>/dev/null | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
