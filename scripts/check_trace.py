#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by hcd_cli --trace-out.

Checks that the file is strict JSON in the trace-event envelope, that every
event is a complete-span ("ph":"X") record with name/ts/dur/tid, and
optionally that the trace covers enough distinct subsystems (the dotted
prefix of the span name) and thread ids, and contains required span names.

Usage:
  check_trace.py TRACE.json [--min-subsystems=N] [--min-tids=N]
                 [--require=SPAN_NAME ...]

Exits non-zero with a diagnostic on the first violated check.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument("--min-subsystems", type=int, default=0)
    parser.add_argument("--min-tids", type=int, default=0)
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        help="span name that must appear at least once (repeatable)",
    )
    args = parser.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)

    if doc.get("displayTimeUnit") != "ns":
        print(f"displayTimeUnit is {doc.get('displayTimeUnit')!r}, want 'ns'")
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("traceEvents missing or empty")
        return 1

    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                print(f"event {i} is missing {key!r}: {event}")
                return 1
        if event["ph"] != "X":
            print(f"event {i} has ph={event['ph']!r}, want 'X'")
            return 1
        if event["ts"] < 0 or event["dur"] < 0:
            print(f"event {i} has negative ts/dur: {event}")
            return 1

    names = {e["name"] for e in events}
    subsystems = {n.split(".")[0] for n in names}
    tids = {e["tid"] for e in events}

    if len(subsystems) < args.min_subsystems:
        print(
            f"only {len(subsystems)} subsystems {sorted(subsystems)}, "
            f"want >= {args.min_subsystems}"
        )
        return 1
    if len(tids) < args.min_tids:
        print(f"only {len(tids)} thread ids {sorted(tids)}, want >= {args.min_tids}")
        return 1
    for required in args.require:
        if required not in names:
            print(f"required span {required!r} not found in {sorted(names)}")
            return 1

    print(
        f"OK: {len(events)} events, {len(subsystems)} subsystems "
        f"{sorted(subsystems)}, {len(tids)} thread ids"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
