#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by hcd_cli --trace-out.

Checks that the file is strict JSON in the trace-event envelope, that every
event is a complete-span ("ph":"X") record with name/ts/dur/tid, and
optionally that the trace covers enough distinct subsystems (the dotted
prefix of the span name) and thread ids, and contains required span names.

With --pair-trace the script additionally asserts that a client trace and
a server trace describe the same requests: the wire trace ids carried by
the client-side spans (--pair-client, default "client.query") must
intersect the ids carried by the server-side spans (--pair-server,
default "serve.request") across the two files, in at least
--pair-min-shared requests. Both files contribute to both sides, so the
flag works whether the client and server ran in one process or two.

Usage:
  check_trace.py TRACE.json [--min-subsystems=N] [--min-tids=N]
                 [--require=SPAN_NAME ...]
                 [--pair-trace=OTHER.json] [--pair-client=NAME]
                 [--pair-server=NAME] [--pair-min-shared=N]

Exits non-zero with a diagnostic on the first violated check.
"""

import argparse
import json
import sys


def load_events(path: str):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    return doc, events


def span_trace_ids(events, span_name: str):
    """The trace_id args of every event named `span_name` (as strings)."""
    ids = set()
    for event in events:
        if event.get("name") != span_name:
            continue
        trace_id = event.get("args", {}).get("trace_id")
        if trace_id is not None:
            ids.add(str(trace_id))
    ids.discard("0x0")  # an untraced request's id pairs with nothing
    return ids


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument("--min-subsystems", type=int, default=0)
    parser.add_argument("--min-tids", type=int, default=0)
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        help="span name that must appear at least once (repeatable)",
    )
    parser.add_argument(
        "--pair-trace",
        default=None,
        metavar="OTHER.json",
        help="second trace; client and server spans across the two files "
        "must share wire trace ids",
    )
    parser.add_argument("--pair-client", default="client.query")
    parser.add_argument("--pair-server", default="serve.request")
    parser.add_argument("--pair-min-shared", type=int, default=1)
    args = parser.parse_args()

    doc, events = load_events(args.trace)

    if doc.get("displayTimeUnit") != "ns":
        print(f"displayTimeUnit is {doc.get('displayTimeUnit')!r}, want 'ns'")
        return 1
    if not isinstance(events, list) or not events:
        print("traceEvents missing or empty")
        return 1

    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in event:
                print(f"event {i} is missing {key!r}: {event}")
                return 1
        if event["ph"] != "X":
            print(f"event {i} has ph={event['ph']!r}, want 'X'")
            return 1
        if event["ts"] < 0 or event["dur"] < 0:
            print(f"event {i} has negative ts/dur: {event}")
            return 1

    names = {e["name"] for e in events}
    subsystems = {n.split(".")[0] for n in names}
    tids = {e["tid"] for e in events}

    if len(subsystems) < args.min_subsystems:
        print(
            f"only {len(subsystems)} subsystems {sorted(subsystems)}, "
            f"want >= {args.min_subsystems}"
        )
        return 1
    if len(tids) < args.min_tids:
        print(f"only {len(tids)} thread ids {sorted(tids)}, want >= {args.min_tids}")
        return 1
    for required in args.require:
        if required not in names:
            print(f"required span {required!r} not found in {sorted(names)}")
            return 1

    if args.pair_trace is not None:
        _, other = load_events(args.pair_trace)
        if not isinstance(other, list):
            print(f"{args.pair_trace}: traceEvents missing")
            return 1
        combined = events + other
        client_ids = span_trace_ids(combined, args.pair_client)
        server_ids = span_trace_ids(combined, args.pair_server)
        if not client_ids:
            print(f"no {args.pair_client!r} spans carry a trace_id arg")
            return 1
        if not server_ids:
            print(f"no {args.pair_server!r} spans carry a trace_id arg")
            return 1
        shared = client_ids & server_ids
        if len(shared) < args.pair_min_shared:
            print(
                f"only {len(shared)} trace ids shared between "
                f"{args.pair_client!r} ({len(client_ids)} ids) and "
                f"{args.pair_server!r} ({len(server_ids)} ids), "
                f"want >= {args.pair_min_shared}"
            )
            return 1
        print(
            f"paired: {len(shared)} shared trace ids between "
            f"{args.pair_client} and {args.pair_server}"
        )

    print(
        f"OK: {len(events)} events, {len(subsystems)} subsystems "
        f"{sorted(subsystems)}, {len(tids)} thread ids"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
