// Tests for the metrics registry: instrument identity, histogram
// bucketing, quantile estimation, concurrent observation, and both render
// formats.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

using hcd::testing::JsonValue;
using hcd::testing::ParseJson;

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.Value(), 3.25);
  g.Set(-1e300);
  EXPECT_EQ(g.Value(), -1e300);
}

TEST(Histogram, BucketBoundsArePowersOfTwoMicroseconds) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), 1024e-6);
}

TEST(Histogram, ObservationsLandInTheFirstCoveringBucket) {
  Histogram h;
  h.Observe(0.5e-6);   // <= 1 us -> bucket 0
  h.Observe(1e-6);     // boundary is inclusive -> bucket 0
  h.Observe(1.5e-6);   // bucket 1
  h.Observe(3e-3);     // 3 ms -> first bound >= is 4096 us = bucket 12
  h.Observe(1e9);      // beyond every finite bound -> overflow
  h.Observe(-1.0);     // clamps to zero -> bucket 0
  EXPECT_EQ(h.BucketCount(0), 3u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(12), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::kNumFiniteBuckets), 1u);
  EXPECT_EQ(h.TotalCount(), 6u);
}

TEST(Histogram, SumAccumulatesAtNanosecondResolution) {
  Histogram h;
  h.Observe(1.5e-6);
  h.Observe(2.5e-6);
  EXPECT_NEAR(h.Sum(), 4e-6, 1e-9);
}

TEST(Histogram, ConcurrentObservesLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1e-6 * (i % 50));
    });
  }
  for (std::thread& worker : pool) worker.join();
  EXPECT_EQ(h.TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// The log bucket a value of `seconds` lands in (first bound >= value),
// kNumFiniteBuckets for overflow — the granularity at which the estimator
// is allowed to disagree with an exact quantile.
size_t BucketIndexOf(double seconds) {
  for (size_t i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
    if (seconds <= Histogram::BucketBound(i)) return i;
  }
  return Histogram::kNumFiniteBuckets;
}

TEST(HistogramQuantile, EmptyHistogramAnswersZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesWithinItsBounds) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Observe(3e-6);  // all in (2us, 4us]
  for (const double q : {0.01, 0.5, 0.99, 1.0}) {
    const double estimate = h.Quantile(q);
    EXPECT_GT(estimate, 2e-6) << "q=" << q;
    EXPECT_LE(estimate, 4e-6) << "q=" << q;
  }
  // Interpolation is monotone in q within the bucket.
  EXPECT_LT(h.Quantile(0.1), h.Quantile(0.9));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4e-6);  // full rank reaches the bound
}

TEST(HistogramQuantile, DegenerateQClampsToTheExtremes) {
  Histogram h;
  h.Observe(0.5e-6);
  h.Observe(100e-6);
  // q <= 0 (and NaN) answer the minimum rank; q > 1 clamps to the max.
  EXPECT_LE(h.Quantile(0.0), 1e-6);
  EXPECT_LE(h.Quantile(-3.0), 1e-6);
  EXPECT_GT(h.Quantile(7.0), 64e-6);
}

TEST(HistogramQuantile, OverflowRankAnswersTheLargestFiniteBound) {
  Histogram h;
  h.Observe(1e-6);
  h.Observe(1e9);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.Quantile(1.0),
                   Histogram::BucketBound(Histogram::kNumFiniteBuckets - 1));
}

// The estimator against ground truth: Quantile must land in the same log
// bucket as the exact nearest-rank value computed by the benchmark
// LatencyRecorder from the identical samples. (Bit-equality is impossible
// — the histogram only keeps bucket counts — but "within one bucket" is
// the precision kStats promises.)
TEST(HistogramQuantile, AgreesWithLatencyRecorderWithinOneBucket) {
  Histogram h;
  bench::LatencyRecorder exact;
  Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform-ish spread over 1us..~100ms, the serving latency range.
    const double us =
        static_cast<double>(1 + rng.Uniform(100)) *
        static_cast<double>(uint64_t{1} << rng.Uniform(11));
    const double seconds = us * 1e-6;
    h.Observe(seconds);
    exact.Record(seconds);
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double estimate = h.Quantile(q);
    const double truth = exact.Quantile(q);
    EXPECT_EQ(BucketIndexOf(estimate), BucketIndexOf(truth))
        << "q=" << q << " estimate=" << estimate << " truth=" << truth;
    // And the estimate never leaves the truth's bucket bounds.
    const size_t bucket = BucketIndexOf(truth);
    const double lower =
        bucket == 0 ? 0.0 : Histogram::BucketBound(bucket - 1);
    EXPECT_GT(estimate, lower) << "q=" << q;
    EXPECT_LE(estimate, Histogram::BucketBound(bucket)) << "q=" << q;
  }
}

TEST(MetricsRegistry, SameNameAndLabelsReturnTheSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "help");
  Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("requests_total", "", {{"code", "500"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled,
            registry.GetCounter("requests_total", "", {{"code", "500"}}));
}

TEST(MetricsRegistryDeathTest, TypeConflictAborts) {
  MetricsRegistry registry;
  registry.GetCounter("shape_shifter");
  EXPECT_DEATH(registry.GetHistogram("shape_shifter"),
               "different type");
}

TEST(MetricsRegistry, InstallPublishesAndUninstallClears) {
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
  MetricsRegistry registry;
  registry.Install();
  EXPECT_EQ(MetricsRegistry::Current(), &registry);
  registry.Uninstall();
  EXPECT_EQ(MetricsRegistry::Current(), nullptr);
}

TEST(MetricsRegistry, PrometheusRendersAllKindsWithHelpAndType) {
  MetricsRegistry registry;
  registry.GetCounter("jobs_total", "Jobs started.")->Increment(3);
  registry.GetGauge("queue_depth", "Current queue depth.")->Set(1.5);
  registry.GetHistogram("latency_seconds", "Latency.")->Observe(1.5e-6);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP jobs_total Jobs started.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jobs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("jobs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos);
  // 1.5 us falls past the 1 us bound: cumulative counts are 0 then 1, the
  // +Inf bucket equals _count.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1e-06\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1\n"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry
      .GetCounter("tricky_total", "",
                  {{"path", "a\\b\"c\nd"}})
      ->Increment();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("tricky_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulativeAcrossLabels) {
  MetricsRegistry registry;
  Histogram* fast =
      registry.GetHistogram("serve_seconds", "", {{"metric", "fast"}});
  Histogram* slow =
      registry.GetHistogram("serve_seconds", "", {{"metric", "slow"}});
  for (int i = 0; i < 5; ++i) fast->Observe(0.5e-6);
  for (int i = 0; i < 2; ++i) slow->Observe(3e-6);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(
      text.find("serve_seconds_bucket{metric=\"fast\",le=\"+Inf\"} 5\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("serve_seconds_bucket{metric=\"slow\",le=\"+Inf\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find("serve_seconds_count{metric=\"fast\"} 5\n"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonRendersAsStrictJson) {
  MetricsRegistry registry;
  registry.GetCounter("jobs_total", "", {{"kind", "quo\"ted"}})->Increment(2);
  registry.GetGauge("depth")->Set(0.25);
  Histogram* h = registry.GetHistogram("lat_seconds");
  h->Observe(0.5e-6);
  h->Observe(1e9);  // overflow bucket renders with a null bound

  JsonValue doc;
  ASSERT_TRUE(ParseJson(registry.RenderJson(), &doc));
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 3u);

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const JsonValue& m : metrics->array) {
    const std::string& name = m.Find("name")->str;
    if (name == "jobs_total") {
      saw_counter = true;
      EXPECT_EQ(m.Find("type")->str, "counter");
      EXPECT_EQ(m.Find("value")->number, 2.0);
      EXPECT_EQ(m.Find("labels")->Find("kind")->str, "quo\"ted");
    } else if (name == "depth") {
      saw_gauge = true;
      EXPECT_EQ(m.Find("value")->number, 0.25);
    } else if (name == "lat_seconds") {
      saw_hist = true;
      EXPECT_EQ(m.Find("count")->number, 2.0);
      const JsonValue* buckets = m.Find("buckets");
      ASSERT_NE(buckets, nullptr);
      ASSERT_EQ(buckets->array.size(), 2u);  // only non-empty buckets
      EXPECT_EQ(buckets->array[0].array[0].number, 1e-6);
      EXPECT_EQ(buckets->array[0].array[1].number, 1.0);
      EXPECT_EQ(buckets->array[1].array[0].type, JsonValue::Type::kNull);
      EXPECT_EQ(buckets->array[1].array[1].number, 1.0);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(MetricsRegistry, LookupCountTracksEveryResolution) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.lookup_count(), 0u);
  Counter* counter = registry.GetCounter("reqs_total", "requests");
  EXPECT_EQ(registry.lookup_count(), 1u);
  // Re-resolving the same instrument is still a lookup — the point of the
  // counter is to catch hot paths that resolve per call instead of once.
  EXPECT_EQ(registry.GetCounter("reqs_total", "requests"), counter);
  EXPECT_EQ(registry.lookup_count(), 2u);
  registry.GetGauge("depth", "queue depth");
  registry.GetHistogram("lat_seconds", "latency", {{"metric", "x"}});
  EXPECT_EQ(registry.lookup_count(), 4u);
  // Using an instrument is free: no lookups from the serve path.
  counter->Increment();
  registry.RenderPrometheus();
  EXPECT_EQ(registry.lookup_count(), 4u);
}

TEST(MetricsRegistry, EmptyRegistryRendersEmptyDocuments) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RenderPrometheus(), "");
  JsonValue doc;
  ASSERT_TRUE(ParseJson(registry.RenderJson(), &doc));
  EXPECT_TRUE(doc.Find("metrics")->array.empty());
}

}  // namespace
}  // namespace hcd
