// Regression and property tests for the hardened, parallel ingest path:
// self-loop/duplicate normalization in GraphBuilder::Build, long-line and
// error handling in the text loader, corrupt-file fixtures for the binary
// loader, full-device save failures, round-trips, and thread-count
// equivalence of the parallel loader/builder.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "engine/engine.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/ingest.h"
#include "graph/io.h"
#include "parallel/omp_utils.h"

namespace hcd {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f), content.size());
  ASSERT_EQ(std::fclose(f), 0);
}

/// Assembles a binary CSR file byte-for-byte (graph/binary_format.h) so
/// each corruption can be planted precisely.
std::string BinaryFile(uint64_t n, uint64_t adj_size,
                       const std::vector<uint64_t>& offsets,
                       const std::vector<uint32_t>& adj) {
  std::string out;
  const uint64_t magic = 0x48434447524a5031ULL;
  const uint32_t version = 1;
  auto append = [&out](const void* p, size_t size) {
    out.append(static_cast<const char*>(p), size);
  };
  append(&magic, 8);
  append(&version, 4);
  append(&n, 8);
  append(&adj_size, 8);
  append(offsets.data(), offsets.size() * 8);
  append(adj.data(), adj.size() * 4);
  return out;
}

/// True iff both graphs have byte-identical CSR arrays (offsets + adj),
/// the equivalence the parallel ingest path promises across thread counts.
::testing::AssertionResult SameCsr(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices()) {
    return ::testing::AssertionFailure()
           << "n " << a.NumVertices() << " vs " << b.NumVertices();
  }
  for (VertexId v = 0; v <= a.NumVertices(); ++v) {
    if (v < a.NumVertices() && a.AdjOffset(v) != b.AdjOffset(v)) {
      return ::testing::AssertionFailure() << "offset mismatch at " << v;
    }
  }
  auto aa = a.AdjArray();
  auto ba = b.AdjArray();
  if (aa.size() != ba.size() ||
      !std::equal(aa.begin(), aa.end(), ba.begin())) {
    return ::testing::AssertionFailure() << "adjacency arrays differ";
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Satellite 1: self-loops must never survive Build, even via the bulk path.

TEST(Builder, BulkBuildDropsSelfLoopsAndCounts) {
  EdgeList edges = {{0, 1}, {2, 2}, {1, 0}, {2, 2}, {1, 2}};
  GraphBuilder b;
  b.AddEdgesUnfiltered(std::move(edges));
  BuildStats stats;
  Graph g = std::move(b).Build(3, &stats);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_FALSE(g.HasEdge(2, 2));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId u : g.Neighbors(v)) EXPECT_NE(u, v);
  }
  EXPECT_EQ(stats.self_loops_dropped, 2u);
  EXPECT_EQ(stats.duplicates_dropped, 1u);
}

TEST(Ingest, TextSelfLoopDroppedButVertexKept) {
  const std::string path = TempPath("ingest_selfloop.txt");
  WriteFile(path, "5 5\n1 2\n");
  Graph g;
  IngestStats stats;
  ASSERT_TRUE(IngestEdgeListText(path, {}, &g, &stats).ok());
  // Canonical numbering: raw ids {1,2,5} -> {0,1,2}. The self-loop's
  // vertex exists but has no edges.
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Satellite 2: lines longer than any fixed buffer must parse as ONE record.

TEST(Ingest, TextHandlesLongLines) {
  const std::string path = TempPath("ingest_longline.txt");
  std::string content = "# ";
  content.append(900, 'x');  // long comment line
  content += "\n7";
  content.append(1500, ' ');  // an edge line far beyond 512 bytes
  content += "9\n1 2\n";
  WriteFile(path, content);
  Graph g;
  ASSERT_TRUE(LoadEdgeListText(path, &g).ok());
  // Raw ids {1,2,7,9}: exactly two edges, no bogus records from line
  // splitting (the old fgets(512) loader split both long lines).
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(2, 3));  // 7-9
  EXPECT_TRUE(g.HasEdge(0, 1));  // 1-2
  std::remove(path.c_str());
}

TEST(Ingest, TextMalformedLineReportsLineNumber) {
  const std::string path = TempPath("ingest_badline.txt");
  WriteFile(path, "1 2\n\n# comment\nnot numbers\n");
  Graph g;
  Status s = LoadEdgeListText(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find(":4:"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(Ingest, TextRejectsOverflowingIds) {
  const std::string path = TempPath("ingest_overflow.txt");
  WriteFile(path, "1 99999999999999999999999\n");
  Graph g;
  Status s = LoadEdgeListText(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("overflows"), std::string::npos) << s.message();
  std::remove(path.c_str());
}

TEST(Ingest, TextAcceptsCrLfAndTrailingColumns) {
  const std::string path = TempPath("ingest_crlf.txt");
  WriteFile(path, "1 2 0.75 extra\r\n3 4\r\n\r\n");
  Graph g;
  ASSERT_TRUE(LoadEdgeListText(path, &g).ok());
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(Ingest, TextCanonicalOrderIsAscendingRawId) {
  const std::string path = TempPath("ingest_order.txt");
  WriteFile(path, "30 10\n20 30\n");
  Graph g;
  ASSERT_TRUE(LoadEdgeListText(path, &g).ok());
  // {10,20,30} -> {0,1,2} regardless of appearance order.
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 1));
  std::remove(path.c_str());
}

TEST(Ingest, StatsCounters) {
  const std::string path = TempPath("ingest_stats.txt");
  WriteFile(path, "# header\n1 2\n2 1\n3 3\n1 2\n");
  Graph g;
  IngestStats stats;
  ASSERT_TRUE(IngestEdgeListText(path, {}, &g, &stats).ok());
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.edges_parsed, 4u);
  EXPECT_EQ(stats.vertices, 3u);
  EXPECT_EQ(stats.self_loops_dropped, 1u);
  EXPECT_EQ(stats.duplicates_dropped, 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tentpole equivalence: parallel ingest == serial ingest, byte for byte.

TEST(Ingest, TextLoadIdenticalAcrossThreadCounts) {
  Graph source = ErdosRenyiGnm(3000, 9000, 11);
  const std::string path = TempPath("ingest_equiv.txt");
  ASSERT_TRUE(SaveEdgeListText(source, path).ok());
  Graph serial;
  IngestOptions serial_options;
  serial_options.io_threads = 1;
  ASSERT_TRUE(IngestEdgeListText(path, serial_options, &serial).ok());
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE(threads);
    Graph parallel;
    IngestOptions options;
    options.io_threads = threads;
    ASSERT_TRUE(IngestEdgeListText(path, options, &parallel).ok());
    EXPECT_TRUE(SameCsr(serial, parallel));
  }
  std::remove(path.c_str());
}

TEST(Builder, BuildIdenticalAcrossThreadCounts) {
  // Random multi-edge soup with self-loops, duplicates and reversals.
  Rng rng(42);
  EdgeList edges;
  for (int i = 0; i < 50000; ++i) {
    edges.emplace_back(static_cast<VertexId>(rng.Uniform(2000)),
                       static_cast<VertexId>(rng.Uniform(2000)));
  }
  auto build = [&edges](int threads) {
    ThreadCountGuard guard(threads);
    GraphBuilder b;
    EdgeList copy = edges;
    b.AddEdgesUnfiltered(std::move(copy));
    return std::move(b).Build(2100);
  };
  Graph serial = build(1);
  for (int threads : {4, 8}) {
    SCOPED_TRACE(threads);
    Graph parallel = build(threads);
    EXPECT_TRUE(SameCsr(serial, parallel));
  }
}

// ---------------------------------------------------------------------------
// Round-trip property tests (isolated vertices, duplicates, reversals).

TEST(Ingest, BinaryRoundTripExactWithIsolatedVertices) {
  Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(trial);
    EdgeList edges;
    for (int i = 0; i < 800; ++i) {
      edges.emplace_back(static_cast<VertexId>(rng.Uniform(300)),
                         static_cast<VertexId>(rng.Uniform(300)));
    }
    // num_vertices 350 leaves a tail of isolated vertices.
    Graph g = GraphFromEdges(edges, 350);
    const std::string path = TempPath("ingest_bin_roundtrip.bin");
    ASSERT_TRUE(SaveBinary(g, path).ok());
    Graph loaded;
    ASSERT_TRUE(LoadBinary(path, &loaded).ok());
    EXPECT_TRUE(SameCsr(g, loaded));
    std::remove(path.c_str());
  }
}

TEST(Ingest, TextRoundTripIsIdempotent) {
  Rng rng(9);
  EdgeList edges;
  for (int i = 0; i < 1200; ++i) {
    // Sparse non-contiguous raw ids, plus duplicates and reversals.
    VertexId u = static_cast<VertexId>(rng.Uniform(400) * 7);
    VertexId v = static_cast<VertexId>(rng.Uniform(400) * 7);
    edges.emplace_back(u, v);
    if (i % 5 == 0) edges.emplace_back(v, u);
  }
  Graph g0 = GraphFromEdges(edges);
  const std::string path = TempPath("ingest_txt_roundtrip.txt");
  ASSERT_TRUE(SaveEdgeListText(g0, path).ok());
  Graph g1;
  ASSERT_TRUE(LoadEdgeListText(path, &g1).ok());
  // Reload preserves structure (degree multiset and edge count)...
  EXPECT_EQ(g1.NumEdges(), g0.NumEdges());
  std::multiset<VertexId> d0;
  std::multiset<VertexId> d1;
  for (VertexId v = 0; v < g0.NumVertices(); ++v) {
    if (g0.Degree(v) > 0) d0.insert(g0.Degree(v));
  }
  for (VertexId v = 0; v < g1.NumVertices(); ++v) {
    if (g1.Degree(v) > 0) d1.insert(g1.Degree(v));
  }
  EXPECT_EQ(d0, d1);
  // ...and once ids are canonical, a second round-trip is exact.
  ASSERT_TRUE(SaveEdgeListText(g1, path).ok());
  Graph g2;
  ASSERT_TRUE(LoadEdgeListText(path, &g2).ok());
  EXPECT_TRUE(SameCsr(g1, g2));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Satellite 3: corrupt binary fixtures fail with Corruption, never UB.

TEST(IngestBinaryFixture, TruncatedHeader) {
  const std::string path = TempPath("corrupt_truncated.bin");
  WriteFile(path, std::string("HCDGRJP1\x01", 10));
  Graph g;
  EXPECT_EQ(LoadBinary(path, &g).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, AbsurdVertexCountRejectedBeforeAllocation) {
  // n = 10^15 must be rejected from the header alone (32-bit id space).
  const std::string path = TempPath("corrupt_absurd_n.bin");
  WriteFile(path, BinaryFile(1'000'000'000'000'000ULL, 0, {}, {}));
  Graph g;
  Status s = LoadBinary(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, OversizedHeaderVsFileSizeRejected) {
  // n = 4e9 fits 32 bits but implies a 32 GB offsets array; the file-size
  // cross-check must refuse before any allocation happens.
  const std::string path = TempPath("corrupt_oversized.bin");
  WriteFile(path, BinaryFile(4'000'000'000ULL, 2, {0, 1, 2}, {1, 0}));
  Graph g;
  Status s = LoadBinary(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("does not match"), std::string::npos)
      << s.message();
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, NonMonotoneOffsets) {
  const std::string path = TempPath("corrupt_nonmonotone.bin");
  WriteFile(path, BinaryFile(2, 2, {0, 3, 2}, {1, 0}));
  Graph g;
  Status s = LoadBinary(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("non-monotone"), std::string::npos)
      << s.message();
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, OffsetsNotStartingAtZero) {
  const std::string path = TempPath("corrupt_front.bin");
  WriteFile(path, BinaryFile(2, 2, {1, 1, 2}, {1, 0}));
  Graph g;
  EXPECT_EQ(LoadBinary(path, &g).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, NeighborIdOutOfRange) {
  const std::string path = TempPath("corrupt_oob_neighbor.bin");
  WriteFile(path, BinaryFile(2, 2, {0, 1, 2}, {5, 0}));
  Graph g;
  Status s = LoadBinary(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("invalid adjacency"), std::string::npos)
      << s.message();
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, SelfLoopInAdjacency) {
  const std::string path = TempPath("corrupt_selfloop.bin");
  WriteFile(path, BinaryFile(2, 2, {0, 1, 2}, {0, 1}));
  Graph g;
  EXPECT_EQ(LoadBinary(path, &g).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, UnsortedAdjacency) {
  const std::string path = TempPath("corrupt_unsorted.bin");
  WriteFile(path, BinaryFile(3, 4, {0, 2, 3, 4}, {2, 1, 0, 0}));
  Graph g;
  EXPECT_EQ(LoadBinary(path, &g).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, OddAdjacencySize) {
  const std::string path = TempPath("corrupt_odd.bin");
  WriteFile(path, BinaryFile(1, 1, {0, 1}, {0}));
  Graph g;
  Status s = LoadBinary(path, &g);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("odd adjacency"), std::string::npos)
      << s.message();
  std::remove(path.c_str());
}

TEST(IngestBinaryFixture, TrailingGarbage) {
  Graph g = CompleteGraph(4);
  const std::string path = TempPath("corrupt_trailing.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fwrite("XXXX", 1, 4, f);
  std::fclose(f);
  Graph loaded;
  EXPECT_EQ(LoadBinary(path, &loaded).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Satellite 4: save must surface write failures, not return Ok over a
// truncated file. /dev/full fails every write/flush with ENOSPC.

TEST(Ingest, SaveSurfacesFullDeviceAsIoError) {
  std::FILE* probe = std::fopen("/dev/full", "w");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
  std::fclose(probe);
  Graph g = CompleteGraph(32);
  Status s = SaveBinary(g, "/dev/full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  s = SaveEdgeListText(g, "/dev/full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Telemetry plumbing: engine loads report the ingest sub-stages.

TEST(Ingest, EngineLoadRecordsIngestStages) {
  Graph g = ErdosRenyiGnm(200, 600, 3);
  const std::string text_path = TempPath("ingest_engine.txt");
  const std::string bin_path = TempPath("ingest_engine.bin");
  ASSERT_TRUE(SaveEdgeListText(g, text_path).ok());
  ASSERT_TRUE(SaveBinary(g, bin_path).ok());

  std::unique_ptr<HcdEngine> engine;
  ASSERT_TRUE(HcdEngine::Load(text_path, {.io_threads = 2}, &engine).ok());
  for (const char* stage :
       {"load.read", "load.parse", "load.remap", "load.build", "load"}) {
    EXPECT_EQ(engine->telemetry().CountStage(stage), 1u) << stage;
  }

  ASSERT_TRUE(HcdEngine::Load(bin_path, {}, &engine).ok());
  for (const char* stage : {"load.read", "load.validate", "load"}) {
    EXPECT_EQ(engine->telemetry().CountStage(stage), 1u) << stage;
  }
  EXPECT_EQ(engine->graph().NumEdges(), g.NumEdges());
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace hcd
