#include <gtest/gtest.h>

#include "search/metrics.h"

namespace hcd {
namespace {

TEST(Metrics, TypeClassification) {
  EXPECT_FALSE(IsTypeB(Metric::kAverageDegree));
  EXPECT_FALSE(IsTypeB(Metric::kInternalDensity));
  EXPECT_FALSE(IsTypeB(Metric::kCutRatio));
  EXPECT_FALSE(IsTypeB(Metric::kConductance));
  EXPECT_FALSE(IsTypeB(Metric::kModularity));
  EXPECT_TRUE(IsTypeB(Metric::kClusteringCoefficient));
}

TEST(Metrics, Names) {
  EXPECT_STREQ(MetricName(Metric::kAverageDegree), "average-degree");
  EXPECT_STREQ(MetricName(Metric::kClusteringCoefficient),
               "clustering-coefficient");
}

TEST(Metrics, AverageDegree) {
  // Triangle inside a 10-vertex, 20-edge graph.
  PrimaryValues pv{.n_s = 3, .edges2 = 6, .boundary = 2};
  GraphGlobals g{10, 20};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kAverageDegree, pv, g), 2.0);
}

TEST(Metrics, InternalDensity) {
  PrimaryValues pv{.n_s = 4, .edges2 = 12};  // 6 edges on 4 vertices: clique
  GraphGlobals g{10, 20};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kInternalDensity, pv, g), 1.0);
}

TEST(Metrics, CutRatio) {
  PrimaryValues pv{.n_s = 4, .edges2 = 12, .boundary = 6};
  GraphGlobals g{10, 20};
  // 1 - 6 / (4 * 6)
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kCutRatio, pv, g), 0.75);
}

TEST(Metrics, CutRatioWholeGraphIsOne) {
  PrimaryValues pv{.n_s = 10, .edges2 = 40, .boundary = 0};
  GraphGlobals g{10, 20};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kCutRatio, pv, g), 1.0);
}

TEST(Metrics, Conductance) {
  PrimaryValues pv{.n_s = 4, .edges2 = 12, .boundary = 4};
  GraphGlobals g{10, 20};
  // 1 - 4 / (12 + 4)
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kConductance, pv, g), 0.75);
}

TEST(Metrics, ModularityTwoCommunitySplit) {
  // Graph: two triangles joined by one edge. m = 7. S = one triangle:
  // m_in = 3, b = 1, m_out = 3.
  PrimaryValues pv{.n_s = 3, .edges2 = 6, .boundary = 1};
  GraphGlobals g{6, 7};
  const double d_in = 7.0 / 14.0;
  const double expected = 3.0 / 7.0 - d_in * d_in + 3.0 / 7.0 - d_in * d_in;
  EXPECT_NEAR(EvaluateMetric(Metric::kModularity, pv, g), expected, 1e-12);
}

TEST(Metrics, ClusteringCoefficient) {
  // K4: 4 triangles, 12 wedges -> 3*4/12 = 1.
  PrimaryValues pv{.n_s = 4, .edges2 = 12, .boundary = 0, .triangles = 4,
                   .triplets = 12};
  GraphGlobals g{4, 6};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kClusteringCoefficient, pv, g), 1.0);
}

TEST(Metrics, TypeClassificationOfExtendedMetrics) {
  EXPECT_FALSE(IsTypeB(Metric::kExpansion));
  EXPECT_FALSE(IsTypeB(Metric::kSeparability));
  EXPECT_TRUE(IsTypeB(Metric::kTriangleDensity));
}

TEST(Metrics, Expansion) {
  PrimaryValues pv{.n_s = 4, .edges2 = 12, .boundary = 4};
  GraphGlobals g{10, 20};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kExpansion, pv, g), 0.5);
  PrimaryValues isolated{.n_s = 4, .edges2 = 12, .boundary = 0};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kExpansion, isolated, g), 1.0);
}

TEST(Metrics, Separability) {
  PrimaryValues pv{.n_s = 4, .edges2 = 12, .boundary = 2};  // 6 in, 2 out
  GraphGlobals g{10, 20};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kSeparability, pv, g), 0.75);
}

TEST(Metrics, TriangleDensity) {
  // K4: 4 triangles out of C(4,3) = 4 triples.
  PrimaryValues pv{.n_s = 4, .edges2 = 12, .triangles = 4, .triplets = 12};
  GraphGlobals g{4, 6};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kTriangleDensity, pv, g), 1.0);
  PrimaryValues pair{.n_s = 2, .edges2 = 2};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kTriangleDensity, pair, g), 0.0);
}

TEST(Metrics, DegenerateDenominators) {
  GraphGlobals g{10, 20};
  // Empty subgraph: every ratio's denominator is 0, every metric scores 0.
  PrimaryValues empty;
  for (Metric m : kAllMetrics) {
    EXPECT_DOUBLE_EQ(EvaluateMetric(m, empty, g), 0.0) << MetricName(m);
  }
  PrimaryValues lone{.n_s = 1};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kConductance, lone, g), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kInternalDensity, lone, g), 0.0);
}

TEST(Metrics, TripletFreeSubgraphScoresZero) {
  // A single edge has no wedges, so both triangle metrics divide by a zero
  // triplet count.
  GraphGlobals g{10, 20};
  PrimaryValues edge{.n_s = 2, .edges2 = 2, .boundary = 4};
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kClusteringCoefficient, edge, g),
                   0.0);
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kTriangleDensity, edge, g), 0.0);
}

TEST(Metrics, ParseAndNameRoundTrip) {
  for (Metric m : kAllMetrics) {
    Metric parsed;
    ASSERT_TRUE(ParseMetric(MetricName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  Metric untouched = Metric::kConductance;
  EXPECT_FALSE(ParseMetric("average_degree", &untouched));  // underscore typo
  EXPECT_FALSE(ParseMetric("", &untouched));
  EXPECT_EQ(untouched, Metric::kConductance);
}

}  // namespace
}  // namespace hcd
