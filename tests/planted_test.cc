#include <gtest/gtest.h>

#include <string>

#include "core/core_decomposition.h"
#include "core/naive.h"
#include "graph/generators.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/validate.h"

namespace hcd {
namespace {

/// Counts the nodes of a spec tree and the expected shell total.
void SpecStats(const CoreSpec& spec, uint32_t* nodes, uint64_t* vertices) {
  ++*nodes;
  *vertices += spec.shell_size;
  for (const CoreSpec& child : spec.children) {
    SpecStats(child, nodes, vertices);
  }
}

/// Recursively checks that `forest` contains, under `parent_node`, exactly
/// one node matching `spec` (level and shell size), with matching subtree.
void CheckSpecSubtree(const HcdForest& forest, const CoreSpec& spec,
                      TreeNodeId node, TreeNodeId expected_parent) {
  ASSERT_NE(node, kInvalidNode);
  EXPECT_EQ(forest.Level(node), spec.level);
  EXPECT_EQ(forest.Vertices(node).size(), spec.shell_size);
  EXPECT_EQ(forest.Parent(node), expected_parent);
  ASSERT_EQ(forest.Children(node).size(), spec.children.size());
  // Children of a spec node are built in order and occupy increasing vertex
  // id ranges; match them by their smallest contained vertex.
  std::vector<TreeNodeId> children(forest.Children(node).begin(),
                                   forest.Children(node).end());
  std::sort(children.begin(), children.end(),
            [&forest](TreeNodeId a, TreeNodeId b) {
              VertexId ma = *std::min_element(forest.Vertices(a).begin(),
                                              forest.Vertices(a).end());
              VertexId mb = *std::min_element(forest.Vertices(b).begin(),
                                              forest.Vertices(b).end());
              return ma < mb;
            });
  // Spec children were materialized depth-first in order, before the shell,
  // so sorting child subtrees by minimum vertex id recovers spec order...
  // except the min vertex of a child subtree is its own first-built
  // descendant; ordering by allocation is still monotone across siblings.
  for (size_t i = 0; i < spec.children.size(); ++i) {
    CheckSpecSubtree(forest, spec.children[i], children[i], node);
  }
}

struct PlantedCase {
  std::string name;
  CoreSpec spec;
};

std::vector<PlantedCase> PlantedCases() {
  std::vector<PlantedCase> cases;
  for (uint32_t k_max : {3u, 5u, 9u, 14u}) {
    for (VertexId shell : {4u, 9u}) {
      PlantedCase c;
      c.name = "onion_k" + std::to_string(k_max) + "_s" + std::to_string(shell);
      c.spec = OnionSpec(k_max, shell);
      cases.push_back(std::move(c));
    }
  }
  for (uint32_t fanout : {1u, 2u, 3u}) {
    PlantedCase c;
    c.name = "branch_f" + std::to_string(fanout);
    c.spec = BranchingSpec(3, 12, 3, fanout, 6);
    cases.push_back(std::move(c));
  }
  // Hand-built asymmetric spec: level-2 shell wrapping a level-5 circulant
  // and a level-3 shell that itself wraps a level-7 clique.
  {
    PlantedCase c;
    c.name = "asymmetric";
    CoreSpec deep{7, 8, {}};
    CoreSpec mid{3, 5, {std::move(deep)}};
    CoreSpec leaf{5, 6, {}};
    c.spec = CoreSpec{2, 4, {std::move(mid), std::move(leaf)}};
    cases.push_back(std::move(c));
  }
  return cases;
}

class PlantedSuite : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedSuite, HcdMatchesSpecTree) {
  const CoreSpec& spec = GetParam().spec;
  for (uint64_t seed : {1ull, 42ull}) {
    Graph g = PlantedHierarchy(spec, seed);
    CoreDecomposition cd = BzCoreDecomposition(g);
    ASSERT_TRUE(VerifyCoreDecomposition(g, cd));
    HcdForest forest = PhcdBuild(g, cd);
    ASSERT_TRUE(ValidateHcd(g, cd, forest).ok());
    EXPECT_TRUE(HcdEquals(forest, NaiveHcdBuild(g, cd)));

    uint32_t expected_nodes = 0;
    uint64_t expected_vertices = 0;
    SpecStats(spec, &expected_nodes, &expected_vertices);
    ASSERT_EQ(forest.NumNodes(), expected_nodes);
    ASSERT_EQ(g.NumVertices(), expected_vertices);

    auto roots = forest.Roots();
    ASSERT_EQ(roots.size(), 1u);
    CheckSpecSubtree(forest, spec, roots[0], kInvalidNode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, PlantedSuite, ::testing::ValuesIn(PlantedCases()),
    [](const ::testing::TestParamInfo<PlantedCase>& info) {
      return info.param.name;
    });

TEST(PlantedForestGraph, IndependentComponentsKeepTheirHierarchies) {
  Graph g = PlantedForest({OnionSpec(4, 6), OnionSpec(7, 8)}, 3);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = PhcdBuild(g, cd);
  EXPECT_TRUE(ValidateHcd(g, cd, f).ok());
  EXPECT_EQ(f.Roots().size(), 2u);
  // 4 levels + 7 levels of onion nodes.
  EXPECT_EQ(f.NumNodes(), 4u + 7u);
}

}  // namespace
}  // namespace hcd
