#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/dynamic.h"
#include "core/naive.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/phcd.h"
#include "hcd/validate.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

void ExpectMatchesRecompute(const DynamicCoreIndex& index) {
  Graph g = index.ToGraph();
  CoreDecomposition fresh = BzCoreDecomposition(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(index.Coreness(v), fresh.coreness[v]) << "vertex " << v;
  }
  ASSERT_EQ(index.KMax(), fresh.k_max);
}

TEST(DynamicCore, HandExample) {
  // Path 0-1-2; closing the triangle lifts everyone to coreness 2.
  DynamicCoreIndex index(PathGraph(3));
  EXPECT_EQ(index.Coreness(1), 1u);
  ASSERT_TRUE(index.InsertEdge(0, 2).ok());
  EXPECT_EQ(index.Coreness(0), 2u);
  EXPECT_EQ(index.Coreness(1), 2u);
  EXPECT_EQ(index.Coreness(2), 2u);
  ASSERT_TRUE(index.RemoveEdge(0, 1).ok());
  EXPECT_EQ(index.Coreness(0), 1u);
  EXPECT_EQ(index.Coreness(1), 1u);
  EXPECT_EQ(index.Coreness(2), 1u);
}

TEST(DynamicCore, RejectsBadUpdates) {
  DynamicCoreIndex index(PathGraph(3));
  EXPECT_FALSE(index.InsertEdge(0, 0).ok());
  EXPECT_FALSE(index.InsertEdge(0, 1).ok());  // already present
  EXPECT_FALSE(index.InsertEdge(0, 99).ok());
  EXPECT_FALSE(index.RemoveEdge(0, 2).ok());  // absent
  EXPECT_FALSE(index.RemoveEdge(5, 9).ok());
}

TEST(DynamicCore, InsertionBuildsCliqueIncrementally) {
  // Start from an empty graph on 8 vertices; add K8 edge by edge.
  GraphBuilder b;
  Graph empty = std::move(b).Build(8);
  DynamicCoreIndex index(empty);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(index.InsertEdge(u, v).ok());
      ExpectMatchesRecompute(index);
    }
  }
  EXPECT_EQ(index.KMax(), 7u);
  // Now dismantle it edge by edge.
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(index.RemoveEdge(u, v).ok());
      ExpectMatchesRecompute(index);
    }
  }
  EXPECT_EQ(index.KMax(), 0u);
}

TEST(DynamicCore, RandomChurnMatchesRecompute) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(120, 400, seed);
    DynamicCoreIndex index(g);
    Rng rng(seed * 31 + 1);
    for (int step = 0; step < 300; ++step) {
      VertexId u = static_cast<VertexId>(rng.Uniform(120));
      VertexId v = static_cast<VertexId>(rng.Uniform(120));
      if (u == v) continue;
      if (index.HasEdge(u, v)) {
        ASSERT_TRUE(index.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(index.InsertEdge(u, v).ok());
      }
      if (step % 10 == 0) ExpectMatchesRecompute(index);
    }
    ExpectMatchesRecompute(index);
  }
}

TEST(DynamicCore, ChurnOnStructuredGraphs) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    if (tc.graph.NumVertices() < 3 || tc.graph.NumVertices() > 500) continue;
    SCOPED_TRACE(tc.name);
    DynamicCoreIndex index(tc.graph);
    Rng rng(1234);
    const VertexId n = tc.graph.NumVertices();
    for (int step = 0; step < 60; ++step) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (u == v) continue;
      if (index.HasEdge(u, v)) {
        ASSERT_TRUE(index.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(index.InsertEdge(u, v).ok());
      }
    }
    ExpectMatchesRecompute(index);
  }
}

TEST(DynamicCore, SingleUpdateChangesCorenessByAtMostOne) {
  Graph g = BarabasiAlbertVarying(200, 1, 6, 8);
  DynamicCoreIndex index(g);
  Rng rng(77);
  for (int step = 0; step < 100; ++step) {
    std::vector<uint32_t> before(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) before[v] = index.Coreness(v);
    VertexId u = static_cast<VertexId>(rng.Uniform(200));
    VertexId v = static_cast<VertexId>(rng.Uniform(200));
    if (u == v) continue;
    if (index.HasEdge(u, v)) {
      ASSERT_TRUE(index.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(index.InsertEdge(u, v).ok());
    }
    for (VertexId w = 0; w < g.NumVertices(); ++w) {
      int64_t delta = static_cast<int64_t>(index.Coreness(w)) - before[w];
      EXPECT_LE(std::abs(delta), 1) << "vertex " << w;
    }
  }
}

TEST(DynamicCore, RebuildHcdAfterBatch) {
  Graph g = ErdosRenyiGnm(300, 900, 17);
  DynamicCoreIndex index(g);
  Rng rng(18);
  for (int step = 0; step < 200; ++step) {
    VertexId u = static_cast<VertexId>(rng.Uniform(300));
    VertexId v = static_cast<VertexId>(rng.Uniform(300));
    if (u == v) continue;
    if (index.HasEdge(u, v)) {
      (void)index.RemoveEdge(u, v);
    } else {
      (void)index.InsertEdge(u, v);
    }
  }
  Graph updated = index.ToGraph();
  CoreDecomposition cd = BzCoreDecomposition(updated);
  HcdForest forest = PhcdBuild(updated, cd);
  EXPECT_TRUE(ValidateHcd(updated, cd, forest).ok());
}

}  // namespace
}  // namespace hcd
