#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/dynamic.h"
#include "core/naive.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/phcd.h"
#include "hcd/validate.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

void ExpectMatchesRecompute(const DynamicCoreIndex& index) {
  Graph g = index.ToGraph();
  CoreDecomposition fresh = BzCoreDecomposition(g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(index.Coreness(v), fresh.coreness[v]) << "vertex " << v;
  }
  ASSERT_EQ(index.KMax(), fresh.k_max);
}

TEST(DynamicCore, HandExample) {
  // Path 0-1-2; closing the triangle lifts everyone to coreness 2.
  DynamicCoreIndex index(PathGraph(3));
  EXPECT_EQ(index.Coreness(1), 1u);
  ASSERT_TRUE(index.InsertEdge(0, 2).ok());
  EXPECT_EQ(index.Coreness(0), 2u);
  EXPECT_EQ(index.Coreness(1), 2u);
  EXPECT_EQ(index.Coreness(2), 2u);
  ASSERT_TRUE(index.RemoveEdge(0, 1).ok());
  EXPECT_EQ(index.Coreness(0), 1u);
  EXPECT_EQ(index.Coreness(1), 1u);
  EXPECT_EQ(index.Coreness(2), 1u);
}

TEST(DynamicCore, RejectsBadUpdates) {
  DynamicCoreIndex index(PathGraph(3));
  EXPECT_FALSE(index.InsertEdge(0, 0).ok());
  EXPECT_FALSE(index.InsertEdge(0, 1).ok());  // already present
  EXPECT_FALSE(index.InsertEdge(0, 99).ok());
  EXPECT_FALSE(index.RemoveEdge(0, 2).ok());  // absent
  EXPECT_FALSE(index.RemoveEdge(5, 9).ok());
}

TEST(DynamicCore, InsertionBuildsCliqueIncrementally) {
  // Start from an empty graph on 8 vertices; add K8 edge by edge.
  GraphBuilder b;
  Graph empty = std::move(b).Build(8);
  DynamicCoreIndex index(empty);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(index.InsertEdge(u, v).ok());
      ExpectMatchesRecompute(index);
    }
  }
  EXPECT_EQ(index.KMax(), 7u);
  // Now dismantle it edge by edge.
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(index.RemoveEdge(u, v).ok());
      ExpectMatchesRecompute(index);
    }
  }
  EXPECT_EQ(index.KMax(), 0u);
}

TEST(DynamicCore, RandomChurnMatchesRecompute) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(120, 400, seed);
    DynamicCoreIndex index(g);
    Rng rng(seed * 31 + 1);
    for (int step = 0; step < 300; ++step) {
      VertexId u = static_cast<VertexId>(rng.Uniform(120));
      VertexId v = static_cast<VertexId>(rng.Uniform(120));
      if (u == v) continue;
      if (index.HasEdge(u, v)) {
        ASSERT_TRUE(index.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(index.InsertEdge(u, v).ok());
      }
      if (step % 10 == 0) ExpectMatchesRecompute(index);
    }
    ExpectMatchesRecompute(index);
  }
}

TEST(DynamicCore, ChurnOnStructuredGraphs) {
  for (const auto& tc : testing::StandardGraphSuite()) {
    if (tc.graph.NumVertices() < 3 || tc.graph.NumVertices() > 500) continue;
    SCOPED_TRACE(tc.name);
    DynamicCoreIndex index(tc.graph);
    Rng rng(1234);
    const VertexId n = tc.graph.NumVertices();
    for (int step = 0; step < 60; ++step) {
      VertexId u = static_cast<VertexId>(rng.Uniform(n));
      VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (u == v) continue;
      if (index.HasEdge(u, v)) {
        ASSERT_TRUE(index.RemoveEdge(u, v).ok());
      } else {
        ASSERT_TRUE(index.InsertEdge(u, v).ok());
      }
    }
    ExpectMatchesRecompute(index);
  }
}

TEST(DynamicCore, SingleUpdateChangesCorenessByAtMostOne) {
  Graph g = BarabasiAlbertVarying(200, 1, 6, 8);
  DynamicCoreIndex index(g);
  Rng rng(77);
  for (int step = 0; step < 100; ++step) {
    std::vector<uint32_t> before(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) before[v] = index.Coreness(v);
    VertexId u = static_cast<VertexId>(rng.Uniform(200));
    VertexId v = static_cast<VertexId>(rng.Uniform(200));
    if (u == v) continue;
    if (index.HasEdge(u, v)) {
      ASSERT_TRUE(index.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(index.InsertEdge(u, v).ok());
    }
    for (VertexId w = 0; w < g.NumVertices(); ++w) {
      int64_t delta = static_cast<int64_t>(index.Coreness(w)) - before[w];
      EXPECT_LE(std::abs(delta), 1) << "vertex " << w;
    }
  }
}

std::vector<EdgeUpdate> RandomBatch(const DynamicCoreIndex& index, Rng& rng,
                                    size_t size, bool adversarial_mix) {
  const VertexId n = index.NumVertices();
  std::vector<EdgeUpdate> batch;
  while (batch.size() < size) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    const bool present = index.HasEdge(u, v);
    batch.push_back({u, v, present ? EdgeOp::kRemove : EdgeOp::kInsert});
    if (adversarial_mix && rng.Uniform(4) == 0) {
      // Stress the dedup: follow with the opposite op on the same edge
      // (cancels) or a repeat (redundant), sometimes both.
      const EdgeOp last = batch.back().op;
      const EdgeOp flip =
          last == EdgeOp::kInsert ? EdgeOp::kRemove : EdgeOp::kInsert;
      batch.push_back({v, u, rng.Uniform(2) == 0 ? flip : last});
    }
  }
  return batch;
}

/// Applies `batch` three ways — parallel schedule, sequential fallback,
/// and edge-by-edge net replay — and checks all three against BZ from
/// scratch, bit for bit.
void ExpectBatchEquivalence(const Graph& start,
                            const std::vector<EdgeUpdate>& batch,
                            uint32_t hash_threshold) {
  DynamicCoreIndex par(start, hash_threshold);
  DynamicCoreIndex seq(start, hash_threshold);
  BatchStats par_stats, seq_stats;
  ApplyBatchOptions par_options;
  par_options.parallel = true;
  ApplyBatchOptions seq_options;
  seq_options.parallel = false;
  ASSERT_TRUE(par.ApplyBatch(batch, &par_stats, par_options).ok());
  ASSERT_TRUE(seq.ApplyBatch(batch, &seq_stats, seq_options).ok());

  // Edge-by-edge replay of the net effect the batch reported.
  DynamicCoreIndex one(start, hash_threshold);
  for (const auto& [u, v] : par_stats.applied_edges) {
    if (one.HasEdge(u, v)) {
      ASSERT_TRUE(one.RemoveEdge(u, v).ok());
    } else {
      ASSERT_TRUE(one.InsertEdge(u, v).ok());
    }
  }

  const CoreDecomposition fresh = BzCoreDecomposition(par.ToGraph());
  ASSERT_EQ(par.CorenessValues(), fresh.coreness);
  ASSERT_EQ(seq.CorenessValues(), fresh.coreness);
  ASSERT_EQ(one.CorenessValues(), fresh.coreness);
  ASSERT_EQ(par.NumEdges(), one.NumEdges());
  ASSERT_EQ(seq.NumEdges(), one.NumEdges());
  // The two schedules agree on what the batch did, not just the outcome.
  ASSERT_EQ(par_stats.applied, seq_stats.applied);
  ASSERT_EQ(par_stats.changed_vertices, seq_stats.changed_vertices);
}

TEST(DynamicBatch, MatchesBzOnRandomGraphs) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(150, 450, seed);
    Rng rng(seed * 101 + 7);
    DynamicCoreIndex probe(g);  // only to sample present/absent edges
    for (size_t batch_size : {1u, 8u, 64u, 200u}) {
      ExpectBatchEquivalence(
          g, RandomBatch(probe, rng, batch_size, /*adversarial_mix=*/true),
          DynamicCoreIndex::kDefaultHashDegreeThreshold);
    }
  }
}

TEST(DynamicBatch, SequentialBatchesKeepMatchingBz) {
  // Batches applied back to back on one index, verified via the built-in
  // BZ cross-check every time.
  Graph g = ErdosRenyiGnp(120, 0.05, 11);
  DynamicCoreIndex index(g);
  Rng rng(12);
  ApplyBatchOptions options;
  options.verify_with_bz = true;
  for (int round = 0; round < 10; ++round) {
    const std::vector<EdgeUpdate> batch = RandomBatch(index, rng, 40, true);
    ASSERT_TRUE(index.ApplyBatch(batch, nullptr, options).ok());
  }
}

TEST(DynamicBatch, DedupAndStats) {
  // Path 0-1-2-3. Batch: close the triangle (applies), insert 0-1 again
  // (redundant), add then drop 1-3 (cancels), drop 2-3 (applies).
  DynamicCoreIndex index(PathGraph(4));
  const std::vector<EdgeUpdate> batch = {
      {0, 2, EdgeOp::kInsert}, {1, 0, EdgeOp::kInsert},
      {1, 3, EdgeOp::kInsert}, {3, 1, EdgeOp::kRemove},
      {2, 3, EdgeOp::kRemove},
  };
  BatchStats stats;
  ASSERT_TRUE(index.ApplyBatch(batch, &stats).ok());
  EXPECT_EQ(stats.requested, 5u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.redundant, 1u);  // the repeated 0-1 insert
  EXPECT_EQ(stats.deduped, 2u);    // the 1-3 insert+remove pair
  EXPECT_TRUE(index.HasEdge(0, 2));
  EXPECT_FALSE(index.HasEdge(1, 3));
  EXPECT_FALSE(index.HasEdge(2, 3));
  EXPECT_EQ(index.NumEdges(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_EQ(index.Coreness(0), 2u);
  EXPECT_EQ(index.Coreness(3), 0u);
  EXPECT_EQ(stats.coreness_changed, stats.changed_vertices.size());
  ExpectMatchesRecompute(index);
}

TEST(DynamicBatch, RejectsBadBatchesWhole) {
  DynamicCoreIndex index(PathGraph(4));
  const std::vector<uint32_t> before = index.CorenessValues();
  const std::vector<EdgeUpdate> self_loop = {{0, 2, EdgeOp::kInsert},
                                             {1, 1, EdgeOp::kInsert}};
  const std::vector<EdgeUpdate> out_of_range = {{0, 2, EdgeOp::kInsert},
                                                {0, 99, EdgeOp::kRemove}};
  EXPECT_FALSE(index.ApplyBatch(self_loop).ok());
  EXPECT_FALSE(index.ApplyBatch(out_of_range).ok());
  // Nothing from the valid prefix was applied.
  EXPECT_FALSE(index.HasEdge(0, 2));
  EXPECT_EQ(index.CorenessValues(), before);
  EXPECT_EQ(index.NumEdges(), 3u);
}

TEST(DynamicBatch, EmptyAndNoOpBatches) {
  DynamicCoreIndex index(PathGraph(4));
  BatchStats stats;
  ASSERT_TRUE(index.ApplyBatch({}, &stats).ok());
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(stats.rounds, 0u);
  const std::vector<EdgeUpdate> noop = {{0, 1, EdgeOp::kInsert},
                                        {0, 3, EdgeOp::kRemove}};
  ASSERT_TRUE(index.ApplyBatch(noop, &stats).ok());
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(stats.redundant, 2u);
  EXPECT_EQ(index.NumEdges(), 3u);
}

TEST(DynamicBatch, HashedAdjacencyThresholdsAgree) {
  // Threshold 0 hashes every vertex, a huge threshold hashes none; both
  // must walk through the same states as the default.
  Graph g = BarabasiAlbertVarying(150, 2, 8, 21);
  Rng rng(22);
  DynamicCoreIndex probe(g);
  const std::vector<EdgeUpdate> batch = RandomBatch(probe, rng, 120, true);
  for (uint32_t threshold : {0u, 4u, 1u << 30}) {
    SCOPED_TRACE(threshold);
    ExpectBatchEquivalence(g, batch, threshold);
  }
}

TEST(DynamicCore, HashedAdjacencySingleUpdates) {
  // Hub promotion: a star center crosses the hash threshold mid-churn.
  GraphBuilder b;
  Graph empty = std::move(b).Build(40);
  DynamicCoreIndex index(empty, /*hash_degree_threshold=*/8);
  for (VertexId v = 1; v < 40; ++v) {
    ASSERT_TRUE(index.InsertEdge(0, v).ok());
  }
  EXPECT_EQ(index.KMax(), 1u);
  for (VertexId v = 1; v < 40; ++v) {
    ASSERT_TRUE(index.HasEdge(v, 0));
    ASSERT_TRUE(index.RemoveEdge(0, v).ok());
  }
  EXPECT_EQ(index.NumEdges(), 0u);
  EXPECT_EQ(index.KMax(), 0u);
  ExpectMatchesRecompute(index);
}

TEST(DynamicCore, RebuildHcdAfterBatch) {
  Graph g = ErdosRenyiGnm(300, 900, 17);
  DynamicCoreIndex index(g);
  Rng rng(18);
  for (int step = 0; step < 200; ++step) {
    VertexId u = static_cast<VertexId>(rng.Uniform(300));
    VertexId v = static_cast<VertexId>(rng.Uniform(300));
    if (u == v) continue;
    if (index.HasEdge(u, v)) {
      (void)index.RemoveEdge(u, v);
    } else {
      (void)index.InsertEdge(u, v);
    }
  }
  Graph updated = index.ToGraph();
  CoreDecomposition cd = BzCoreDecomposition(updated);
  HcdForest forest = PhcdBuild(updated, cd);
  EXPECT_TRUE(ValidateHcd(updated, cd, forest).ok());
}

}  // namespace
}  // namespace hcd
