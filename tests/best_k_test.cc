#include <gtest/gtest.h>

#include "core/core_decomposition.h"
#include "graph/generators.h"
#include "search/best_k.h"
#include "search/brute.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

/// Oracle: primary values of K_k = {v : c(v) >= k} computed brute-force.
PrimaryValues BruteKCoreSet(const Graph& g, const CoreDecomposition& cd,
                            uint32_t k) {
  std::vector<VertexId> members;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (cd.coreness[v] >= k) members.push_back(v);
  }
  return BrutePrimaryValues(g, members);
}

class BestKSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(BestKSuite, PerKPrimaryValuesMatchBruteForce) {
  const Graph& g = GetParam().graph;
  if (g.NumVertices() == 0) return;
  CoreDecomposition cd = BzCoreDecomposition(g);
  BestKResult r = FindBestK(g, cd, Metric::kClusteringCoefficient);
  ASSERT_EQ(r.per_k.size(), cd.k_max + 1);
  for (uint32_t k = 0; k <= cd.k_max; ++k) {
    SCOPED_TRACE("k=" + std::to_string(k));
    PrimaryValues want = BruteKCoreSet(g, cd, k);
    EXPECT_EQ(r.per_k[k].n_s, want.n_s);
    EXPECT_EQ(r.per_k[k].edges2, want.edges2);
    EXPECT_EQ(r.per_k[k].boundary, want.boundary);
    EXPECT_EQ(r.per_k[k].triangles, want.triangles);
    EXPECT_EQ(r.per_k[k].triplets, want.triplets);
  }
}

TEST_P(BestKSuite, BestKIsArgmax) {
  const Graph& g = GetParam().graph;
  if (g.NumVertices() == 0) return;
  CoreDecomposition cd = BzCoreDecomposition(g);
  for (Metric metric : {Metric::kAverageDegree, Metric::kConductance,
                        Metric::kClusteringCoefficient}) {
    SCOPED_TRACE(MetricName(metric));
    BestKResult r = FindBestK(g, cd, metric);
    for (double s : r.scores) EXPECT_LE(s, r.best_score + 1e-12);
    EXPECT_DOUBLE_EQ(r.scores[r.best_k], r.best_score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, BestKSuite, ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(BestK, PaperFigure1AverageDegree) {
  // K_3 (both 3-cores together: 13 vertices, 26 edges) has average degree
  // 4; K_4 (the octahedron) also has 4; K_2 (whole graph) has 30*2/16.
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  BestKResult r = FindBestK(g, cd, Metric::kAverageDegree);
  EXPECT_NEAR(r.scores[2], 2.0 * 30 / 16, 1e-12);
  EXPECT_NEAR(r.scores[3], 4.0, 1e-12);
  EXPECT_NEAR(r.scores[4], 4.0, 1e-12);
  EXPECT_EQ(r.best_k, 3u);
}

}  // namespace
}  // namespace hcd
