#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "common/check.h"
#include "common/random.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/timer.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

using hcd::testing::JsonValue;
using hcd::testing::ParseJson;

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

Status ReturnsEarly(bool fail) {
  HCD_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::NotFound("reached the end");
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_EQ(ReturnsEarly(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ReturnsEarly(false).code(), StatusCode::kNotFound);
}

TEST(Check, PassingConditionsAreSilent) {
  HCD_CHECK(1 + 1 == 2);
  HCD_CHECK_EQ(4, 4);
  HCD_CHECK_LT(1, 2);
  HCD_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailureAborts) {
  EXPECT_DEATH(HCD_CHECK(false) << "context", "HCD_CHECK failed");
  EXPECT_DEATH(HCD_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t xa = a.Next64();
    all_equal &= xa == b.Next64();
    any_diff_from_c |= xa != c.Next64();
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(Rng, UniformStaysInBoundsAndCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = rng.Uniform(10);
    ASSERT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(JsonEscape, QuotesBackslashesAndNamedControls) {
  EXPECT_EQ(JsonEscape("plain text"), "plain text");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2\r\ttab"), "line1\\nline2\\r\\ttab");
}

TEST(JsonEscape, UnnamedControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("a\x1f" "b")), "a\\u001fb");
  // NUL embedded in a std::string is escaped, not truncated.
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, EscapedOutputParsesBackToTheOriginal) {
  const std::string nasty = "q\"b\\n\nr\rt\t\x02 end";
  JsonValue doc;
  ASSERT_TRUE(ParseJson("\"" + JsonEscape(nasty) + "\"", &doc));
  EXPECT_EQ(doc.str, nasty);
}

TEST(StageTelemetry, ZeroRecordSinkRendersAnEmptyReport) {
  StageTelemetry telemetry;
  EXPECT_EQ(telemetry.TotalSeconds(), 0.0);
  EXPECT_EQ(telemetry.PeakStage(), "");
  EXPECT_EQ(telemetry.CountStage("anything"), 0u);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(telemetry.ToJson(), &doc));
  EXPECT_TRUE(doc.Find("stages")->array.empty());
  EXPECT_EQ(doc.Find("total_seconds")->number, 0.0);
  EXPECT_EQ(doc.Find("peak_stage")->str, "");
}

TEST(StageTelemetry, PeakStageTieKeepsTheFirstRecord) {
  StageTelemetry telemetry;
  telemetry.RecordStage({"first", 2.0, {}});
  telemetry.RecordStage({"second", 2.0, {}});
  telemetry.RecordStage({"small", 1.0, {}});
  EXPECT_EQ(telemetry.PeakStage(), "first");
  EXPECT_DOUBLE_EQ(telemetry.TotalSeconds(), 5.0);
}

TEST(StageTelemetry, ToJsonSurvivesHostileStageAndCounterNames) {
  StageTelemetry telemetry;
  StageRecord record;
  record.stage = "load \"fast\"\npath\\2";
  record.seconds = 0.125;
  record.counters.push_back({"edges\t\"in\"", 12345});
  telemetry.RecordStage(record);
  telemetry.RecordStage({"clean", 0.5, {}});

  JsonValue doc;
  ASSERT_TRUE(ParseJson(telemetry.ToJson(), &doc));
  const JsonValue* stages = doc.Find("stages");
  ASSERT_EQ(stages->array.size(), 2u);
  EXPECT_EQ(stages->array[0].Find("name")->str, record.stage);
  EXPECT_EQ(stages->array[0].Find("seconds")->number, 0.125);
  const JsonValue* counters = stages->array[0].Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("edges\t\"in\"")->number, 12345.0);
  // Records without counters omit the object entirely.
  EXPECT_EQ(stages->array[1].Find("counters"), nullptr);
  EXPECT_EQ(doc.Find("peak_stage")->str, "clean");
}

TEST(StageTelemetry, CountStageAndStageSecondsMatchLabels) {
  StageTelemetry telemetry;
  telemetry.RecordStage({"serve", 1.0, {}});
  telemetry.RecordStage({"serve", 2.5, {}});
  telemetry.RecordStage({"load", 4.0, {}});
  EXPECT_EQ(telemetry.CountStage("serve"), 2u);
  EXPECT_DOUBLE_EQ(telemetry.StageSeconds("serve"), 3.5);
  EXPECT_EQ(telemetry.CountStage("missing"), 0u);
  EXPECT_EQ(telemetry.StageSeconds("missing"), 0.0);
}

TEST(FiniteOrZero, PassesFiniteValuesAndZerosTheRest) {
  EXPECT_DOUBLE_EQ(FiniteOrZero(1.5), 1.5);
  EXPECT_DOUBLE_EQ(FiniteOrZero(0.0), 0.0);
  EXPECT_DOUBLE_EQ(FiniteOrZero(-2.25), -2.25);
  // The exact shapes a degenerate bench produces: N/0, 0/0, and overflow.
  EXPECT_DOUBLE_EQ(FiniteOrZero(1.0 / 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FiniteOrZero(-1.0 / 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FiniteOrZero(0.0 / 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FiniteOrZero(std::numeric_limits<double>::quiet_NaN()),
                   0.0);
  EXPECT_DOUBLE_EQ(FiniteOrZero(std::numeric_limits<double>::max() * 2.0),
                   0.0);
  EXPECT_DOUBLE_EQ(FiniteOrZero(std::numeric_limits<double>::min()),
                   std::numeric_limits<double>::min());  // subnormal-adjacent
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  double s = t.Seconds();
  EXPECT_GE(s, 0.0);
  EXPECT_LT(s, 10.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1000, 5.0);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

}  // namespace
}  // namespace hcd
