#include <gtest/gtest.h>

#include "core/core_decomposition.h"
#include "core/julienne.h"
#include "core/mpm.h"
#include "core/naive.h"
#include "graph/generators.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

TEST(BzCoreDecomposition, KnownShapes) {
  {
    CoreDecomposition cd = BzCoreDecomposition(CompleteGraph(6));
    EXPECT_EQ(cd.k_max, 5u);
    for (uint32_t c : cd.coreness) EXPECT_EQ(c, 5u);
  }
  {
    CoreDecomposition cd = BzCoreDecomposition(PathGraph(10));
    EXPECT_EQ(cd.k_max, 1u);
  }
  {
    CoreDecomposition cd = BzCoreDecomposition(CycleGraph(10));
    EXPECT_EQ(cd.k_max, 2u);
    for (uint32_t c : cd.coreness) EXPECT_EQ(c, 2u);
  }
  {
    CoreDecomposition cd = BzCoreDecomposition(StarGraph(10));
    EXPECT_EQ(cd.k_max, 1u);
  }
}

TEST(BzCoreDecomposition, PaperFigure1Shells) {
  CoreDecomposition cd = BzCoreDecomposition(PaperFigure1Graph());
  EXPECT_EQ(cd.k_max, 4u);
  std::vector<VertexId> shells = KShellSizes(cd);
  // 6-vertex 4-core, 3+4 vertices of coreness 3, 3 vertices of coreness 2.
  EXPECT_EQ(shells[4], 6u);
  EXPECT_EQ(shells[3], 7u);
  EXPECT_EQ(shells[2], 3u);
  EXPECT_EQ(shells[1], 0u);
  EXPECT_EQ(shells[0], 0u);
}

TEST(BzCoreDecomposition, EmptyGraph) {
  CoreDecomposition cd = BzCoreDecomposition(Graph());
  EXPECT_EQ(cd.k_max, 0u);
  EXPECT_TRUE(cd.coreness.empty());
}

TEST(NaiveCoreDecomposition, IsolatedVerticesHaveCorenessZero) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g = std::move(b).Build(4);
  CoreDecomposition cd = NaiveCoreDecomposition(g);
  EXPECT_EQ(cd.coreness[2], 0u);
  EXPECT_EQ(cd.coreness[3], 0u);
  EXPECT_EQ(cd.coreness[0], 1u);
}

class CoreDecompositionSuite
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(CoreDecompositionSuite, BzMatchesNaiveOracle) {
  const Graph& g = GetParam().graph;
  EXPECT_TRUE(VerifyCoreDecomposition(g, BzCoreDecomposition(g)));
}

TEST_P(CoreDecompositionSuite, PkcMatchesBz) {
  const Graph& g = GetParam().graph;
  CoreDecomposition bz = BzCoreDecomposition(g);
  CoreDecomposition pkc = PkcCoreDecomposition(g);
  EXPECT_EQ(bz.coreness, pkc.coreness);
  EXPECT_EQ(bz.k_max, pkc.k_max);
}

TEST_P(CoreDecompositionSuite, MpmMatchesBz) {
  const Graph& g = GetParam().graph;
  CoreDecomposition bz = BzCoreDecomposition(g);
  CoreDecomposition mpm = MpmCoreDecomposition(g);
  EXPECT_EQ(bz.coreness, mpm.coreness);
  EXPECT_EQ(bz.k_max, mpm.k_max);
}

TEST_P(CoreDecompositionSuite, JulienneMatchesBz) {
  const Graph& g = GetParam().graph;
  CoreDecomposition bz = BzCoreDecomposition(g);
  CoreDecomposition jul = JulienneCoreDecomposition(g);
  EXPECT_EQ(bz.coreness, jul.coreness);
  EXPECT_EQ(bz.k_max, jul.k_max);
}

TEST_P(CoreDecompositionSuite, JulienneStableAcrossThreadCounts) {
  const Graph& g = GetParam().graph;
  CoreDecomposition base = JulienneCoreDecomposition(g);
  for (int threads : {2, 4}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(JulienneCoreDecomposition(g).coreness, base.coreness)
        << "threads=" << threads;
  }
}

TEST_P(CoreDecompositionSuite, ApproxGuaranteeHolds) {
  const Graph& g = GetParam().graph;
  CoreDecomposition exact = BzCoreDecomposition(g);
  for (double delta : {0.25, 1.0}) {
    CoreDecomposition approx = ApproxCoreDecomposition(g, delta);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      // c~ <= c < (1 + delta) * c~ + 1
      EXPECT_LE(approx.coreness[v], exact.coreness[v]) << "vertex " << v;
      EXPECT_LT(static_cast<double>(exact.coreness[v]),
                (1.0 + delta) * approx.coreness[v] + 1.0 + 1e-9)
          << "vertex " << v << " delta " << delta;
    }
  }
}

TEST_P(CoreDecompositionSuite, PkcStableAcrossThreadCounts) {
  const Graph& g = GetParam().graph;
  CoreDecomposition base = PkcCoreDecomposition(g);
  for (int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    CoreDecomposition cd = PkcCoreDecomposition(g);
    EXPECT_EQ(cd.coreness, base.coreness) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, CoreDecompositionSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(PkcCoreDecomposition, RandomSweep) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(400, 1800, seed);
    CoreDecomposition bz = BzCoreDecomposition(g);
    CoreDecomposition pkc = PkcCoreDecomposition(g);
    EXPECT_EQ(bz.coreness, pkc.coreness) << "seed=" << seed;
  }
}

TEST(KShellSizes, SumsToN) {
  Graph g = BarabasiAlbert(300, 4, 17);
  CoreDecomposition cd = BzCoreDecomposition(g);
  std::vector<VertexId> shells = KShellSizes(cd);
  uint64_t total = 0;
  for (VertexId s : shells) total += s;
  EXPECT_EQ(total, g.NumVertices());
}

}  // namespace
}  // namespace hcd
