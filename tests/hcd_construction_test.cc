#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/core_decomposition.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/divide_conquer.h"
#include "hcd/lcps.h"
#include "hcd/naive_hcd.h"
#include "hcd/phcd.h"
#include "hcd/validate.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

/// Finds the node holding vertex v and checks its level.
void ExpectNodeLevel(const HcdForest& f, VertexId v, uint32_t level) {
  ASSERT_NE(f.Tid(v), kInvalidNode);
  EXPECT_EQ(f.Level(f.Tid(v)), level);
}

TEST(NaiveHcd, PaperFigure1Structure) {
  Graph g = PaperFigure1Graph();
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  ASSERT_EQ(f.NumNodes(), 4u);  // T2, T3.1, T3.2, T4 (Figure 2)

  TreeNodeId t4 = f.Tid(0);           // octahedron vertex
  TreeNodeId t31 = f.Tid(6);          // 3-shell around the octahedron
  TreeNodeId t32 = f.Tid(9);          // 4-clique
  TreeNodeId t2 = f.Tid(13);          // 2-shell path
  EXPECT_EQ(f.Level(t4), 4u);
  EXPECT_EQ(f.Level(t31), 3u);
  EXPECT_EQ(f.Level(t32), 3u);
  EXPECT_NE(t31, t32);
  EXPECT_EQ(f.Level(t2), 2u);

  EXPECT_EQ(f.Parent(t4), t31);
  EXPECT_EQ(f.Parent(t31), t2);
  EXPECT_EQ(f.Parent(t32), t2);
  EXPECT_EQ(f.Parent(t2), kInvalidNode);

  EXPECT_EQ(f.Vertices(t4).size(), 6u);
  EXPECT_EQ(f.Vertices(t31).size(), 3u);
  EXPECT_EQ(f.Vertices(t32).size(), 4u);
  EXPECT_EQ(f.Vertices(t2).size(), 3u);
  EXPECT_EQ(f.CoreSize(t31), 9u);  // S3.1 has 9 vertices (Example 6)
}

TEST(NaiveHcd, RingOfCliquesOneNodePerClique) {
  Graph g = RingOfCliques(5, 4);  // 5 triangles-of-4 at level 3, ring level 1
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  EXPECT_TRUE(ValidateHcd(g, cd, f).ok());
  // 5 clique nodes + 1 enclosing node.
  EXPECT_EQ(f.NumNodes(), 6u);
  EXPECT_EQ(f.Roots().size(), 1u);
}

TEST(PlantedHierarchy, MatchesSpecTreeExactly) {
  // Onion with k_max 6: nodes at levels 6,5,4,3,2,1 in a chain.
  Graph g = PlantedHierarchy(OnionSpec(6, 8), 3);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  ASSERT_EQ(f.NumNodes(), 6u);
  std::vector<TreeNodeId> order = f.NodesByDescendingLevel();
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_EQ(f.Parent(order[i]), order[i + 1]);
  }
  EXPECT_EQ(f.Level(order.front()), 6u);
  EXPECT_EQ(f.Level(order.back()), 1u);
}

TEST(PlantedHierarchy, BranchingSpecNodeCount) {
  // Levels 2,4,6,8,10 with fanout 2: 1+2+4+8+16 = 31 nodes.
  Graph g = PlantedHierarchy(BranchingSpec(2, 10, 2, 2, 5), 4);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  EXPECT_EQ(f.NumNodes(), 31u);
  EXPECT_TRUE(ValidateHcd(g, cd, f).ok());
}

class HcdConstructionSuite
    : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(HcdConstructionSuite, NaiveOracleSatisfiesInvariants) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest f = NaiveHcdBuild(g, cd);
  Status s = ValidateHcd(g, cd, f);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(HcdConstructionSuite, LcpsMatchesOracle) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest lcps = LcpsBuild(g, cd);
  Status s = ValidateHcd(g, cd, lcps);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(HcdEquals(lcps, NaiveHcdBuild(g, cd)));
}

TEST_P(HcdConstructionSuite, PhcdMatchesOracle) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest phcd = PhcdBuild(g, cd);
  Status s = ValidateHcd(g, cd, phcd);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(HcdEquals(phcd, NaiveHcdBuild(g, cd)));
}

TEST_P(HcdConstructionSuite, DivideAndConquerMatchesOracle) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest oracle = NaiveHcdBuild(g, cd);
  for (int partitions : {1, 3, 7}) {
    HcdForest dnc = DivideAndConquerHcd(g, cd, partitions);
    EXPECT_TRUE(HcdEquals(dnc, oracle)) << "partitions=" << partitions;
  }
}

TEST_P(HcdConstructionSuite, PhcdStableAcrossThreadCounts) {
  const Graph& g = GetParam().graph;
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest base = PhcdBuild(g, cd);
  for (int threads : {1, 2, 4, 8}) {
    ThreadCountGuard guard(threads);
    HcdForest f = PhcdBuild(g, cd);
    EXPECT_TRUE(HcdEquals(f, base)) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, HcdConstructionSuite,
    ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(HcdConstruction, RandomSweepAllBuildersAgree) {
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = ErdosRenyiGnm(350, 1200, seed);
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest oracle = NaiveHcdBuild(g, cd);
    EXPECT_TRUE(HcdEquals(LcpsBuild(g, cd), oracle)) << "seed=" << seed;
    EXPECT_TRUE(HcdEquals(PhcdBuild(g, cd), oracle)) << "seed=" << seed;
  }
  for (uint64_t seed : testing::SweepSeeds()) {
    Graph g = BarabasiAlbert(300, 3, seed);
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest oracle = NaiveHcdBuild(g, cd);
    EXPECT_TRUE(HcdEquals(LcpsBuild(g, cd), oracle)) << "seed=" << seed;
    EXPECT_TRUE(HcdEquals(PhcdBuild(g, cd), oracle)) << "seed=" << seed;
  }
}

TEST(HcdConstruction, SparseFragmentedStress) {
  // Many tiny components with wildly mixed coreness stress LCPS's
  // open-node stack transitions (orphan adoption, sibling closure, seeds).
  for (uint64_t seed = 100; seed < 140; ++seed) {
    Graph g = ErdosRenyiGnm(120, 150, seed);  // below the giant threshold
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest oracle = NaiveHcdBuild(g, cd);
    EXPECT_TRUE(HcdEquals(LcpsBuild(g, cd), oracle)) << "seed=" << seed;
    EXPECT_TRUE(HcdEquals(PhcdBuild(g, cd), oracle)) << "seed=" << seed;
  }
  // Denser mixtures: cliques dropped into sparse noise.
  for (uint64_t seed = 200; seed < 220; ++seed) {
    GraphBuilder b;
    Rng rng(seed);
    // Three cliques of pseudo-random sizes on disjoint ranges.
    VertexId base = 0;
    for (int c = 0; c < 3; ++c) {
      VertexId size = 3 + static_cast<VertexId>(rng.Uniform(6));
      for (VertexId i = 0; i < size; ++i) {
        for (VertexId j = i + 1; j < size; ++j) b.AddEdge(base + i, base + j);
      }
      base += size;
    }
    // Random sparse noise over 80 vertices including the cliques.
    for (int e = 0; e < 60; ++e) {
      VertexId u = static_cast<VertexId>(rng.Uniform(80));
      VertexId v = static_cast<VertexId>(rng.Uniform(80));
      if (u != v) b.AddEdge(u, v);
    }
    Graph g = std::move(b).Build(80);
    CoreDecomposition cd = BzCoreDecomposition(g);
    HcdForest oracle = NaiveHcdBuild(g, cd);
    EXPECT_TRUE(HcdEquals(LcpsBuild(g, cd), oracle)) << "seed=" << seed;
    EXPECT_TRUE(HcdEquals(PhcdBuild(g, cd), oracle)) << "seed=" << seed;
  }
}

TEST(HcdConstruction, DeepOnionLevels) {
  Graph g = PlantedHierarchy(OnionSpec(20, 22), 9);
  CoreDecomposition cd = BzCoreDecomposition(g);
  HcdForest oracle = NaiveHcdBuild(g, cd);
  EXPECT_EQ(oracle.NumNodes(), 20u);
  EXPECT_TRUE(HcdEquals(LcpsBuild(g, cd), oracle));
  EXPECT_TRUE(HcdEquals(PhcdBuild(g, cd), oracle));
  ExpectNodeLevel(oracle, 0, 20u);  // first allocated vertices sit deepest
}

}  // namespace
}  // namespace hcd
