#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "hcd/serialize.h"
#include "hcd/validate.h"
#include "parallel/omp_utils.h"
#include "tests/test_util.h"
#include "truss/edge_index.h"
#include "truss/truss_decomposition.h"
#include "truss/truss_hierarchy.h"

namespace hcd {
namespace {

TEST(EdgeIndexer, MapsBothDirections) {
  Graph g = PaperFigure1Graph();
  EdgeIndexer index = BuildEdgeIndexer(g);
  ASSERT_EQ(index.NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto nbrs = g.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const EdgeIdx e = index.eid_at[g.AdjOffset(v) + i];
      const auto [a, b] = index.edges[e];
      EXPECT_EQ(std::min(v, nbrs[i]), a);
      EXPECT_EQ(std::max(v, nbrs[i]), b);
      EXPECT_EQ(index.IdOf(g, v, nbrs[i]), e);
      EXPECT_EQ(index.IdOf(g, nbrs[i], v), e);
    }
  }
  EXPECT_EQ(index.IdOf(g, 0, 1), kInvalidEdge);  // octahedron antipodal pair
}

TEST(EdgeSupports, CountTrianglesPerEdge) {
  // Two triangles sharing edge (0,1).
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  Graph g = std::move(b).Build(4);
  EdgeIndexer index = BuildEdgeIndexer(g);
  std::vector<uint32_t> sup = ComputeEdgeSupports(g, index);
  EXPECT_EQ(sup[index.IdOf(g, 0, 1)], 2u);
  EXPECT_EQ(sup[index.IdOf(g, 0, 2)], 1u);
  EXPECT_EQ(sup[index.IdOf(g, 1, 3)], 1u);
}

TEST(TrussDecomposition, KnownShapes) {
  {
    // K5: every edge in a 5-truss.
    Graph g = CompleteGraph(5);
    EdgeIndexer index = BuildEdgeIndexer(g);
    TrussDecomposition td = PeelTrussDecomposition(g, index);
    EXPECT_EQ(td.k_max, 5u);
    for (uint32_t t : td.trussness) EXPECT_EQ(t, 5u);
  }
  {
    // Triangle-free: everything trussness 2.
    Graph g = CycleGraph(8);
    EdgeIndexer index = BuildEdgeIndexer(g);
    TrussDecomposition td = PeelTrussDecomposition(g, index);
    EXPECT_EQ(td.k_max, 2u);
    for (uint32_t t : td.trussness) EXPECT_EQ(t, 2u);
  }
  {
    // Triangle with a pendant edge.
    GraphBuilder b;
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(0, 2);
    b.AddEdge(2, 3);
    Graph g = std::move(b).Build(4);
    EdgeIndexer index = BuildEdgeIndexer(g);
    TrussDecomposition td = PeelTrussDecomposition(g, index);
    EXPECT_EQ(td.k_max, 3u);
    EXPECT_EQ(td.trussness[index.IdOf(g, 0, 1)], 3u);
    EXPECT_EQ(td.trussness[index.IdOf(g, 2, 3)], 2u);
  }
}

class TrussSuite : public ::testing::TestWithParam<testing::GraphCase> {};

TEST_P(TrussSuite, PeelMatchesNaiveOracle) {
  const Graph& g = GetParam().graph;
  if (g.NumEdges() > 50000) return;  // oracle is slow
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition peel = PeelTrussDecomposition(g, index);
  TrussDecomposition naive = NaiveTrussDecomposition(g, index);
  EXPECT_EQ(peel.trussness, naive.trussness);
  EXPECT_EQ(peel.k_max, naive.k_max);
}

TEST_P(TrussSuite, HierarchyMatchesNaiveOracle) {
  const Graph& g = GetParam().graph;
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest parallel = BuildTrussHierarchy(g, index, td);
  TrussForest oracle = NaiveTrussHierarchy(g, index, td);
  EXPECT_TRUE(HcdEquals(parallel, oracle));
}

TEST_P(TrussSuite, HierarchyStableAcrossThreadCounts) {
  const Graph& g = GetParam().graph;
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest base = BuildTrussHierarchy(g, index, td);
  for (int threads : {1, 2, 4}) {
    ThreadCountGuard guard(threads);
    EXPECT_TRUE(HcdEquals(BuildTrussHierarchy(g, index, td), base))
        << "threads=" << threads;
  }
}

TEST_P(TrussSuite, HierarchyStructure) {
  const Graph& g = GetParam().graph;
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  // Every edge placed in exactly one node of its trussness level.
  uint64_t placed = 0;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    for (VertexId eid : forest.Vertices(t)) {
      EXPECT_EQ(td.trussness[eid], forest.Level(t));
      ++placed;
    }
    TreeNodeId pa = forest.Parent(t);
    if (pa != kInvalidNode) {
      EXPECT_LT(forest.Level(pa), forest.Level(t));
    }
  }
  EXPECT_EQ(placed, index.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    AllGraphs, TrussSuite, ::testing::ValuesIn(testing::StandardGraphSuite()),
    [](const ::testing::TestParamInfo<testing::GraphCase>& info) {
      return info.param.name;
    });

TEST(TrussHierarchy, RingOfCliquesOneNodePerClique) {
  // Cliques of 5 are separate 5-trusses; bridge edges are trussness-2
  // shells tying everything into one 2-truss.
  Graph g = RingOfCliques(4, 5);
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  EXPECT_EQ(td.k_max, 5u);
  uint32_t clique_nodes = 0;
  for (TreeNodeId t = 0; t < forest.NumNodes(); ++t) {
    if (forest.Level(t) == 5) ++clique_nodes;
  }
  EXPECT_EQ(clique_nodes, 4u);
}

TEST(DensestTruss, FindsTheClique) {
  Graph g = RingOfCliques(5, 6);
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  DensestTrussResult best = DensestTruss(g, index, forest);
  EXPECT_EQ(best.level, 6u);
  EXPECT_EQ(best.community.vertices.size(), 6u);
  EXPECT_DOUBLE_EQ(best.community.AverageDegree(), 5.0);
}

TEST(TrussHierarchy, SerializesLikeAnyForest) {
  Graph g = RingOfCliques(5, 5);
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  const std::string path = ::testing::TempDir() + "/truss_forest.bin";
  ASSERT_TRUE(SaveForest(forest, path).ok());
  TrussForest loaded;
  ASSERT_TRUE(LoadForest(path, &loaded).ok());
  EXPECT_TRUE(HcdEquals(forest, loaded));
  std::remove(path.c_str());
}

TEST(TrussCommunity, PaperFigure1) {
  Graph g = PaperFigure1Graph();
  EdgeIndexer index = BuildEdgeIndexer(g);
  TrussDecomposition td = PeelTrussDecomposition(g, index);
  TrussForest forest = BuildTrussHierarchy(g, index, td);
  // The 4-clique S3.2 is a 4-truss.
  EXPECT_GE(td.k_max, 4u);
  DensestTrussResult best = DensestTruss(g, index, forest);
  EXPECT_GE(best.community.AverageDegree(), 3.0);
}

}  // namespace
}  // namespace hcd
