#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "engine/engine.h"
#include "engine/live.h"
#include "graph/generators.h"
#include "hcd/validate.h"
#include "search/metrics.h"
#include "tests/test_util.h"

namespace hcd {
namespace {

std::vector<EdgeUpdate> ToggleBatch(const DynamicCoreIndex& index, Rng& rng,
                                    size_t size) {
  const VertexId n = index.NumVertices();
  std::vector<EdgeUpdate> batch;
  while (batch.size() < size) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    batch.push_back({u, v,
                     index.HasEdge(u, v) ? EdgeOp::kRemove
                                         : EdgeOp::kInsert});
  }
  return batch;
}

TEST(LiveEngine, EpochAdvancesPerEffectiveBatch) {
  LiveEngine live(ErdosRenyiGnm(100, 300, 5));
  EXPECT_EQ(live.Epoch(), 0u);
  Rng rng(6);
  for (uint64_t i = 1; i <= 3; ++i) {
    BatchApplyReport report;
    ASSERT_TRUE(
        live.ApplyBatch(ToggleBatch(live.dynamic(), rng, 10), &report).ok());
    EXPECT_TRUE(report.published);
    EXPECT_EQ(report.epoch, i);
    EXPECT_EQ(live.Epoch(), i);
    EXPECT_EQ(live.Snapshot().epoch(), i);
    EXPECT_GT(report.stats.applied, 0u);
    EXPECT_GE(report.total_seconds, 0.0);
  }
  // A batch with no net effect publishes nothing.
  std::vector<EdgeUpdate> noop;
  const std::vector<EdgeUpdate> one = ToggleBatch(live.dynamic(), rng, 1);
  noop.push_back(one[0]);
  noop.push_back({one[0].u, one[0].v,
                  one[0].op == EdgeOp::kInsert ? EdgeOp::kRemove
                                               : EdgeOp::kInsert});
  BatchApplyReport report;
  ASSERT_TRUE(live.ApplyBatch(noop, &report).ok());
  EXPECT_FALSE(report.published);
  EXPECT_EQ(live.Epoch(), 3u);
}

TEST(LiveEngine, ServesExactlyWhatAFreshBuildWould) {
  LiveEngineOptions options;
  options.verify_batches = true;  // every batch cross-checked against BZ
  LiveEngine live(ErdosRenyiGnp(200, 0.015, 13), options);
  Rng rng(14);
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(
        live.ApplyBatch(ToggleBatch(live.dynamic(), rng, 30), nullptr).ok());
    const QuerySnapshot snap = live.Snapshot();
    HcdEngine fresh(live.dynamic().ToGraph());
    const QuerySnapshot expect = fresh.Snapshot();
    ASSERT_EQ(snap.coreness().coreness, expect.coreness().coreness);
    ASSERT_TRUE(HcdEquals(snap.flat(), expect.flat()));
    ASSERT_TRUE(
        ValidateHcd(snap.graph(), snap.coreness(), snap.flat()).ok());
    for (Metric metric : kAllMetrics) {
      const SearchResult got = snap.Search(metric);
      const SearchResult want = expect.Search(metric);
      ASSERT_DOUBLE_EQ(got.best_score, want.best_score)
          << MetricName(metric);
    }
  }
}

TEST(LiveEngine, OldSnapshotsSurviveSwapsAndEngineDeath) {
  auto live = std::make_unique<LiveEngine>(ErdosRenyiGnm(120, 400, 21));
  const QuerySnapshot old_snap = live->Snapshot();
  const SearchResult before = old_snap.Search(Metric::kAverageDegree);
  Rng rng(22);
  ASSERT_TRUE(
      live->ApplyBatch(ToggleBatch(live->dynamic(), rng, 20), nullptr).ok());
  const QuerySnapshot new_snap = live->Snapshot();
  EXPECT_EQ(old_snap.epoch(), 0u);
  EXPECT_EQ(new_snap.epoch(), 1u);
  // The old generation still serves identical answers after the swap...
  EXPECT_DOUBLE_EQ(old_snap.Search(Metric::kAverageDegree).best_score,
                   before.best_score);
  // ...and after the engine itself is gone.
  live.reset();
  EXPECT_DOUBLE_EQ(old_snap.Search(Metric::kAverageDegree).best_score,
                   before.best_score);
  EXPECT_GT(new_snap.graph().NumVertices(), 0u);
}

// The reader/writer hot-swap test the TSan CI job runs: readers acquire
// and query snapshots continuously while the writer publishes several
// generations. Readers never hold a lock while querying — any missing
// synchronization in SnapshotManager/SnapshotReader/SnapshotState shows
// up as a TSan race here. Both reader paths are exercised: the cached
// SnapshotReader fast path and the direct Acquire() pointer copy.
TEST(LiveEngine, ConcurrentReadersAcrossHotSwaps) {
  LiveEngine live(ErdosRenyiGnm(150, 500, 31));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  const int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&live, &stop, &reads] {
      SearchWorkspace ws;
      SnapshotReader reader(live.manager());
      uint64_t last_epoch = 0;
      uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const QuerySnapshot snap =
            ++iter % 8 == 0 ? live.Snapshot() : reader.Snapshot();
        // Epochs are monotone: a reader never observes time running
        // backwards across swaps.
        EXPECT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        const SearchHit hit = snap.Search(Metric::kAverageDegree, &ws);
        EXPECT_NE(hit.best_node, kInvalidNode);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  Rng rng(32);
  uint64_t published = 0;
  while (published < 4) {  // >= 3 hot-swaps under active readers
    BatchApplyReport report;
    ASSERT_TRUE(
        live.ApplyBatch(ToggleBatch(live.dynamic(), rng, 25), &report).ok());
    if (report.published) ++published;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(live.Epoch(), published);
  EXPECT_GT(reads.load(), 0u);
}

TEST(LiveEngine, PublishesMetrics) {
  MetricsRegistry registry;
  registry.Install();
  {
    LiveEngine live(ErdosRenyiGnm(100, 300, 41));
    Rng rng(42);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          live.ApplyBatch(ToggleBatch(live.dynamic(), rng, 15), nullptr)
              .ok());
    }
    EXPECT_EQ(registry.GetGauge("hcd_snapshot_epoch")->Value(), 3.0);
    EXPECT_EQ(registry.GetHistogram("hcd_batch_apply_seconds")->TotalCount(),
              3u);
    EXPECT_GT(registry.GetCounter("hcd_subcores_touched_total")->Value(), 0u);
  }
  registry.Uninstall();
}

}  // namespace
}  // namespace hcd
